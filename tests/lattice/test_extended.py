"""The Definition 4 nil-extension."""

import pickle

from repro.lattice.chain import two_level
from repro.lattice.extended import NIL, ExtendedLattice, Nil
from repro.lattice.finite import diamond


def test_nil_is_singleton():
    assert Nil() is NIL
    assert Nil() is Nil()


def test_nil_survives_pickling():
    assert pickle.loads(pickle.dumps(NIL)) is NIL


def test_nil_below_everything():
    ext = ExtendedLattice(two_level())
    for x in ext:
        assert ext.leq(NIL, x)
    assert not ext.leq("low", NIL)


def test_base_order_preserved():
    ext = ExtendedLattice(diamond())
    base = ext.base
    for a in base:
        for b in base:
            assert ext.leq(a, b) == base.leq(a, b)


def test_nil_is_join_identity():
    ext = ExtendedLattice(two_level())
    assert ext.join(NIL, "high") == "high"
    assert ext.join("low", NIL) == "low"
    assert ext.join(NIL, NIL) is NIL


def test_nil_is_meet_annihilator():
    ext = ExtendedLattice(two_level())
    assert ext.meet(NIL, "high") is NIL
    assert ext.meet("low", NIL) is NIL


def test_top_is_base_top_bottom_is_nil():
    ext = ExtendedLattice(two_level())
    assert ext.top == "high"
    assert ext.bottom is NIL


def test_carrier_is_base_plus_nil():
    base = two_level()
    ext = ExtendedLattice(base)
    assert ext.elements == base.elements | {NIL}


def test_extension_is_still_a_lattice():
    ExtendedLattice(diamond()).validate()


def test_is_nil():
    ext = ExtendedLattice(two_level())
    assert ext.is_nil(NIL)
    assert not ext.is_nil("low")


def test_nil_repr():
    assert repr(NIL) == "nil"


def test_double_extension_rejected():
    from repro.errors import LatticeError
    import pytest

    ext = ExtendedLattice(two_level())
    with pytest.raises(LatticeError):
        ExtendedLattice(ext)
