"""Generic lattice behaviour through the abstract interface."""

import pytest

from repro.errors import ElementError, NotALatticeError
from repro.lattice.chain import ChainLattice, two_level
from repro.lattice.finite import FiniteLattice, diamond


def test_validate_accepts_all_standard_schemes(any_scheme):
    any_scheme.validate()


def test_top_and_bottom(any_scheme):
    top, bottom = any_scheme.top, any_scheme.bottom
    for x in any_scheme:
        assert any_scheme.leq(x, top)
        assert any_scheme.leq(bottom, x)


def test_join_all_empty_is_bottom(any_scheme):
    assert any_scheme.join_all([]) == any_scheme.bottom


def test_meet_all_empty_is_top(any_scheme):
    assert any_scheme.meet_all([]) == any_scheme.top


def test_join_all_singleton(any_scheme):
    x = any_scheme.top
    assert any_scheme.join_all([x]) == x


def test_join_meet_idempotent(any_scheme):
    for x in any_scheme:
        assert any_scheme.join(x, x) == x
        assert any_scheme.meet(x, x) == x


def test_join_meet_commutative(any_scheme):
    for a in any_scheme:
        for b in any_scheme:
            assert any_scheme.join(a, b) == any_scheme.join(b, a)
            assert any_scheme.meet(a, b) == any_scheme.meet(b, a)


def test_absorption_laws(any_scheme):
    for a in any_scheme:
        for b in any_scheme:
            assert any_scheme.join(a, any_scheme.meet(a, b)) == a
            assert any_scheme.meet(a, any_scheme.join(a, b)) == a


def test_leq_iff_join_is_upper(any_scheme):
    for a in any_scheme:
        for b in any_scheme:
            assert any_scheme.leq(a, b) == (any_scheme.join(a, b) == b)
            assert any_scheme.leq(a, b) == (any_scheme.meet(a, b) == a)


def test_check_rejects_foreign_elements(scheme):
    with pytest.raises(ElementError):
        scheme.check("medium")


def test_operations_reject_foreign_elements(scheme):
    with pytest.raises(ElementError):
        scheme.join("low", "nope")
    with pytest.raises(ElementError):
        scheme.leq("nope", "high")


def test_contains_handles_unhashable():
    assert not two_level().contains(["not", "hashable"])


def test_lt_and_comparable(scheme):
    assert scheme.lt("low", "high")
    assert not scheme.lt("low", "low")
    assert scheme.comparable("low", "high")


def test_incomparable_in_diamond():
    d = diamond()
    assert not d.comparable("left", "right")
    assert d.join("left", "right") == "high"
    assert d.meet("left", "right") == "low"


def test_upper_and_lower_sets(diamond_scheme):
    assert diamond_scheme.upper_set("left") == frozenset({"left", "high"})
    assert diamond_scheme.lower_set("left") == frozenset({"left", "low"})


def test_covers(diamond_scheme):
    assert diamond_scheme.covers("low", "left")
    assert not diamond_scheme.covers("low", "high")  # left/right lie between


def test_len_and_iter(scheme):
    assert len(scheme) == 2
    assert set(scheme) == {"low", "high"}


def test_equivalent_is_equality_for_posets(any_scheme):
    for a in any_scheme:
        for b in any_scheme:
            assert any_scheme.equivalent(a, b) == (a == b)


def test_join_all_nonempty_requires_elements(scheme):
    with pytest.raises(ElementError):
        scheme.join_all_nonempty([])
    with pytest.raises(ElementError):
        scheme.meet_all_nonempty([])


def test_validate_catches_broken_leq():
    class Broken(ChainLattice):
        def leq(self, a, b):  # not reflexive
            self.check(a)
            self.check(b)
            return self.rank(a) < self.rank(b)

    with pytest.raises(NotALatticeError):
        Broken(["low", "high"]).validate()
