"""Product schemes (levels x categories)."""

import pytest

from repro.errors import ElementError, LatticeError
from repro.lattice.chain import two_level
from repro.lattice.powerset import PowersetLattice
from repro.lattice.product import ProductLattice, military


def test_componentwise_order():
    p = ProductLattice(two_level(), two_level())
    assert p.leq(("low", "low"), ("high", "low"))
    assert not p.leq(("high", "low"), ("low", "high"))


def test_componentwise_join_meet():
    p = ProductLattice(two_level(), two_level())
    assert p.join(("high", "low"), ("low", "high")) == ("high", "high")
    assert p.meet(("high", "low"), ("low", "high")) == ("low", "low")


def test_top_bottom():
    p = ProductLattice(two_level(), two_level())
    assert p.top == ("high", "high")
    assert p.bottom == ("low", "low")


def test_military_preset():
    m = military(("nuclear", "crypto"))
    assert m.bottom == ("unclassified", frozenset())
    assert m.top == ("topsecret", frozenset({"nuclear", "crypto"}))
    a = ("secret", frozenset({"nuclear"}))
    b = ("confidential", frozenset({"crypto"}))
    assert m.join(a, b) == ("secret", frozenset({"nuclear", "crypto"}))
    assert not m.comparable(a, b)


def test_military_validates():
    military(("n",)).validate()


def test_wrong_arity_rejected():
    p = ProductLattice(two_level(), two_level())
    with pytest.raises(ElementError):
        p.leq(("low",), ("low", "low"))


def test_single_component_rejected():
    with pytest.raises(LatticeError):
        ProductLattice(two_level())


def test_oversized_product_rejected():
    big = PowersetLattice([f"c{i}" for i in range(9)])
    with pytest.raises(LatticeError):
        ProductLattice(big, big)


def test_three_way_product():
    p = ProductLattice(two_level(), two_level(), two_level())
    assert len(p) == 8
    p.validate()
