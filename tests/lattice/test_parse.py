"""Parsing scheme specifications."""

import pytest

from repro.errors import LatticeError, NotALatticeError
from repro.lattice.parse import load_scheme, parse_scheme


def test_chain_spec():
    s = parse_scheme("chain: public < internal < secret")
    assert s.bottom == "public"
    assert s.top == "secret"
    assert s.leq("internal", "secret")


def test_explicit_spec():
    s = parse_scheme(
        """
        elements: bot, left, right, top
        order: bot < left, bot < right, left < top, right < top
        """
    )
    assert s.join("left", "right") == "top"
    assert not s.comparable("left", "right")


def test_comments_and_blank_lines():
    s = parse_scheme(
        """
        # my company's levels
        chain: a < b   # bottom to top
        """
    )
    assert s.top == "b"


def test_non_lattice_rejected():
    with pytest.raises(NotALatticeError):
        parse_scheme("elements: a, b\norder:")


def test_bad_syntax():
    with pytest.raises(LatticeError):
        parse_scheme("chainz: a < b")
    with pytest.raises(LatticeError):
        parse_scheme("just some text")
    with pytest.raises(LatticeError):
        parse_scheme("order: a <")
    with pytest.raises(LatticeError):
        parse_scheme("chain: a < < b")
    with pytest.raises(LatticeError):
        parse_scheme("")


def test_both_styles_rejected():
    with pytest.raises(LatticeError):
        parse_scheme("chain: a < b\nelements: c")


def test_load_scheme(tmp_path):
    path = tmp_path / "levels.scheme"
    path.write_text("chain: green < amber < red")
    s = load_scheme(str(path))
    assert s.top == "red"


def test_cli_scheme_file(tmp_path, capsys):
    from repro.cli import main

    spec = tmp_path / "levels.scheme"
    spec.write_text("chain: public < secret")
    prog = tmp_path / "p.rl"
    prog.write_text("var x, y : integer; y := x")
    code = main(
        ["certify", str(prog), "--scheme-file", str(spec),
         "--bind", "x=secret", "--bind", "y=public", "--quiet"]
    )
    assert code == 1
    assert capsys.readouterr().out.strip() == "REJECTED"
    code = main(
        ["infer", str(prog), "--scheme-file", str(spec), "--bind", "x=secret"]
    )
    assert code == 0
    assert "y='secret'" in capsys.readouterr().out
