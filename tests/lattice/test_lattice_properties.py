"""Property-based tests: random finite orders and lattice laws."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.errors import NotALatticeError
from repro.lattice.chain import ChainLattice
from repro.lattice.finite import FiniteLattice
from repro.lattice.powerset import PowersetLattice
from repro.lattice.product import ProductLattice


@st.composite
def random_finite_lattice(draw):
    """A random lattice built as a sublattice of a small powerset.

    Any family of sets containing top and bottom and closed under
    union/intersection is a lattice under inclusion; we draw such a
    family and present it to FiniteLattice with inclusion pairs.
    """
    universe = draw(st.integers(min_value=1, max_value=4))
    all_cats = list(range(universe))
    n_extra = draw(st.integers(min_value=0, max_value=4))
    family = {frozenset(), frozenset(all_cats)}
    for _ in range(n_extra):
        subset = draw(st.frozensets(st.sampled_from(all_cats)))
        family.add(subset)
    # Close under union and intersection.
    changed = True
    while changed:
        changed = False
        for a in list(family):
            for b in list(family):
                for c in (a | b, a & b):
                    if c not in family:
                        family.add(c)
                        changed = True
    elements = sorted(family, key=lambda s: (len(s), sorted(s)))
    order = [(a, b) for a in elements for b in elements if a < b]
    return FiniteLattice(elements, order, name="random")


@given(random_finite_lattice())
@settings(max_examples=40, deadline=None)
def test_random_lattices_satisfy_axioms(lat):
    lat.validate()


@given(random_finite_lattice(), st.data())
@settings(max_examples=40, deadline=None)
def test_associativity(lat, data):
    elems = sorted(lat.elements, key=repr)
    a = data.draw(st.sampled_from(elems))
    b = data.draw(st.sampled_from(elems))
    c = data.draw(st.sampled_from(elems))
    assert lat.join(lat.join(a, b), c) == lat.join(a, lat.join(b, c))
    assert lat.meet(lat.meet(a, b), c) == lat.meet(a, lat.meet(b, c))


@given(st.lists(st.integers(), min_size=1, max_size=8, unique=True))
def test_chain_join_all_is_max(labels):
    chain = ChainLattice(labels)
    assert chain.join_all_nonempty(labels) == labels[-1]
    assert chain.meet_all_nonempty(labels) == labels[0]


@given(
    st.frozensets(st.sampled_from(["a", "b", "c"])),
    st.frozensets(st.sampled_from(["a", "b", "c"])),
)
def test_powerset_laws(x, y):
    s = PowersetLattice(["a", "b", "c"])
    assert s.leq(s.meet(x, y), x)
    assert s.leq(x, s.join(x, y))
    assert s.leq(x, y) == (x <= y)


@given(st.data())
@settings(max_examples=30, deadline=None)
def test_product_order_is_componentwise(data):
    chain = ChainLattice([0, 1, 2])
    p = ProductLattice(chain, chain)
    a = (data.draw(st.sampled_from([0, 1, 2])), data.draw(st.sampled_from([0, 1, 2])))
    b = (data.draw(st.sampled_from([0, 1, 2])), data.draw(st.sampled_from([0, 1, 2])))
    assert p.leq(a, b) == (a[0] <= b[0] and a[1] <= b[1])
