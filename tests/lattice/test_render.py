"""Rendering helpers."""

from repro.lattice.chain import four_level, two_level
from repro.lattice.finite import diamond
from repro.lattice.powerset import PowersetLattice
from repro.lattice.render import ascii_order, hasse_edges, to_dot


def test_hasse_edges_of_chain():
    edges = hasse_edges(four_level())
    assert ("unclassified", "confidential") in edges
    assert ("unclassified", "secret") not in edges  # not a covering pair
    assert len(edges) == 3


def test_hasse_edges_of_diamond():
    edges = set(hasse_edges(diamond()))
    assert edges == {
        ("low", "left"),
        ("low", "right"),
        ("left", "high"),
        ("right", "high"),
    }


def test_dot_output_mentions_every_element():
    dot = to_dot(two_level())
    assert "digraph" in dot
    assert '"low"' in dot and '"high"' in dot
    assert "->" in dot


def test_dot_handles_frozenset_labels():
    dot = to_dot(PowersetLattice(["a", "b"]))
    assert "{a,b}" in dot


def test_ascii_order_levels():
    text = ascii_order(diamond())
    lines = text.splitlines()
    assert lines[0].strip() == "high"
    assert set(lines[1].split()) == {"left", "right"}
    assert lines[2].strip() == "low"


def test_ascii_order_chain():
    text = ascii_order(four_level())
    assert text.splitlines()[0].strip() == "topsecret"
    assert text.splitlines()[-1].strip() == "unclassified"
