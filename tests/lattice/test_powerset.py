"""Powerset (category) schemes."""

import pytest

from repro.errors import LatticeError
from repro.lattice.powerset import PowersetLattice


def test_carrier_size():
    s = PowersetLattice(["a", "b", "c"])
    assert len(s) == 8


def test_order_is_inclusion():
    s = PowersetLattice(["a", "b"])
    assert s.leq(frozenset(), frozenset({"a"}))
    assert s.leq(frozenset({"a"}), frozenset({"a", "b"}))
    assert not s.leq(frozenset({"a"}), frozenset({"b"}))


def test_join_is_union_meet_is_intersection():
    s = PowersetLattice(["a", "b", "c"])
    x = frozenset({"a", "b"})
    y = frozenset({"b", "c"})
    assert s.join(x, y) == frozenset({"a", "b", "c"})
    assert s.meet(x, y) == frozenset({"b"})


def test_top_bottom():
    s = PowersetLattice(["a", "b"])
    assert s.top == frozenset({"a", "b"})
    assert s.bottom == frozenset()


def test_validates():
    PowersetLattice(["a", "b", "c"]).validate()


def test_empty_universe():
    s = PowersetLattice([])
    assert len(s) == 1
    assert s.top == s.bottom == frozenset()


def test_oversized_universe_rejected():
    with pytest.raises(LatticeError):
        PowersetLattice([f"c{i}" for i in range(17)])


def test_universe_property():
    s = PowersetLattice(["x", "y"])
    assert s.universe == frozenset({"x", "y"})
