"""Chain (total order) schemes."""

import pytest

from repro.errors import LatticeError
from repro.lattice.chain import ChainLattice, four_level, two_level


def test_two_level_shape():
    s = two_level()
    assert s.bottom == "low"
    assert s.top == "high"
    assert s.leq("low", "high")
    assert not s.leq("high", "low")


def test_four_level_order():
    s = four_level()
    order = ["unclassified", "confidential", "secret", "topsecret"]
    assert list(s.labels) == order
    for i, a in enumerate(order):
        for j, b in enumerate(order):
            assert s.leq(a, b) == (i <= j)


def test_join_meet_are_max_min():
    s = four_level()
    assert s.join("confidential", "secret") == "secret"
    assert s.meet("confidential", "secret") == "confidential"


def test_rank():
    s = four_level()
    assert s.rank("unclassified") == 0
    assert s.rank("topsecret") == 3


def test_singleton_chain():
    s = ChainLattice(["only"])
    assert s.top == s.bottom == "only"
    s.validate()


def test_empty_chain_rejected():
    with pytest.raises(LatticeError):
        ChainLattice([])


def test_duplicate_labels_rejected():
    with pytest.raises(LatticeError):
        ChainLattice(["a", "a"])


def test_long_chain_validates():
    ChainLattice([f"l{i}" for i in range(10)]).validate()


def test_non_string_labels():
    s = ChainLattice([0, 1, 2])
    assert s.join(0, 2) == 2
    assert s.bottom == 0
