"""Explicit finite lattices and their validation."""

import pytest

from repro.errors import LatticeError, NotALatticeError
from repro.lattice.finite import FiniteLattice, diamond


def test_diamond():
    d = diamond()
    d.validate()
    assert d.join("left", "right") == "high"
    assert d.meet("left", "right") == "low"
    assert d.leq("low", "high")  # via transitive closure


def test_transitive_closure():
    s = FiniteLattice(["a", "b", "c"], [("a", "b"), ("b", "c")])
    assert s.leq("a", "c")


def test_reflexivity_automatic():
    s = FiniteLattice(["a"], [])
    assert s.leq("a", "a")


def test_cycle_rejected():
    with pytest.raises(NotALatticeError):
        FiniteLattice(["a", "b"], [("a", "b"), ("b", "a")])


def test_no_upper_bound_rejected():
    # Two maximal elements: {a, b} with nothing above both.
    with pytest.raises(NotALatticeError):
        FiniteLattice(["a", "b"], [])


def test_no_least_upper_bound_rejected():
    # a, b below both c and d; c, d incomparable: lub(a, b) ambiguous.
    with pytest.raises(NotALatticeError):
        FiniteLattice(
            ["bot", "a", "b", "c", "d", "top"],
            [
                ("bot", "a"),
                ("bot", "b"),
                ("a", "c"),
                ("a", "d"),
                ("b", "c"),
                ("b", "d"),
                ("c", "top"),
                ("d", "top"),
            ],
        )


def test_unknown_element_in_order_rejected():
    with pytest.raises(LatticeError):
        FiniteLattice(["a"], [("a", "zzz")])


def test_duplicates_rejected():
    with pytest.raises(LatticeError):
        FiniteLattice(["a", "a"], [])


def test_empty_rejected():
    with pytest.raises(LatticeError):
        FiniteLattice([], [])


def test_pentagon_is_a_lattice():
    # N5: bot < a < top, bot < b < c < top; a incomparable to b, c.
    n5 = FiniteLattice(
        ["bot", "a", "b", "c", "top"],
        [("bot", "a"), ("a", "top"), ("bot", "b"), ("b", "c"), ("c", "top")],
    )
    n5.validate()
    assert n5.join("a", "b") == "top"
    assert n5.meet("a", "c") == "bot"


def test_chain_as_finite():
    s = FiniteLattice([1, 2, 3], [(1, 2), (2, 3)])
    assert s.top == 3
    assert s.bottom == 1
    s.validate()
