"""The advertised top-level API and performance regression guards."""

import time

import repro


def test_all_exports_resolve():
    for name in repro.__all__:
        assert hasattr(repro, name), name


def test_readme_example_works():
    program = repro.parse_program(
        """
        var h, l : integer;  go : semaphore initially(0);
        cobegin
          if h # 0 then signal(go)
        ||
          begin wait(go); l := 1 end
        coend
        """
    )
    scheme = repro.two_level()
    binding = repro.StaticBinding(
        scheme, {"h": "high", "l": "low", "go": "low"}
    )
    report = repro.certify(program, binding)
    assert report.certified is False
    result = repro.infer_binding(
        repro.parse_program(
            "var h, l : integer; go : semaphore; "
            "cobegin if h # 0 then signal(go) || begin wait(go); l := 1 end coend"
        ),
        scheme,
        {"h": "high"},
    )
    assert result.inferred["l"] == "high"


def test_docstring_example():
    import doctest

    results = doctest.testmod(repro, verbose=False)
    assert results.failed == 0


def test_version_is_exposed():
    assert repro.__version__.count(".") == 2


def test_cli_version(capsys):
    import pytest

    from repro.cli import main

    with pytest.raises(SystemExit) as exc:
        main(["--version"])
    assert exc.value.code == 0
    assert repro.__version__ in capsys.readouterr().out


def test_certification_performance_guard():
    """CFM on a 10k-statement program stays within interactive budgets
    (the section 6 linearity claim, as a regression tripwire)."""
    from repro.core.binding import StaticBinding
    from repro.lang.ast import used_variables
    from repro.workloads.generators import sized_program

    prog = sized_program(11, 10_000)
    binding = StaticBinding(
        repro.two_level(),
        {n: "low" for n in used_variables(prog.body)},
    )
    start = time.perf_counter()
    report = repro.certify(prog, binding)
    elapsed = time.perf_counter() - start
    assert report.certified
    assert elapsed < 5.0, f"certification took {elapsed:.2f}s"
