"""Documentation is part of the deliverable: enforce it mechanically."""

import importlib
import inspect
import pkgutil

import repro

PACKAGES = [
    "repro",
    "repro.lattice",
    "repro.lang",
    "repro.core",
    "repro.logic",
    "repro.runtime",
    "repro.analysis",
    "repro.observe",
    "repro.workloads",
    "repro.staticlint",
    "repro.pipeline",
    "repro.service",
    "repro.fuzz",
    "repro.fastpath",
]


def all_modules():
    names = set(PACKAGES)
    for pkg_name in PACKAGES:
        pkg = importlib.import_module(pkg_name)
        if hasattr(pkg, "__path__"):
            for info in pkgutil.iter_modules(pkg.__path__):
                names.add(f"{pkg_name}.{info.name}")
    names.add("repro.cli")
    names.add("repro.errors")
    return sorted(names)


def test_every_module_has_a_docstring():
    for name in all_modules():
        module = importlib.import_module(name)
        assert module.__doc__ and module.__doc__.strip(), name


def test_every_exported_name_is_documented():
    for pkg_name in PACKAGES:
        pkg = importlib.import_module(pkg_name)
        for name in getattr(pkg, "__all__", []):
            obj = getattr(pkg, name)
            if inspect.isclass(obj) or inspect.isfunction(obj):
                assert inspect.getdoc(obj), f"{pkg_name}.{name} lacks a docstring"


def test_public_classes_document_their_methods():
    """Spot the load-bearing classes: every public method documented."""
    from repro.core.cfm import CertificationReport
    from repro.lattice.base import Lattice
    from repro.logic.proof import ProofNode
    from repro.runtime.machine import Machine

    for cls in (Lattice, Machine, CertificationReport, ProofNode):
        for name, member in inspect.getmembers(cls):
            if name.startswith("_") or not callable(member):
                continue
            assert inspect.getdoc(member), f"{cls.__name__}.{name}"


def test_design_and_experiments_exist_and_crosslink():
    from pathlib import Path

    root = Path(repro.__file__).resolve().parents[2]
    design = (root / "DESIGN.md").read_text()
    experiments = (root / "EXPERIMENTS.md").read_text()
    readme = (root / "README.md").read_text()
    # every experiment id in DESIGN appears in EXPERIMENTS
    for eid in [f"E{i}" for i in range(1, 14)]:
        assert eid in design, eid
        assert eid in experiments, eid
    assert "DESIGN.md" in readme and "EXPERIMENTS.md" in readme


def test_examples_have_module_docstrings():
    from pathlib import Path

    root = Path(repro.__file__).resolve().parents[2]
    for script in sorted((root / "examples").glob("*.py")):
        text = script.read_text()
        assert text.lstrip().startswith('"""'), script.name
        assert "Run:" in text, f"{script.name} should say how to run it"
