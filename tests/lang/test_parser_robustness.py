"""Parser/lexer robustness: garbage in, clean errors out.

Whatever bytes arrive, the front end must either parse or raise a
:class:`~repro.errors.LanguageError` with a location — never an
``IndexError``, ``RecursionError`` (at sane depths), or other internal
failure.
"""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.errors import LanguageError
from repro.lang.parser import parse_expression, parse_program, parse_statement


@given(st.text(max_size=200))
@settings(max_examples=200, deadline=None)
def test_arbitrary_text_never_crashes(text):
    try:
        parse_program(text)
    except LanguageError:
        pass


@given(
    st.lists(
        st.sampled_from(
            ["begin", "end", "if", "then", "else", "while", "do", "cobegin",
             "coend", "||", ";", ":=", "x", "y", "0", "1", "(", ")", "+",
             "wait", "signal", "skip", "var", ":", "integer", ",", "=",
             "proc", "call", "#", "<", "and", "not", "true"]
        ),
        max_size=40,
    )
)
@settings(max_examples=300, deadline=None)
def test_token_soup_never_crashes(tokens):
    source = " ".join(tokens)
    for entry in (parse_program, parse_statement, parse_expression):
        try:
            entry(source)
        except LanguageError:
            pass


@given(st.integers(min_value=1, max_value=120))
@settings(max_examples=20, deadline=None)
def test_deep_nesting_within_reason(depth):
    source = "if a = 0 then " * depth + "x := 1"
    stmt = parse_statement(source)
    from repro.lang.ast import max_nesting

    assert max_nesting(stmt) == depth + 1


@given(st.integers(min_value=1, max_value=120))
@settings(max_examples=20, deadline=None)
def test_deep_parentheses(depth):
    source = "(" * depth + "x" + ")" * depth
    expr = parse_expression(source)
    from repro.lang.ast import Var

    assert isinstance(expr, Var)


def test_error_locations_always_positive():
    cases = ["if", "begin x :=", "var : integer; x := 1", "x := (1 + ", "1abc"]
    for source in cases:
        try:
            parse_program(source)
            raise AssertionError(f"{source!r} unexpectedly parsed")
        except LanguageError as exc:
            assert exc.line is None or exc.line >= 1
