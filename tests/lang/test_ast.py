"""AST helpers and traversals."""

import pytest

from repro.lang.ast import (
    Assign,
    BinOp,
    Cobegin,
    If,
    IntLit,
    Var,
    VarDecl,
    expr_variables,
    iter_nodes,
    iter_statements,
    max_nesting,
    modified_variables,
    program_size,
    used_variables,
)
from repro.lang.parser import parse_expression, parse_program, parse_statement


def test_uids_unique():
    s = parse_statement("begin x := 1; x := 2 end")
    uids = [n.uid for n in iter_nodes(s)]
    assert len(uids) == len(set(uids))


def test_identity_equality():
    a = parse_statement("x := 1")
    b = parse_statement("x := 1")
    assert a != b  # program points, not shapes
    assert a == a


def test_iter_nodes_preorder():
    s = parse_statement("if a = 0 then x := 1 else y := 2")
    types = [type(n).__name__ for n in iter_nodes(s)]
    assert types[0] == "If"
    assert types[1] == "BinOp"  # condition before branches


def test_iter_statements_skips_expressions():
    s = parse_statement("if a = 0 then x := 1")
    stmts = list(iter_statements(s))
    assert len(stmts) == 2  # the if and the assignment


def test_expr_variables():
    e = parse_expression("a + b * a - 3")
    assert expr_variables(e) == frozenset({"a", "b"})


def test_used_variables_includes_semaphores_and_targets():
    s = parse_statement("begin wait(s); x := y end")
    assert used_variables(s) == frozenset({"s", "x", "y"})


def test_modified_variables():
    s = parse_statement("begin wait(s); signal(t); x := y end")
    assert modified_variables(s) == frozenset({"s", "t", "x"})


def test_program_size_counts_statements():
    s = parse_statement("begin x := 1; if a = 0 then y := 2; skip end")
    # begin, assign, if, assign, skip
    assert program_size(s) == 5


def test_max_nesting():
    s = parse_statement("while a > 0 do if b = 0 then x := 1")
    assert max_nesting(s) == 3


def test_invalid_binop_rejected():
    with pytest.raises(ValueError):
        BinOp("**", IntLit(1), IntLit(2))


def test_invalid_unop_rejected():
    from repro.lang.ast import UnOp

    with pytest.raises(ValueError):
        UnOp("!", IntLit(1))


def test_empty_cobegin_rejected():
    with pytest.raises(ValueError):
        Cobegin([])


def test_vardecl_validation():
    with pytest.raises(ValueError):
        VarDecl([], "integer")
    with pytest.raises(ValueError):
        VarDecl(["x"], "float")


def test_program_helpers():
    p = parse_program("var x : integer initially(4); s : semaphore; x := 1")
    assert p.declared() == ["x", "s"]
    assert p.initial_values() == {"x": 4, "s": 0}


def test_repr_is_informative():
    s = parse_statement("x := 1 + 2")
    assert "Assign" in repr(s)
    assert "x := 1 + 2" in repr(s)


def test_if_children_without_else():
    s = parse_statement("if a = 0 then x := 1")
    assert len(s.children()) == 2


def test_loc_bool():
    from repro.lang.ast import Loc

    assert not Loc.none()
    assert Loc(3, 1)
