"""AST cloning and renaming."""

import pytest

from repro.errors import LanguageError
from repro.lang.ast import iter_nodes
from repro.lang.clone import clone_expr, clone_stmt
from repro.lang.parser import parse_expression, parse_statement
from repro.lang.pretty import pretty


def test_clone_produces_fresh_uids():
    s = parse_statement("begin x := 1; if a = 0 then y := 2 end")
    c = clone_stmt(s)
    assert pretty(c) == pretty(s)
    original = {n.uid for n in iter_nodes(s)}
    cloned = {n.uid for n in iter_nodes(c)}
    assert original.isdisjoint(cloned)


def test_rename_reads_and_writes():
    s = parse_statement("x := x + y")
    c = clone_stmt(s, {"x": "a", "y": "b"})
    assert pretty(c) == "a := a + b"


def test_rename_semaphores_and_guards():
    s = parse_statement(
        "begin wait(s); signal(t); while s2 > 0 do skip; if s2 = 0 then skip end"
    )
    c = clone_stmt(s, {"s": "sem1", "t": "sem2", "s2": "n"})
    text = pretty(c)
    assert "wait(sem1)" in text and "signal(sem2)" in text
    assert "while n > 0" in text and "if n = 0" in text


def test_rename_misses_are_identity():
    e = parse_expression("x + 1")
    c = clone_expr(e, {"z": "w"})
    assert pretty(c) == "x + 1"


def test_locations_preserved():
    s = parse_statement("x := 1")
    c = clone_stmt(s)
    assert (c.loc.line, c.loc.column) == (s.loc.line, s.loc.column)


def test_clone_cobegin_and_else():
    s = parse_statement("cobegin if a = 0 then x := 1 else y := 2 || skip coend")
    assert pretty(clone_stmt(s)) == pretty(s)


def test_clone_call():
    from repro.lang.procs import Call

    call = Call("p", [parse_expression("x + 1")], ["y"])
    c = clone_stmt(call, {"x": "a", "y": "b"})
    assert c.name == "p"
    assert pretty(c.in_args[0]) == "a + 1"
    assert c.out_args == ["b"]


def test_clone_rejects_non_nodes():
    with pytest.raises(LanguageError):
        clone_expr("not a node")
    with pytest.raises(LanguageError):
        clone_stmt("not a node")


def test_mutating_clone_leaves_original():
    s = parse_statement("begin x := 1; y := 2 end")
    c = clone_stmt(s)
    c.body.pop()
    assert len(s.body) == 2
