"""Procedures: parsing, validation, expansion, and analysis integration."""

import pytest

from repro.core.binding import StaticBinding
from repro.core.cfm import certify
from repro.core.inference import infer_binding
from repro.errors import ValidationError
from repro.lang.parser import parse_program
from repro.lang.pretty import pretty
from repro.lang.procs import Call, ProcDecl, expand_program, has_procedures
from repro.lang.validate import validate_program
from repro.runtime.executor import run

DOUBLE = """
proc double(in x; out y)
  y := x * 2;
var a, b : integer;
call double(a; b)
"""


def test_parse_proc_and_call():
    prog = parse_program(DOUBLE)
    assert len(prog.procs) == 1
    proc = prog.procs[0]
    assert proc.name == "double"
    assert proc.ins == ["x"] and proc.outs == ["y"]
    assert isinstance(prog.body, Call)


def test_pretty_roundtrip():
    prog = parse_program(DOUBLE)
    assert pretty(parse_program(pretty(prog))) == pretty(prog)


def test_expansion_is_call_free():
    expanded = expand_program(parse_program(DOUBLE))
    assert not has_procedures(expanded)
    text = pretty(expanded)
    assert "call" not in text
    assert "double_1_x" in text


def test_expansion_semantics():
    result = run(parse_program(DOUBLE), store={"a": 21})
    assert result.store["b"] == 42


def test_nested_calls():
    src = """
    proc inc(in x; out y)
      y := x + 1;
    proc inc2(in x; out y)
      begin call inc(x; y); call inc(y; y) end;
    var a, b : integer;
    call inc2(a; b)
    """
    result = run(parse_program(src), store={"a": 5})
    assert result.store["b"] == 7


def test_call_by_value_result():
    # The callee scribbling on its in-formal must not affect the actual.
    src = """
    proc scribble(in x; out y)
      begin x := 0; y := x end;
    var a, b : integer;
    call scribble(a; b)
    """
    result = run(parse_program(src), store={"a": 9})
    assert result.store["a"] == 9
    assert result.store["b"] == 0


def test_call_in_loop():
    src = """
    proc inc(in x; out y)
      y := x + 1;
    var i, acc : integer;
    while i < 3 do
    begin
      call inc(acc; acc);
      i := i + 1
    end
    """
    result = run(parse_program(src))
    assert result.store["acc"] == 3


def test_expansion_deterministic():
    a = pretty(expand_program(parse_program(DOUBLE)))
    b = pretty(expand_program(parse_program(DOUBLE)))
    assert a == b


def test_fresh_names_avoid_collisions():
    src = """
    proc p(in x; out y)
      y := x;
    var a, p_1_x, b : integer;
    call p(a; b)
    """
    expanded = expand_program(parse_program(src))
    names = expanded.declared()
    assert len(set(names)) == len(names)


def test_certification_through_calls(scheme):
    prog = parse_program(DOUBLE)
    assert not certify(
        prog, StaticBinding(scheme, {"a": "high", "b": "low"}, default="low")
    ).certified
    assert certify(
        parse_program(DOUBLE),
        StaticBinding(scheme, {"a": "high", "b": "high"}, default="high"),
    ).certified


def test_inference_through_calls(scheme):
    result = infer_binding(parse_program(DOUBLE), scheme, {"a": "high"})
    assert result.satisfiable
    assert result.binding.of_var("b") == "high"


def test_guard_flow_through_call(scheme):
    src = """
    proc choose(in c; out r)
      if c = 0 then r := 1 else r := 2;
    var h, l : integer;
    call choose(h; l)
    """
    result = infer_binding(parse_program(src), scheme, {"h": "high"})
    assert result.binding.of_var("l") == "high"


# -- validation errors ---------------------------------------------------


def test_undeclared_procedure():
    probs = validate_program(parse_program("var a : integer; call nope(a;)"))
    assert any("undeclared procedure" in str(p) for p in probs)


def test_recursion_rejected():
    src = """
    proc loop(in x; out y)
      call loop(x; y);
    var a, b : integer;
    call loop(a; b)
    """
    probs = validate_program(parse_program(src))
    assert any("recursion" in str(p) for p in probs)


def test_arity_mismatch():
    src = """
    proc p(in x; out y)
      y := x;
    var a, b : integer;
    call p(a, a; b)
    """
    probs = validate_program(parse_program(src))
    assert any("in-arguments" in str(p) for p in probs)


def test_body_referencing_globals_rejected():
    src = """
    proc p(in x; out y)
      y := x + g;
    var a, b, g : integer;
    call p(a; b)
    """
    probs = validate_program(parse_program(src))
    assert any("non-parameters" in str(p) for p in probs)


def test_semaphores_in_procedures_rejected():
    src = """
    proc p(in x; out y)
      begin wait(x); y := 1 end;
    var a, b : integer;
    call p(a; b)
    """
    probs = validate_program(parse_program(src))
    assert any("semaphores" in str(p) for p in probs)


def test_in_out_overlap_rejected():
    with pytest.raises(ValidationError):
        ProcDecl("p", ["x"], ["x"], None)


def test_duplicate_out_args():
    src = """
    proc p(in x; out y, z)
      begin y := x; z := x end;
    var a, b : integer;
    call p(a; b, b)
    """
    probs = validate_program(parse_program(src))
    assert any("repeats an out-argument" in str(p) for p in probs)


def test_expand_invalid_raises():
    with pytest.raises(ValidationError):
        expand_program(parse_program("var a : integer; call nope(a;)"))


def test_semaphore_out_argument_rejected():
    src = """
    proc p(in x; out y)
      y := x;
    var a : integer; s : semaphore;
    call p(a; s)
    """
    probs = validate_program(parse_program(src))
    assert any("out-argument" in str(p) for p in probs)
