"""Static validation."""

import pytest

from repro.errors import ValidationError
from repro.lang.parser import parse_program
from repro.lang.validate import check_program, validate_program


def problems_of(source):
    return [str(p) for p in validate_program(parse_program(source))]


def test_valid_program():
    assert problems_of("var x : integer; s : semaphore; begin x := 1; wait(s) end") == []


def test_undeclared_variable():
    probs = problems_of("var x : integer; y := 1")
    assert any("'y' is not declared" in p for p in probs)


def test_undeclared_reported_in_expression():
    probs = problems_of("var x : integer; x := z")
    assert any("'z'" in p for p in probs)


def test_duplicate_declaration():
    probs = problems_of("var x : integer; x : semaphore; x := 1")
    assert any("declared twice" in p for p in probs)


def test_assignment_to_semaphore():
    probs = problems_of("var s : semaphore; s := 1")
    assert any("wait/signal" in p for p in probs)


def test_wait_on_integer():
    probs = problems_of("var x : integer; wait(x)")
    assert any("non-semaphore" in p for p in probs)


def test_signal_on_integer():
    probs = problems_of("var x : integer; signal(x)")
    assert any("non-semaphore" in p for p in probs)


def test_semaphore_read_in_expression():
    probs = problems_of("var x : integer; s : semaphore; x := s")
    assert any("cannot be read" in p for p in probs)


def test_semaphore_in_condition():
    probs = problems_of("var x : integer; s : semaphore; if s > 0 then x := 1")
    assert any("cannot be read" in p for p in probs)


def test_negative_semaphore_initial():
    source = "var s : semaphore initially(-1); wait(s)"
    # The parser accepts it; the validator flags it.
    probs = problems_of(source)
    assert any("negative initial" in p for p in probs)


def test_check_program_raises():
    with pytest.raises(ValidationError):
        check_program(parse_program("var x : integer; y := 1"))


def test_check_program_counts_extra_problems():
    with pytest.raises(ValidationError) as exc:
        check_program(parse_program("var x : integer; begin y := 1; z := 2 end"))
    assert "more" in str(exc.value)


def test_figure3_is_valid():
    from repro.workloads.paper import figure3_program

    assert validate_program(figure3_program()) == []


def test_problem_str_has_location():
    probs = validate_program(parse_program("var x : integer;\ny := 1"))
    assert str(probs[0]).startswith("2:")
