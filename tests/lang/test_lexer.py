"""Lexer behaviour."""

import pytest

from repro.errors import LexError
from repro.lang.lexer import tokenize


def kinds(src):
    return [(t.kind, t.value) for t in tokenize(src) if t.kind != "eof"]


def test_keywords_vs_identifiers():
    toks = kinds("while whilex do done")
    assert toks[0] == ("keyword", "while")
    assert toks[1] == ("ident", "whilex")
    assert toks[2] == ("keyword", "do")
    assert toks[3] == ("ident", "done")


def test_integers():
    assert kinds("0 42 1234") == [("int", "0"), ("int", "42"), ("int", "1234")]


def test_symbols_longest_match():
    assert kinds(":= <= >= < > = #") == [
        ("symbol", ":="),
        ("symbol", "<="),
        ("symbol", ">="),
        ("symbol", "<"),
        ("symbol", ">"),
        ("symbol", "="),
        ("symbol", "#"),
    ]


def test_parallel_bars():
    assert kinds("a || b") == [("ident", "a"), ("symbol", "||"), ("ident", "b")]


def test_comments_skipped():
    assert kinds("x -- this is a comment\ny") == [("ident", "x"), ("ident", "y")]


def test_comment_at_eof():
    assert kinds("x -- trailing") == [("ident", "x")]


def test_line_and_column_tracking():
    toks = tokenize("x :=\n  5")
    assert (toks[0].line, toks[0].column) == (1, 1)
    assert (toks[1].line, toks[1].column) == (1, 3)
    assert (toks[2].line, toks[2].column) == (2, 3)


def test_eof_token_present():
    toks = tokenize("")
    assert len(toks) == 1
    assert toks[0].kind == "eof"


def test_illegal_character():
    with pytest.raises(LexError) as exc:
        tokenize("x @ y")
    assert exc.value.line == 1


def test_identifier_cannot_start_with_digit():
    with pytest.raises(LexError):
        tokenize("1abc")


def test_underscored_identifiers():
    assert kinds("_x x_1") == [("ident", "_x"), ("ident", "x_1")]


def test_minus_is_not_comment():
    assert kinds("a - b") == [("ident", "a"), ("symbol", "-"), ("ident", "b")]


def test_double_minus_inside_expression_is_comment():
    # '--' always starts a comment; a - -b must be written with a space.
    assert kinds("a - -b") == [
        ("ident", "a"),
        ("symbol", "-"),
        ("symbol", "-"),
        ("ident", "b"),
    ]


def test_token_describe():
    toks = tokenize("x")
    assert "ident" in toks[0].describe()
    assert toks[-1].describe() == "end of input"
