"""Source positions must survive synthesis (builder, clone, expansion).

Regression suite for the ``Loc.none()`` leak: builder- and
clone-produced nodes used to drop positions entirely, so every
diagnostic on generated or procedure-expanded code pointed at ``0:0``.
"""

from repro.lang import builder as b
from repro.lang.ast import Loc, iter_nodes, propagate_locs
from repro.lang.clone import clone_expr, clone_stmt
from repro.lang.parser import parse_program
from repro.lang.procs import resolve_subject


class TestBuilderLocs:
    def test_explicit_loc_kwarg(self):
        node = b.assign("x", 1, loc=(3, 5))
        assert node.loc.line == 3 and node.loc.column == 5

    def test_loc_object_accepted(self):
        node = b.wait("s", loc=Loc(7, 2))
        assert node.loc.line == 7

    def test_container_adopts_first_located_child(self):
        block = b.begin(b.assign("x", 1, loc=(3, 5)), b.wait("s"))
        assert block.loc.line == 3 and block.loc.column == 5

    def test_expression_adopts_operand_loc(self):
        cond = b.eq(b.var("x", loc=(2, 1)), 0)
        assert cond.loc.line == 2

    def test_unlocated_tree_stays_synthetic(self):
        block = b.begin(b.assign("x", 1))
        assert not block.loc


class TestCloneDefaultLoc:
    def test_clone_preserves_real_locs(self):
        program = parse_program("var x : integer; begin x := 1 end")
        original = program.body.body[0]
        copy = clone_stmt(original, default_loc=Loc(99, 9))
        assert copy.loc.line == original.loc.line
        assert copy.uid != original.uid

    def test_clone_fills_missing_locs_from_default(self):
        stmt = b.begin(b.assign("x", b.add("y", 1)), b.signal("s"))
        copy = clone_stmt(stmt, default_loc=Loc(7, 3))
        for node in iter_nodes(copy):
            assert node.loc.line == 7 and node.loc.column == 3

    def test_clone_expr_default(self):
        copy = clone_expr(b.add("x", 1), default_loc=Loc(4, 2))
        assert copy.loc.line == 4

    def test_clone_without_default_keeps_none(self):
        copy = clone_stmt(b.skip())
        assert not copy.loc


class TestPropagateLocs:
    def test_upward_then_downward_fill(self):
        tree = b.begin(b.assign("x", 1, loc=(3, 5)), b.wait("s"))
        propagate_locs(tree)
        for node in iter_nodes(tree):
            assert node.loc, f"{node!r} still unlocated"
        # the unlocated sibling inherits from the located region
        assert tree.body[1].loc.line == 3

    def test_no_locations_is_a_no_op(self):
        tree = b.begin(b.assign("x", 1))
        propagate_locs(tree)
        assert not tree.loc and not tree.body[0].loc

    def test_returns_root(self):
        tree = b.skip(loc=(1, 1))
        assert propagate_locs(tree) is tree


class TestExpansionLocs:
    SOURCE = (
        "proc double(in a; out r)\n"
        "  r := a + a;\n"
        "var x, y : integer;\n"
        "call double(x; y)\n"
    )

    def test_expanded_call_points_at_call_site(self):
        program = parse_program(self.SOURCE)
        expanded, _ = resolve_subject(program)
        call_line = 4  # the `call double(x; y)` line above
        expansion = expanded.body
        assert expansion.loc.line == call_line
        for node in iter_nodes(expansion):
            assert node.loc, f"{node!r} lost its position in expansion"

    def test_lint_spans_on_expanded_program_are_real(self):
        from repro.staticlint import run_lint

        program = parse_program(
            "proc double(in a; out r)\n"
            "  r := a + a;\n"
            "var x, y, unused : integer;\n"
            "call double(x; y)\n"
        )
        result = run_lint(program)
        assert result.diagnostics  # at least the unused variable
        for diagnostic in result.diagnostics:
            assert diagnostic.span.line > 0
