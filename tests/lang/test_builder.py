"""The programmatic builder DSL."""

import pytest

from repro.lang import builder as b
from repro.lang.ast import Assign, BinOp, BoolLit, IntLit, Var
from repro.lang.parser import parse_statement
from repro.lang.pretty import pretty


def test_expression_coercions():
    e = b.add("x", 1)
    assert isinstance(e.left, Var)
    assert isinstance(e.right, IntLit)


def test_bool_coercion():
    assert isinstance(b._expr(True), BoolLit)


def test_lit_dispatch():
    assert isinstance(b.lit(True), BoolLit)
    assert isinstance(b.lit(3), IntLit)


def test_builder_matches_parser():
    built = b.begin(
        b.assign("x", b.add("y", 1)),
        b.if_(b.ne("x", 0), b.signal("s")),
        b.while_(b.lt("i", 3), b.assign("i", b.add("i", 1))),
    )
    parsed = parse_statement(
        """
        begin
          x := y + 1;
          if x # 0 then signal(s);
          while i < 3 do i := i + 1
        end
        """
    )
    assert pretty(built) == pretty(parsed)


def test_cobegin_builder():
    s = b.cobegin(b.wait("s"), b.signal("s"))
    assert pretty(s) == pretty(parse_statement("cobegin wait(s) || signal(s) coend"))


def test_all_operators():
    pairs = [
        (b.add, "+"), (b.sub, "-"), (b.mul, "*"), (b.div, "/"), (b.mod, "mod"),
        (b.eq, "="), (b.ne, "#"), (b.lt, "<"), (b.le, "<="), (b.gt, ">"),
        (b.ge, ">="), (b.and_, "and"), (b.or_, "or"),
    ]
    for fn, op in pairs:
        assert fn("a", "b").op == op
    assert b.not_("a").op == "not"
    assert b.neg("a").op == "-"


def test_program_builder():
    p = b.program([b.int_decl("x"), b.sem_decl("s", initially=1)], b.assign("x", 0))
    assert p.initial_values() == {"x": 0, "s": 1}


def test_rejects_non_expressions():
    with pytest.raises(TypeError):
        b.assign("x", object())
