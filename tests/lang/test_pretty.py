"""Pretty-printer output and parse/print round-trips."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.lang.parser import parse_expression, parse_program, parse_statement
from repro.lang.pretty import pretty, pretty_expr
from repro.workloads.generators import random_program
from repro.workloads.paper import FIGURE3_SOURCE, paper_programs


def roundtrips(source: str) -> None:
    first = pretty(parse_program(source))
    second = pretty(parse_program(first))
    assert first == second


def test_expression_minimal_parens():
    assert pretty_expr(parse_expression("a + b * c")) == "a + b * c"
    assert pretty_expr(parse_expression("(a + b) * c")) == "(a + b) * c"


def test_left_assoc_needs_parens_on_right():
    assert pretty_expr(parse_expression("a - (b - c)")) == "a - (b - c)"
    assert pretty_expr(parse_expression("a - b - c")) == "a - b - c"


def test_not_and_comparison():
    assert pretty_expr(parse_expression("not (a = 0)")) == "not a = 0"


def test_unary_minus():
    assert pretty_expr(parse_expression("-a + b")) == "-a + b"
    assert pretty_expr(parse_expression("-(a + b)")) == "-(a + b)"


def test_statement_rendering():
    s = parse_statement("begin x := 1; wait(s); signal(s); skip end")
    text = pretty(s)
    assert "begin" in text and "end" in text
    assert "wait(s);" in text


def test_if_without_else_rendering():
    text = pretty(parse_statement("if x = 0 then y := 1"))
    assert "else" not in text


def test_declaration_rendering():
    p = parse_program("var x : integer; s : semaphore initially(2); x := 1")
    text = pretty(p)
    assert "var x : integer;" in text
    assert "s : semaphore initially(2);" in text


def test_figure3_roundtrip():
    roundtrips(FIGURE3_SOURCE)


def test_all_paper_fragments_roundtrip():
    for name, stmt in paper_programs().items():
        first = pretty(stmt)
        second = pretty(parse_statement(first))
        assert first == second, name


@given(st.integers(min_value=0, max_value=200))
@settings(max_examples=60, deadline=None)
def test_random_programs_roundtrip(seed):
    prog = random_program(seed, size=25, p_cobegin=0.2, p_sem_op=0.15)
    first = pretty(prog)
    second = pretty(parse_program(first))
    assert first == second


@given(st.integers(min_value=0, max_value=100))
@settings(max_examples=30, deadline=None)
def test_runtime_safe_programs_roundtrip(seed):
    prog = random_program(seed, size=20, runtime_safe=True)
    assert pretty(parse_program(pretty(prog))) == pretty(prog)
