"""Structural parse/pretty round-trips over the real corpora.

The existing round-trip tests compare *text* (``pretty . parse`` is
idempotent); these compare *structure*: re-parsing the pretty-printed
form yields an AST that is node-for-node, slot-for-slot equal to the
original, identity fields (``uid``, ``loc``) aside.  Textual fixpoints
can hide structural drift (e.g. a printer that flattens nested blocks
the parser then rebuilds differently); structural equality cannot.
"""

from repro.lang.ast import Node
from repro.lang.parser import parse_program, parse_statement
from repro.lang.pretty import pretty
from repro.workloads.litmus import CASES
from repro.workloads.paper import figure3_program, paper_programs

#: Slots that identify a node instance, not its meaning.
_IDENTITY_SLOTS = {"uid", "loc"}


def _meaning_slots(node: Node):
    for cls in type(node).__mro__:
        for name in getattr(cls, "__slots__", ()):
            if name not in _IDENTITY_SLOTS:
                yield name


def assert_structurally_equal(a, b, path: str) -> None:
    if isinstance(a, Node) or isinstance(b, Node):
        assert type(a) is type(b), f"{path}: {type(a)} vs {type(b)}"
        for name in _meaning_slots(a):
            assert_structurally_equal(
                getattr(a, name), getattr(b, name), f"{path}.{name}"
            )
    elif isinstance(a, (list, tuple)):
        assert isinstance(b, (list, tuple)), path
        assert len(a) == len(b), f"{path}: {len(a)} vs {len(b)} elements"
        for i, (left, right) in enumerate(zip(a, b)):
            assert_structurally_equal(left, right, f"{path}[{i}]")
    elif isinstance(a, dict):
        assert isinstance(b, dict) and set(a) == set(b), path
        for key in a:
            assert_structurally_equal(a[key], b[key], f"{path}[{key!r}]")
    else:
        assert a == b, f"{path}: {a!r} != {b!r}"


def test_litmus_corpus_roundtrips_structurally():
    for case in CASES:
        stmt = case.statement()
        assert_structurally_equal(
            stmt, parse_statement(pretty(stmt)), case.name
        )


def test_paper_corpus_roundtrips_structurally():
    for name, stmt in paper_programs().items():
        assert_structurally_equal(
            stmt, parse_statement(pretty(stmt)), name
        )


def test_figure3_program_roundtrips_structurally():
    program = figure3_program()
    assert_structurally_equal(
        program, parse_program(pretty(program)), "figure3"
    )


def test_structural_equality_catches_a_real_difference():
    """The comparator itself must fail on semantically different trees
    (a vacuous checker would pass every round-trip)."""
    import pytest

    a = parse_statement("l := 1")
    b = parse_statement("l := 2")
    with pytest.raises(AssertionError):
        assert_structurally_equal(a, b, "differs")
