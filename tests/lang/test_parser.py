"""Parser structure and error reporting."""

import pytest

from repro.errors import ParseError
from repro.lang.ast import (
    Assign,
    Begin,
    BinOp,
    BoolLit,
    Cobegin,
    If,
    IntLit,
    Signal,
    Skip,
    UnOp,
    Var,
    Wait,
    While,
)
from repro.lang.parser import parse_expression, parse_program, parse_statement


def test_assignment():
    s = parse_statement("x := y + 1")
    assert isinstance(s, Assign)
    assert s.target == "x"
    assert isinstance(s.expr, BinOp)


def test_if_then_else():
    s = parse_statement("if x = 0 then y := 1 else y := 2")
    assert isinstance(s, If)
    assert isinstance(s.then_branch, Assign)
    assert isinstance(s.else_branch, Assign)


def test_if_without_else():
    s = parse_statement("if x = 0 then y := 1")
    assert s.else_branch is None


def test_dangling_else_binds_to_nearest_if():
    s = parse_statement("if a = 0 then if b = 0 then x := 1 else x := 2")
    assert s.else_branch is None
    assert isinstance(s.then_branch, If)
    assert s.then_branch.else_branch is not None


def test_while():
    s = parse_statement("while x > 0 do x := x - 1")
    assert isinstance(s, While)


def test_begin_composition():
    s = parse_statement("begin x := 1; y := 2; z := 3 end")
    assert isinstance(s, Begin)
    assert len(s.body) == 3


def test_begin_tolerates_trailing_semicolon():
    s = parse_statement("begin x := 1; end")
    assert len(s.body) == 1


def test_cobegin():
    s = parse_statement("cobegin x := 1 || y := 2 || z := 3 coend")
    assert isinstance(s, Cobegin)
    assert len(s.branches) == 3


def test_wait_signal_skip():
    assert isinstance(parse_statement("wait(s)"), Wait)
    assert isinstance(parse_statement("signal(s)"), Signal)
    assert isinstance(parse_statement("skip"), Skip)


def test_operator_precedence():
    e = parse_expression("a + b * c")
    assert e.op == "+"
    assert e.right.op == "*"


def test_left_associativity():
    e = parse_expression("a - b - c")
    assert e.op == "-"
    assert e.left.op == "-"


def test_relational_below_boolean():
    e = parse_expression("a = 0 and b = 1")
    assert e.op == "and"
    assert e.left.op == "="


def test_or_below_and():
    e = parse_expression("a = 0 or b = 1 and c = 2")
    assert e.op == "or"
    assert e.right.op == "and"


def test_not_and_unary_minus():
    e = parse_expression("not -a = 0")
    assert isinstance(e, UnOp) and e.op == "not"
    assert e.operand.op == "="
    assert isinstance(e.operand.left, UnOp)


def test_parentheses():
    e = parse_expression("(a + b) * c")
    assert e.op == "*"
    assert e.left.op == "+"


def test_hash_is_inequality():
    e = parse_expression("x # 0")
    assert e.op == "#"


def test_literals():
    assert isinstance(parse_expression("42"), IntLit)
    assert isinstance(parse_expression("true"), BoolLit)
    assert parse_expression("false").value is False


def test_mod_keyword_operator():
    e = parse_expression("a mod 2")
    assert e.op == "mod"


def test_program_with_declarations():
    p = parse_program(
        """
        var x, y : integer;
            s : semaphore initially(3);
        x := 1
        """
    )
    assert p.declared("integer") == ["x", "y"]
    assert p.declared("semaphore") == ["s"]
    assert p.initial_values()["s"] == 3


def test_program_without_declarations():
    p = parse_program("x := 1")
    assert p.decls == []


def test_integer_with_initial_value():
    p = parse_program("var x : integer initially(7); x := x + 1")
    assert p.initial_values()["x"] == 7


def test_negative_initial_value():
    p = parse_program("var x : integer initially(-2); x := 0")
    assert p.initial_values()["x"] == -2


def test_locations_recorded():
    p = parse_program("var x : integer;\nx := 1")
    assert p.body.loc.line == 2


def test_error_missing_then():
    with pytest.raises(ParseError) as exc:
        parse_statement("if x = 0 y := 1")
    assert "then" in str(exc.value)


def test_error_trailing_tokens():
    with pytest.raises(ParseError):
        parse_statement("x := 1 y := 2")


def test_error_unclosed_begin():
    with pytest.raises(ParseError):
        parse_statement("begin x := 1")


def test_error_empty_input():
    with pytest.raises(ParseError):
        parse_statement("")


def test_error_reports_location():
    with pytest.raises(ParseError) as exc:
        parse_statement("begin x := 1;\n   := 2 end")
    assert exc.value.line == 2


def test_error_missing_coend():
    with pytest.raises(ParseError):
        parse_statement("cobegin x := 1 || y := 2")


def test_error_assignment_to_keyword():
    with pytest.raises(ParseError):
        parse_statement("while := 1")
