"""CLI subcommands added beyond the core mechanisms."""

import pytest

from repro.cli import main
from repro.workloads.paper import FIGURE3_SOURCE


@pytest.fixture
def fig3_file(tmp_path):
    path = tmp_path / "fig3.rl"
    path.write_text(FIGURE3_SOURCE)
    return str(path)


@pytest.fixture
def s52_file(tmp_path):
    path = tmp_path / "s52.rl"
    path.write_text("var x, y : integer; begin x := 0; y := x end")
    return str(path)


def test_fs_certify_beats_cfm(s52_file, capsys):
    code = main(["fs-certify", s52_file, "--bind", "x=high", "--bind", "y=low"])
    assert code == 0
    assert "CERTIFIED" in capsys.readouterr().out
    code = main(["certify", s52_file, "--bind", "x=high", "--bind", "y=low", "--quiet"])
    assert code == 1


def test_fs_certify_rejects_figure3(fig3_file, capsys):
    code = main(["fs-certify", fig3_file, "--bind", "x=high", "--default", "low"])
    assert code == 1
    assert "REJECTED" in capsys.readouterr().out


def test_flow_command(fig3_file, capsys):
    code = main(["flow", fig3_file])
    assert code == 0
    out = capsys.readouterr().out
    assert "m -> y" in out
    assert "flow edges" in out


def test_ni_command_detects_channel(fig3_file, capsys):
    code = main(
        ["ni", fig3_file, "--bind", "x=high", "--default", "low",
         "--observer", "low", "--vary", "x=0,1"]
    )
    assert code == 1
    out = capsys.readouterr().out
    assert "holds: False" in out
    assert "witness" in out


def test_ni_command_passes_for_safe_program(tmp_path, capsys):
    path = tmp_path / "safe.rl"
    path.write_text("var h, l : integer; begin l := 1; h := h + 1 end")
    code = main(
        ["ni", str(path), "--bind", "h=high", "--bind", "l=low",
         "--observer", "low", "--vary", "h=0,5"]
    )
    assert code == 0


def test_leak_command_finds_witness(fig3_file, capsys):
    code = main(
        ["leak", fig3_file, "--bind", "x=high", "--default", "low",
         "--observer", "low", "--values", "0,1"]
    )
    assert code == 1
    assert "distinguishes" in capsys.readouterr().out


def test_leak_command_none_for_section52(s52_file, capsys):
    code = main(
        ["leak", s52_file, "--bind", "x=high", "--bind", "y=low",
         "--observer", "low", "--values", "0,1"]
    )
    assert code == 0
    assert "no leak witness" in capsys.readouterr().out


def test_bad_observer_class(fig3_file):
    with pytest.raises(SystemExit):
        main(["leak", fig3_file, "--default", "low", "--observer", "medium"])


def test_bindings_file(tmp_path, capsys):
    import json

    prog = tmp_path / "p.rl"
    prog.write_text("var x, y : integer; y := x")
    binds = tmp_path / "b.json"
    binds.write_text(json.dumps({"x": "low", "y": "low"}))
    assert main(["certify", str(prog), "--bindings", str(binds), "--quiet"]) == 0
    # --bind overrides the file.
    assert main(
        ["certify", str(prog), "--bindings", str(binds), "--bind", "x=high", "--quiet"]
    ) == 1


def test_bindings_file_must_be_object(tmp_path):
    prog = tmp_path / "p.rl"
    prog.write_text("var x : integer; x := 1")
    binds = tmp_path / "b.json"
    binds.write_text("[1, 2]")
    with pytest.raises(SystemExit):
        main(["certify", str(prog), "--bindings", str(binds)])


def test_infer_with_bindings_file(tmp_path, capsys):
    import json

    prog = tmp_path / "p.rl"
    prog.write_text("var x, y : integer; y := x")
    binds = tmp_path / "b.json"
    binds.write_text(json.dumps({"x": "high"}))
    assert main(["infer", str(prog), "--bindings", str(binds)]) == 0
    assert "y='high'" in capsys.readouterr().out


def test_run_timeline(tmp_path, capsys):
    prog = tmp_path / "p.rl"
    prog.write_text("var x, y : integer; cobegin x := 1 || y := 2 coend")
    assert main(["run", str(prog), "--timeline"]) == 0
    out = capsys.readouterr().out
    assert "step" in out and "x := 1" in out
