"""Mutation testing of the certifiers: injected leaks never go unnoticed.

Take a random certified (program, binding) pair with at least one high
and one low variable and inject a leak — a direct assignment, a tainted
guard, a high-guarded loop before a low write, or a high-conditioned
signal protocol — and assert the mutant is rejected.

Two injection disciplines:

* **anywhere** — CFM must reject (Definition 3 binds classes to names,
  so position is irrelevant to it);
* **prepended** (before anything could have sanitized the source) —
  the flow-sensitive mechanism must reject too.  (At a random position
  it may legitimately accept: if the program overwrote the high
  variable with low data first, the "leak" is no leak — exactly the
  precision it exists to provide.)
"""

import random

import hypothesis.strategies as st
from hypothesis import assume, given, settings

from repro.core.cfm import certify
from repro.core.flowsensitive import certify_flow_sensitive
from repro.lang import builder as b
from repro.lang.ast import Begin, iter_statements, used_variables
from repro.lattice.chain import two_level
from repro.workloads.generators import random_certified_case

SCHEME = two_level()


def split_classes(binding, names):
    highs = sorted(n for n in names if binding.of_var(n) == "high")
    lows = sorted(n for n in names if binding.of_var(n) == "low")
    return highs, lows


def inject_anywhere(program, rng, leak):
    begins = [s for s in iter_statements(program.body) if isinstance(s, Begin)]
    if begins and rng.random() < 0.8:
        target = rng.choice(begins)
        target.body.insert(rng.randrange(len(target.body) + 1), leak)
    else:
        program.body = b.begin(leak, program.body)
    return program


def prepend(program, leak):
    program.body = b.begin(leak, program.body)
    return program


def make_leaks(rng, high, low):
    """The four §2.2 leak shapes from ``high`` into ``low``."""
    return {
        "direct": lambda: b.assign(low, b.var(high)),
        "implicit": lambda: b.if_(b.eq(high, 0), b.assign(low, 1)),
        "termination": lambda: b.begin(
            b.while_(b.ne(high, 0), b.skip()), b.assign(low, 1)
        ),
    }


@given(
    st.integers(min_value=0, max_value=400),
    st.sampled_from(["direct", "implicit", "termination"]),
)
@settings(max_examples=80, deadline=None)
def test_cfm_rejects_leak_injected_anywhere(seed, kind):
    prog, binding = random_certified_case(seed, SCHEME, size=25, n_pins=3)
    names = used_variables(prog.body)
    highs, lows = split_classes(binding, names)
    assume(highs and lows)
    rng = random.Random(seed)
    leak = make_leaks(rng, rng.choice(highs), rng.choice(lows))[kind]()
    mutant = inject_anywhere(prog, rng, leak)
    assert not certify(mutant, binding).certified


@given(
    st.integers(min_value=0, max_value=400),
    st.sampled_from(["direct", "implicit", "termination"]),
)
@settings(max_examples=80, deadline=None)
def test_flow_sensitive_rejects_leak_before_sanitization(seed, kind):
    prog, binding = random_certified_case(seed, SCHEME, size=25, n_pins=3)
    names = used_variables(prog.body)
    highs, lows = split_classes(binding, names)
    assume(highs and lows)
    rng = random.Random(seed ^ 0xF00)
    leak = make_leaks(rng, rng.choice(highs), rng.choice(lows))[kind]()
    mutant = prepend(prog, leak)
    assert not certify_flow_sensitive(mutant, binding).certified


@given(st.integers(min_value=0, max_value=300))
@settings(max_examples=40, deadline=None)
def test_synchronization_leak_mutation_is_caught(seed):
    prog, binding = random_certified_case(seed, SCHEME, size=20, n_pins=3)
    names = used_variables(prog.body)
    highs, lows = split_classes(binding, names)
    assume(highs and lows)
    rng = random.Random(seed ^ 0x123)
    low = rng.choice(lows)
    high = rng.choice(highs)
    leak = b.cobegin(
        b.if_(b.eq(high, 0), b.signal("leak_sem")),
        b.begin(b.wait("leak_sem"), b.assign(low, 1)),
    )
    mutant = prepend(prog, leak)
    # leak_sem is fresh; whatever class it gets, one side of the chain
    # sbind(high) <= sbind(leak_sem) <= sbind(low) must fail.
    for sem_class in ("low", "high"):
        mutant_binding = binding.with_bindings({"leak_sem": sem_class})
        assert not certify(mutant, mutant_binding).certified, sem_class
        assert not certify_flow_sensitive(mutant, mutant_binding).certified, sem_class
