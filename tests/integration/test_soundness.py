"""End-to-end soundness: static certification vs dynamic behaviour.

For CFM-certified programs we check, empirically and exhaustively:

* the dynamic label of every variable never exceeds its static binding
  (the taint monitor mirrors the flow logic, and the completely
  invariant proof promises exactly this);
* possibilistic noninterference (status-blind) holds: an observer
  below a high variable's class cannot distinguish its values by the
  set of reachable observable stores.

The status-blind caveat is the paper's own (section 1): pure
termination/timing observations are covert channels outside the model.
The suite also pins down a concrete example of that exclusion.
"""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.core.binding import StaticBinding
from repro.core.cfm import certify
from repro.lang.ast import used_variables
from repro.lang.parser import parse_statement
from repro.lattice.chain import two_level
from repro.runtime.executor import run
from repro.runtime.explorer import explore
from repro.runtime.taint import TaintMonitor
from repro.workloads.generators import random_certified_case


@given(st.integers(min_value=0, max_value=400))
@settings(max_examples=50, deadline=None)
def test_certified_programs_respect_labels_dynamically(seed):
    scheme = two_level()
    prog, binding = random_certified_case(
        seed, scheme, size=22, runtime_safe=True, n_pins=3
    )
    names = used_variables(prog.body)
    monitor = TaintMonitor.from_binding(binding, names)
    result = run(prog, monitor=monitor, max_steps=200_000)
    assert result.completed
    assert monitor.respects(binding), monitor.violations(binding)


@given(st.integers(min_value=0, max_value=200))
@settings(max_examples=25, deadline=None)
def test_certified_programs_respect_labels_under_every_schedule(seed):
    scheme = two_level()
    prog, binding = random_certified_case(
        seed, scheme, size=14, runtime_safe=True, n_pins=2, p_cobegin=0.3
    )
    names = used_variables(prog.body)
    monitor = TaintMonitor.from_binding(binding, names)
    result = explore(prog, monitor=monitor, max_states=40_000, max_depth=500)
    if not result.complete:  # a rare state blow-up: skip silently
        return
    assert result.deadlock_free


@given(st.integers(min_value=0, max_value=300))
@settings(max_examples=20, deadline=None)
def test_certified_programs_are_possibilistically_noninterfering(seed):
    scheme = two_level()
    prog, binding = random_certified_case(
        seed, scheme, size=14, runtime_safe=True, n_pins=3, p_cobegin=0.25
    )
    high_vars = sorted(
        n for n in used_variables(prog.body) if binding.of_var(n) == "high"
    )
    # Only vary integers (semaphore initials are part of the protocol).
    from repro.lang.ast import Wait, Signal, iter_statements

    sems = {
        s.sem for s in iter_statements(prog.body) if isinstance(s, (Wait, Signal))
    }
    high_ints = [v for v in high_vars if v not in sems]
    if not high_ints:
        return
    target = high_ints[0]
    outcome_sets = []
    for value in (0, 1, 3):
        res = explore(prog, store={target: value}, max_states=40_000, max_depth=600)
        if not res.complete:
            return
        low_vars = frozenset(
            n for n in used_variables(prog.body) if binding.of_var(n) == "low"
        )
        outcome_sets.append(frozenset(o.project(low_vars).store for o in res.outcomes))
    assert outcome_sets[0] == outcome_sets[1] == outcome_sets[2]


def test_known_termination_covert_channel_is_out_of_model(scheme):
    """A certified program whose *deadlock status* depends on high data.

    The paper (section 1) explicitly scopes such channels out: only
    flows expressible in the language are considered, and pure
    termination observations are covert.  CFM certifies this program
    (correctly, within the model) although a status-observing scheduler
    could learn h; the low-projected *stores* still match.
    """
    s = parse_statement("cobegin if h # 0 then signal(s) || wait(s) coend")
    b = StaticBinding(scheme, {"h": "high", "s": "high"})
    assert certify(s, b).certified
    res0 = explore(parse_statement(
        "cobegin if h # 0 then signal(s) || wait(s) coend"
    ), store={"h": 0})
    res1 = explore(parse_statement(
        "cobegin if h # 0 then signal(s) || wait(s) coend"
    ), store={"h": 1})
    assert not res0.deadlock_free  # h = 0: the wait starves
    assert res1.deadlock_free  # h = 1: the signal arrives
    # No low variable differs -- the leak is only in the status.
    low = frozenset()
    assert {o.project(low).store for o in res0.outcomes} == {
        o.project(low).store for o in res1.outcomes
    }


def test_rejected_program_with_real_leak_fails_ni(scheme, fig3, fig3_binding_leaky):
    from repro.runtime.noninterference import check_noninterference

    result = check_noninterference(
        fig3, fig3_binding_leaky, "low", [{"x": 0}, {"x": 2}]
    )
    assert not result.holds


def test_dynamic_labels_bounded_by_proof_promise(scheme):
    """The completely invariant proof promises class(v) <= sbind(v) at
    every program point; spot-check the monitor agrees mid-execution."""
    from repro.lang.parser import parse_statement
    from repro.runtime.machine import Machine

    stmt = parse_statement("begin wait(s); x := 1; y := x end")
    binding = StaticBinding(scheme, {"s": "high", "x": "high", "y": "high"})
    assert certify(stmt, binding).certified
    monitor = TaintMonitor.from_binding(binding, ["s", "x", "y"])
    machine = Machine(stmt, store={"s": 1}, monitor=monitor)
    while not machine.done:
        machine.step(machine.enabled()[0])
        assert monitor.respects(binding)


@given(st.integers(min_value=0, max_value=200))
@settings(max_examples=20, deadline=None)
def test_flow_sensitive_certified_programs_are_noninterfering(seed):
    """The extension mechanism gets the same semantic scrutiny as CFM:
    a flow-sensitively certified program must be possibilistically
    noninterfering (status-blind) across exhaustive interleavings."""
    from repro.core.flowsensitive import certify_flow_sensitive
    from repro.lang.ast import Signal, Wait, iter_statements

    scheme = two_level()
    prog, binding = random_certified_case(
        seed, scheme, size=14, runtime_safe=True, n_pins=3, p_cobegin=0.25
    )
    report = certify_flow_sensitive(prog, binding)
    assert report.certified  # dominates CFM
    names = used_variables(prog.body)
    sems = {
        s.sem for s in iter_statements(prog.body) if isinstance(s, (Wait, Signal))
    }
    high = [n for n in names if binding.of_var(n) == "high" and n not in sems]
    if not high:
        return
    low = frozenset(n for n in names if binding.of_var(n) == "low")
    sets = []
    for value in (0, 2):
        res = explore(prog, store={high[0]: value}, max_states=30_000, max_depth=500)
        if not res.complete:
            return
        sets.append(frozenset(o.project(low).store for o in res.outcomes))
    assert sets[0] == sets[1]


def test_sanitization_is_semantically_safe(scheme):
    """The flow-sensitive mechanism's signature acceptance (overwrite
    then copy) is semantically justified: no observer distinguishes the
    sanitized secret's original values."""
    from repro.core.flowsensitive import certify_flow_sensitive
    from repro.runtime.noninterference import check_noninterference

    source = "begin x := 0; y := x; z := y + 1 end"
    binding = StaticBinding(scheme, {"x": "high", "y": "low", "z": "low"})
    stmt = parse_statement(source)
    assert certify_flow_sensitive(stmt, binding).certified
    result = check_noninterference(
        parse_statement(source), binding, "low", [{"x": 0}, {"x": 7}]
    )
    assert result.holds


@given(st.integers(min_value=0, max_value=150))
@settings(max_examples=20, deadline=None)
def test_dynamic_soundness_on_richer_schemes(seed):
    """The static/dynamic agreement is scheme-independent: repeat the
    label-domination check over the four-level chain and the diamond."""
    from repro.lattice.chain import four_level
    from repro.lattice.finite import diamond

    for scheme in (four_level(), diamond()):
        prog, binding = random_certified_case(
            seed, scheme, size=18, runtime_safe=True, n_pins=3
        )
        names = used_variables(prog.body)
        monitor = TaintMonitor.from_binding(binding, names)
        result = run(prog, monitor=monitor, max_steps=200_000)
        assert result.completed
        assert monitor.respects(binding), (scheme.name, monitor.violations(binding))
