"""Figure 3, end to end: every claim the paper makes about it, in one place.

The paper's section 4.3 narrative, as executable assertions:

1. the program transmits x to y through synchronization alone;
2. the Dennings' mechanism cannot be applied (or, naively applied,
   certifies the leaky binding);
3. CFM derives sbind(x) <= sbind(modify) <= sbind(m) <= sbind(y) and
   rejects x=high/y=low;
4. the program cannot deadlock and restores its semaphores;
5. looping the processes transmits arbitrarily much information;
6. Theorem 1 turns the certified variant into a checked, completely
   invariant flow proof.
"""

from repro.analysis.flowgraph import flow_graph
from repro.analysis.leaks import find_leak
from repro.core.cfm import certify
from repro.core.denning import certify_denning
from repro.core.inference import infer_binding
from repro.logic.checker import check_proof
from repro.logic.extract import certification_from_proof
from repro.logic.generator import generate_proof
from repro.runtime.executor import run
from repro.runtime.explorer import explore
from repro.workloads.paper import figure3_looped, figure3_program


def test_claim_1_the_channel_is_real(fig3, fig3_binding_leaky):
    witness = find_leak(fig3, fig3_binding_leaky, "low", values=(0, 1))
    assert witness is not None and witness.variable == "x"


def test_claim_2_baseline_is_blind(fig3, fig3_binding_leaky):
    strict = certify_denning(fig3, fig3_binding_leaky, on_concurrency="reject")
    assert not strict.certified and strict.unsupported  # not applicable
    naive = certify_denning(fig3, fig3_binding_leaky, on_concurrency="ignore")
    assert naive.certified  # and blind to the channel when forced


def test_claim_3_cfm_derives_the_chain(fig3, fig3_binding_leaky, scheme):
    assert not certify(fig3, fig3_binding_leaky).certified
    g = flow_graph(fig3, scheme)
    assert g.can_flow("x", "modify")
    assert g.can_flow("modify", "m")
    assert g.can_flow("m", "y")
    inferred = infer_binding(fig3, scheme, {"x": "high"})
    assert inferred.inferred["y"] == "high"


def test_claim_4_deadlock_free_and_semaphores_restored(fig3):
    for xv in (0, 1):
        res = explore(figure3_program(), store={"x": xv})
        assert res.complete and res.deadlock_free
        for outcome in res.completed_outcomes:
            assert all(outcome.value(s) == 0 for s in ("modify", "modified", "read", "done"))


def test_claim_5_arbitrary_information(fig3):
    pipe = figure3_looped(bits=5)
    for secret in (0, 9, 31):
        result = run(pipe, store={"x": secret}, max_steps=50_000)
        assert result.completed
        assert result.store["y"] == secret % 32
        pipe = figure3_looped(bits=5)


def test_claim_5_looped_channel_also_rejected(scheme):
    pipe = figure3_looped(bits=3)
    result = infer_binding(pipe, scheme, {"x": "high", "y": "low"})
    assert not result.satisfiable


def test_claim_6_theorem1_proof_for_certified_variant(fig3, fig3_binding_safe):
    report = certify(fig3, fig3_binding_safe)
    assert report.certified
    proof = generate_proof(fig3, fig3_binding_safe, report=report)
    assert check_proof(proof, fig3_binding_safe.scheme).ok
    assert certification_from_proof(proof, fig3_binding_safe).certified
