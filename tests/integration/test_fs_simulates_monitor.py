"""The flow-sensitive analysis over-approximates the dynamic monitor.

This is the soundness lemma behind the extension mechanism: for every
schedule, whenever an atomic action of statement ``S`` executes, the
dynamic class the monitor assigns to the written variable is below the
class the static analysis computed at ``S``'s program point — and at
completion the whole dynamic information state is below the analysis'
final state.  (The converse is false by design: the analysis joins
over branches, loop iterations, and interleavings that a single run
never takes.)
"""

import random

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.core.flowsensitive import analyze
from repro.lang.ast import Assign, Signal, Wait, used_variables
from repro.lattice.chain import two_level
from repro.runtime.machine import Machine
from repro.runtime.taint import TaintMonitor
from repro.workloads.generators import random_certified_case

SCHEME = two_level()


@given(
    st.integers(min_value=0, max_value=300),
    st.integers(min_value=0, max_value=7),
)
@settings(max_examples=50, deadline=None)
def test_written_classes_dominated_at_each_step(seed, sched_seed):
    prog, binding = random_certified_case(
        seed, SCHEME, size=18, runtime_safe=True, n_pins=3, p_cobegin=0.25
    )
    report = analyze(prog, binding)
    names = used_variables(prog.body)
    monitor = TaintMonitor.from_binding(binding, names)
    machine = Machine(prog, monitor=monitor)
    rng = random.Random(sched_seed)
    steps = 0
    while not machine.done and steps < 20_000:
        enabled = machine.enabled()
        if not enabled:
            break
        event = machine.step(rng.choice(enabled))
        steps += 1
        stmt = event.stmt
        if isinstance(stmt, Assign):
            written = stmt.target
        elif isinstance(stmt, (Wait, Signal)):
            written = stmt.sem
        else:
            continue
        static_cls = report.post_states[stmt.uid].cls(written)
        dynamic_cls = monitor.state.cls(written)
        assert SCHEME.leq(dynamic_cls, static_cls), (
            event,
            written,
            dynamic_cls,
            static_cls,
        )
    assert machine.done


@given(
    st.integers(min_value=0, max_value=300),
    st.integers(min_value=0, max_value=3),
)
@settings(max_examples=40, deadline=None)
def test_final_state_dominated(seed, sched_seed):
    prog, binding = random_certified_case(
        seed, SCHEME, size=18, runtime_safe=True, n_pins=3, p_cobegin=0.25
    )
    report = analyze(prog, binding)
    names = used_variables(prog.body)
    monitor = TaintMonitor.from_binding(binding, names)
    machine = Machine(prog, monitor=monitor)
    rng = random.Random(sched_seed)
    while not machine.done:
        machine.step(rng.choice(machine.enabled()))
    for name in names:
        assert SCHEME.leq(
            monitor.state.cls(name), report.final_state.cls(name)
        ), name


def test_strictness_example():
    """One run's labels can be strictly below the analysis (the whole
    point of joining over paths the run did not take)."""
    from repro.core.binding import StaticBinding
    from repro.lang.parser import parse_statement
    from repro.runtime.executor import run

    stmt = parse_statement("if c = 0 then x := h else x := 1")
    binding = StaticBinding(SCHEME, {"c": "low", "x": "high", "h": "high"})
    report = analyze(stmt, binding)
    monitor = TaintMonitor.from_binding(binding, ["c", "x", "h"])
    run(stmt, store={"c": 1}, monitor=monitor)  # takes the low branch
    assert monitor.state.cls("x") == "low"
    assert report.final_state.cls("x") == "high"  # join over both branches
