"""Adversarial structural cases: loops around cobegin, repeated spawning,
deep nesting — places where bookkeeping bugs like to hide."""

import pytest

from repro.core.binding import StaticBinding
from repro.core.cfm import certify
from repro.core.flowsensitive import certify_flow_sensitive
from repro.lang.parser import parse_statement
from repro.lattice.chain import two_level
from repro.logic.checker import check_proof
from repro.logic.generator import generate_proof
from repro.runtime.executor import run
from repro.runtime.explorer import explore

SCHEME = two_level()


def test_cobegin_inside_loop_runtime():
    """Pids are reused across iterations; joins must stay consistent."""
    s = parse_statement(
        """
        begin
          i := 0;
          while i < 3 do
          begin
            cobegin a := a + 1 || b := b + 1 coend;
            i := i + 1
          end
        end
        """
    )
    result = run(s)
    assert result.completed
    assert result.store["a"] == 3 and result.store["b"] == 3


def test_cobegin_inside_loop_explored():
    s = parse_statement(
        """
        begin
          i := 0;
          while i < 2 do
          begin
            cobegin x := x + 1 || x := x * 2 coend;
            i := i + 1
          end
        end
        """
    )
    res = explore(s, store={"x": 1})
    assert res.complete and res.deadlock_free
    # Iteration 1 from x=1 yields {3, 4}; iteration 2 maps 3 to {7, 8}
    # and 4 to {9, 10}.
    assert res.final_values("x") == {7, 8, 9, 10}


def test_cobegin_inside_loop_certification():
    s = parse_statement(
        "while h > 0 do begin cobegin l := 1 || h := h - 1 coend end"
    )
    # The loop guard is high; it flows globally into everything the
    # loop body modifies, including l in a parallel branch.
    b = StaticBinding(SCHEME, {"h": "high", "l": "low"})
    assert not certify(s, b).certified
    s2 = parse_statement(
        "while h > 0 do begin cobegin l := 1 || h := h - 1 coend end"
    )
    b2 = StaticBinding(SCHEME, {"h": "high", "l": "high"})
    assert certify(s2, b2).certified


def test_proof_generation_for_loop_around_cobegin():
    s = parse_statement(
        "while c > 0 do cobegin begin signal(go); c := c - 1 end || wait(go) coend"
    )
    b = StaticBinding(SCHEME, {"c": "low", "go": "low"})
    proof = generate_proof(s, b)
    checked = check_proof(proof, SCHEME)
    assert checked.ok, checked.problems[:3]


def test_deeply_nested_statements_parse_and_certify():
    depth = 60
    src = ""
    for i in range(depth):
        src += f"if g{i} = 0 then "
    src += "x := 1"
    s = parse_statement(src)
    classes = {f"g{i}": "low" for i in range(depth)}
    classes["x"] = "low"
    assert certify(s, StaticBinding(SCHEME, classes)).certified
    s2 = parse_statement(src)
    classes["g30"] = "high"
    assert not certify(s2, StaticBinding(SCHEME, classes)).certified


def test_wide_cobegin():
    branches = " || ".join(f"v{i} := {i}" for i in range(12))
    s = parse_statement(f"cobegin {branches} coend")
    result = run(s)
    assert result.completed
    assert all(result.store[f"v{i}"] == i for i in range(12))


def test_three_level_process_tree():
    s = parse_statement(
        """
        cobegin
          cobegin
            cobegin a := 1 || b := 2 coend
          ||
            c := 3
          coend
        ||
          d := 4
        coend
        """
    )
    res = explore(s)
    assert res.complete
    (outcome,) = res.completed_outcomes
    assert dict(outcome.store) == {"a": 1, "b": 2, "c": 3, "d": 4}


def test_fs_analysis_of_loop_around_cobegin_terminates():
    s = parse_statement(
        "while c > 0 do cobegin x := x + h || c := c - 1 coend"
    )
    b = StaticBinding(SCHEME, {"c": "low", "x": "high", "h": "high"})
    report = certify_flow_sensitive(s, b)
    assert report.certified
    s2 = parse_statement(
        "while c > 0 do cobegin x := x + h || c := c - 1 coend"
    )
    b2 = StaticBinding(SCHEME, {"c": "high", "x": "high", "h": "high"})
    # High guard, and the loop modifies c (low before) -- recheck with
    # c low must reject since guard flows into body writes.
    b3 = StaticBinding(SCHEME, {"c": "high", "x": "low", "h": "low"})
    report3 = certify_flow_sensitive(s2, b3)
    assert not report3.certified


def test_semaphore_value_accumulation_across_iterations():
    # Signals accumulate; a later loop drains them.
    s = parse_statement(
        """
        begin
          i := 0;
          while i < 3 do begin signal(s); i := i + 1 end;
          j := 0;
          while j < 3 do begin wait(s); j := j + 1 end
        end
        """
    )
    result = run(s)
    assert result.completed
    assert result.store["s"] == 0
