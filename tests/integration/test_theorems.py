"""Theorems 1 and 2 as executable properties over random corpora.

Theorem 1: ``cert(S)`` with ``l (+) g <= mod(S)`` implies a completely
invariant flow proof of the stated form exists — our generator builds
it and the independent checker accepts it.

Theorem 2: a completely invariant proof implies ``cert(S)``.

Together: CFM certification <=> a completely invariant proof exists.
The test corpus mixes the paper's programs, random sequential programs,
and random concurrent programs over several schemes.
"""

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.core.binding import StaticBinding
from repro.core.cfm import certify
from repro.core.inference import infer_binding
from repro.errors import GenerationError
from repro.lang.ast import used_variables
from repro.lattice.chain import four_level, two_level
from repro.lattice.finite import diamond
from repro.logic.checker import check_proof
from repro.logic.extract import certification_from_proof, is_completely_invariant
from repro.logic.generator import generate_proof
from repro.workloads.generators import random_certified_case, random_program
from repro.workloads.paper import paper_programs

SCHEMES = {
    "two-level": two_level,
    "four-level": four_level,
    "diamond": diamond,
}


def random_binding(seed, scheme, names):
    import random as _random

    rng = _random.Random(seed)
    classes = sorted(scheme.elements, key=repr)
    return StaticBinding(scheme, {n: rng.choice(classes) for n in names})


@given(st.integers(min_value=0, max_value=300), st.sampled_from(sorted(SCHEMES)))
@settings(max_examples=60, deadline=None)
def test_theorem1_certified_implies_checked_proof(seed, scheme_name):
    scheme = SCHEMES[scheme_name]()
    prog, binding = random_certified_case(seed, scheme, size=30, n_pins=3)
    report = certify(prog, binding)
    assert report.certified
    proof = generate_proof(prog, binding, report=report)
    checked = check_proof(proof, scheme)
    assert checked.ok, checked.problems[:3]
    assert is_completely_invariant(proof, binding)


@given(st.integers(min_value=0, max_value=300), st.sampled_from(sorted(SCHEMES)))
@settings(max_examples=60, deadline=None)
def test_biconditional_on_random_bindings(seed, scheme_name):
    """cert(S) <=> the generator produces a checker-accepted completely
    invariant proof.  Random (often rejecting) bindings exercise both
    directions."""
    scheme = SCHEMES[scheme_name]()
    prog = random_program(seed, size=25, p_cobegin=0.2, p_sem_op=0.15)
    binding = random_binding(seed ^ 0xBEEF, scheme, used_variables(prog.body))
    report = certify(prog, binding)
    if report.certified:
        proof = generate_proof(prog, binding, report=report)
        assert check_proof(proof, scheme).ok
        assert is_completely_invariant(proof, binding)
        # Theorem 2 closes the loop.
        assert certification_from_proof(proof, binding).certified
    else:
        with pytest.raises(GenerationError):
            generate_proof(prog, binding, report=report)


def test_theorem1_for_every_l_g_below_mod(scheme):
    """The theorem quantifies over all l, g with l (+) g <= mod(S)."""
    from repro.lang.parser import parse_statement

    stmt = parse_statement("begin wait(s); x := 1; y := x end")
    binding = StaticBinding(scheme, {"s": "low", "x": "high", "y": "high"})
    report = certify(stmt, binding)
    mod = report.analysis.mod(stmt)
    for l in scheme.elements:
        for g in scheme.elements:
            if not scheme.leq(scheme.join(l, g), mod):
                continue
            stmt2 = parse_statement("begin wait(s); x := 1; y := x end")
            binding2 = StaticBinding(scheme, {"s": "low", "x": "high", "y": "high"})
            proof = generate_proof(stmt2, binding2, l=l, g=g)
            assert check_proof(proof, scheme).ok, (l, g)
            pre_vlg = proof.pre.vlg()
            assert pre_vlg.local.const == l
            assert pre_vlg.global_.const == g


def test_paper_corpus_biconditional(scheme):
    for name, stmt in paper_programs().items():
        result = infer_binding(stmt, scheme, {})
        proof = generate_proof(stmt, result.binding)
        assert check_proof(proof, scheme).ok, name
        assert certification_from_proof(proof, result.binding).certified, name


def test_theorem_post_bound_matches_statement(scheme):
    """Post global bound is at most g (+) l (+) flow(S), per Theorem 1."""
    for seed in range(20):
        prog, binding = random_certified_case(seed, scheme, size=25, n_pins=2)
        report = certify(prog, binding)
        proof = generate_proof(prog, binding, report=report)
        _, l_bound, g_bound = proof.post.vlg()
        ext = binding.extended
        flow = report.analysis.flow(prog.body)
        bound = ext.join(ext.join(scheme.bottom, scheme.bottom), flow)
        if flow is not ext.bottom:
            assert ext.leq(g_bound.const, ext.join(bound, scheme.bottom))
        else:
            assert g_bound.const == scheme.bottom
