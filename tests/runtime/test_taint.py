"""The dynamic label monitor mirrors the flow logic."""

import pytest

from repro.core.binding import StaticBinding
from repro.errors import RuntimeFault
from repro.lang.parser import parse_statement
from repro.lang.ast import used_variables
from repro.runtime.executor import run
from repro.runtime.taint import TaintMonitor


def monitored_run(source, binding, store=None, **kwargs):
    stmt = parse_statement(source)
    monitor = TaintMonitor.from_binding(binding, used_variables(stmt))
    result = run(stmt, store=store, monitor=monitor, **kwargs)
    return result, monitor


def test_direct_flow(scheme):
    b = StaticBinding(scheme, {"x": "low", "h": "high"})
    _, mon = monitored_run("x := h", b)
    assert mon.state.cls("x") == "high"
    assert mon.violations(b) == [("x", "high", "low")]


def test_constant_assignment_lowers_label(scheme):
    # x := 0 carries only low information: the label *drops*.
    b = StaticBinding(scheme, {"x": "high"})
    _, mon = monitored_run("x := 0", b)
    assert mon.state.cls("x") == "low"
    assert mon.respects(b)


def test_local_indirect_flow(scheme):
    b = StaticBinding(scheme, {"h": "high", "y": "low"})
    _, mon = monitored_run("if h = 0 then y := 1 else y := 2", b)
    assert mon.state.cls("y") == "high"


def test_local_context_pops(scheme):
    # After the if, assignments are no longer tainted by the guard.
    b = StaticBinding(scheme, {"h": "high", "y": "low", "z": "low"})
    _, mon = monitored_run(
        "begin if h = 0 then y := 1; z := 1 end", b
    )
    assert mon.state.cls("y") in ("high", "low")  # depends on branch taken
    assert mon.state.cls("z") == "low"  # outside the branch context


def test_untaken_branch_leaves_label(scheme):
    # Dynamic monitoring is flow-sensitive: with h # 0, y := 1 never
    # runs, so y's label stays put (the *static* mechanism still
    # rejects; this is the classic dynamic-monitor blind spot).
    b = StaticBinding(scheme, {"h": "high", "y": "low"})
    _, mon = monitored_run("if h = 0 then y := 1", b, store={"h": 5})
    assert mon.state.cls("y") == "low"


def test_loop_guard_raises_global(scheme):
    b = StaticBinding(scheme, {"h": "high", "z": "low"})
    _, mon = monitored_run(
        "begin while h > 0 do h := h - 1; z := 1 end", b, store={"h": 2}
    )
    # z is assigned after a loop whose termination depends on h.
    assert mon.state.cls("z") == "high"


def test_global_never_decreases(scheme):
    b = StaticBinding(scheme, {"h": "high", "a": "low", "b": "low"})
    _, mon = monitored_run(
        "begin while h > 0 do h := h - 1; a := 1; b := 2 end", b, store={"h": 1}
    )
    assert mon.state.cls("a") == "high"
    assert mon.state.cls("b") == "high"


def test_wait_receives_semaphore_label(scheme):
    b = StaticBinding(scheme, {"s": "high", "y": "low"})
    _, mon = monitored_run("begin wait(s); y := 1 end", b, store={"s": 1})
    assert mon.state.cls("y") == "high"


def test_signal_carries_context_into_semaphore(scheme):
    b = StaticBinding(scheme, {"h": "high", "s": "low", "y": "low"})
    stmt = "cobegin if h = 0 then signal(s) || begin wait(s); y := 1 end coend"
    _, mon = monitored_run(stmt, b, store={"h": 0})
    assert mon.state.cls("s") == "high"  # tainted by the guard
    assert mon.state.cls("y") == "high"  # received through the wait


def test_spawn_inherits_context(scheme):
    b = StaticBinding(scheme, {"h": "high", "y": "low", "s": "low"})
    stmt = "if h = 0 then cobegin y := 1 || signal(s) coend"
    _, mon = monitored_run(stmt, b, store={"h": 0})
    assert mon.state.cls("y") == "high"
    assert mon.state.cls("s") == "high"


def test_join_merges_child_globals(scheme):
    b = StaticBinding(scheme, {"h": "high", "z": "low", "c": "low"})
    stmt = """
    begin
      cobegin
        while h > 0 do h := h - 1
      ||
        c := 1
      coend;
      z := 1
    end
    """
    _, mon = monitored_run(stmt, b, store={"h": 1})
    # After the join, the parent inherits the loop's global flow.
    assert mon.state.cls("z") == "high"


def test_certified_program_respects_binding_dynamically(scheme, fig3, fig3_binding_safe):
    from repro.lang.ast import used_variables as uv

    monitor = TaintMonitor.from_binding(fig3_binding_safe, uv(fig3.body))
    result = run(fig3, store={"x": 0}, monitor=monitor)
    assert result.completed
    assert monitor.respects(fig3_binding_safe)


def test_figure3_channel_detected_dynamically(scheme, fig3, fig3_binding_leaky):
    from repro.lang.ast import used_variables as uv

    monitor = TaintMonitor.from_binding(fig3_binding_leaky, uv(fig3.body))
    result = run(fig3, store={"x": 0}, monitor=monitor)
    assert result.completed
    assert monitor.state.cls("y") == "high"
    assert not monitor.respects(fig3_binding_leaky)


def test_monitor_copy_independent(scheme):
    b = StaticBinding(scheme, {"x": "low", "h": "high"})
    mon = TaintMonitor.from_binding(b, ["x", "h"])
    clone = mon.copy()
    mon.state.set_cls("x", "high")
    assert clone.state.cls("x") == "low"


def test_monitor_snapshot_changes_with_labels(scheme):
    b = StaticBinding(scheme, {"x": "low", "h": "high"})
    mon = TaintMonitor.from_binding(b, ["x", "h"])
    before = mon.snapshot()
    mon.state.set_cls("x", "high")
    assert mon.snapshot() != before


def test_pop_underflow_raises(scheme):
    b = StaticBinding(scheme, {"x": "low"})
    mon = TaintMonitor.from_binding(b, ["x"])
    with pytest.raises(RuntimeFault):
        mon.on_pop_local(())


def test_unknown_process_raises(scheme):
    b = StaticBinding(scheme, {"x": "low"})
    mon = TaintMonitor.from_binding(b, ["x"])
    with pytest.raises(RuntimeFault):
        mon.local_label((9,))
