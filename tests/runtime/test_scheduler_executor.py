"""Schedulers and the top-level executor."""

import pytest

from repro.errors import DeadlockError, RuntimeFault
from repro.lang.parser import parse_statement
from repro.runtime.executor import run
from repro.runtime.machine import Machine
from repro.runtime.scheduler import (
    FixedScheduler,
    RandomScheduler,
    RoundRobinScheduler,
)


def test_round_robin_rotates():
    m = Machine(parse_statement("cobegin x := x + 1 || y := y + 1 coend"))
    sched = RoundRobinScheduler()
    first = sched.pick(m)
    m.step(first)
    second = sched.pick(m)
    assert first != second


def test_round_robin_wraps():
    m = Machine(parse_statement("cobegin begin x := 1; x := 2 end || y := 1 coend"))
    sched = RoundRobinScheduler()
    order = []
    while not m.done:
        pid = sched.pick(m)
        order.append(pid)
        m.step(pid)
    assert order == [(0,), (1,), (0,)]


def test_random_scheduler_deterministic_per_seed():
    def trace(seed):
        m = Machine(parse_statement(
            "cobegin begin x := 1; x := 2 end || begin y := 1; y := 2 end coend"
        ))
        sched = RandomScheduler(seed)
        picks = []
        while not m.done:
            pid = sched.pick(m)
            picks.append(pid)
            m.step(pid)
        return picks

    assert trace(7) == trace(7)
    traces = {tuple(trace(s)) for s in range(20)}
    assert len(traces) > 1  # different seeds explore different orders


def test_fixed_scheduler_replays():
    m = Machine(parse_statement("cobegin x := y || y := 1 coend"))
    sched = FixedScheduler([(1,), (0,)])
    m.step(sched.pick(m))
    m.step(sched.pick(m))
    assert m.store["x"] == 1  # y := 1 ran first by script


def test_fixed_scheduler_rejects_disabled_pid():
    m = Machine(parse_statement("cobegin x := 1 || y := 2 coend"))
    sched = FixedScheduler([(9,)])
    with pytest.raises(RuntimeFault):
        sched.pick(m)


def test_fixed_scheduler_fallback_and_error_modes():
    m = Machine(parse_statement("begin x := 1; y := 2 end"))
    assert FixedScheduler([]).pick(m) == ()
    with pytest.raises(RuntimeFault):
        FixedScheduler([], fallback="error").pick(m)
    with pytest.raises(RuntimeFault):
        FixedScheduler([], fallback="sometimes")


def test_schedulers_error_with_nothing_enabled():
    m = Machine(parse_statement("wait(s)"))
    for sched in (RoundRobinScheduler(), RandomScheduler(0), FixedScheduler([])):
        with pytest.raises(RuntimeFault):
            sched.pick(m)


# -- executor ----------------------------------------------------------


def test_run_completes():
    result = run(parse_statement("begin x := 1; y := x + 1 end"))
    assert result.completed
    assert result.store == {"x": 1, "y": 2}
    assert result.steps == 2


def test_run_reports_deadlock():
    result = run(parse_statement("wait(s)"))
    assert result.deadlocked
    assert result.status == "deadlock"


def test_run_raises_on_deadlock_when_asked():
    with pytest.raises(DeadlockError):
        run(parse_statement("wait(s)"), on_deadlock="raise")


def test_run_step_limit():
    result = run(parse_statement("while true do x := x + 1"), max_steps=50)
    assert result.status == "step-limit"
    assert result.steps == 50


def test_run_trace_collection():
    result = run(parse_statement("begin x := 1; skip end"), collect_trace=True)
    assert [e.kind for e in result.trace] == ["assign", "skip"]


def test_run_without_trace_by_default():
    assert run(parse_statement("x := 1")).trace is None


def test_run_with_store_and_seeded_scheduler():
    result = run(
        parse_statement("cobegin x := x + 1 || x := x * 2 coend"),
        scheduler=RandomScheduler(3),
        store={"x": 5},
    )
    assert result.completed
    assert result.store["x"] in (12, 11)  # (5+1)*2 or 5*2+1


def test_run_result_repr():
    assert "completed" in repr(run(parse_statement("x := 1")))
