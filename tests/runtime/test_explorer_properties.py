"""Explorer consistency properties.

The explorer claims to enumerate *all* interleavings; any concretely
sampled run must therefore land inside its outcome set, and its witness
schedules must replay.
"""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.lang.pretty import pretty
from repro.lang.parser import parse_program
from repro.runtime.executor import run
from repro.runtime.explorer import explore
from repro.runtime.scheduler import FixedScheduler, RandomScheduler
from repro.workloads.generators import random_program


def fresh(prog_source):
    return parse_program(prog_source)


@given(
    st.integers(min_value=0, max_value=150),
    st.integers(min_value=0, max_value=7),
)
@settings(max_examples=40, deadline=None)
def test_sampled_runs_are_covered(seed, sched_seed):
    prog = random_program(seed, size=14, runtime_safe=True, p_cobegin=0.3)
    source = pretty(prog)
    exploration = explore(prog, max_states=30_000, max_depth=400)
    if not exploration.complete:
        return
    sample = run(
        fresh(source), scheduler=RandomScheduler(sched_seed), max_steps=50_000
    )
    assert sample.completed
    final_stores = {o.store for o in exploration.completed_outcomes}
    assert tuple(sorted(sample.store.items())) in final_stores


@given(st.integers(min_value=0, max_value=100))
@settings(max_examples=25, deadline=None)
def test_witness_schedules_replay(seed):
    prog = random_program(seed, size=12, runtime_safe=True, p_cobegin=0.35)
    source = pretty(prog)
    exploration = explore(prog, max_states=30_000, max_depth=400)
    if not exploration.complete:
        return
    for outcome, schedule in exploration.schedules.items():
        if outcome.status != "completed":
            continue
        replay = run(
            fresh(source),
            scheduler=FixedScheduler(list(schedule), fallback="error"),
            max_steps=len(schedule) + 1,
        )
        assert replay.completed
        assert tuple(sorted(replay.store.items())) == outcome.store
        break  # one witness per case keeps the test fast


@given(st.integers(min_value=0, max_value=100))
@settings(max_examples=25, deadline=None)
def test_exploration_is_deterministic(seed):
    prog_a = random_program(seed, size=12, runtime_safe=True, p_cobegin=0.3)
    prog_b = random_program(seed, size=12, runtime_safe=True, p_cobegin=0.3)
    ra = explore(prog_a, max_states=30_000, max_depth=400)
    rb = explore(prog_b, max_states=30_000, max_depth=400)
    assert ra.outcomes == rb.outcomes
    assert ra.states_visited == rb.states_visited


@given(st.integers(min_value=0, max_value=80))
@settings(max_examples=20, deadline=None)
def test_sequential_programs_have_single_outcome(seed):
    prog = random_program(seed, size=15, runtime_safe=True, p_cobegin=0.0)
    result = explore(prog, max_states=20_000, max_depth=2_000)
    assert result.complete
    assert len(result.outcomes) == 1
    (outcome,) = result.outcomes
    assert outcome.status == "completed"
