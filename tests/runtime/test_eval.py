"""Expression evaluation."""

import pytest

from repro.errors import RuntimeFault, UndefinedVariableError
from repro.lang.parser import parse_expression
from repro.runtime.eval import evaluate


def ev(src, **store):
    return evaluate(parse_expression(src), store)


def test_literals():
    assert ev("42") == 42
    assert ev("true") is True
    assert ev("false") is False


def test_variables():
    assert ev("x", x=7) == 7


def test_undefined_variable():
    with pytest.raises(UndefinedVariableError):
        ev("x")


def test_arithmetic():
    assert ev("2 + 3 * 4") == 14
    assert ev("(2 + 3) * 4") == 20
    assert ev("10 - 4 - 3") == 3
    assert ev("-x", x=5) == -5


def test_division_truncates_toward_zero():
    assert ev("7 / 2") == 3
    assert ev("-7 / 2") == -3
    assert ev("7 / -2") == -3
    assert ev("-7 / -2") == 3


def test_mod_matches_truncated_division():
    assert ev("7 mod 2") == 1
    assert ev("-7 mod 2") == -1  # a - b * trunc(a/b)
    assert ev("7 mod -2") == 1


def test_division_identity():
    # a = (a/b)*b + (a mod b) for truncated division.
    for a in range(-9, 10):
        for b in list(range(-4, 0)) + list(range(1, 5)):
            q = ev("a / b", a=a, b=b)
            r = ev("a mod b", a=a, b=b)
            assert q * b + r == a, (a, b)


def test_division_by_zero():
    with pytest.raises(RuntimeFault):
        ev("1 / 0")
    with pytest.raises(RuntimeFault):
        ev("1 mod 0")


def test_comparisons():
    assert ev("1 = 1") is True
    assert ev("1 # 1") is False
    assert ev("1 < 2") and ev("2 <= 2") and ev("3 > 2") and ev("3 >= 3")


def test_boolean_connectives():
    assert ev("1 = 1 and 2 = 2") is True
    assert ev("1 = 2 or 2 = 2") is True
    assert ev("not 1 = 2") is True


def test_type_errors():
    with pytest.raises(RuntimeFault):
        ev("true + 1")
    with pytest.raises(RuntimeFault):
        ev("1 and 2 = 2")
    with pytest.raises(RuntimeFault):
        ev("not 3")
    with pytest.raises(RuntimeFault):
        ev("-(1 = 1)")


def test_comparison_requires_integers():
    with pytest.raises(RuntimeFault):
        ev("true < false")
