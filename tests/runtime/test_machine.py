"""The small-step machine: atomicity, blocking, spawning, joining."""

import pytest

from repro.errors import RuntimeFault
from repro.lang.parser import parse_program, parse_statement
from repro.runtime.machine import Machine


def test_program_declarations_seed_the_store():
    m = Machine(parse_program("var x : integer initially(5); s : semaphore initially(2); x := x"))
    assert m.store == {"x": 5, "s": 2}


def test_bare_statement_defaults_to_zero():
    m = Machine(parse_statement("x := y"))
    assert m.store == {"x": 0, "y": 0}


def test_store_overrides():
    m = Machine(parse_statement("x := y"), store={"y": 9})
    assert m.store["y"] == 9


def test_assignment_is_one_step():
    m = Machine(parse_statement("x := 1 + 2 * 3"))
    m.step(())
    assert m.store["x"] == 7
    assert m.done


def test_begin_is_structural():
    # begin of three assignments = exactly three steps.
    m = Machine(parse_statement("begin x := 1; y := 2; z := 3 end"))
    steps = 0
    while not m.done:
        m.step(m.enabled()[0])
        steps += 1
    assert steps == 3


def test_if_costs_one_step_for_the_condition():
    m = Machine(parse_statement("if 1 = 1 then x := 5"))
    e1 = m.step(())
    assert e1.kind == "branch"
    assert not m.done
    m.step(())
    assert m.store["x"] == 5 and m.done


def test_if_false_without_else_finishes():
    m = Machine(parse_statement("if 1 = 2 then x := 5"))
    m.step(())
    assert m.done
    assert m.store["x"] == 0


def test_while_loop_steps():
    m = Machine(parse_statement("while x < 2 do x := x + 1"))
    kinds = []
    while not m.done:
        kinds.append(m.step(()).kind)
    # eval-true, assign, eval-true, assign, eval-false
    assert kinds == ["loop", "assign", "loop", "assign", "loop"]
    assert m.store["x"] == 2


def test_wait_blocks_on_zero_semaphore():
    m = Machine(parse_statement("wait(s)"))
    assert m.enabled() == []
    assert m.deadlocked
    with pytest.raises(RuntimeFault):
        m.step(())


def test_wait_proceeds_when_positive():
    m = Machine(parse_statement("wait(s)"), store={"s": 2})
    m.step(())
    assert m.store["s"] == 1
    assert m.done


def test_signal_increments():
    m = Machine(parse_statement("signal(s)"))
    m.step(())
    assert m.store["s"] == 1


def test_cobegin_spawns_hierarchical_pids():
    m = Machine(parse_statement("cobegin x := 1 || y := 2 coend"))
    assert set(m.enabled()) == {(0,), (1,)}
    assert m.processes[()].status == "joining"


def test_join_resumes_parent():
    m = Machine(parse_statement("begin cobegin x := 1 || y := 2 coend; z := 3 end"))
    m.step((0,))
    m.step((1,))
    # Children done; parent resumed with z := 3 pending.
    assert m.enabled() == [()]
    m.step(())
    assert m.done
    assert m.store == {"x": 1, "y": 2, "z": 3}


def test_children_removed_after_join():
    m = Machine(parse_statement("begin cobegin x := 1 || y := 2 coend; z := 3 end"))
    m.step((0,))
    m.step((1,))
    assert set(m.processes) == {()}


def test_nested_cobegin():
    m = Machine(
        parse_statement("cobegin cobegin x := 1 || y := 2 coend || z := 3 coend")
    )
    assert set(m.enabled()) == {(0, 0), (0, 1), (1,)}
    while not m.done:
        m.step(m.enabled()[0])
    assert m.store == {"x": 1, "y": 2, "z": 3}


def test_interleaving_visibility():
    # Two increments of a shared variable can interleave; each
    # assignment is atomic, so the result is always 2 here.
    m = Machine(parse_statement("cobegin x := x + 1 || x := x + 1 coend"))
    m.step((0,))
    m.step((1,))
    assert m.store["x"] == 2


def test_deadlock_detection_cross_wait():
    m = Machine(parse_statement("cobegin begin wait(a); signal(b) end || begin wait(b); signal(a) end coend"))
    assert m.deadlocked
    assert m.blocked_pids() == [(0,), (1,)]


def test_producer_unblocks_consumer():
    m = Machine(parse_statement("cobegin begin wait(s); x := 1 end || signal(s) coend"))
    assert m.enabled() == [(1,)]
    m.step((1,))
    assert m.enabled() == [(0,)]
    m.step((0,))
    m.step((0,))
    assert m.done and m.store["x"] == 1


def test_snapshot_equality_for_same_state():
    a = parse_statement("cobegin x := 1 || y := 2 coend")
    m1 = Machine(a)
    m2 = m1.copy()
    assert m1.snapshot() == m2.snapshot()
    m1.step((0,))
    assert m1.snapshot() != m2.snapshot()
    m2.step((0,))
    assert m1.snapshot() == m2.snapshot()


def test_copy_is_independent():
    m = Machine(parse_statement("x := 1"))
    c = m.copy()
    m.step(())
    assert c.store["x"] == 0
    c.step(())
    assert c.done


def test_step_on_done_process_raises():
    m = Machine(parse_statement("x := 1"))
    m.step(())
    with pytest.raises(RuntimeFault):
        m.step(())


def test_skip_is_a_step():
    m = Machine(parse_statement("skip"))
    e = m.step(())
    assert e.kind == "skip"
    assert m.done


def test_event_str():
    m = Machine(parse_statement("x := 3"))
    e = m.step(())
    assert "assign" in str(e)
    assert "x := 3" in str(e)
