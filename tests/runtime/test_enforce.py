"""Runtime enforcement: blocking violating actions as they happen."""

import pytest

from repro.core.binding import StaticBinding
from repro.core.policy import PolicySpec
from repro.errors import ReproError
from repro.lang.ast import used_variables
from repro.lang.parser import parse_statement
from repro.runtime.enforce import EnforcingMonitor, SecurityViolation
from repro.runtime.executor import run
from repro.runtime.machine import Machine
from repro.workloads.paper import figure3_program


def monitor_for(stmt, binding, mode="block"):
    return EnforcingMonitor.from_binding(binding, used_variables(stmt), mode)


def test_direct_flow_blocked(scheme):
    stmt = parse_statement("l := h")
    binding = StaticBinding(scheme, {"l": "low", "h": "high"})
    monitor = monitor_for(stmt, binding)
    machine = Machine(stmt, monitor=monitor)
    with pytest.raises(SecurityViolation) as exc:
        machine.step(())
    assert exc.value.variable == "l"
    assert machine.store["l"] == 0  # the write never happened


def test_compliant_program_runs_to_completion(scheme):
    stmt = parse_statement("begin l := 1; h := l + 1 end")
    binding = StaticBinding(scheme, {"l": "low", "h": "high"})
    monitor = monitor_for(stmt, binding)
    result = run(stmt, monitor=monitor)
    assert result.completed
    assert not monitor.blocked


def test_taken_implicit_flow_blocked(scheme):
    stmt = parse_statement("if h = 0 then l := 1")
    binding = StaticBinding(scheme, {"l": "low", "h": "high"})
    monitor = monitor_for(stmt, binding)
    machine = Machine(stmt, store={"h": 0}, monitor=monitor)
    machine.step(())  # the branch evaluation
    with pytest.raises(SecurityViolation):
        machine.step(())  # l := 1 under the high context


def test_untaken_branch_not_blocked(scheme):
    """The classic dynamic-enforcement blind spot, honestly pinned:
    with h != 0 the assignment never executes, nothing is blocked, yet
    the observer still learns h = 0 didn't hold.  CFM catches this
    statically; the monitor cannot."""
    stmt = parse_statement("if h = 0 then l := 1")
    binding = StaticBinding(scheme, {"l": "low", "h": "high"})
    monitor = monitor_for(stmt, binding)
    result = run(stmt, store={"h": 5}, monitor=monitor)
    assert result.completed
    assert not monitor.blocked
    from repro.core.cfm import certify

    assert not certify(parse_statement("if h = 0 then l := 1"), binding).certified


def test_figure3_channel_blocked_midway(scheme, fig3_binding_leaky):
    prog = figure3_program()
    monitor = EnforcingMonitor.from_binding(
        fig3_binding_leaky, used_variables(prog.body)
    )
    with pytest.raises(SecurityViolation) as exc:
        run(prog, store={"x": 0}, monitor=monitor, on_deadlock="raise")
    # The first violating action is the signal under the high guard.
    assert exc.value.variable == "modify"


def test_log_mode_records_without_raising(scheme):
    stmt = parse_statement("begin l := h; l := h + 1 end")
    binding = StaticBinding(scheme, {"l": "low", "h": "high"})
    monitor = monitor_for(stmt, binding, mode="log")
    result = run(stmt, monitor=monitor)
    assert result.completed
    assert len(monitor.blocked) == 2
    assert "assign" in str(monitor.blocked[0])


def test_wait_blocked_when_semaphore_overflows_policy(scheme):
    stmt = parse_statement(
        "cobegin if h = 0 then signal(s) || begin wait(s); l := 1 end coend"
    )
    binding = StaticBinding(scheme, {"h": "high", "s": "high", "l": "low"})
    monitor = monitor_for(stmt, binding)
    # s is allowed to be high; the violation comes when the waiter,
    # whose global absorbed s's class, writes l.
    with pytest.raises(SecurityViolation) as exc:
        run(stmt, store={"h": 0}, monitor=monitor)
    assert exc.value.variable == "l"


def test_invalid_mode(scheme):
    with pytest.raises(ReproError):
        EnforcingMonitor(PolicySpec(scheme, {}), {}, mode="audit")


def test_copy_preserves_enforcement(scheme):
    stmt = parse_statement("l := h")
    binding = StaticBinding(scheme, {"l": "low", "h": "high"})
    monitor = monitor_for(stmt, binding)
    clone = monitor.copy()
    assert isinstance(clone, EnforcingMonitor)
    assert clone.policy is monitor.policy
    machine = Machine(stmt, monitor=clone)
    with pytest.raises(SecurityViolation):
        machine.step(())
    assert not monitor.blocked  # the original saw nothing


def test_snapshot_includes_block_count(scheme):
    stmt = parse_statement("l := h")
    binding = StaticBinding(scheme, {"l": "low", "h": "high"})
    monitor = monitor_for(stmt, binding, mode="log")
    before = monitor.snapshot()
    run(stmt, monitor=monitor)
    assert monitor.snapshot() != before


def test_policy_tighter_than_binding(scheme):
    # Enforcement can use bounds unrelated to any static binding.
    stmt = parse_statement("a := b")
    policy = PolicySpec(scheme, {"a": "low"})
    monitor = EnforcingMonitor(policy, {"a": "low", "b": "high"})
    with pytest.raises(SecurityViolation):
        run(stmt, monitor=monitor)
