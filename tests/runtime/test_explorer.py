"""Exhaustive interleaving exploration."""

import pytest

from repro.errors import ExplorationLimitExceeded
from repro.lang.parser import parse_statement
from repro.runtime.executor import run
from repro.runtime.explorer import explore
from repro.runtime.scheduler import FixedScheduler


def test_sequential_program_single_outcome():
    res = explore(parse_statement("begin x := 1; y := x + 1 end"))
    assert len(res.outcomes) == 1
    (outcome,) = res.outcomes
    assert outcome.status == "completed"
    assert outcome.value("y") == 2


def test_race_produces_both_outcomes():
    res = explore(parse_statement("cobegin x := x + 1 || x := x * 2 coend"),
                  store={"x": 5})
    assert res.final_values("x") == {11, 12}
    assert res.complete


def test_atomic_increments_do_not_lose_updates():
    # Assignments are indivisible, so two increments always sum.
    res = explore(parse_statement("cobegin x := x + 1 || x := x + 1 coend"))
    assert res.final_values("x") == {2}


def test_deadlock_detected():
    res = explore(parse_statement(
        "cobegin begin wait(a); signal(b) end || begin wait(b); signal(a) end coend"
    ))
    assert not res.deadlock_free
    assert res.deadlock_outcomes


def test_conditional_deadlock_found_among_interleavings():
    # Signal under a race: the wait may or may not be satisfied.
    s = parse_statement(
        "cobegin begin x := 1; signal(s) end || begin wait(s); y := 1 end coend"
    )
    res = explore(s)
    assert res.deadlock_free  # signal is unconditional: wait always served
    s2 = parse_statement(
        "cobegin if x = 1 then signal(s) || begin wait(s); y := 1 end coend"
    )
    res2 = explore(s2)  # x = 0: signal never happens
    assert not res2.deadlock_free


def test_cutoff_marks_possible_divergence():
    res = explore(parse_statement("while true do x := x + 1"), max_depth=10)
    assert not res.complete
    assert any(o.status == "cutoff" for o in res.outcomes)


def test_state_limit():
    s = parse_statement(
        "cobegin while a < 50 do a := a + 1 || while b < 50 do b := b + 1 coend"
    )
    res = explore(s, max_states=100)
    assert not res.complete
    with pytest.raises(ExplorationLimitExceeded):
        explore(s, max_states=100, on_limit="raise")


def test_state_limit_accounting_is_exact():
    """The budget off-by-one fix: a truncated run reports *exactly*
    ``max_states`` visited states (it used to count the rejected state
    too), names the limit that fired, and counts the dropped frontier."""
    s = parse_statement(
        "cobegin while a < 50 do a := a + 1 || while b < 50 do b := b + 1 coend"
    )
    res = explore(s, max_states=100)
    assert res.states_visited == 100
    assert res.degraded and res.limit == "states"
    assert res.abandoned > 0


def test_complete_run_has_no_limit_and_no_abandoned_frontier():
    res = explore(parse_statement("cobegin x := 1 || y := 1 coend"))
    assert res.complete and not res.degraded
    assert res.limit is None
    assert res.abandoned == 0


def test_depth_cutoff_names_its_limit():
    res = explore(parse_statement("while true do x := x + 1"), max_depth=10)
    assert res.degraded
    assert res.limit == "depth"


def test_budget_object_overrides_keyword_limits():
    from repro.observe import Budget

    s = parse_statement(
        "cobegin while a < 50 do a := a + 1 || while b < 50 do b := b + 1 coend"
    )
    res = explore(s, max_states=100_000, budget=Budget(max_states=50))
    assert res.states_visited == 50
    assert res.limit == "states"


def test_explore_reports_peak_processes():
    res = explore(parse_statement(
        "cobegin x := 1 || y := 1 || z := 1 coend"
    ))
    assert res.peak_processes == 4  # root + three branches


def test_explore_emits_a_span():
    from repro.observe import RecordingEmitter

    emitter = RecordingEmitter()
    res = explore(parse_statement("x := 1"), emitter=emitter)
    (span,) = emitter.named("explore")
    assert span["type"] == "span"
    assert span["states"] == res.states_visited
    assert span["complete"] is True


def test_memoization_collapses_identical_states():
    # Two independent single-step branches: the diamond has 4 states,
    # not 2 paths x 3 states.
    res = explore(parse_statement("cobegin x := 1 || y := 1 coend"))
    assert res.states_visited <= 5
    assert len(res.completed_outcomes) == 1


def test_schedules_replay_to_their_outcome():
    s = parse_statement("cobegin x := x + 1 || x := x * 2 coend")
    res = explore(s, store={"x": 5})
    for outcome, schedule in res.schedules.items():
        if outcome.status != "completed":
            continue
        replay = run(
            parse_statement("cobegin x := x + 1 || x := x * 2 coend"),
            scheduler=FixedScheduler(list(schedule)),
            store={"x": 5},
        )
        # Same schedule prefix: the store must match the recorded outcome.
        assert replay.completed
        assert replay.store["x"] == outcome.value("x")


def test_outcome_projection():
    res = explore(parse_statement("begin x := 1; y := 2 end"))
    (outcome,) = res.outcomes
    projected = outcome.project({"x"})
    assert projected.store == (("x", 1),)
    with pytest.raises(KeyError):
        projected.value("y")


def test_monitor_states_split_outcomes(scheme):
    # With a taint monitor attached, exploration tracks label evolution.
    from repro.core.binding import StaticBinding
    from repro.runtime.taint import TaintMonitor

    s = parse_statement("cobegin x := h || x := 1 coend")
    b = StaticBinding(scheme, {"x": "low", "h": "high"})
    mon = TaintMonitor.from_binding(b, ["x", "h"])
    res = explore(s, monitor=mon)
    assert res.complete
    assert res.final_values("x") == {0, 1}


def test_figure3_exploration(fig3):
    for xv in (0, 3):
        res = explore(fig3, store={"x": xv})
        assert res.complete
        assert res.deadlock_free
        assert res.final_values("y") == {1 if xv == 0 else 0}
        # Semaphores restored to their initial values (paper, section 4.3).
        for outcome in res.completed_outcomes:
            for sem in ("modify", "modified", "read", "done"):
                assert outcome.value(sem) == 0
        fig3 = __import__("repro.workloads.paper", fromlist=["figure3_program"]).figure3_program()


def test_result_repr():
    res = explore(parse_statement("x := 1"))
    assert "outcomes" in repr(res)
