"""Possibilistic noninterference checking."""

import pytest

from repro.core.binding import StaticBinding
from repro.errors import CertificationError
from repro.lang.parser import parse_statement
from repro.runtime.noninterference import check_noninterference, observable_variables


def test_observable_variables(scheme):
    s = parse_statement("begin x := 1; h := 2 end")
    b = StaticBinding(scheme, {"x": "low", "h": "high"})
    assert observable_variables(s, b, "low") == frozenset({"x"})
    assert observable_variables(s, b, "high") == frozenset({"x", "h"})


def test_direct_leak_detected(scheme):
    s = parse_statement("l := h")
    b = StaticBinding(scheme, {"l": "low", "h": "high"})
    result = check_noninterference(s, b, "low", [{"h": 0}, {"h": 1}])
    assert not result.holds
    assert result.witness() is not None


def test_independent_program_passes(scheme):
    s = parse_statement("begin l := 1; h := h + 1 end")
    b = StaticBinding(scheme, {"l": "low", "h": "high"})
    result = check_noninterference(s, b, "low", [{"h": 0}, {"h": 5}])
    assert result.holds
    assert result.complete


def test_implicit_leak_detected(scheme):
    s = parse_statement("if h = 0 then l := 1 else l := 2")
    b = StaticBinding(scheme, {"l": "low", "h": "high"})
    result = check_noninterference(s, b, "low", [{"h": 0}, {"h": 1}])
    assert not result.holds


def test_termination_channel_detected(scheme):
    s = parse_statement("begin z := 7; while h # 0 do skip; z := 1 end")
    b = StaticBinding(scheme, {"z": "low", "h": "high"})
    result = check_noninterference(
        s, b, "low", [{"h": 0}, {"h": 1}], max_depth=40
    )
    # h = 1 diverges (cutoff outcome, z stuck at 7); h = 0 completes z = 1.
    assert not result.holds


def test_synchronization_channel_detected(scheme, fig3, fig3_binding_leaky):
    result = check_noninterference(
        fig3, fig3_binding_leaky, "low", [{"x": 0}, {"x": 1}]
    )
    assert not result.holds
    i, j, outcome = result.witness()
    assert dict(outcome.store)["y"] in (0, 1)


def test_high_observer_sees_no_difference_in_outputs_only(scheme):
    # At observer level 'high' everything is visible, so varying h shows
    # a difference exactly because h itself is observable.
    s = parse_statement("l := h")
    b = StaticBinding(scheme, {"l": "low", "h": "high"})
    with pytest.raises(CertificationError):
        # h is visible to a high observer: varying it is a misuse.
        check_noninterference(s, b, "high", [{"h": 0}, {"h": 1}])


def test_varying_low_variable_rejected(scheme):
    s = parse_statement("x := 1")
    b = StaticBinding(scheme, {"x": "low"})
    with pytest.raises(CertificationError):
        check_noninterference(s, b, "low", [{"x": 0}, {"x": 1}])


def test_racy_but_noninterfering(scheme):
    s = parse_statement("cobegin l := l + 1 || l := l * 2 coend")
    b = StaticBinding(scheme, {"l": "low", "h": "high"})
    result = check_noninterference(s, b, "low", [{"h": 0}, {"h": 9}],
                                   base_store={"l": 3})
    assert result.holds  # both variations have outcome set {7, 8}


def test_four_level_intermediate_observer():
    from repro.lattice.chain import four_level

    levels = four_level()
    s = parse_statement("begin c := s; u := 1 end")
    b = StaticBinding(
        levels, {"u": "unclassified", "c": "confidential", "s": "secret"}
    )
    # A confidential observer sees c, which copies secret data: leak.
    result = check_noninterference(s, b, "confidential", [{"s": 0}, {"s": 1}])
    assert not result.holds
    # An unclassified observer sees only u: no leak.
    s2 = parse_statement("begin c := s; u := 1 end")
    result2 = check_noninterference(s2, b, "unclassified", [{"s": 0}, {"s": 1}])
    assert result2.holds


def test_result_repr(scheme):
    s = parse_statement("x := 1")
    b = StaticBinding(scheme, {"x": "low", "h": "high"})
    result = check_noninterference(s, b, "low", [{"h": 0}, {"h": 1}])
    assert "holds=True" in repr(result)


def test_fewer_than_two_variations_is_an_error(scheme):
    """Regression: ``[]`` or ``[one]`` used to return a vacuous
    ``holds=True`` without comparing anything."""
    s = parse_statement("y := h")
    b = StaticBinding(scheme, {"y": "low", "h": "high"})
    for variations in ([], [{"h": 7}]):
        with pytest.raises(CertificationError, match="at least two"):
            check_noninterference(s, b, "low", variations)
