"""Machine invariants under random schedules (property-based)."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.lang.ast import used_variables
from repro.runtime.executor import run
from repro.runtime.machine import Machine
from repro.runtime.scheduler import FixedScheduler, RandomScheduler
from repro.workloads.generators import random_program


def drive(machine, rng_seed, max_steps=5_000):
    """Step under a seeded random policy; return the schedule taken."""
    import random as _random

    rng = _random.Random(rng_seed)
    schedule = []
    while not machine.done and not machine.deadlocked:
        if len(schedule) >= max_steps:
            break
        pid = rng.choice(machine.enabled())
        machine.step(pid)
        schedule.append(pid)
    return schedule


@given(st.integers(min_value=0, max_value=200), st.integers(min_value=0, max_value=5))
@settings(max_examples=40, deadline=None)
def test_semaphores_never_negative(seed, sched_seed):
    prog = random_program(seed, size=20, runtime_safe=True, p_cobegin=0.3, n_sems=2)
    machine = Machine(prog)
    sems = [d for decl in prog.decls if decl.kind == "semaphore" for d in decl.names]
    import random as _random

    rng = _random.Random(sched_seed)
    steps = 0
    while not machine.done and steps < 5_000:
        enabled = machine.enabled()
        if not enabled:
            break
        machine.step(rng.choice(enabled))
        steps += 1
        for sem in sems:
            assert machine.store[sem] >= 0


@given(st.integers(min_value=0, max_value=200), st.integers(min_value=0, max_value=5))
@settings(max_examples=40, deadline=None)
def test_replay_determinism(seed, sched_seed):
    """The same schedule always produces the same final store."""
    prog = random_program(seed, size=18, runtime_safe=True, p_cobegin=0.3)
    m1 = Machine(prog)
    schedule = drive(m1, sched_seed)
    result = run(
        random_program(seed, size=18, runtime_safe=True, p_cobegin=0.3),
        scheduler=FixedScheduler(schedule, fallback="error"),
        max_steps=len(schedule) + 1,
    )
    if result.status == "completed":
        assert result.store == m1.store


@given(st.integers(min_value=0, max_value=150))
@settings(max_examples=30, deadline=None)
def test_copy_then_diverge(seed):
    """Copies evolve independently but agree when given the same steps."""
    prog = random_program(seed, size=16, runtime_safe=True, p_cobegin=0.3)
    original = Machine(prog)
    clone = original.copy()
    assert original.snapshot() == clone.snapshot()
    drive(original, rng_seed=1)
    drive(clone, rng_seed=1)
    assert original.snapshot() == clone.snapshot()  # same policy, same path


@given(st.integers(min_value=0, max_value=150), st.integers(min_value=0, max_value=3))
@settings(max_examples=30, deadline=None)
def test_process_table_consistency(seed, sched_seed):
    """Statuses stay in the legal set; joining parents always have live
    children; the root survives until the end."""
    prog = random_program(seed, size=18, runtime_safe=True, p_cobegin=0.35)
    machine = Machine(prog)
    import random as _random

    rng = _random.Random(sched_seed)
    steps = 0
    while not machine.done and steps < 4_000:
        enabled = machine.enabled()
        if not enabled:
            break
        machine.step(rng.choice(enabled))
        steps += 1
        assert () in machine.processes
        for pid, proc in machine.processes.items():
            assert proc.status in ("ready", "joining", "done")
            if proc.status == "joining":
                kids = [p for p in machine.processes if p[:-1] == pid and p != pid]
                assert proc.pending_children >= 1
                assert len(kids) >= proc.pending_children


@given(st.integers(min_value=0, max_value=100))
@settings(max_examples=25, deadline=None)
def test_runtime_safe_programs_never_deadlock(seed):
    """The runtime-safe generator's concurrency protocol guarantees
    schedules always make progress to completion."""
    prog = random_program(seed, size=20, runtime_safe=True, p_cobegin=0.3)
    for sched_seed in (0, 1):
        result = run(
            random_program(seed, size=20, runtime_safe=True, p_cobegin=0.3),
            scheduler=RandomScheduler(sched_seed),
            max_steps=100_000,
        )
        assert result.completed


@given(st.integers(min_value=0, max_value=100))
@settings(max_examples=20, deadline=None)
def test_total_work_is_schedule_independent_for_racefree(seed):
    """Programs without shared writes do the same number of steps under
    any schedule (each process's control flow is private)."""
    prog = random_program(seed, size=15, runtime_safe=True, p_cobegin=0.0)
    a = run(random_program(seed, size=15, runtime_safe=True, p_cobegin=0.0))
    b = run(
        random_program(seed, size=15, runtime_safe=True, p_cobegin=0.0),
        scheduler=RandomScheduler(9),
    )
    assert a.steps == b.steps
    assert a.store == b.store


@given(
    st.integers(min_value=0, max_value=150),
    st.integers(min_value=0, max_value=5),
    st.integers(min_value=0, max_value=5),
)
@settings(max_examples=30, deadline=None)
def test_copy_resume_equivalence(seed, prefix_seed, suffix_seed):
    """Copying mid-run and finishing both machines under the same policy
    yields identical snapshots at every subsequent point."""
    import random as _random

    prog = random_program(seed, size=16, runtime_safe=True, p_cobegin=0.3)
    machine = Machine(prog)
    rng = _random.Random(prefix_seed)
    for _ in range(rng.randint(0, 10)):
        enabled = machine.enabled()
        if not enabled:
            break
        machine.step(rng.choice(enabled))
    clone = machine.copy()
    rng_a = _random.Random(suffix_seed)
    rng_b = _random.Random(suffix_seed)
    for _ in range(5_000):
        ea = machine.enabled()
        eb = clone.enabled()
        assert ea == eb
        if not ea:
            break
        machine.step(rng_a.choice(ea))
        clone.step(rng_b.choice(eb))
        assert machine.snapshot() == clone.snapshot()
