"""The Budget/BudgetClock resource-limit primitives."""

import time

import pytest

from repro.observe import Budget
from repro.observe.budget import DEADLINE_CHECK_EVERY


def test_default_budget_is_unlimited():
    budget = Budget()
    assert budget.max_states is None
    assert budget.max_depth is None
    assert budget.deadline is None
    assert str(budget) == "Budget(unlimited)"


def test_budget_is_frozen_and_hashable():
    budget = Budget(max_states=10)
    with pytest.raises(Exception):
        budget.max_states = 20
    assert budget == Budget(max_states=10)
    assert hash(budget) == hash(Budget(max_states=10))


def test_budget_to_dict_and_str():
    budget = Budget(max_states=100, max_depth=5, deadline=1.5)
    assert budget.to_dict() == {
        "max_states": 100,
        "max_depth": 5,
        "deadline": 1.5,
    }
    assert str(budget) == "Budget(states<=100, depth<=5, deadline=1.5s)"


def test_clock_without_deadline_never_expires():
    clock = Budget(max_states=5).start()
    assert clock.remaining() is None
    assert not clock.expired()
    assert clock.elapsed() >= 0.0


def test_clock_with_deadline_expires():
    clock = Budget(deadline=0.01).start()
    assert not clock.expired() or clock.remaining() <= 0
    time.sleep(0.02)
    assert clock.expired()
    assert clock.remaining() <= 0


def test_clock_repr_mentions_the_budget():
    clock = Budget(deadline=9.0).start()
    assert "deadline=9.0s" in repr(clock)


def test_deadline_poll_interval_is_sane():
    # The explorer checks the clock every DEADLINE_CHECK_EVERY states;
    # the constant must stay a small positive int or deadlines would
    # either cost a syscall per state or never fire.
    assert isinstance(DEADLINE_CHECK_EVERY, int)
    assert 1 <= DEADLINE_CHECK_EVERY <= 4096


def test_sequential_explores_each_get_a_fresh_clock():
    """A ``Budget`` is a *spec*: the clock starts when ``explore`` does.
    Reusing one Budget across sequential runs (as the batch pipeline
    does with one config) must grant each run the full deadline, even
    after enough idle wall-clock to exhaust it."""
    from repro.lang.parser import parse_statement
    from repro.runtime.explorer import explore

    stmt = parse_statement("begin l := 1; l2 := l end")
    budget = Budget(deadline=0.25)
    first = explore(stmt, budget=budget)
    time.sleep(0.3)  # longer than the whole deadline
    second = explore(stmt, budget=budget)
    assert first.complete and not first.degraded
    assert second.complete and not second.degraded


def test_token_bucket_starts_full_and_refills_at_rate():
    from repro.observe import TokenBucket

    bucket = TokenBucket(rate=2.0, burst=4.0)
    # the burst is spendable immediately...
    assert all(bucket.try_acquire(now=100.0) for _ in range(4))
    # ...then the bucket is empty until time passes
    assert not bucket.try_acquire(now=100.0)
    assert bucket.retry_after(now=100.0) == pytest.approx(0.5)
    # 1 second at 2 tokens/s refills 2 tokens
    assert bucket.try_acquire(now=101.0)
    assert bucket.try_acquire(now=101.0)
    assert not bucket.try_acquire(now=101.0)


def test_token_bucket_never_exceeds_burst_and_clock_never_runs_backward():
    from repro.observe import TokenBucket

    bucket = TokenBucket(rate=10.0, burst=2.0)
    # a long quiet period must cap at burst, not accumulate
    assert bucket.try_acquire(now=1000.0)
    assert bucket.try_acquire(now=1000.0)
    assert not bucket.try_acquire(now=1000.0)
    # a non-monotonic now (clock skew) must not mint tokens
    assert not bucket.try_acquire(now=999.0)
    assert bucket.retry_after(now=999.0) >= 0.0


def test_token_bucket_rejects_bad_parameters():
    from repro.observe import TokenBucket

    with pytest.raises(ValueError):
        TokenBucket(rate=0)
    with pytest.raises(ValueError):
        TokenBucket(rate=-1.0)
    with pytest.raises(ValueError):
        TokenBucket(rate=5.0, burst=0.5)
    # default burst: max(1, rate) — a sub-1/s rate still allows one call
    assert TokenBucket(rate=0.1).burst == 1.0
    assert TokenBucket(rate=8.0).burst == 8.0
