"""The span/counter/event trace emitters."""

import io
import json

import pytest

from repro.observe import (
    JsonlEmitter,
    NULL_EMITTER,
    NullEmitter,
    RecordingEmitter,
    TraceEmitter,
)


def test_base_emitter_requires_emit():
    with pytest.raises(NotImplementedError):
        TraceEmitter().emit({"type": "event", "name": "x"})


def test_null_emitter_swallows_everything():
    NULL_EMITTER.span("a", 0.1)
    NULL_EMITTER.counter("b", 2)
    NULL_EMITTER.event("c", detail="d")
    NULL_EMITTER.close()
    assert isinstance(NULL_EMITTER, NullEmitter)


def test_recording_emitter_keeps_records_in_order():
    emitter = RecordingEmitter()
    emitter.span("task", 0.5, program="p")
    emitter.counter("states", 7)
    emitter.event("pool_start", workers=2)
    assert [r["type"] for r in emitter.records] == ["span", "counter", "event"]
    assert emitter.records[0] == {
        "type": "span",
        "name": "task",
        "seconds": 0.5,
        "program": "p",
    }
    assert emitter.named("states") == [
        {"type": "counter", "name": "states", "value": 7}
    ]


def test_jsonl_emitter_writes_parseable_stamped_lines(tmp_path):
    path = tmp_path / "trace.jsonl"
    emitter = JsonlEmitter(path=str(path))
    emitter.span("explore", 0.25, states=10)
    emitter.event("pool_broken")
    emitter.close()
    lines = path.read_text().splitlines()
    assert len(lines) == 2
    records = [json.loads(line) for line in lines]
    assert records[0]["name"] == "explore"
    assert records[0]["states"] == 10
    for record in records:
        assert isinstance(record["ts"], float)


def test_jsonl_emitter_accepts_a_handle_it_does_not_own():
    handle = io.StringIO()
    emitter = JsonlEmitter(handle=handle)
    emitter.counter("hits", 3)
    emitter.close()  # must flush but not close the caller's handle
    assert json.loads(handle.getvalue())["value"] == 3


def test_jsonl_emitter_needs_exactly_one_target(tmp_path):
    with pytest.raises(ValueError):
        JsonlEmitter()
    with pytest.raises(ValueError):
        JsonlEmitter(path=str(tmp_path / "t"), handle=io.StringIO())


def test_jsonl_emitter_survives_a_dead_sink(tmp_path):
    class Broken(io.StringIO):
        def write(self, *_):
            raise OSError("disk full")

    emitter = JsonlEmitter(handle=Broken())
    emitter.event("x")  # must not raise: tracing never fails the run
    emitter.close()
