"""The MetricsAggregator and the metrics-document validator."""

import pytest

from repro.observe import (
    METRICS_SCHEMA,
    MetricsAggregator,
    RecordingEmitter,
    validate_metrics,
)


def sample_aggregator():
    agg = MetricsAggregator()
    agg.event("pool_start", workers=2)
    agg.event("pool_broken")
    agg.event("task_retry", program="p", analysis="cert", attempt=1)
    agg.event("task_abandoned", program="p", analysis="cert", attempts=3)
    agg.item("a", "cert", "ok", seconds=0.25)
    agg.item("a", "explore", "degraded", seconds=0.5, limit="deadline",
             explore={"states": 100, "transitions": 99, "reduced_states": 4})
    agg.item("b", "cert", "cached", seconds=None)
    agg.item("b", "explore", "error", seconds=0.1, error_type="ZeroDivisionError")
    agg.cache_skip_degraded()
    return agg


def test_worker_events_are_tallied():
    agg = sample_aggregator()
    assert agg.workers == {
        "pools": 1, "crashes": 1, "retries": 1, "abandoned": 1
    }


def test_records_are_forwarded_to_the_sink():
    sink = RecordingEmitter()
    agg = MetricsAggregator(sink=sink)
    agg.event("pool_start", workers=1)
    agg.item("a", "cert", "ok", seconds=0.1)
    agg.cache_skip_degraded()
    names = [r["name"] for r in sink.records]
    assert names == ["pool_start", "task", "cache_skip_degraded"]


def test_unknown_item_status_is_rejected():
    with pytest.raises(ValueError, match="unknown item status"):
        MetricsAggregator().item("a", "cert", "exploded")


def test_document_shape_and_totals():
    doc = sample_aggregator().to_dict(
        elapsed_seconds=1.5, jobs=2, deadline=0.5,
        cache={"hits": 1, "misses": 3, "writes": 2, "corrupt": 0},
    )
    assert doc["schema"] == METRICS_SCHEMA
    run = doc["run"]
    assert run["tasks"] == 4
    assert run["ok"] == 1 and run["cached"] == 1
    assert run["degraded"] == 1 and run["errors"] == 1
    assert run["computed"] == 3
    assert run["deadline"] == 0.5
    assert doc["cache"]["skipped_degraded"] == 1
    explore = doc["analyses"]["explore"]
    assert explore["tasks"] == 2
    assert explore["degraded"] == 1 and explore["errors"] == 1
    assert explore["states"] == 100
    assert explore["reduced_states"] == 4
    # items are sorted by (program, analysis): deterministic document.
    assert [(e["program"], e["analysis"]) for e in doc["items"]] == [
        ("a", "cert"), ("a", "explore"), ("b", "cert"), ("b", "explore")
    ]


def test_document_validates_clean():
    doc = sample_aggregator().to_dict(
        elapsed_seconds=1.0, jobs=1, deadline=None,
        cache={"hits": 0, "misses": 0, "writes": 0, "corrupt": 0},
    )
    assert validate_metrics(doc) == []


def test_validator_catches_structural_damage():
    assert validate_metrics("nope")  # not even an object
    assert validate_metrics({}) != []
    doc = sample_aggregator().to_dict(
        elapsed_seconds=1.0, jobs=1, deadline=None
    )
    doc["schema"] = "repro-metrics/999"
    assert any("schema" in p for p in validate_metrics(doc))
    doc = sample_aggregator().to_dict(
        elapsed_seconds=1.0, jobs=1, deadline=None
    )
    del doc["run"]["jobs"]
    doc["items"][0]["status"] = "weird"
    problems = validate_metrics(doc)
    assert any("run.jobs" in p for p in problems)
    assert any("status" in p for p in problems)


def test_chunk_counters_accumulate_and_forward():
    sink = RecordingEmitter()
    agg = MetricsAggregator(sink=sink)
    agg.chunk(cells=5, bytes_pickled=400)
    agg.chunk(cells=3, bytes_pickled=150)
    assert agg.chunks == {"submitted": 2, "cells": 8, "bytes_pickled": 550}
    events = [r for r in sink.records if r["name"] == "chunk_submitted"]
    assert len(events) == 2
    assert events[0]["cells"] == 5 and events[0]["bytes_pickled"] == 400
    doc = agg.to_dict(elapsed_seconds=1.0, jobs=2, deadline=None)
    assert doc["chunks"] == {"submitted": 2, "cells": 8, "bytes_pickled": 550}


def test_spans_are_retained_in_the_document():
    agg = MetricsAggregator()
    agg.span("run", 1.25, jobs=2, tasks=4)
    doc = agg.to_dict(elapsed_seconds=1.25, jobs=2, deadline=None)
    assert doc["spans"] == [
        {"type": "span", "name": "run", "seconds": 1.25, "jobs": 2,
         "tasks": 4}
    ]
    assert validate_metrics(doc) == []


def test_span_retention_is_bounded_like_items():
    agg = MetricsAggregator(max_items=2)
    for i in range(5):
        agg.span("round", float(i))
    assert [s["seconds"] for s in agg.spans] == [3.0, 4.0]


def test_validator_requires_chunks_and_spans():
    doc = sample_aggregator().to_dict(
        elapsed_seconds=1.0, jobs=1, deadline=None
    )
    del doc["chunks"]
    assert any("chunks" in p for p in validate_metrics(doc))
    doc = sample_aggregator().to_dict(
        elapsed_seconds=1.0, jobs=1, deadline=None
    )
    doc["chunks"]["cells"] = "many"
    assert any("chunks.cells" in p for p in validate_metrics(doc))
    doc = sample_aggregator().to_dict(
        elapsed_seconds=1.0, jobs=1, deadline=None
    )
    doc["spans"] = [{"name": "run"}]  # no seconds
    assert any("spans[0].seconds" in p for p in validate_metrics(doc))


def _service_section():
    """A service section shaped like AnalysisService.service_counters()."""
    return {
        "requests": 3,
        "in_flight": 0,
        "waiting": 0,
        "coalesced": 1,
        "rejected": 0,
        "draining": False,
        "client_disconnects": 0,
        "bytes_read": 128,
        "shards": 2,
        "uptime_seconds": 1.0,
        "lru_hits": 1,
        "lru_misses": 2,
        "admission": {
            "admitted": 3,
            "rejected_busy": 0,
            "rate_limited": 0,
            "aborted": 0,
            "max_queue": 16,
        },
        "tenants": {"default": {"requests": 3, "rate_limited": 0}},
    }


def _doc_with_service(service):
    return sample_aggregator().to_dict(
        elapsed_seconds=1.0, jobs=2, deadline=None, service=service
    )


def test_validator_accepts_the_full_service_section():
    assert validate_metrics(_doc_with_service(_service_section())) == []


def test_validator_requires_admission_and_tenant_counters():
    service = _service_section()
    del service["admission"]["max_queue"]
    problems = validate_metrics(_doc_with_service(service))
    assert any("admission.max_queue" in p for p in problems)

    service = _service_section()
    del service["admission"]
    problems = validate_metrics(_doc_with_service(service))
    assert any("service.admission" in p for p in problems)

    service = _service_section()
    service["tenants"]["default"]["requests"] = "three"
    problems = validate_metrics(_doc_with_service(service))
    assert any("tenants.default.requests" in p for p in problems)

    service = _service_section()
    del service["waiting"]
    problems = validate_metrics(_doc_with_service(service))
    assert any("service.waiting" in p for p in problems)

    service = _service_section()
    del service["client_disconnects"]
    del service["bytes_read"]
    del service["shards"]
    problems = validate_metrics(_doc_with_service(service))
    assert any("client_disconnects" in p for p in problems)
    assert any("bytes_read" in p for p in problems)
    assert any("shards" in p for p in problems)
