"""Proof tree plumbing and rendering."""

from repro.core.binding import StaticBinding
from repro.lang.parser import parse_statement
from repro.lattice.chain import two_level
from repro.logic.generator import generate_proof
from repro.logic.render import proof_outline, render_proof

SCHEME = two_level()


def make_proof():
    stmt = parse_statement("begin x := 1; if x = 0 then y := 2 end")
    binding = StaticBinding(SCHEME, {"x": "low", "y": "low"})
    return stmt, generate_proof(stmt, binding)


def test_walk_is_preorder():
    _, proof = make_proof()
    nodes = list(proof.walk())
    assert nodes[0] is proof
    assert len(nodes) == proof.size()


def test_outermost_for_prefers_outer_node():
    stmt, proof = make_proof()
    assign = stmt.body[0]
    node = proof.outermost_for(assign)
    assert node is not None
    assert node.stmt is assign
    # The outermost node for an axiom statement is its consequence wrapper.
    assert node.rule in ("consequence", "assignment")


def test_outermost_for_unknown_statement():
    _, proof = make_proof()
    other = parse_statement("z := 9")
    assert proof.outermost_for(other) is None


def test_conclusion_triple():
    _, proof = make_proof()
    pre, stmt, post = proof.conclusion()
    assert pre is proof.pre and post is proof.post and stmt is proof.stmt


def test_render_contains_assertions_and_rules():
    _, proof = make_proof()
    text = render_proof(proof)
    assert "[composition]" in text
    assert "pre:" in text and "post:" in text
    assert "local" in text


def test_outline_one_line_per_rule():
    _, proof = make_proof()
    outline = proof_outline(proof)
    assert len(outline.splitlines()) == proof.size()


def test_long_statements_truncated():
    stmt = parse_statement("x := 1 + 2 + 3 + 4 + 5 + 6 + 7 + 8 + 9 + 10 + 11 + 12")
    binding = StaticBinding(SCHEME, {"x": "low"})
    proof = generate_proof(stmt, binding)
    assert "..." in render_proof(proof)


def test_repr():
    _, proof = make_proof()
    assert "rule applications" in repr(proof)
