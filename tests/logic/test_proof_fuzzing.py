"""Fuzzing the proof checker: random mutations of valid proofs must be caught.

The checker is the trust anchor for Theorems 1 and 2 (the generator
never marks its own homework), so we adversarially probe it: take a
valid generated proof, apply a random *semantic* mutation — raise or
lower a bound, drop a policy conjunct from an axiom's reasoning, swap
two premises, change a rule name — and assert the checker objects
whenever the mutation actually changes what the proof claims.
"""

import random

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.core.binding import StaticBinding
from repro.errors import ProofError
from repro.lattice.chain import two_level
from repro.lattice.extended import ExtendedLattice
from repro.logic.assertions import Bound, FlowAssertion
from repro.logic.checker import check_proof
from repro.logic.classexpr import GLOBAL, LOCAL, cert_expr, const_expr, var_class
from repro.logic.generator import generate_proof
from repro.logic.proof import ProofNode
from repro.workloads.generators import random_certified_case

SCHEME = two_level()
EXT = ExtendedLattice(SCHEME)


def clone_tree(node: ProofNode) -> ProofNode:
    return ProofNode(
        node.rule,
        node.stmt,
        node.pre,
        node.post,
        [clone_tree(p) for p in node.premises],
        node.note,
    )


def all_nodes(node: ProofNode):
    return list(node.walk())


def lower_a_high_bound(assertion: FlowAssertion):
    """Rewrite one 'high' rhs constant to 'low' (a strengthening that
    generally cannot be justified)."""
    changed = None
    bounds = []
    for b in sorted(assertion.bounds, key=repr):
        if changed is None and b.rhs == const_expr("high"):
            bounds.append(Bound(b.lhs, const_expr("low")))
            changed = b
        else:
            bounds.append(b)
    if changed is None:
        return None
    return FlowAssertion(bounds)


@given(st.integers(min_value=0, max_value=150))
@settings(max_examples=40, deadline=None)
def test_lowering_a_postcondition_bound_is_caught(seed):
    prog, binding = random_certified_case(seed, SCHEME, size=20, n_pins=3)
    if all(c == "low" for c in binding.as_dict().values()):
        return  # nothing high to tamper with
    proof = generate_proof(prog, binding)
    mutated = clone_tree(proof)
    target = mutated  # tamper with the root's postcondition
    lowered = lower_a_high_bound(target.post)
    if lowered is None:
        return
    tampered = ProofNode(
        target.rule, target.stmt, target.pre, lowered, target.premises
    )
    assert not check_proof(tampered, SCHEME).ok


@given(st.integers(min_value=0, max_value=150), st.integers(min_value=0, max_value=10_000))
@settings(max_examples=50, deadline=None)
def test_random_internal_bound_lowering_is_caught_or_harmless(seed, pick):
    """Lower a random internal bound.  Either the checker rejects, or the
    mutation left a proof that is *still valid* — in which case it must
    still prove the original conclusion (pre unchanged, post unchanged
    or stronger), never something unsound."""
    prog, binding = random_certified_case(seed, SCHEME, size=18, n_pins=3)
    proof = generate_proof(prog, binding)
    mutated = clone_tree(proof)
    nodes = all_nodes(mutated)
    rng = random.Random(pick)
    node = rng.choice(nodes)
    which = rng.choice(["pre", "post"])
    lowered = lower_a_high_bound(getattr(node, which))
    if lowered is None:
        return
    setattr(node, which, lowered)
    checked = check_proof(mutated, SCHEME)
    if checked.ok:
        # Lowering a bound *strengthens* an assertion.  A still-valid
        # mutant therefore proves a claim with a stronger (or equal)
        # precondition and a stronger (or equal) postcondition than the
        # original — which is sound.  What would be unsound is a valid
        # proof whose root assertions are *unrelated* to the original.
        from repro.logic.entailment import Entailment

        engine = Entailment(EXT)
        assert engine.entails(mutated.pre, proof.pre)
        assert engine.entails(mutated.post, proof.post)


@given(st.integers(min_value=0, max_value=100))
@settings(max_examples=30, deadline=None)
def test_rule_name_swap_is_caught(seed):
    prog, binding = random_certified_case(seed, SCHEME, size=15, n_pins=2)
    proof = generate_proof(prog, binding)
    mutated = clone_tree(proof)
    rng = random.Random(seed)
    node = rng.choice(all_nodes(mutated))
    others = [r for r in ("assignment", "wait", "signal", "skip", "alternation",
                          "iteration", "composition", "concurrency")
              if r != node.rule and r != "consequence"]
    node.rule = rng.choice(others)
    checked = check_proof(mutated, SCHEME)
    # A rule applied to the wrong statement form must be rejected
    # (every swap changes the statement-form requirement).
    assert not checked.ok


@given(st.integers(min_value=0, max_value=100))
@settings(max_examples=30, deadline=None)
def test_dropping_a_premise_is_caught(seed):
    prog, binding = random_certified_case(seed, SCHEME, size=18, n_pins=2)
    proof = generate_proof(prog, binding)
    mutated = clone_tree(proof)
    candidates = [n for n in all_nodes(mutated) if len(n.premises) >= 2]
    if not candidates:
        return
    rng = random.Random(seed)
    node = rng.choice(candidates)
    node.premises.pop(rng.randrange(len(node.premises)))
    assert not check_proof(mutated, SCHEME).ok


def test_swapping_composition_premises_is_caught():
    from repro.lang.parser import parse_statement

    stmt = parse_statement("begin x := h; y := x end")
    binding = StaticBinding(SCHEME, {"x": "high", "y": "high", "h": "high"})
    proof = generate_proof(stmt, binding)
    proof.premises.reverse()
    assert not check_proof(proof, SCHEME).ok


def test_unknown_rule_is_unrepresentable():
    from repro.lang.parser import parse_statement

    stmt = parse_statement("x := 1")
    a = FlowAssertion([Bound(var_class("x"), const_expr("low"))])
    with pytest.raises(ProofError):
        ProofNode("paste", stmt, a, a)
