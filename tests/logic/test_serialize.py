"""Proof certificates: round-trips, independence, tamper resistance."""

import json

import pytest

from repro.core.binding import StaticBinding
from repro.errors import LogicError
from repro.lang.parser import parse_program, parse_statement
from repro.lattice.chain import two_level
from repro.lattice.product import military
from repro.logic.checker import check_proof
from repro.logic.generator import generate_proof
from repro.logic.render import render_proof
from repro.logic.serialize import dump_proof, load_proof
from repro.workloads.paper import FIGURE3_SOURCE

SCHEME = two_level()


def certificate_for(source, classes, scheme=SCHEME):
    stmt = parse_statement(source)
    binding = StaticBinding(scheme, classes)
    proof = generate_proof(stmt, binding)
    return stmt, proof, dump_proof(proof, stmt)


def test_round_trip_preserves_the_proof():
    stmt, proof, data = certificate_for(
        "begin wait(s); x := 1; if x = 0 then y := 2 end",
        {"s": "low", "x": "low", "y": "low"},
    )
    json.dumps(data)  # JSON-serializable
    loaded = load_proof(data, stmt, SCHEME)
    assert render_proof(loaded) == render_proof(proof)
    assert check_proof(loaded, SCHEME).ok


def test_cross_parse_reconstruction():
    """A certificate binds to the *source*, not the AST objects: dump
    against one parse, load against a fresh parse of the same text."""
    source = FIGURE3_SOURCE
    prog_a = parse_program(source)
    names = ["x", "y", "m", "modify", "modified", "read", "done"]
    binding = StaticBinding(SCHEME, {n: "high" for n in names})
    proof = generate_proof(prog_a, binding)
    data = json.loads(json.dumps(dump_proof(proof, prog_a)))
    prog_b = parse_program(source)
    loaded = load_proof(data, prog_b, SCHEME)
    assert check_proof(loaded, SCHEME).ok
    # The loaded proof references prog_b's nodes, not prog_a's.
    assert loaded.stmt is prog_b.body


def test_synthetic_skip_premise_survives():
    stmt, proof, data = certificate_for(
        "if c = 0 then x := 1", {"c": "low", "x": "low"}
    )
    loaded = load_proof(data, stmt, SCHEME)
    assert check_proof(loaded, SCHEME).ok


def test_product_scheme_elements_survive():
    scheme = military(("n",))
    hi = ("secret", frozenset({"n"}))
    stmt = parse_statement("y := x")
    binding = StaticBinding(scheme, {"x": hi, "y": hi})
    proof = generate_proof(stmt, binding)
    data = json.loads(json.dumps(dump_proof(proof, stmt)))
    loaded = load_proof(data, stmt, scheme)
    assert check_proof(loaded, scheme).ok


def test_wrong_program_rejected():
    stmt, _, data = certificate_for("begin x := 1; y := 2 end",
                                    {"x": "low", "y": "low"})
    other = parse_statement("begin x := 1; y := 2; z := 3 end")
    with pytest.raises(LogicError):
        load_proof(data, other, SCHEME)


def test_same_shape_different_text_fails_check():
    """Same statement count but different code: decoding may succeed,
    the checker must then reject."""
    stmt, _, data = certificate_for("begin x := 1; y := 2 end",
                                    {"x": "low", "y": "low"})
    other = parse_statement("begin x := 1; y := x end")
    try:
        loaded = load_proof(data, other, SCHEME)
    except LogicError:
        return  # also acceptable
    # x := 1's axiom still fits, but y := x's axiom precondition
    # differs from y := 2's, so the proof cannot validate... unless the
    # classes coincide; either way nothing unsound is accepted.
    checked = check_proof(loaded, SCHEME)
    if checked.ok:
        # only possible if the substituted assertions are equivalent,
        # i.e. the proof genuinely holds of the other program too.
        from repro.core.cfm import certify
        from repro.core.binding import StaticBinding as SB

        assert certify(other, SB(SCHEME, {"x": "low", "y": "low"})).certified


def test_consistent_relabeling_is_a_different_valid_proof():
    """Replacing every 'high' by 'low' yields the all-low proof of the
    same program — valid, but a claim about a different binding.  The
    certificate carries no authority by itself; the verifier decides
    what binding it cares about (see is_completely_invariant)."""
    stmt, _, data = certificate_for("x := h", {"x": "high", "h": "high"})
    relabeled = json.loads(json.dumps(data).replace('"high"', '"low"'))
    loaded = load_proof(relabeled, stmt, SCHEME)
    assert check_proof(loaded, SCHEME).ok  # internally consistent...
    from repro.core.binding import StaticBinding as SB
    from repro.logic.extract import is_completely_invariant

    # ...but it no longer certifies the high binding's policy.
    binding = SB(SCHEME, {"x": "high", "h": "high"})
    assert not is_completely_invariant(loaded, binding)


def test_tampered_bound_rejected_by_checker():
    """An *inconsistent* tamper — strengthening one postcondition bound
    without touching the rest — must fail the independent check."""
    stmt, _, data = certificate_for("x := h", {"x": "high", "h": "high"})
    post = data["proof"]["post"]
    for bound in post:
        if bound["rhs"]["const"] == {"t": "atom", "v": "high"}:
            bound["rhs"]["const"] = {"t": "atom", "v": "low"}
            break
    else:
        raise AssertionError("no high bound to tamper with")
    loaded = load_proof(data, stmt, SCHEME)
    assert not check_proof(loaded, SCHEME).ok


def test_malformed_certificates():
    stmt = parse_statement("x := 1")
    with pytest.raises(LogicError):
        load_proof({"format": "nope"}, stmt, SCHEME)
    with pytest.raises(LogicError):
        load_proof({"format": "repro-flow-proof", "version": 99}, stmt, SCHEME)
    with pytest.raises(LogicError):
        load_proof(
            {"format": "repro-flow-proof", "version": 1, "statements": 1,
             "proof": {"rule": "assignment", "stmt": 42, "pre": [], "post": [],
                       "premises": []}},
            stmt,
            SCHEME,
        )


def test_cli_certificate_flow(tmp_path, capsys):
    from repro.cli import main

    prog = tmp_path / "p.rl"
    prog.write_text("var x, s : integer; go : semaphore; begin signal(go); x := 1 end")
    cert = tmp_path / "proof.json"
    code = main(["prove", str(prog), "--default", "low",
                 "--save-cert", str(cert)])
    assert code == 0
    assert cert.exists()
    capsys.readouterr()
    code = main(["check-cert", str(prog), str(cert)])
    assert code == 0
    assert "VALID" in capsys.readouterr().out
    # Tamper and re-check.
    cert.write_text(cert.read_text().replace('"low"', '"high"', 1))
    code = main(["check-cert", str(prog), str(cert)])
    assert code == 1
