"""Flow assertions, substitution, and the {V, L, G} shape."""

import pytest

from repro.core.binding import StaticBinding
from repro.errors import AssertionFormError
from repro.lattice.chain import two_level
from repro.lattice.extended import ExtendedLattice
from repro.logic.assertions import (
    Bound,
    FlowAssertion,
    policy_assertion,
    vlg_assertion,
)
from repro.logic.classexpr import (
    GLOBAL,
    LOCAL,
    VarClass,
    cert_expr,
    const_expr,
    var_class,
)

EXT = ExtendedLattice(two_level())


def vlg(v_pairs, l="low", g="low"):
    v = FlowAssertion(Bound(var_class(n), const_expr(c)) for n, c in v_pairs)
    return vlg_assertion(v, const_expr(l), const_expr(g))


def test_conjoin_unions_bounds():
    a = FlowAssertion([Bound(var_class("x"), const_expr("low"))])
    b = FlowAssertion([Bound(var_class("y"), const_expr("high"))])
    assert len(a.conjoin(b)) == 2


def test_equality_is_set_like():
    a = FlowAssertion([Bound(var_class("x"), const_expr("low"))])
    b = FlowAssertion([Bound(var_class("x"), const_expr("low"))])
    assert a == b
    assert hash(a) == hash(b)


def test_substitution_hits_both_sides():
    a = FlowAssertion([Bound(var_class("x"), var_class("y"))])
    out = a.substitute({VarClass("y"): const_expr("high")}, EXT)
    (bound,) = out.bounds
    assert bound.rhs == const_expr("high")


def test_assignment_axiom_substitution_shape():
    # {x <= high}[x <- e + local + global]
    p = FlowAssertion([Bound(var_class("x"), const_expr("high"))])
    repl = var_class("e").join(cert_expr(LOCAL), EXT).join(cert_expr(GLOBAL), EXT)
    pre = p.substitute({VarClass("x"): repl}, EXT)
    (bound,) = pre.bounds
    assert bound.lhs.symbols == frozenset({VarClass("e"), LOCAL, GLOBAL})


def test_vlg_decomposition():
    a = vlg([("x", "high")], l="low", g="high")
    v, local, global_ = a.vlg()
    assert len(v) == 1
    assert local == const_expr("low")
    assert global_ == const_expr("high")


def test_vlg_missing_parts_are_none():
    a = FlowAssertion([Bound(var_class("x"), const_expr("low"))])
    v, local, global_ = a.vlg()
    assert local is None and global_ is None


def test_vlg_rejects_mixed_bound():
    # sem + local + global <= g is not {V, L, G} shaped.
    lhs = var_class("sem").join(cert_expr(LOCAL), EXT).join(cert_expr(GLOBAL), EXT)
    a = FlowAssertion([Bound(lhs, const_expr("high"))])
    with pytest.raises(AssertionFormError):
        a.vlg()
    assert not a.is_vlg()


def test_vlg_rejects_two_distinct_local_bounds():
    a = FlowAssertion(
        [
            Bound(cert_expr(LOCAL), const_expr("low")),
            Bound(cert_expr(LOCAL), const_expr("high")),
        ]
    )
    with pytest.raises(AssertionFormError):
        a.vlg()


def test_vlg_tolerates_duplicate_identical_bounds():
    a = FlowAssertion(
        [
            Bound(cert_expr(LOCAL), const_expr("low")),
            Bound(cert_expr(LOCAL), const_expr("low")),
        ]
    )
    v, local, _ = a.vlg()
    assert local == const_expr("low")


def test_v_part_filters_cert_vars():
    a = vlg([("x", "high")])
    assert len(a.v_part()) == 1
    assert not a.v_part().bounds == a.bounds


def test_true_assertion():
    assert len(FlowAssertion.true()) == 0
    assert repr(FlowAssertion.true()) == "{true}"


def test_policy_assertion_from_binding():
    scheme = two_level()
    binding = StaticBinding(scheme, {"x": "high", "y": "low"})
    p = policy_assertion(binding)
    assert Bound(var_class("x"), const_expr("high")) in p.bounds
    assert Bound(var_class("y"), const_expr("low")) in p.bounds


def test_policy_assertion_with_explicit_variables():
    scheme = two_level()
    binding = StaticBinding(scheme, {}, default="high")
    p = policy_assertion(binding, ["a", "b"])
    assert len(p) == 2


def test_immutability():
    a = FlowAssertion.true()
    with pytest.raises(AttributeError):
        a.bounds = frozenset()


def test_non_bound_rejected():
    with pytest.raises(AssertionFormError):
        FlowAssertion(["not a bound"])
