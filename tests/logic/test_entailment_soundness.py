"""Soundness of the entailment engine, verified by brute force.

``P |- Q`` must only hold when *every* valuation of the symbols (over
the lattice) satisfying every bound of P also satisfies Q.  For small
lattices and few symbols the semantic check is exhaustively decidable,
so we can hammer the engine with random hypotheses/goals and verify it
never over-claims.  (Completeness is deliberately not required — the
engine is conservative outside the completely-invariant fragment.)
"""

import itertools

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.lattice.chain import two_level
from repro.lattice.extended import NIL, ExtendedLattice
from repro.lattice.finite import diamond
from repro.logic.assertions import Bound, FlowAssertion
from repro.logic.classexpr import (
    GLOBAL,
    LOCAL,
    ClassExpr,
    VarClass,
    cert_expr,
    var_class,
)
from repro.logic.entailment import Entailment

SYMBOLS = [VarClass("x"), VarClass("y"), LOCAL, GLOBAL]


def semantic_entails(ext: ExtendedLattice, hypothesis, goal) -> bool:
    """Exhaustive check over all symbol valuations."""
    elements = sorted(ext.elements, key=repr)

    def value(expr: ClassExpr, valuation):
        out = expr.const
        for s in expr.symbols:
            out = ext.join(out, valuation[s])
        return out

    def satisfies(assertion, valuation):
        return all(
            ext.leq(value(b.lhs, valuation), value(b.rhs, valuation))
            for b in assertion.bounds
        )

    goals = goal.bounds if isinstance(goal, FlowAssertion) else (goal,)
    for combo in itertools.product(elements, repeat=len(SYMBOLS)):
        valuation = dict(zip(SYMBOLS, combo))
        if satisfies(hypothesis, valuation):
            for g in goals:
                if not ext.leq(value(g.lhs, valuation), value(g.rhs, valuation)):
                    return False
    return True


@st.composite
def class_expr(draw, ext):
    symbols = draw(st.frozensets(st.sampled_from(SYMBOLS), max_size=2))
    consts = sorted(ext.elements, key=repr) + [NIL]
    const = draw(st.sampled_from(consts))
    return ClassExpr(symbols, const)


@st.composite
def assertion(draw, ext, max_bounds=3):
    n = draw(st.integers(min_value=0, max_value=max_bounds))
    bounds = [
        Bound(draw(class_expr(ext)), draw(class_expr(ext))) for _ in range(n)
    ]
    return FlowAssertion(bounds)


@given(st.data())
@settings(max_examples=150, deadline=None)
def test_engine_is_sound_on_two_level(data):
    ext = ExtendedLattice(two_level())
    engine = Entailment(ext)
    hyp = data.draw(assertion(ext))
    goal = Bound(data.draw(class_expr(ext)), data.draw(class_expr(ext)))
    if engine.entails(hyp, goal):
        assert semantic_entails(ext, hyp, goal)


@given(st.data())
@settings(max_examples=60, deadline=None)
def test_engine_is_sound_on_diamond(data):
    ext = ExtendedLattice(diamond())
    engine = Entailment(ext)
    hyp = data.draw(assertion(ext, max_bounds=2))
    goal = Bound(data.draw(class_expr(ext)), data.draw(class_expr(ext)))
    if engine.entails(hyp, goal):
        assert semantic_entails(ext, hyp, goal)


def test_engine_is_complete_on_the_invariant_fragment():
    """Hypotheses 'symbol <= constant', goals 'join <= constant':
    the fragment Theorems 1-2 need.  Verify agreement with semantics
    exhaustively over the two-level lattice."""
    ext = ExtendedLattice(two_level())
    engine = Entailment(ext)
    consts = ["low", "high"]
    for bx in consts:
        for by in consts:
            for bl in consts:
                hyp = FlowAssertion(
                    [
                        Bound(var_class("x"), ClassExpr((), bx)),
                        Bound(var_class("y"), ClassExpr((), by)),
                        Bound(cert_expr(LOCAL), ClassExpr((), bl)),
                    ]
                )
                for lhs_syms in (
                    frozenset(),
                    frozenset({VarClass("x")}),
                    frozenset({VarClass("x"), VarClass("y"), LOCAL}),
                ):
                    for lhs_const in ("low", "high", NIL):
                        for rhs_const in consts:
                            goal = Bound(
                                ClassExpr(lhs_syms, lhs_const),
                                ClassExpr((), rhs_const),
                            )
                            got = engine.entails(hyp, goal)
                            want = semantic_entails(ext, hyp, goal)
                            assert got == want, (hyp, goal)


@given(st.data())
@settings(max_examples=80, deadline=None)
def test_equivalence_is_symmetric_and_reflexive(data):
    ext = ExtendedLattice(two_level())
    engine = Entailment(ext)
    a = data.draw(assertion(ext))
    b = data.draw(assertion(ext))
    assert engine.equivalent(a, a)
    assert engine.equivalent(a, b) == engine.equivalent(b, a)
