"""Theorem 1's constructive proof generator."""

import pytest

from repro.core.binding import StaticBinding
from repro.core.cfm import certify
from repro.errors import GenerationError
from repro.lang.parser import parse_statement
from repro.lattice.chain import four_level, two_level
from repro.lattice.extended import NIL
from repro.logic.checker import check_proof
from repro.logic.classexpr import const_expr
from repro.logic.extract import is_completely_invariant
from repro.logic.generator import generate_proof

SCHEME = two_level()


def case(source, **classes):
    stmt = parse_statement(source)
    binding = StaticBinding(SCHEME, classes)
    return stmt, binding


def test_rejected_program_raises():
    stmt, binding = case("y := x", x="high", y="low")
    with pytest.raises(GenerationError):
        generate_proof(stmt, binding)


def test_l_g_must_be_below_mod():
    stmt, binding = case("y := x", x="low", y="low")
    with pytest.raises(GenerationError):
        generate_proof(stmt, binding, l="high")  # l+g = high > mod = low


def test_assignment_proof_shape():
    stmt, binding = case("y := x", x="low", y="high")
    proof = generate_proof(stmt, binding)
    assert proof.rule == "consequence"
    assert proof.premises[0].rule == "assignment"
    assert check_proof(proof, SCHEME).ok


def test_theorem_postcondition_form():
    """Post must be {I, local<=l, global<=g (+) l (+) flow(S)}."""
    stmt, binding = case("begin wait(sem); y := 1 end", sem="low", y="high")
    report = certify(stmt, binding)
    proof = generate_proof(stmt, binding, report=report)
    _, l_bound, g_bound = proof.post.vlg()
    assert l_bound == const_expr("low")
    flow = report.analysis.flow(stmt)
    ext = binding.extended
    expected_max = ext.join(ext.join("low", "low"), flow)
    # Our generator keeps the tight bound, which must be <= the theorem's.
    assert ext.leq(g_bound.const, expected_max)


def test_flow_nil_keeps_global_tight():
    stmt, binding = case("if h = 0 then x := 1", h="high", x="high")
    proof = generate_proof(stmt, binding)
    _, _, g_bound = proof.post.vlg()
    assert g_bound == const_expr("low")  # no global flows: g unchanged


def test_wait_raises_global():
    stmt, binding = case("wait(sem)", sem="high")
    proof = generate_proof(stmt, binding)
    _, _, g_bound = proof.post.vlg()
    assert g_bound == const_expr("high")


def test_nondefault_l_and_g():
    stmt, binding = case("y := x", x="high", y="high")
    proof = generate_proof(stmt, binding, l="high", g="high")
    _, l_bound, g_bound = proof.pre.vlg()
    assert l_bound == const_expr("high")
    assert g_bound == const_expr("high")
    assert check_proof(proof, SCHEME).ok


def test_every_rule_form_appears(scheme):
    source = """
    begin
      x := 1;
      if x = 0 then y := 1 else skip;
      while c > 0 do c := c - 1;
      cobegin
        begin signal(s); z := 1 end
      ||
        begin wait(s); w := 1 end
      coend
    end
    """
    stmt = parse_statement(source)
    binding = StaticBinding(
        scheme,
        {n: "low" for n in ("x", "y", "c", "s", "z", "w")},
    )
    proof = generate_proof(stmt, binding)
    rules = {node.rule for node in proof.walk()}
    assert {
        "composition",
        "alternation",
        "iteration",
        "concurrency",
        "assignment",
        "wait",
        "signal",
        "skip",
        "consequence",
    } <= rules
    assert check_proof(proof, scheme).ok
    assert is_completely_invariant(proof, binding)


def test_missing_else_gets_skip_premise():
    stmt, binding = case("if h = 0 then x := 1", h="low", x="low")
    proof = generate_proof(stmt, binding)
    from repro.lang.ast import Skip

    p2 = proof.premises[1]
    inner = p2.premises[0] if p2.rule == "consequence" else p2
    assert isinstance(inner.stmt, Skip)


def test_while_inserts_invariant_weakening():
    stmt, binding = case(
        "while c > 0 do begin x := x + 1; wait(s) end",
        c="low", x="high", s="high",
    )
    proof = generate_proof(stmt, binding)
    assert proof.rule == "consequence"
    assert proof.premises[0].rule == "iteration"
    assert check_proof(proof, SCHEME).ok


def test_four_level_generation():
    levels = four_level()
    stmt = parse_statement("begin m := a; if m = 0 then out := 1 end")
    binding = StaticBinding(
        levels, {"a": "confidential", "m": "secret", "out": "topsecret"}
    )
    proof = generate_proof(stmt, binding)
    assert check_proof(proof, levels).ok
    assert is_completely_invariant(proof, binding)


def test_figure3_proof(fig3, fig3_binding_safe):
    proof = generate_proof(fig3, fig3_binding_safe)
    assert check_proof(proof, fig3_binding_safe.scheme).ok
    assert is_completely_invariant(proof, fig3_binding_safe)
    # Concurrency rule with three interference-free premises.
    root = proof if proof.rule == "concurrency" else proof.premises[0]
    assert root.rule == "concurrency"
    assert len(root.premises) == 3


def test_report_reuse(scheme):
    stmt, binding = case("x := 1", x="low")
    report = certify(stmt, binding)
    proof = generate_proof(stmt, binding, report=report)
    assert check_proof(proof, scheme).ok


def test_generation_notes_present():
    stmt, binding = case("while c > 0 do c := c - 1", c="low")
    proof = generate_proof(stmt, binding)
    notes = [n.note for n in proof.walk() if n.note]
    assert any("invariant" in note for note in notes)
