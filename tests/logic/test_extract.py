"""Theorem 2: completely invariant proofs imply certification."""

import pytest

from repro.core.binding import StaticBinding
from repro.errors import LogicError
from repro.lang.parser import parse_statement
from repro.lattice.chain import two_level
from repro.logic.extract import (
    certification_from_proof,
    completely_invariant_problems,
    is_completely_invariant,
)
from repro.logic.generator import generate_proof

SCHEME = two_level()


def test_generated_proofs_are_completely_invariant():
    stmt = parse_statement("begin wait(s); x := 1; if x = 0 then y := 2 end")
    binding = StaticBinding(SCHEME, {"s": "low", "x": "low", "y": "low"})
    proof = generate_proof(stmt, binding)
    assert is_completely_invariant(proof, binding)


def test_round_trip_certification():
    stmt = parse_statement("begin wait(s); x := 1 end")
    binding = StaticBinding(SCHEME, {"s": "low", "x": "high"})
    proof = generate_proof(stmt, binding)
    report = certification_from_proof(proof, binding)
    assert report.certified


def test_not_invariant_for_a_different_binding():
    stmt = parse_statement("x := 1")
    binding = StaticBinding(SCHEME, {"x": "low"})
    proof = generate_proof(stmt, binding)
    other = StaticBinding(SCHEME, {"x": "high"})
    assert not is_completely_invariant(proof, other)
    with pytest.raises(LogicError):
        certification_from_proof(proof, other)


def test_problems_name_the_offending_statement():
    stmt = parse_statement("begin x := 0; y := x end")
    binding = StaticBinding(SCHEME, {"x": "high", "y": "low"})
    # Build the section 5.2 proof (valid but policy-strengthening).
    from tests.logic.test_checker import section52_proof

    s, proof = section52_proof()
    problems = completely_invariant_problems(proof, StaticBinding(
        SCHEME, {"x": "high", "y": "low"}
    ))
    assert problems
    assert any("policy assertion" in p for p in problems)


def test_symbolic_bounds_are_not_constants():
    # A proof whose local bound mentions a variable class is not
    # completely invariant (Definition 7 requires constants).
    from repro.logic.assertions import Bound, FlowAssertion, vlg_assertion
    from repro.logic.classexpr import cert_expr, const_expr, var_class, LOCAL, GLOBAL
    from repro.logic.proof import ProofNode
    from repro.lang.ast import Skip

    sk = Skip()
    v = FlowAssertion([Bound(var_class("x"), const_expr("low"))])
    a = vlg_assertion(v, var_class("x"), const_expr("low"))  # local <= class(x)!
    proof = ProofNode("skip", sk, a, a)
    binding = StaticBinding(SCHEME, {"x": "low"})
    problems = completely_invariant_problems(proof, binding)
    assert any("not a constant" in p for p in problems)


def test_paper_corpus_round_trips(scheme):
    from repro.core.inference import infer_binding
    from repro.workloads.paper import paper_programs

    for name, stmt in paper_programs().items():
        result = infer_binding(stmt, scheme, {})
        proof = generate_proof(stmt, result.binding)
        report = certification_from_proof(proof, result.binding)
        assert report.certified, name
