"""Class expressions and their normal form."""

import pytest

from repro.errors import LogicError
from repro.lang.parser import parse_expression
from repro.lattice.chain import two_level
from repro.lattice.extended import NIL, ExtendedLattice
from repro.logic.classexpr import (
    GLOBAL,
    LOCAL,
    CertVar,
    ClassExpr,
    VarClass,
    cert_expr,
    class_of_expr,
    const_expr,
    join_all,
    var_class,
)

EXT = ExtendedLattice(two_level())


def test_symbols_are_value_equal():
    assert VarClass("x") == VarClass("x")
    assert VarClass("x") != VarClass("y")
    assert CertVar("local") == LOCAL
    assert hash(VarClass("x")) == hash(VarClass("x"))


def test_unknown_certvar_rejected():
    with pytest.raises(LogicError):
        CertVar("static")


def test_join_normalizes_symbols_and_const():
    e = var_class("x").join(var_class("y"), EXT).join(const_expr("low"), EXT)
    assert e.symbols == frozenset({VarClass("x"), VarClass("y")})
    assert e.const == "low"


def test_join_is_idempotent():
    e = var_class("x").join(var_class("x"), EXT)
    assert e.symbols == frozenset({VarClass("x")})


def test_const_joins_in_lattice():
    e = const_expr("low").join(const_expr("high"), EXT)
    assert e.const == "high"


def test_nil_is_join_identity():
    e = var_class("x").join(ClassExpr(), EXT)
    assert e == var_class("x")


def test_substitute_replaces_symbol():
    e = var_class("x").join(cert_expr(LOCAL), EXT)
    repl = var_class("y").join(const_expr("high"), EXT)
    out = e.substitute({VarClass("x"): repl}, EXT)
    assert out.symbols == frozenset({VarClass("y"), LOCAL})
    assert out.const == "high"


def test_substitute_is_simultaneous():
    # [x <- y, y <- x] must swap, not chain.
    e = var_class("x").join(var_class("y"), EXT)
    out = e.substitute({VarClass("x"): var_class("y"), VarClass("y"): var_class("x")}, EXT)
    assert out.symbols == frozenset({VarClass("x"), VarClass("y")})


def test_substitute_misses_are_identity():
    e = var_class("x")
    assert e.substitute({VarClass("z"): const_expr("high")}, EXT) == e


def test_mentions():
    e = var_class("x").join(cert_expr(GLOBAL), EXT)
    assert e.mentions(VarClass("x"))
    assert e.mentions(GLOBAL)
    assert not e.mentions(LOCAL)
    assert e.mentions_cert_vars()
    assert not var_class("x").mentions_cert_vars()


def test_is_constant_and_variables():
    assert const_expr("low").is_constant
    assert not var_class("x").is_constant
    assert var_class("x").join(var_class("y"), EXT).variables() == frozenset({"x", "y"})


def test_evaluate():
    e = var_class("x").join(const_expr("low"), EXT)
    assert e.evaluate(EXT, {VarClass("x"): "high"}) == "high"
    assert e.evaluate(EXT, {VarClass("x"): "low"}) == "low"


def test_evaluate_missing_symbol_raises():
    with pytest.raises(LogicError):
        var_class("x").evaluate(EXT, {})


def test_immutability():
    e = var_class("x")
    with pytest.raises(AttributeError):
        e.const = "high"


def test_class_of_expr_symbols():
    e = class_of_expr(parse_expression("a + b"), two_level())
    assert e.symbols == frozenset({VarClass("a"), VarClass("b")})
    assert e.const is NIL


def test_class_of_expr_constants_are_low():
    e = class_of_expr(parse_expression("a + 3"), two_level())
    assert e.const == "low"
    e2 = class_of_expr(parse_expression("42"), two_level())
    assert e2.const == "low" and not e2.symbols


def test_join_all_empty_is_nil_expr():
    e = join_all([], EXT)
    assert e == ClassExpr()


def test_repr_stable():
    e = var_class("x").join(cert_expr(LOCAL), EXT)
    assert "_x_" in repr(e) and "local" in repr(e)
