"""Proof search: analysis states -> checked Figure 1 proofs."""

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.core.binding import StaticBinding
from repro.core.flowsensitive import analyze
from repro.core.inference import infer_binding
from repro.errors import LogicError
from repro.lang.parser import parse_statement
from repro.lattice.chain import two_level
from repro.logic.checker import check_proof
from repro.logic.extract import is_completely_invariant
from repro.logic.search import proof_from_analysis, state_assertion
from repro.workloads.generators import random_program

SCHEME = two_level()


def build(source, **classes):
    stmt = parse_statement(source)
    binding = StaticBinding(SCHEME, classes)
    proof = proof_from_analysis(stmt, binding)
    return stmt, binding, proof


def test_section52_proof_matches_the_paper():
    stmt, binding, proof = build("begin x := 0; y := x end", x="high", y="low")
    checked = check_proof(proof, SCHEME)
    assert checked.ok, checked.problems
    # The proof strengthens the policy (x <= low mid-way), so it is not
    # completely invariant -- exactly the paper's section 5.2 point.
    assert not is_completely_invariant(proof, binding)
    # Pre keeps x <= high, post has x <= low.
    pre_v, _, _ = proof.pre.vlg()
    post_v, _, _ = proof.post.vlg()
    assert any("high" in repr(b.rhs) for b in pre_v.bounds)
    assert all("high" not in repr(b.rhs) for b in post_v.bounds)


def test_if_proof_checks():
    _, _, proof = build(
        "begin if c = 0 then x := 0 else x := 1; y := x end",
        c="low", x="high", y="low",
    )
    assert check_proof(proof, SCHEME).ok


def test_missing_else_proof_checks():
    _, _, proof = build("if c = 0 then x := 1", c="low", x="low")
    assert check_proof(proof, SCHEME).ok


def test_while_proof_uses_fixpoint_invariant():
    _, _, proof = build(
        "while c < 3 do begin acc := acc + x; c := c + 1 end",
        c="low", acc="high", x="high",
    )
    assert check_proof(proof, SCHEME).ok
    notes = [n.note for n in proof.walk() if n.note]
    assert any("fixpoint" in note for note in notes)


def test_wait_signal_proofs_check():
    _, _, proof = build(
        "begin signal(s); wait(s); y := 1 end", s="low", y="low"
    )
    assert check_proof(proof, SCHEME).ok


def test_rejected_program_raises():
    stmt = parse_statement("y := x")
    binding = StaticBinding(SCHEME, {"x": "high", "y": "low"})
    with pytest.raises(LogicError):
        proof_from_analysis(stmt, binding)


def test_concurrent_program_refused():
    stmt = parse_statement("cobegin x := 1 || y := 2 coend")
    binding = StaticBinding(SCHEME, {"x": "low", "y": "low"})
    with pytest.raises(LogicError):
        proof_from_analysis(stmt, binding)


def test_report_reuse():
    stmt = parse_statement("x := 1")
    binding = StaticBinding(SCHEME, {"x": "low"})
    report = analyze(stmt, binding)
    proof = proof_from_analysis(stmt, binding, report)
    assert check_proof(proof, SCHEME).ok


def test_state_assertion_shape(scheme):
    from repro.core.flowsensitive import FSState

    state = FSState(scheme, {"x": "high"}, "low", "high")
    assertion = state_assertion(state)
    v, local, global_ = assertion.vlg()
    assert len(v) == 1
    assert local.const == "low"
    assert global_.const == "high"


@given(st.integers(min_value=0, max_value=300))
@settings(max_examples=40, deadline=None)
def test_random_sequential_proofs_check(seed):
    prog = random_program(seed, size=25, p_cobegin=0.0, p_sem_op=0.0)
    binding = infer_binding(prog, SCHEME, {}).binding
    report = analyze(prog, binding)
    assert report.certified
    proof = proof_from_analysis(prog, binding, report)
    checked = check_proof(proof, SCHEME)
    assert checked.ok, checked.problems[:3]


@given(st.integers(min_value=0, max_value=150))
@settings(max_examples=25, deadline=None)
def test_random_sequential_with_sanitization(seed):
    """Prepend a sanitizer so the proof must use flow-sensitivity."""
    import random as _r

    from repro.lang import builder as b
    from repro.lang.ast import used_variables

    prog = random_program(seed, size=18, p_cobegin=0.0, p_sem_op=0.0)
    names = sorted(used_variables(prog.body))
    rng = _r.Random(seed)
    secret = rng.choice(names)
    stmt = b.begin(b.assign(secret, 0), prog.body)
    classes = {n: "low" for n in names}
    classes[secret] = "high"
    binding = StaticBinding(SCHEME, classes)
    report = analyze(stmt, binding)
    # After sanitizing the only high variable, everything stays low.
    assert report.certified
    proof = proof_from_analysis(stmt, binding, report)
    assert check_proof(proof, SCHEME).ok
