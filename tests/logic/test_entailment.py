"""The derivability relation P |- Q."""

from repro.lattice.chain import four_level, two_level
from repro.lattice.extended import ExtendedLattice
from repro.lattice.finite import diamond
from repro.logic.assertions import Bound, FlowAssertion
from repro.logic.classexpr import (
    GLOBAL,
    LOCAL,
    VarClass,
    cert_expr,
    const_expr,
    var_class,
)

EXT = ExtendedLattice(two_level())
ENGINE = None


def engine(ext=EXT):
    from repro.logic.entailment import Entailment

    return Entailment(ext)


def hyp(*bounds):
    return FlowAssertion(bounds)


def B(lhs, rhs):
    return Bound(lhs, rhs)


def test_syntactic_occurrence():
    # x <= x + y holds with no hypotheses.
    e = engine()
    goal = B(var_class("x"), var_class("x").join(var_class("y"), EXT))
    assert e.entails(hyp(), goal)


def test_constant_comparison():
    e = engine()
    assert e.entails(hyp(), B(const_expr("low"), const_expr("high")))
    assert not e.entails(hyp(), B(const_expr("high"), const_expr("low")))


def test_nil_constant_below_everything():
    e = engine()
    from repro.logic.classexpr import ClassExpr

    assert e.entails(hyp(), B(ClassExpr(), const_expr("low")))


def test_upper_bound_transitivity():
    # {x <= low} |- x <= high.
    e = engine()
    h = hyp(B(var_class("x"), const_expr("low")))
    assert e.entails(h, B(var_class("x"), const_expr("high")))
    assert not e.entails(h, B(const_expr("high"), var_class("x")))


def test_join_on_left_decomposes():
    # {x <= low, local <= low, global <= low} |- x + local + global <= high.
    e = engine()
    h = hyp(
        B(var_class("x"), const_expr("low")),
        B(cert_expr(LOCAL), const_expr("low")),
        B(cert_expr(GLOBAL), const_expr("low")),
    )
    lhs = var_class("x").join(cert_expr(LOCAL), EXT).join(cert_expr(GLOBAL), EXT)
    assert e.entails(h, B(lhs, const_expr("high")))
    assert e.entails(h, B(lhs, const_expr("low")))


def test_fails_without_bound_for_some_symbol():
    e = engine()
    h = hyp(B(var_class("x"), const_expr("low")))
    lhs = var_class("x").join(var_class("y"), EXT)
    assert not e.entails(h, B(lhs, const_expr("high")))


def test_symbol_chains():
    # {x <= y, y <= low} |- x <= low.
    e = engine()
    h = hyp(B(var_class("x"), var_class("y")), B(var_class("y"), const_expr("low")))
    assert e.entails(h, B(var_class("x"), const_expr("low")))


def test_cyclic_hypotheses_terminate():
    e = engine()
    h = hyp(B(var_class("x"), var_class("y")), B(var_class("y"), var_class("x")))
    assert e.entails(h, B(var_class("x"), var_class("y")))
    assert not e.entails(h, B(var_class("x"), const_expr("low")))


def test_compound_hypothesis_bounds_components():
    # {x + y <= low} gives x <= low and y <= low.
    e = engine()
    h = hyp(B(var_class("x").join(var_class("y"), EXT), const_expr("low")))
    assert e.entails(h, B(var_class("x"), const_expr("low")))
    assert e.entails(h, B(var_class("y"), const_expr("low")))


def test_constant_lower_bounds_of_symbols():
    # {high <= x} |- high <= x + y.
    e = engine()
    h = hyp(B(const_expr("high"), var_class("x")))
    goal = B(const_expr("high"), var_class("x").join(var_class("y"), EXT))
    assert e.entails(h, goal)


def test_constant_not_derivable_from_nothing():
    e = engine()
    assert not e.entails(hyp(), B(const_expr("high"), var_class("x")))


def test_conjunction_goal():
    e = engine()
    h = hyp(B(var_class("x"), const_expr("low")))
    goal = hyp(
        B(var_class("x"), const_expr("high")),
        B(const_expr("low"), const_expr("low")),
    )
    assert e.entails(h, goal)


def test_equivalence():
    e = engine()
    a = hyp(B(var_class("x"), const_expr("low")))
    b = hyp(B(var_class("x"), const_expr("low")))
    assert e.equivalent(a, b)
    c = hyp(B(var_class("x"), const_expr("high")))
    assert not e.equivalent(a, c)


def test_equivalence_up_to_redundancy():
    e = engine()
    a = hyp(B(var_class("x"), const_expr("low")))
    b = hyp(
        B(var_class("x"), const_expr("low")),
        B(var_class("x"), const_expr("high")),  # redundant
    )
    assert e.equivalent(a, b)


def test_four_level_chains():
    ext = ExtendedLattice(four_level())
    e = engine(ext)
    h = hyp(B(var_class("x"), const_expr("confidential")))
    assert e.entails(h, B(var_class("x"), const_expr("secret")))
    assert not e.entails(h, B(var_class("x"), const_expr("unclassified")))


def test_diamond_incomparability():
    ext = ExtendedLattice(diamond())
    e = engine(ext)
    h = hyp(B(var_class("x"), const_expr("left")))
    assert not e.entails(h, B(var_class("x"), const_expr("right")))
    assert e.entails(h, B(var_class("x"), const_expr("high")))


def test_soundness_spot_check_diamond():
    # {x <= left, y <= right} |- x + y <= high but not <= left.
    ext = ExtendedLattice(diamond())
    e = engine(ext)
    h = hyp(
        B(var_class("x"), const_expr("left")),
        B(var_class("y"), const_expr("right")),
    )
    lhs = var_class("x").join(var_class("y"), ext)
    assert e.entails(h, B(lhs, const_expr("high")))
    assert not e.entails(h, B(lhs, const_expr("left")))
