"""The independent proof checker: accepts Figure 1, rejects perturbations."""

import pytest

from repro.core.binding import StaticBinding
from repro.errors import ProofError
from repro.lang.parser import parse_statement
from repro.lattice.chain import two_level
from repro.lattice.extended import ExtendedLattice
from repro.logic.assertions import Bound, FlowAssertion, vlg_assertion
from repro.logic.checker import action_substitution, check_proof
from repro.logic.classexpr import const_expr, var_class
from repro.logic.generator import generate_proof
from repro.logic.proof import ProofNode

SCHEME = two_level()
EXT = ExtendedLattice(SCHEME)


def VLG(v_pairs, l="low", g="low"):
    v = FlowAssertion(Bound(var_class(n), const_expr(c)) for n, c in v_pairs)
    return vlg_assertion(v, const_expr(l), const_expr(g))


def certified_proof(source, **classes):
    stmt = parse_statement(source)
    binding = StaticBinding(SCHEME, classes)
    return stmt, binding, generate_proof(stmt, binding)


# ----------------------------------------------------------------------
# Hand-built proofs: the paper's section 5.2 example.
# ----------------------------------------------------------------------


def section52_proof():
    s = parse_statement("begin x := 0; y := x end")
    a1 = VLG([("x", "high"), ("y", "low")])
    a2 = VLG([("x", "low"), ("y", "low")])  # x's class drops after x := 0
    a3 = VLG([("x", "low"), ("y", "low")])
    first, second = s.body
    ax1 = ProofNode(
        "assignment",
        first,
        a2.substitute(action_substitution(first, SCHEME), EXT),
        a2,
    )
    n1 = ProofNode("consequence", first, a1, a2, [ax1])
    ax2 = ProofNode(
        "assignment",
        second,
        a3.substitute(action_substitution(second, SCHEME), EXT),
        a3,
    )
    n2 = ProofNode("consequence", second, a2, a3, [ax2])
    return s, ProofNode("composition", s, a1, a3, [n1, n2])


def test_section52_hand_proof_is_valid():
    _, proof = section52_proof()
    assert check_proof(proof, SCHEME).ok


def test_section52_proof_strengthens_the_policy():
    # The intermediate assertion x <= low is stronger than the policy
    # x <= high, which is exactly why CFM cannot find it (Theorem 2).
    from repro.logic.extract import is_completely_invariant

    s, proof = section52_proof()
    binding = StaticBinding(SCHEME, {"x": "high", "y": "low"})
    assert not is_completely_invariant(proof, binding)


def test_wrong_direction_rejected():
    # Try to prove y := x keeps y <= low while x <= high: must fail.
    s = parse_statement("y := x")
    post = VLG([("x", "high"), ("y", "low")])
    pre = VLG([("x", "high"), ("y", "low")])
    node = ProofNode("assignment", s, pre, post)
    checked = check_proof(node, SCHEME)
    assert not checked.ok


# ----------------------------------------------------------------------
# Structural rejection: each rule applied to the wrong statement.
# ----------------------------------------------------------------------


def test_rule_statement_mismatch():
    s = parse_statement("x := 1")
    a = VLG([("x", "low")])
    for rule in ("alternation", "iteration", "composition", "concurrency",
                 "wait", "signal", "skip"):
        node = ProofNode(rule, s, a, a)
        assert not check_proof(node, SCHEME).ok, rule


def test_unknown_rule_rejected_at_construction():
    s = parse_statement("x := 1")
    a = VLG([("x", "low")])
    with pytest.raises(ProofError):
        ProofNode("induction", s, a, a)


def test_wrong_premise_count():
    s = parse_statement("if c = 0 then x := 1 else y := 2")
    a = VLG([("x", "low"), ("y", "low"), ("c", "low")])
    node = ProofNode("alternation", s, a, a, [])
    assert not check_proof(node, SCHEME).ok


def test_composition_premises_out_of_order():
    stmt, binding, proof = certified_proof(
        "begin x := 1; y := 2 end", x="low", y="low"
    )
    proof.premises.reverse()
    assert not check_proof(proof, SCHEME).ok


def test_consequence_premise_statement_mismatch():
    s1 = parse_statement("x := 1")
    s2 = parse_statement("y := 1")
    a = VLG([("x", "low"), ("y", "low")])
    inner = ProofNode(
        "assignment", s2, a.substitute(action_substitution(s2, SCHEME), EXT), a
    )
    outer = ProofNode("consequence", s1, a, a, [inner])
    assert not check_proof(outer, SCHEME).ok


# ----------------------------------------------------------------------
# Semantic rejection: perturbed generated proofs.
# ----------------------------------------------------------------------


def perturb_post(proof):
    """Weaken a policy bound in the root postcondition illegally."""
    bad_post = VLG([("x", "low"), ("h", "low")])
    return ProofNode(proof.rule, proof.stmt, proof.pre, bad_post, proof.premises)


def test_tampered_postcondition_rejected():
    stmt, binding, proof = certified_proof("x := h", x="high", h="high")
    # Claim the post keeps h <= low although sbind(h) = high.
    tampered = perturb_post(proof)
    assert not check_proof(tampered, SCHEME).ok


def test_tampered_local_bound_rejected():
    stmt, binding, proof = certified_proof(
        "if h = 0 then x := 1", h="high", x="high"
    )
    # The alternation premises must carry local <= l + sbind(e) = high;
    # rewrite them to claim local stayed low.
    alt = proof
    assert alt.rule == "alternation"
    p1 = alt.premises[0]
    fake_pre = VLG([("h", "high"), ("x", "high")], l="low", g="low")
    fake_post = VLG([("h", "high"), ("x", "high")], l="low", g="low")
    bad_axiom = ProofNode(
        "assignment",
        p1.stmt,
        fake_post.substitute(action_substitution(p1.stmt, SCHEME), EXT),
        fake_post,
    )
    alt.premises[0] = ProofNode("consequence", p1.stmt, fake_pre, fake_post, [bad_axiom])
    checked = check_proof(alt, SCHEME)
    assert not checked.ok


def test_iteration_needs_invariance():
    s = parse_statement("while c > 0 do x := x + 1")
    body = s.body
    pre_body = VLG([("c", "low"), ("x", "low")], l="low")
    post_body = VLG([("c", "low"), ("x", "high")], l="low")  # not invariant
    ax = ProofNode(
        "assignment",
        body,
        post_body.substitute(action_substitution(body, SCHEME), EXT),
        post_body,
    )
    inner = ProofNode("consequence", body, pre_body, post_body, [ax])
    node = ProofNode("iteration", s, pre_body, post_body, [inner])
    assert not check_proof(node, SCHEME).ok


def test_skip_must_preserve():
    from repro.lang.ast import Skip

    sk = Skip()
    node = ProofNode("skip", sk, VLG([("x", "high")]), VLG([("x", "low")]))
    assert not check_proof(node, SCHEME).ok


def test_wait_axiom_global_raise_checked():
    # {P[...]} wait(sem) {P}: P's global bound must absorb sem's class.
    s = parse_statement("wait(sem)")
    post = VLG([("sem", "high")], g="low")  # global <= low after a high wait
    pre = post.substitute(action_substitution(s, SCHEME), EXT)
    node = ProofNode("wait", s, pre, post)
    # The axiom itself is fine (pre is literally the substitution)...
    assert check_proof(node, SCHEME).ok
    # ...but no {I, local, global<=low} context can establish that pre:
    context = VLG([("sem", "high")], g="low")
    outer = ProofNode("consequence", s, context, post, [node])
    assert not check_proof(outer, SCHEME).ok


def test_generated_proofs_valid_across_paper_corpus(scheme):
    from repro.workloads.paper import paper_programs
    from repro.core.inference import infer_binding

    for name, stmt in paper_programs().items():
        result = infer_binding(stmt, scheme, {})
        proof = generate_proof(stmt, result.binding)
        checked = check_proof(proof, scheme)
        assert checked.ok, (name, checked.problems[:3])


def test_interference_freedom_rejects_cross_process_breakage():
    # Process 1's proof claims x stays low forever; process 2 raises x.
    s = parse_statement("cobegin y := x || x := h coend")
    b1, b2 = s.branches
    # Premise 1: {x<=low, y<=low, h<=high} y := x {same} -- relies on x low.
    a1 = VLG([("x", "low"), ("y", "low"), ("h", "high")])
    ax1 = ProofNode(
        "assignment", b1, a1.substitute(action_substitution(b1, SCHEME), EXT), a1
    )
    n1 = ProofNode("consequence", b1, a1, a1, [ax1])
    # Premise 2: {x<=high, y<=low, h<=high} x := h {same}.
    a2 = VLG([("x", "high"), ("y", "low"), ("h", "high")])
    ax2 = ProofNode(
        "assignment", b2, a2.substitute(action_substitution(b2, SCHEME), EXT), a2
    )
    n2 = ProofNode("consequence", b2, a2, a2, [ax2])
    pre = FlowAssertion(a1.bounds | a2.bounds)
    root = ProofNode("concurrency", s, pre, pre, [n1, n2])
    checked = check_proof(root, SCHEME)
    assert not checked.ok
    assert any("interference" in p for p in checked.problems)


def test_checker_reports_all_problems():
    s = parse_statement("begin x := h; y := h end")
    binding = StaticBinding(SCHEME, {"x": "high", "y": "high", "h": "high"})
    proof = generate_proof(s, binding)
    bad_post = VLG([("x", "low"), ("y", "low"), ("h", "low")])
    tampered = ProofNode("composition", s, bad_post, bad_post, proof.premises)
    checked = check_proof(tampered, SCHEME)
    assert len(checked.problems) >= 2
    with pytest.raises(ProofError):
        checked.raise_if_invalid()
