"""The command-line interface."""

import pytest

from repro.cli import main
from repro.workloads.paper import FIGURE3_SOURCE


@pytest.fixture
def fig3_file(tmp_path):
    path = tmp_path / "fig3.rl"
    path.write_text(FIGURE3_SOURCE)
    return str(path)


@pytest.fixture
def simple_file(tmp_path):
    path = tmp_path / "simple.rl"
    path.write_text("var x, y : integer; begin x := 1; y := x end")
    return str(path)


def test_certify_accepts(simple_file, capsys):
    code = main(["certify", simple_file, "--bind", "x=low", "--bind", "y=high"])
    assert code == 0
    assert "CERTIFIED" in capsys.readouterr().out


def test_certify_rejects(simple_file, capsys):
    code = main(["certify", simple_file, "--bind", "x=high", "--bind", "y=low", "--quiet"])
    assert code == 1
    assert capsys.readouterr().out.strip() == "REJECTED"


def test_certify_figure3(fig3_file, capsys):
    code = main(["certify", fig3_file, "--bind", "x=high", "--default", "low"])
    assert code == 1
    assert "composition" in capsys.readouterr().out


def test_missing_binding_reported(simple_file, capsys):
    with pytest.raises(SystemExit):
        main(["certify", simple_file, "--bind", "x=low"])


def test_bad_bind_syntax(simple_file):
    with pytest.raises(SystemExit):
        main(["certify", simple_file, "--bind", "xlow"])


def test_denning_reject_mode(fig3_file, capsys):
    code = main(["denning", fig3_file, "--default", "low"])
    assert code == 1
    assert "unsupported" in capsys.readouterr().out


def test_denning_ignore_mode(fig3_file, capsys):
    code = main(
        ["denning", fig3_file, "--bind", "x=high", "--default", "low",
         "--on-concurrency", "ignore"]
    )
    assert code == 0


def test_infer(fig3_file, capsys):
    code = main(["infer", fig3_file, "--bind", "x=high"])
    assert code == 0
    assert "y='high'" in capsys.readouterr().out


def test_infer_unsat(fig3_file, capsys):
    code = main(["infer", fig3_file, "--bind", "x=high", "--bind", "y=low"])
    assert code == 1
    assert "unsatisfiable" in capsys.readouterr().out


def test_prove(simple_file, capsys):
    code = main(["prove", simple_file, "--bind", "x=low", "--bind", "y=low"])
    assert code == 0
    out = capsys.readouterr().out
    assert "VALID" in out
    assert "completely invariant: True" in out


def test_prove_render(simple_file, capsys):
    main(["prove", simple_file, "--default", "low", "--render"])
    assert "[composition]" in capsys.readouterr().out


def test_run(fig3_file, capsys):
    code = main(["run", fig3_file, "--set", "x=0"])
    assert code == 0
    out = capsys.readouterr().out
    assert "status: completed" in out
    assert "y = 1" in out


def test_run_with_trace_and_seed(fig3_file, capsys):
    code = main(["run", fig3_file, "--set", "x=1", "--seed", "3", "--trace"])
    assert code == 0
    assert "signal" in capsys.readouterr().out


def test_run_deadlock_exit_code(tmp_path, capsys):
    path = tmp_path / "dl.rl"
    path.write_text("var s : semaphore; wait(s)")
    assert main(["run", str(path)]) == 1


def test_explore(fig3_file, capsys):
    code = main(["explore", fig3_file, "--set", "x=0"])
    assert code == 0
    out = capsys.readouterr().out
    assert "complete=True" in out
    assert "completed(" in out


def test_report(fig3_file, capsys):
    code = main(["report", fig3_file, "--bind", "x=high", "--default", "low", "--source"])
    assert code == 0
    out = capsys.readouterr().out
    assert "flow relation" in out and "cobegin" in out


def test_stdin_input(monkeypatch, capsys):
    import io

    monkeypatch.setattr("sys.stdin", io.StringIO("var x : integer; x := 1"))
    assert main(["certify", "-", "--bind", "x=low"]) == 0


def test_validation_failure_exit(tmp_path, capsys):
    path = tmp_path / "bad.rl"
    path.write_text("var x : integer; y := 1")
    with pytest.raises(SystemExit) as exc:
        main(["certify", str(path), "--default", "low"])
    assert exc.value.code == 2


def test_parse_error_is_handled(tmp_path, capsys):
    path = tmp_path / "bad.rl"
    path.write_text("if if if")
    code = main(["certify", str(path), "--default", "low"])
    assert code == 2
    assert "error:" in capsys.readouterr().err


def test_four_level_scheme(tmp_path, capsys):
    path = tmp_path / "p.rl"
    path.write_text("var a, b : integer; b := a")
    code = main(
        ["certify", str(path), "--scheme", "four-level",
         "--bind", "a=confidential", "--bind", "b=secret"]
    )
    assert code == 0
