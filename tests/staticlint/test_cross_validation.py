"""Cross-validate the static deadlock pass against the dynamic explorer.

Soundness is the hard requirement: whenever the exhaustive explorer
(:func:`repro.analysis.deadlock.find_deadlock`) produces a deadlock
witness, the conservative static pass must *not* claim the program
deadlock-free.  The reverse direction — the static pass flagging a
program the explorer certifies clean — is an expected precision loss;
those cases are collected and reported xfail-style rather than failed.
"""

import pytest

from repro.analysis.deadlock import find_deadlock
from repro.staticlint import static_deadlock
from repro.workloads import litmus


def _checks():
    """Every (case, probe) pair the explorer can evaluate."""
    out = []
    for case in litmus.CASES:
        for probe in case.probe_values:
            out.append((case, probe))
    return out


def _store(case, probe):
    store = dict(case.base_store or {})
    store.setdefault("h", probe)
    return store


@pytest.mark.parametrize(
    "case, probe",
    _checks(),
    ids=[f"{case.name}[h={probe}]" for case, probe in _checks()],
)
def test_static_deadlock_is_sound(case, probe):
    """Explorer witness => static pass may not say deadlock-free."""
    stmt = litmus.parse_statement(case.source)
    dynamic = find_deadlock(stmt, store=_store(case, probe))
    if dynamic.deadlock_free:
        pytest.skip("no dynamic witness for this probe")
    static = static_deadlock(stmt)
    assert static.may_deadlock, (
        f"UNSOUND: the explorer found a deadlock witness for "
        f"{case.name} (h={probe}) but the static pass claims "
        f"deadlock-free"
    )


def test_precision_report():
    """Account for every conservative false positive, xfail-style.

    This test never fails on imprecision — it fails only if the
    precision collapses (more than half the dynamically-clean litmus
    checks flagged), which would mean the static pass degenerated into
    'everything may deadlock'.
    """
    false_positives = []
    agreements = 0
    clean_checks = 0
    for case, probe in _checks():
        stmt = litmus.parse_statement(case.source)
        dynamic = find_deadlock(stmt, store=_store(case, probe))
        if not (dynamic.deadlock_free and dynamic.complete):
            continue
        clean_checks += 1
        static = static_deadlock(stmt)
        if static.may_deadlock:
            false_positives.append(
                f"{case.name}[h={probe}]: static pass is conservative "
                f"(dynamic explorer proves deadlock-free)"
            )
        else:
            agreements += 1
    report = "\n".join(
        [f"precision: {agreements}/{clean_checks} clean checks agreed"]
        + [f"  XFAIL {line}" for line in false_positives]
    )
    print(report)
    assert clean_checks > 0
    assert agreements * 2 >= clean_checks, report


def test_soundness_summary_zero_disagreements():
    """The acceptance criterion: zero soundness-direction disagreements."""
    disagreements = []
    for case, probe in _checks():
        stmt = litmus.parse_statement(case.source)
        dynamic = find_deadlock(stmt, store=_store(case, probe))
        static = static_deadlock(stmt)
        if not dynamic.deadlock_free and static.deadlock_free:
            disagreements.append(f"{case.name}[h={probe}]")
    assert disagreements == []
