"""Keep ``docs/linting.md`` in lock-step with the code registry.

The docs table between the ``codes:begin``/``codes:end`` markers must
list exactly the codes in :data:`repro.staticlint.CODES`, with the
same names, severities, and descriptions.
"""

import re
from pathlib import Path

from repro.staticlint import CODES
from repro.staticlint.engine import codes_table

DOCS = Path(__file__).resolve().parents[2] / "docs" / "linting.md"


def _documented_rows():
    text = DOCS.read_text(encoding="utf-8")
    match = re.search(r"<!-- codes:begin -->\n(.*?)<!-- codes:end -->", text, re.S)
    assert match, "docs/linting.md lost its codes:begin/codes:end markers"
    rows = []
    for line in match.group(1).splitlines():
        cells = [c.strip() for c in line.strip().strip("|").split("|")]
        if len(cells) == 4 and cells[0].startswith("RPL"):
            rows.append(tuple(cells))
    return rows


def test_docs_table_matches_registry():
    assert _documented_rows() == codes_table()


def test_registry_is_well_formed():
    for code, (name, severity, description) in CODES.items():
        assert re.fullmatch(r"RPL\d{3}", code)
        assert severity in ("error", "warning", "info")
        assert name and description


def test_every_pass_advertises_registered_codes():
    from repro.staticlint import ALL_PASSES

    for lint_pass in ALL_PASSES:
        for code in lint_pass.codes:
            assert code in CODES, f"{lint_pass.name} advertises unknown {code}"


def test_loader_codes_are_registered():
    assert "RPL001" in CODES and "RPL002" in CODES
