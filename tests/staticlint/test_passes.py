"""Golden-output tests: exact codes and spans per lint pass."""

from repro.lang.parser import parse_program, parse_statement
from repro.staticlint import run_lint, static_deadlock
from repro.workloads.paper import figure3_program


def codes(result):
    return [d.code for d in result.diagnostics]


def at(result, code):
    """(line, column) pairs of every finding with ``code``."""
    return [
        (d.span.line, d.span.column)
        for d in result.diagnostics
        if d.code == code
    ]


class TestDeadlockPass:
    def test_wait_never_signalled_is_error(self):
        program = parse_program(
            "var l : integer;\n"
            "    s : semaphore initially(0);\n"
            "begin wait(s); l := 1 end"
        )
        result = run_lint(program)
        assert codes(result) == ["RPL101"]
        diagnostic = result.diagnostics[0]
        assert diagnostic.severity == "error"
        assert (diagnostic.span.line, diagnostic.span.column) == (3, 7)
        assert static_deadlock(program).may_deadlock

    def test_initial_value_covers_the_wait(self):
        program = parse_program(
            "var l : integer;\n"
            "    s : semaphore initially(1);\n"
            "begin wait(s); l := 1 end"
        )
        assert static_deadlock(program).deadlock_free
        assert codes(run_lint(program)) == []

    def test_balanced_handoff_is_clean(self):
        program = parse_program(
            "var x : integer; s : semaphore initially(0);\n"
            "cobegin\n"
            "  begin x := 1; signal(s) end\n"
            "||\n"
            "  begin wait(s); x := 2 end\n"
            "coend"
        )
        result = run_lint(program, select=("RPL1",))
        assert codes(result) == []

    def test_conditional_signal_is_not_guaranteed(self):
        program = parse_program(
            "var x, l : integer; s : semaphore initially(0);\n"
            "begin\n"
            "  if x = 0 then signal(s);\n"
            "  wait(s)\n"
            "end"
        )
        result = run_lint(program, select=("RPL102",))
        assert codes(result) == ["RPL102"]
        assert at(result, "RPL102") == [(4, 3)]

    def test_wait_order_cycle(self):
        program = parse_program(
            "var a, b : semaphore initially(1);\n"
            "cobegin\n"
            "  begin wait(a); wait(b); signal(b); signal(a) end\n"
            "||\n"
            "  begin wait(b); wait(a); signal(a); signal(b) end\n"
            "coend"
        )
        result = run_lint(program, select=("RPL103",))
        assert codes(result) == ["RPL103"]


class TestRacePass:
    def test_unsynchronized_write_write(self):
        program = parse_program(
            "var x : integer;\ncobegin x := 1 || x := 2 coend"
        )
        result = run_lint(program, select=("RPL201",))
        assert codes(result) == ["RPL201"]
        assert at(result, "RPL201") == [(2, 9)]

    def test_mutex_held_on_both_sides_is_clean(self):
        program = parse_program(
            "var x : integer; m : semaphore initially(1);\n"
            "cobegin\n"
            "  begin wait(m); x := 1; signal(m) end\n"
            "||\n"
            "  begin wait(m); x := 2; signal(m) end\n"
            "coend"
        )
        assert codes(run_lint(program, select=("RPL201",))) == []

    def test_sequential_program_has_no_races(self):
        program = parse_program("var x : integer; begin x := 1; x := x + 1 end")
        assert codes(run_lint(program, select=("RPL2",))) == []


class TestFlowPasses:
    def test_use_before_assign_span(self):
        program = parse_program(
            "var x, y : integer;\nbegin y := x; x := 1 end"
        )
        result = run_lint(program, select=("RPL301",))
        assert codes(result) == ["RPL301"]
        assert at(result, "RPL301") == [(2, 7)]

    def test_handoff_signal_establishes_the_fact(self):
        # Figure-3-style: the wait guarantees the parallel assignment
        # completed, so reading x afterwards is *not* use-before-assign.
        program = parse_program(
            "var x, y : integer; s : semaphore initially(0);\n"
            "cobegin\n"
            "  begin x := 1; signal(s) end\n"
            "||\n"
            "  begin wait(s); y := x end\n"
            "coend"
        )
        assert codes(run_lint(program, select=("RPL301",))) == []

    def test_dead_assignment(self):
        program = parse_program(
            "var x : integer;\nbegin x := 1; x := 2 end"
        )
        result = run_lint(program, select=("RPL302",))
        assert codes(result) == ["RPL302"]
        assert at(result, "RPL302") == [(2, 7)]

    def test_last_assignment_is_never_dead(self):
        # The final store is observable, so `x := 2` is live at exit.
        program = parse_program("var x : integer;\nbegin x := 2 end")
        assert codes(run_lint(program, select=("RPL302",))) == []

    def test_unreachable_constant_guard(self):
        program = parse_program(
            "var x : integer;\nbegin if 1 = 2 then x := 5; x := 1 end"
        )
        result = run_lint(program, select=("RPL303",))
        assert codes(result) == ["RPL303"]
        assert at(result, "RPL303") == [(2, 21)]

    def test_while_false_body_unreachable(self):
        program = parse_program(
            "var x : integer;\nbegin while 0 = 1 do x := 5; x := 1 end"
        )
        assert codes(run_lint(program, select=("RPL303",))) == ["RPL303"]


class TestUnusedPass:
    def test_unused_variable_and_semaphore(self):
        program = parse_program(
            "var x, ghost : integer;\n"
            "    s : semaphore initially(1);\n"
            "begin x := 1 end"
        )
        result = run_lint(program, select=("RPL4",))
        assert codes(result) == ["RPL401", "RPL402"]
        assert at(result, "RPL401") == [(1, 5)]
        assert at(result, "RPL402") == [(2, 5)]

    def test_bare_statement_declares_nothing(self):
        assert codes(run_lint(parse_statement("l := h"), select=("RPL4",))) == []


class TestLabelPass:
    def test_figure3_synchronization_channel(self):
        result = run_lint(figure3_program(), select=("RPL502",))
        assert codes(result) == ["RPL502"] * 4
        # the guarded signal(modify) in the first while iteration
        assert (7, 16) in at(result, "RPL502")
        for d in result.diagnostics:
            assert d.span.line > 0, "RPL502 must carry a real span"
            assert "x" in dict(d.extra)["guards"]

    def test_unconditional_sync_is_not_a_channel(self):
        program = parse_program(
            "var x : integer; s : semaphore initially(0);\n"
            "cobegin begin x := 1; signal(s) end || wait(s) coend"
        )
        assert codes(run_lint(program, select=("RPL502",))) == []

    def test_label_creep_is_error(self):
        from repro.core.binding import StaticBinding
        from repro.lattice.chain import two_level

        scheme = two_level()
        binding = StaticBinding(
            scheme, {"l": scheme.bottom, "h": scheme.top}
        )
        result = run_lint(parse_statement("l := h"), binding=binding)
        assert codes(result) == ["RPL501"]
        assert result.diagnostics[0].severity == "error"

    def test_over_classification_is_info(self):
        from repro.core.binding import StaticBinding
        from repro.lattice.chain import two_level

        scheme = two_level()
        binding = StaticBinding(
            scheme, {"l": scheme.bottom, "h": scheme.top}
        )
        result = run_lint(parse_statement("h := l"), binding=binding)
        assert codes(result) == ["RPL503"]
        assert result.diagnostics[0].severity == "info"

    def test_no_binding_no_creep_diagnostics(self):
        result = run_lint(parse_statement("l := h"))
        assert "RPL501" not in codes(result)
        assert "RPL503" not in codes(result)


class TestFiltering:
    PROGRAM = (
        "var x, ghost : integer;\n"
        "begin x := 1; x := 2 end"
    )

    def test_select_prefix(self):
        program = parse_program(self.PROGRAM)
        assert codes(run_lint(program, select=("RPL4",))) == ["RPL401"]

    def test_ignore_prefix(self):
        program = parse_program(self.PROGRAM)
        assert codes(run_lint(program, ignore=("RPL3",))) == ["RPL401"]

    def test_sorted_by_position(self):
        program = parse_program(self.PROGRAM)
        result = run_lint(program)
        keys = [d.sort_key() for d in result.diagnostics]
        assert keys == sorted(keys)
