"""End-to-end tests of the ``repro lint`` subcommand.

Covers text and ``--json`` output, ``--select``/``--ignore`` filters,
exit codes, ``--list-codes``, and byte-for-byte JSON stability across
runs on identical input (the contract CI and editors rely on).
"""

import json

import pytest

from repro.cli import main

CLEAN = "var x, y : integer;\nbegin x := 1; y := x end\n"
DEADLOCKED = (
    "var l : integer;\n"
    "    s : semaphore initially(0);\n"
    "begin wait(s); l := 1 end\n"
)
WARN_ONLY = "var x, ghost : integer;\nbegin x := 1 end\n"


@pytest.fixture()
def clean_file(tmp_path):
    path = tmp_path / "clean.cfm"
    path.write_text(CLEAN)
    return str(path)


@pytest.fixture()
def deadlocked_file(tmp_path):
    path = tmp_path / "deadlock.cfm"
    path.write_text(DEADLOCKED)
    return str(path)


@pytest.fixture()
def warn_file(tmp_path):
    path = tmp_path / "warn.cfm"
    path.write_text(WARN_ONLY)
    return str(path)


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


class TestExitCodes:
    def test_clean_program_exits_zero(self, capsys, clean_file):
        code, out, _ = run_cli(capsys, "lint", clean_file)
        assert code == 0
        assert "0 findings" in out

    def test_error_diagnostic_exits_one(self, capsys, deadlocked_file):
        code, out, _ = run_cli(capsys, "lint", deadlocked_file)
        assert code == 1
        assert "RPL101" in out

    def test_warnings_alone_exit_zero(self, capsys, warn_file):
        code, out, _ = run_cli(capsys, "lint", warn_file)
        assert code == 0
        assert "RPL401" in out

    def test_strict_fails_on_warnings(self, capsys, warn_file):
        code, _, _ = run_cli(capsys, "lint", "--strict", warn_file)
        assert code == 1

    def test_exit_zero_overrides_errors(self, capsys, deadlocked_file):
        code, _, _ = run_cli(capsys, "lint", "--exit-zero", deadlocked_file)
        assert code == 0

    def test_missing_file_exits_two(self, capsys, tmp_path):
        code, _, err = run_cli(capsys, "lint", str(tmp_path / "nope.cfm"))
        assert code == 2
        assert "cannot read" in err

    def test_non_utf8_file_exits_two(self, capsys, tmp_path):
        path = tmp_path / "binary.cfm"
        path.write_bytes(b"\xa8\xff\x00garbage")
        code, _, err = run_cli(capsys, "lint", str(path))
        assert code == 2
        assert "cannot read" in err


class TestFilters:
    def test_select(self, capsys, deadlocked_file):
        code, out, _ = run_cli(capsys, "lint", "--select", "RPL4", deadlocked_file)
        assert code == 0  # RPL101 filtered out, nothing remains
        assert "RPL101" not in out

    def test_ignore(self, capsys, deadlocked_file):
        code, out, _ = run_cli(capsys, "lint", "--ignore", "RPL101", deadlocked_file)
        assert code == 0
        assert "RPL101" not in out

    def test_comma_separated_and_repeatable(self, capsys, warn_file):
        code, out, _ = run_cli(
            capsys, "lint", "--ignore", "RPL401,RPL402", "--ignore", "RPL3",
            warn_file,
        )
        assert code == 0
        assert "0 findings" in out


class TestOutput:
    def test_text_lines_carry_position_and_code(self, capsys, deadlocked_file):
        _, out, _ = run_cli(capsys, "lint", deadlocked_file)
        assert f"{deadlocked_file}:3:7: RPL101" in out

    def test_json_shape(self, capsys, deadlocked_file):
        _, out, _ = run_cli(capsys, "lint", "--json", deadlocked_file)
        data = json.loads(out)
        assert isinstance(data, list) and len(data) == 1
        result = data[0]
        assert result["subject"] == deadlocked_file
        assert result["counts"]["error"] == 1
        (diagnostic,) = result["diagnostics"]
        assert diagnostic["code"] == "RPL101"
        assert diagnostic["span"]["line"] == 3
        assert diagnostic["severity"] == "error"

    def test_json_is_stable_across_runs(self, capsys, deadlocked_file, warn_file):
        _, first, _ = run_cli(capsys, "lint", "--json", deadlocked_file, warn_file)
        _, second, _ = run_cli(capsys, "lint", "--json", deadlocked_file, warn_file)
        assert first == second

    def test_list_codes(self, capsys):
        code, out, _ = run_cli(capsys, "lint", "--list-codes")
        assert code == 0
        from repro.staticlint import CODES

        for rpl in CODES:
            assert rpl in out

    def test_parse_error_becomes_rpl001(self, capsys, tmp_path):
        bad = tmp_path / "bad.cfm"
        bad.write_text("var x : integer;\nbegin x := end\n")
        code, out, _ = run_cli(capsys, "lint", str(bad))
        assert code == 1  # RPL001 is an error
        assert "RPL001" in out


class TestPythonModules:
    def test_lints_embedded_figure3(self, capsys):
        code, out, _ = run_cli(
            capsys, "lint", "examples/synchronization_channel.py"
        )
        assert code == 0  # warnings only
        assert "RPL502" in out
        assert ":figure3_program:" in out

    def test_binding_flags_enable_label_passes(self, capsys, tmp_path):
        path = tmp_path / "leak.cfm"
        path.write_text("var l, h : integer;\nbegin l := h end\n")
        code, out, _ = run_cli(
            capsys, "lint", "--bind", "l=low", "--bind", "h=high", str(path)
        )
        assert code == 1
        assert "RPL501" in out
