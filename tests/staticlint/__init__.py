"""Tests for the repro.staticlint static-analysis engine."""
