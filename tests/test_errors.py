"""The exception hierarchy: one root, informative payloads."""

import pytest

import repro.errors as E


def test_everything_derives_from_repro_error():
    roots = [
        E.LatticeError, E.NotALatticeError, E.ElementError,
        E.LanguageError, E.LexError, E.ParseError, E.ValidationError,
        E.BindingError, E.CertificationError, E.InferenceError,
        E.LogicError, E.AssertionFormError, E.ProofError,
        E.EntailmentError, E.GenerationError,
        E.RuntimeFault, E.UndefinedVariableError, E.SemaphoreError,
        E.DeadlockError, E.StepLimitExceeded, E.ExplorationLimitExceeded,
    ]
    for exc in roots:
        assert issubclass(exc, E.ReproError), exc


def test_language_errors_carry_locations():
    exc = E.ParseError("boom", 3, 7)
    assert exc.line == 3 and exc.column == 7
    assert str(exc).startswith("3:7:")
    bare = E.LexError("boom")
    assert bare.line is None
    assert str(bare) == "boom"


def test_deadlock_error_blocked_list():
    exc = E.DeadlockError("stuck", blocked=[(0,), (1,)])
    assert exc.blocked == ((0,), (1,))
    assert E.DeadlockError("stuck").blocked == ()


def test_sub_hierarchies():
    assert issubclass(E.LexError, E.LanguageError)
    assert issubclass(E.GenerationError, E.LogicError)
    assert issubclass(E.DeadlockError, E.RuntimeFault)
    assert not issubclass(E.BindingError, E.LanguageError)


def test_one_catch_handles_all():
    from repro.lang.parser import parse_statement

    with pytest.raises(E.ReproError):
        parse_statement("if if")


def test_security_violation_is_repro_error():
    from repro.runtime.enforce import SecurityViolation

    exc = SecurityViolation("no", "x", "high", "low")
    assert isinstance(exc, E.ReproError)
    assert exc.variable == "x"
    assert exc.cls == "high" and exc.bound == "low"
