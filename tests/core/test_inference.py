"""Least-binding inference."""

import pytest

from repro.core.binding import StaticBinding
from repro.core.cfm import certify
from repro.core.inference import infer_binding
from repro.lang.parser import parse_statement
from repro.lattice.chain import four_level
from repro.workloads.paper import figure3_program


def test_empty_pins_give_all_bottom(scheme):
    s = parse_statement("begin x := y; z := x end")
    result = infer_binding(s, scheme, {})
    assert result.satisfiable
    assert result.inferred == {"x": "low", "y": "low", "z": "low"}


def test_inferred_binding_certifies(scheme):
    s = parse_statement("begin x := h; if x = 0 then y := 1 end")
    result = infer_binding(s, scheme, {"h": "high"})
    assert result.satisfiable
    assert certify(parse_statement("begin x := h; if x = 0 then y := 1 end"),
                   result.binding.with_bindings({})).certified


def test_inference_is_least(scheme):
    s = parse_statement("begin a := h; b := 1 end")
    result = infer_binding(s, scheme, {"h": "high"})
    assert result.inferred["a"] == "high"
    assert result.inferred["b"] == "low"  # untouched by high data


def test_unsatisfiable_reports_violations(scheme):
    s = parse_statement("y := x")
    result = infer_binding(s, scheme, {"x": "high", "y": "low"})
    assert not result.satisfiable
    assert result.binding is None
    assert result.violations
    assert "unsatisfiable" in result.explain()


def test_figure3_inference_chain(scheme):
    result = infer_binding(figure3_program(), scheme, {"x": "high"})
    assert result.satisfiable
    assert result.inferred["y"] == "high"  # the covert channel forces it


def test_figure3_x_high_y_low_unsat(scheme):
    result = infer_binding(figure3_program(), scheme, {"x": "high", "y": "low"})
    assert not result.satisfiable


def test_four_level_inference():
    levels = four_level()
    s = parse_statement("begin m := a + b; out := m end")
    result = infer_binding(
        s, levels, {"a": "confidential", "b": "secret"}
    )
    assert result.satisfiable
    assert result.inferred["m"] == "secret"
    assert result.inferred["out"] == "secret"


def test_pins_for_unused_variables_pass_through(scheme):
    s = parse_statement("x := 1")
    result = infer_binding(s, scheme, {"ghost": "high"})
    assert result.satisfiable
    assert result.binding.of_var("ghost") == "high"


def test_diamond_join_inference(diamond_scheme):
    s = parse_statement("x := a + b")
    result = infer_binding(s, diamond_scheme, {"a": "left", "b": "right"})
    assert result.satisfiable
    assert result.inferred["x"] == "high"


def test_inference_respects_global_flows(scheme):
    s = parse_statement("begin wait(sem); y := 1 end")
    result = infer_binding(s, scheme, {"sem": "high"})
    assert result.satisfiable
    assert result.inferred["y"] == "high"


def test_explain_mentions_inferred_classes(scheme):
    s = parse_statement("x := h")
    result = infer_binding(s, scheme, {"h": "high"})
    assert "x='high'" in result.explain()


def test_random_corpus_inference_always_certifies(scheme):
    from repro.workloads.generators import random_certified_case

    for seed in range(25):
        prog, binding = random_certified_case(seed, scheme, size=35, n_pins=3)
        assert certify(prog, binding).certified, seed
