"""The constraint graph: construction and least solutions."""

from repro.core.binding import StaticBinding
from repro.core.cfm import certify
from repro.core.constraints import (
    FlowNode,
    ModNode,
    VarNode,
    build_constraint_graph,
)
from repro.lang.parser import parse_statement
from repro.workloads.paper import figure3_program


def edges_between_vars(graph):
    """Variable pairs (a, b) connected by a single edge."""
    return {
        (e.src.name, e.dst.name)
        for e in graph.edges
        if isinstance(e.src, VarNode) and isinstance(e.dst, VarNode)
    }


def test_assignment_edge(scheme):
    g = build_constraint_graph(parse_statement("x := y + z"), scheme)
    assert ("y", "x") in edges_between_vars(g)
    assert ("z", "x") in edges_between_vars(g)


def test_constant_assignment_no_edges(scheme):
    g = build_constraint_graph(parse_statement("x := 5"), scheme)
    assert g.edges == []


def test_if_guard_edges_via_mod_hub(scheme):
    g = build_constraint_graph(
        parse_statement("if c = 0 then begin x := 1; y := 2 end"), scheme
    )
    val, violated = g.least_solution(scheme, {"c": "high"})
    assert val[VarNode("x")] == "high"
    assert val[VarNode("y")] == "high"
    assert not violated


def test_while_flow_edges(scheme):
    g = build_constraint_graph(
        parse_statement("while c > 0 do x := x + 1"), scheme
    )
    val, violated = g.least_solution(scheme, {"c": "high"})
    assert val[VarNode("x")] == "high"


def test_wait_produces_flow_node(scheme):
    s = parse_statement("wait(sem)")
    g = build_constraint_graph(s, scheme)
    assert any(isinstance(e.dst, FlowNode) for e in g.edges)


def test_signal_produces_no_flow(scheme):
    g = build_constraint_graph(parse_statement("signal(sem)"), scheme)
    assert g.edges == []


def test_composition_prefix_constraints(scheme):
    s = parse_statement("begin wait(sem); x := 1; y := 2 end")
    g = build_constraint_graph(s, scheme)
    val, violated = g.least_solution(scheme, {"sem": "high"})
    assert val[VarNode("x")] == "high"
    assert val[VarNode("y")] == "high"
    assert not violated


def test_no_backwards_composition_constraint(scheme):
    s = parse_statement("begin x := 1; wait(sem) end")
    g = build_constraint_graph(s, scheme)
    val, _ = g.least_solution(scheme, {"sem": "high"})
    assert val[VarNode("x")] == "low"


def test_cobegin_no_cross_branch_constraints(scheme):
    s = parse_statement("cobegin wait(sem) || y := 1 coend")
    g = build_constraint_graph(s, scheme)
    val, violated = g.least_solution(scheme, {"sem": "high"})
    assert val[VarNode("y")] == "low"
    assert not violated


def test_violation_reported_for_pinned_target(scheme):
    g = build_constraint_graph(parse_statement("y := x"), scheme)
    _, violated = g.least_solution(scheme, {"x": "high", "y": "low"})
    assert violated
    assert violated[0].dst == VarNode("y")


def test_least_solution_is_minimal(scheme):
    # x := a; y := x : pin a=high; least solution must set exactly x, y high.
    s = parse_statement("begin x := a; y := x; z := 1 end")
    g = build_constraint_graph(s, scheme)
    val, _ = g.least_solution(scheme, {"a": "high"})
    assert val[VarNode("x")] == "high"
    assert val[VarNode("y")] == "high"
    assert val[VarNode("z")] == "low"


def test_figure3_graph_requires_the_chain(scheme):
    g = build_constraint_graph(figure3_program(), scheme)
    val, violated = g.least_solution(scheme, {"x": "high"})
    for name in ("modify", "modified", "m", "read", "done", "y"):
        assert val[VarNode(name)] == "high", name
    assert not violated


def test_least_solution_certifies(scheme):
    """Solving then certifying must agree (the inference invariant)."""
    from repro.workloads.generators import random_program

    for seed in range(10):
        prog = random_program(seed, size=40, p_cobegin=0.2, p_sem_op=0.2)
        g = build_constraint_graph(prog, scheme)
        val, violated = g.least_solution(scheme, {})
        assert not violated
        classes = {
            node.name: cls
            for node, cls in val.items()
            if isinstance(node, VarNode)
        }
        from repro.lang.ast import used_variables

        for name in used_variables(prog.body):
            classes.setdefault(name, scheme.bottom)
        report = certify(prog, StaticBinding(scheme, classes))
        assert report.certified, seed


def test_graph_nodes_include_isolated_variables(scheme):
    g = build_constraint_graph(parse_statement("x := 1"), scheme)
    assert VarNode("x") in g.nodes()


def test_edge_str(scheme):
    g = build_constraint_graph(parse_statement("y := x"), scheme)
    assert "sbind(x) <= sbind(y)" in str(g.edges[0])
