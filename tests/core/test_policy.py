"""Information states and policy specs (Definitions 2 and 6)."""

import pytest

from repro.core.binding import StaticBinding
from repro.core.policy import InformationState, PolicySpec
from repro.errors import BindingError


def test_state_get_set(scheme):
    s = InformationState(scheme, {"x": "low"})
    assert s.cls("x") == "low"
    s.set_cls("x", "high")
    assert s.cls("x") == "high"


def test_raise_cls_never_lowers(scheme):
    s = InformationState(scheme, {"x": "high"})
    s.raise_cls("x", "low")
    assert s.cls("x") == "high"


def test_missing_variable_raises(scheme):
    s = InformationState(scheme, {})
    with pytest.raises(BindingError):
        s.cls("x")


def test_copy_is_independent(scheme):
    s = InformationState(scheme, {"x": "low"})
    c = s.copy()
    c.set_cls("x", "high")
    assert s.cls("x") == "low"


def test_uniformly(scheme):
    s = InformationState.uniformly(scheme, ["a", "b"], "high")
    assert s.cls("a") == s.cls("b") == "high"


def test_policy_from_binding(scheme):
    b = StaticBinding(scheme, {"x": "high", "y": "low"})
    p = PolicySpec.from_binding(b)
    assert p.bounds == {"x": "high", "y": "low"}


def test_policy_check_reports_violations(scheme):
    p = PolicySpec(scheme, {"x": "low", "y": "high"})
    s = InformationState(scheme, {"x": "high", "y": "high"})
    violations = p.check(s)
    assert violations == [("x", "high", "low")]
    assert not p.satisfied_by(s)


def test_policy_satisfied(scheme):
    p = PolicySpec(scheme, {"x": "high"})
    s = InformationState(scheme, {"x": "low"})
    assert p.satisfied_by(s)


def test_policy_ignores_unknown_variables(scheme):
    p = PolicySpec(scheme, {"x": "low", "ghost": "low"})
    s = InformationState(scheme, {"x": "low"})
    assert p.satisfied_by(s)


def test_state_repr(scheme):
    s = InformationState(scheme, {"x": "low"})
    assert "x" in repr(s)
