"""The flow-sensitive certifier (the paper's section 5.2 gap, closed)."""

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.core.binding import StaticBinding
from repro.core.cfm import certify
from repro.core.flowsensitive import FSState, analyze, certify_flow_sensitive
from repro.lang.parser import parse_statement
from repro.lattice.chain import four_level, two_level
from repro.workloads.generators import random_certified_case
from repro.workloads.paper import figure3_program, section52_program

SCHEME = two_level()


def fs(source, **classes):
    return certify_flow_sensitive(
        parse_statement(source), StaticBinding(SCHEME, classes)
    )


# -- the headline: strictly stronger than CFM ---------------------------


def test_section52_certified():
    report = fs("begin x := 0; y := x end", x="high", y="low")
    assert report.certified
    assert report.final_state.cls("x") == "low"  # the class dropped
    assert report.final_state.cls("y") == "low"


def test_section52_cfm_still_rejects(scheme):
    binding = StaticBinding(scheme, {"x": "high", "y": "low"})
    assert not certify(section52_program(), binding).certified


def test_sanitize_reset_after_branch():
    # Sanitization works inside a low branch too.
    report = fs(
        "begin if c = 0 then x := 0 else x := 1; y := x end",
        c="low", x="high", y="low",
    )
    assert report.certified


def test_high_guard_poisons_sanitized_value():
    # ...but a high guard re-taints through the local context.
    report = fs(
        "begin if h = 0 then x := 0 else x := 1; y := x end",
        h="high", x="high", y="low",
    )
    assert not report.certified


@given(st.integers(min_value=0, max_value=200))
@settings(max_examples=40, deadline=None)
def test_dominates_cfm(seed):
    """Everything CFM certifies, the flow-sensitive mechanism certifies."""
    prog, binding = random_certified_case(seed, SCHEME, size=28, n_pins=3)
    assert certify_flow_sensitive(prog, binding).certified


# -- still rejects the real flows ----------------------------------------


def test_direct_flow_rejected():
    report = fs("y := x", x="high", y="low")
    assert not report.certified
    (violation,) = report.violations
    assert violation.variable == "y"
    assert "exceeds" in str(violation)


def test_local_indirect_rejected():
    assert not fs("if h = 0 then y := 1", h="high", y="low").certified


def test_termination_flow_rejected():
    assert not fs(
        "begin z := 0; while h # 0 do h := h - 1; z := 1 end",
        h="high", z="low",
    ).certified


def test_synchronization_flow_rejected():
    report = fs(
        "cobegin if h = 0 then signal(s) || begin wait(s); y := 1 end coend",
        h="high", s="high", y="low",
    )
    assert not report.certified


def test_figure3_rejected_for_leaky_binding(fig3_binding_leaky):
    assert not certify_flow_sensitive(figure3_program(), fig3_binding_leaky).certified


def test_figure3_certified_for_safe_binding(fig3_binding_safe):
    assert certify_flow_sensitive(figure3_program(), fig3_binding_safe).certified


# -- loop fixpoints -------------------------------------------------------


def test_loop_fixpoint_taints_carried_variable():
    # x flows into acc only after one iteration; the fixpoint finds it.
    report = fs(
        "while c < 3 do begin acc := acc + x; c := c + 1 end",
        c="low", acc="low", x="high",
    )
    assert not report.certified


def test_loop_fixpoint_converges_on_cycles():
    # a and b swap forever: classes reach a stable joined fixpoint.
    report = fs(
        "while c < 3 do begin t := a; a := b; b := t; c := c + 1 end",
        c="low", a="high", b="low", t="low",
    )
    assert not report.certified  # b eventually receives a's class
    report2 = fs(
        "while c < 3 do begin t := a; a := b; b := t; c := c + 1 end",
        c="low", a="high", b="high", t="high",
    )
    assert report2.certified


def test_nested_loops_converge():
    report = fs(
        "while a < 2 do while b < 2 do begin x := x + 1; b := b + 1 end",
        a="low", b="low", x="low",
    )
    assert report.certified


def test_loop_global_monotone():
    report = fs(
        "begin while h > 0 do h := h - 1; after := 1 end",
        h="high", after="high",
    )
    assert report.certified
    assert report.final_state.global_ == "high"


# -- concurrency fixpoint ---------------------------------------------------


def test_cross_branch_interference_found():
    # Branch order is not fixed: y := x must see x's raised class even
    # though textually x := h is in the *second* branch.
    report = fs(
        "cobegin y := x || x := h coend",
        x="high", h="high", y="low",
    )
    assert not report.certified


def test_interference_rounds_reach_fixpoint():
    report = fs(
        "cobegin a := b || b := c || c := h coend",
        a="low", b="low", c="low", h="high",
    )
    # h -> c -> b -> a across rounds.
    assert not report.certified
    assert {v.variable for v in report.violations} == {"a", "b", "c"}


def test_independent_branches_stay_precise():
    report = fs(
        "cobegin l := 1 || h := h + 1 coend",
        l="low", h="high",
    )
    assert report.certified


# -- state plumbing ---------------------------------------------------------


def test_pre_post_states_recorded():
    stmt = parse_statement("begin x := 0; y := x end")
    binding = StaticBinding(SCHEME, {"x": "high", "y": "low"})
    report = analyze(stmt, binding)
    first, second = stmt.body
    assert report.pre_states[first.uid].cls("x") == "high"
    assert report.post_states[first.uid].cls("x") == "low"
    assert report.post_states[second.uid].cls("y") == "low"


def test_initial_override():
    stmt = parse_statement("y := x")
    binding = StaticBinding(SCHEME, {"x": "high", "y": "low"})
    report = analyze(stmt, binding, initial={"x": "low"})
    assert report.certified  # x declared sanitized on entry


def test_four_level_precision():
    levels = four_level()
    stmt = parse_statement("begin m := s; m := 0; out := m end")
    binding = StaticBinding(
        levels, {"s": "secret", "m": "secret", "out": "unclassified"}
    )
    assert certify_flow_sensitive(stmt, binding).certified


def test_fsstate_lattice_ops(scheme):
    a = FSState(scheme, {"x": "low"}, "low", "low")
    b = FSState(scheme, {"x": "high"}, "low", "low")
    assert a.leq(b)
    assert not b.leq(a)
    j = a.join(b)
    assert j.cls("x") == "high"
    assert a.key() != b.key()


def test_summary_text():
    report = fs("y := x", x="high", y="low")
    assert "REJECTED" in report.summary()
    report2 = fs("y := x", x="low", y="low")
    assert "CERTIFIED" in report2.summary()
