"""The Concurrent Flow Mechanism — every Figure 2 row plus the paper examples."""

import pytest

from repro.core.binding import StaticBinding
from repro.core.cfm import certify
from repro.errors import BindingError
from repro.lang.parser import parse_statement
from repro.lattice.extended import NIL
from repro.workloads.paper import (
    section22_cobegin_fragment,
    section22_if_fragment,
    section22_while_fragment,
    section42_composition,
    section42_loop,
    section52_program,
)


def bind(scheme, **classes):
    return StaticBinding(scheme, classes)


# ----------------------------------------------------------------------
# Assignment: cert = sbind(e) <= sbind(x); mod = sbind(x); flow = nil.
# ----------------------------------------------------------------------


def test_assignment_up_is_certified(scheme):
    s = parse_statement("x := y")
    assert certify(s, bind(scheme, x="high", y="low")).certified


def test_assignment_down_is_rejected(scheme):
    s = parse_statement("x := y")
    report = certify(s, bind(scheme, x="low", y="high"))
    assert not report.certified
    assert report.violations[0].rule == "assignment"


def test_assignment_constant_always_certified(scheme):
    s = parse_statement("x := 42")
    assert certify(s, bind(scheme, x="low")).certified


def test_assignment_mod_and_flow(scheme):
    s = parse_statement("x := y")
    report = certify(s, bind(scheme, x="high", y="low"))
    assert report.analysis.mod(s) == "high"
    assert report.analysis.flow(s) is NIL
    assert report.analysis.modified_vars(s) == frozenset({"x"})


def test_assignment_joins_expression_operands(scheme):
    s = parse_statement("x := l + h")
    assert not certify(s, bind(scheme, x="low", l="low", h="high")).certified
    assert certify(s, bind(scheme, x="high", l="low", h="high")).certified


# ----------------------------------------------------------------------
# Alternation: cert = certs and sbind(e) <= mod(S); flow joins branches + e.
# ----------------------------------------------------------------------


def test_if_local_flow_rejected(scheme):
    s = section22_if_fragment()  # if x = 0 then y := 1 else y := 0
    assert not certify(s, bind(scheme, x="high", y="low")).certified
    assert certify(s, bind(scheme, x="high", y="high")).certified
    assert certify(s, bind(scheme, x="low", y="low")).certified


def test_if_mod_is_glb_of_branches(scheme):
    s = parse_statement("if c = 0 then x := 1 else y := 2")
    report = certify(s, bind(scheme, c="low", x="high", y="low"))
    assert report.analysis.mod(s) == "low"
    assert report.analysis.modified_vars(s) == frozenset({"x", "y"})


def test_if_without_else_constrains_only_then(scheme):
    s = parse_statement("if h = 0 then x := 1")
    assert certify(s, bind(scheme, h="high", x="high")).certified
    assert not certify(s, bind(scheme, h="high", x="low")).certified


def test_if_flow_nil_when_branches_pure(scheme):
    s = parse_statement("if c = 0 then x := 1 else y := 2")
    report = certify(s, bind(scheme, c="high", x="high", y="high"))
    assert report.analysis.flow(s) is NIL


def test_if_flow_includes_guard_when_branch_flows(scheme):
    s = parse_statement("if c = 0 then wait(sem)")
    report = certify(s, bind(scheme, c="high", sem="high"))
    assert report.analysis.flow(s) == "high"


def test_if_guard_into_empty_mod_is_fine(scheme):
    s = parse_statement("if h = 0 then skip")
    assert certify(s, bind(scheme, h="high")).certified


# ----------------------------------------------------------------------
# Iteration: cert = cert(S1) and flow(S) <= mod(S); flow = flow(S1) + e.
# ----------------------------------------------------------------------


def test_while_guard_flows_into_body_targets(scheme):
    s = parse_statement("while h > 0 do begin h := h - 1; l := l + 1 end")
    assert not certify(s, bind(scheme, h="high", l="low")).certified
    assert certify(s, bind(scheme, h="high", l="high")).certified


def test_while_flow_is_never_nil(scheme):
    s = parse_statement("while c > 0 do c := c - 1")
    report = certify(s, bind(scheme, c="low"))
    assert report.analysis.flow(s) == "low"
    assert report.analysis.flow(s) is not NIL


def test_section42_loop_requires_sem_below_y(scheme):
    s = section42_loop()  # while true do begin y := y + 1; wait(sem) end
    assert not certify(s, bind(scheme, y="low", sem="high")).certified
    assert certify(s, bind(scheme, y="high", sem="high")).certified
    assert certify(s, bind(scheme, y="high", sem="low")).certified


def test_section22_while_global_flow(scheme):
    # begin z := 0; while x # 0 do y := y + 1; z := 1 end
    s = section22_while_fragment()
    assert not certify(s, bind(scheme, x="high", y="high", z="low")).certified
    assert certify(s, bind(scheme, x="high", y="high", z="high")).certified
    # The Dennings' mechanism would accept z=low; CFM must not, because
    # examining z reveals whether the loop terminated.


def test_nested_while(scheme):
    s = parse_statement("while a > 0 do while b > 0 do c := 1")
    assert not certify(s, bind(scheme, a="high", b="low", c="low")).certified
    assert certify(s, bind(scheme, a="high", b="high", c="high")).certified


# ----------------------------------------------------------------------
# Composition: flow(Sj) <= mod(Si) for j < i.
# ----------------------------------------------------------------------


def test_section42_composition(scheme):
    s = section42_composition()  # begin wait(sem); y := 1 end
    assert not certify(s, bind(scheme, sem="high", y="low")).certified
    assert certify(s, bind(scheme, sem="low", y="high")).certified
    assert certify(s, bind(scheme, sem="low", y="low")).certified


def test_composition_flow_does_not_act_backwards(scheme):
    s = parse_statement("begin y := 1; wait(sem) end")
    assert certify(s, bind(scheme, sem="high", y="low")).certified


def test_composition_flow_accumulates(scheme):
    s = parse_statement("begin wait(a); x := 1; wait(b); y := 1 end")
    b_ = bind(scheme, a="high", b="low", x="high", y="low")
    # y := 1 follows wait(a) (high flow): rejected.
    assert not certify(s, b_).certified
    b2 = bind(scheme, a="low", b="high", x="low", y="high")
    assert certify(s, b2).certified


def test_composition_check_covers_all_later_statements(scheme):
    s = parse_statement("begin wait(sem); x := 1; y := 2; z := 3 end")
    b_ = bind(scheme, sem="high", x="high", y="high", z="low")
    report = certify(s, b_)
    assert not report.certified
    assert any(v.stmt.loc.column for v in report.violations) or report.violations


def test_begin_flow_is_join_of_children(scheme):
    s = parse_statement("begin wait(a); wait(b) end")
    report = certify(s, bind(scheme, a="low", b="high"))
    assert report.analysis.flow(s) == "high"


# ----------------------------------------------------------------------
# Concurrency: cert(S) = all branches certified; no cross-branch checks.
# ----------------------------------------------------------------------


def test_cobegin_requires_each_branch(scheme):
    s = parse_statement("cobegin x := h || y := 1 coend")
    assert not certify(s, bind(scheme, x="low", h="high", y="low")).certified
    assert certify(s, bind(scheme, x="high", h="high", y="low")).certified


def test_cobegin_no_cross_branch_sequencing_check(scheme):
    # wait(high-sem) in one branch does not constrain a *parallel* branch.
    s = parse_statement("cobegin wait(sem) || y := 1 coend")
    assert certify(s, bind(scheme, sem="high", y="low")).certified


def test_section22_cobegin_channel(scheme):
    s = section22_cobegin_fragment()
    # cobegin if x = 0 then signal(sem) || begin wait(sem); y := 0 end coend
    assert not certify(s, bind(scheme, x="high", sem="low", y="low")).certified
    assert not certify(s, bind(scheme, x="high", sem="high", y="low")).certified
    assert certify(s, bind(scheme, x="high", sem="high", y="high")).certified
    assert certify(s, bind(scheme, x="low", sem="low", y="low")).certified


def test_cobegin_flow_joins_branches(scheme):
    s = parse_statement("cobegin wait(a) || x := 1 coend")
    report = certify(s, bind(scheme, a="high", x="low"))
    assert report.analysis.flow(s) == "high"


# ----------------------------------------------------------------------
# Semaphore statements.
# ----------------------------------------------------------------------


def test_wait_always_certified_alone(scheme):
    s = parse_statement("wait(sem)")
    report = certify(s, bind(scheme, sem="high"))
    assert report.certified
    assert report.analysis.flow(s) == "high"
    assert report.analysis.mod(s) == "high"


def test_signal_always_certified(scheme):
    s = parse_statement("signal(sem)")
    report = certify(s, bind(scheme, sem="high"))
    assert report.certified
    assert report.analysis.flow(s) is NIL


def test_signal_under_high_guard_needs_high_sem(scheme):
    s = parse_statement("if h = 0 then signal(sem)")
    assert not certify(s, bind(scheme, h="high", sem="low")).certified
    assert certify(s, bind(scheme, h="high", sem="high")).certified


# ----------------------------------------------------------------------
# Section 5.2 and misc.
# ----------------------------------------------------------------------


def test_section52_rejected_despite_being_safe(scheme):
    s = section52_program()  # begin x := 0; y := x end
    assert not certify(s, bind(scheme, x="high", y="low")).certified


def test_skip_certifies_and_is_neutral(scheme):
    s = parse_statement("skip")
    report = certify(s, bind(scheme))
    assert report.certified
    assert report.analysis.flow(s) is NIL
    assert report.analysis.mod(s) == scheme.top


def test_missing_binding_raises(scheme):
    with pytest.raises(BindingError):
        certify(parse_statement("x := y"), bind(scheme, x="low"))


def test_report_summary_mentions_failures(scheme):
    report = certify(parse_statement("x := h"), bind(scheme, x="low", h="high"))
    text = report.summary()
    assert "REJECTED" in text
    assert "sbind(e) <= sbind(x)" in text


def test_checks_record_passing_conditions_too(scheme):
    report = certify(parse_statement("x := y"), bind(scheme, x="high", y="low"))
    assert len(report.checks) == 1
    assert report.checks[0].passed


def test_diamond_incomparable_rejection(diamond_scheme):
    s = parse_statement("x := y")
    b = StaticBinding(diamond_scheme, {"x": "left", "y": "right"})
    assert not certify(s, b).certified
    b2 = StaticBinding(diamond_scheme, {"x": "high", "y": "right"})
    assert certify(s, b2).certified


def test_military_product_scheme(military_scheme):
    s = parse_statement("x := y")
    lo = ("unclassified", frozenset())
    hi = ("secret", frozenset({"nuclear"}))
    assert certify(s, StaticBinding(military_scheme, {"x": hi, "y": lo})).certified
    assert not certify(s, StaticBinding(military_scheme, {"x": lo, "y": hi})).certified


def test_figure3_certification(fig3, fig3_binding_leaky, fig3_binding_safe):
    assert not certify(fig3, fig3_binding_leaky).certified
    assert certify(fig3, fig3_binding_safe).certified


def test_figure3_chain_requirements(fig3, scheme):
    # Section 4.3: sbind(x) <= sbind(modify) <= sbind(m) <= sbind(y).
    names = ["x", "y", "m", "modify", "modified", "read", "done"]

    def try_bind(**over):
        classes = {n: "high" for n in names}
        classes.update(over)
        return certify(fig3, StaticBinding(scheme, classes)).certified

    assert not try_bind(modify="low")          # x=high > modify
    assert not try_bind(m="low")               # modify=high > m
    assert not try_bind(y="low")               # m=high > y
    assert try_bind()                          # all high: fine
