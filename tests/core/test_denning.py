"""The sequential Denning & Denning baseline and its known blind spots."""

import pytest

from repro.core.binding import StaticBinding
from repro.core.cfm import certify
from repro.core.denning import certify_denning
from repro.errors import CertificationError
from repro.lang.parser import parse_statement
from repro.workloads.paper import (
    section22_while_fragment,
    section42_composition,
    section42_loop,
)


def bind(scheme, **classes):
    return StaticBinding(scheme, classes)


def test_direct_flow_checked(scheme):
    s = parse_statement("x := h")
    assert not certify_denning(s, bind(scheme, x="low", h="high")).certified
    assert certify_denning(s, bind(scheme, x="high", h="high")).certified


def test_local_indirect_flow_checked(scheme):
    s = parse_statement("if h = 0 then y := 1 else y := 0")
    assert not certify_denning(s, bind(scheme, h="high", y="low")).certified
    assert certify_denning(s, bind(scheme, h="high", y="high")).certified


def test_loop_guard_checked(scheme):
    s = parse_statement("while h > 0 do begin h := h - 1; l := l + 1 end")
    assert not certify_denning(s, bind(scheme, h="high", l="low")).certified


def test_agrees_with_cfm_on_sequential_flowless_programs(scheme):
    # Without while/wait there are no global flows, so the mechanisms agree.
    sources = [
        "x := y",
        "if c = 0 then x := y else y := x",
        "begin x := 1; y := x; if y = 0 then z := y end",
    ]
    for src in sources:
        s = parse_statement(src)
        from repro.lang.ast import used_variables

        for hi in used_variables(s):
            classes = {n: "low" for n in used_variables(s)}
            classes[hi] = "high"
            b = StaticBinding(scheme, classes)
            s2 = parse_statement(src)
            b2 = StaticBinding(scheme, classes)
            assert (
                certify_denning(s, b).certified == certify(s2, b2).certified
            ), (src, hi)


def test_misses_termination_channel(scheme):
    """The paper's motivating gap: global flows are disregarded by [3]."""
    s = section22_while_fragment()  # z := 1 reveals loop termination
    b = bind(scheme, x="high", y="high", z="low")
    assert certify_denning(s, b).certified  # baseline accepts...
    s2 = section22_while_fragment()
    assert not certify(s2, b).certified  # ...CFM correctly rejects


def test_misses_synchronization_channel_in_ignore_mode(scheme):
    s = section42_composition()  # begin wait(sem); y := 1 end
    b = bind(scheme, sem="high", y="low")
    assert certify_denning(s, b, on_concurrency="ignore").certified
    s2 = section42_composition()
    assert not certify(s2, b).certified


def test_misses_loop_wait_channel_in_ignore_mode(scheme):
    s = section42_loop()
    b = bind(scheme, sem="high", y="low")
    assert certify_denning(s, b, on_concurrency="ignore").certified
    s2 = section42_loop()
    assert not certify(s2, b).certified


def test_reject_mode_flags_concurrency(scheme):
    s = parse_statement("cobegin x := 1 || wait(sem) coend")
    report = certify_denning(s, bind(scheme, x="low", sem="low"))
    assert not report.certified
    assert len(report.unsupported) == 2  # the cobegin and the wait
    assert "unsupported" in report.summary()


def test_ignore_mode_still_checks_inside_branches(scheme):
    s = parse_statement("cobegin x := h || y := 1 coend")
    b = bind(scheme, x="low", h="high", y="low")
    assert not certify_denning(s, b, on_concurrency="ignore").certified


def test_figure3_certified_by_baseline_but_not_cfm(
    fig3, fig3_binding_leaky
):
    """The headline comparison: the Figure 3 channel is invisible to [3]."""
    baseline = certify_denning(fig3, fig3_binding_leaky, on_concurrency="ignore")
    assert baseline.certified
    from repro.workloads.paper import figure3_program

    assert not certify(figure3_program(), fig3_binding_leaky).certified


def test_invalid_mode_rejected(scheme):
    with pytest.raises(CertificationError):
        certify_denning(parse_statement("x := 1"), bind(scheme, x="low"), "maybe")


def test_never_stricter_than_cfm_on_shared_checks(scheme):
    # Denning's checks are a subset of CFM's, so CFM-certified implies
    # Denning-certified (in ignore mode) for any program.
    from repro.workloads.generators import random_program
    from repro.core.inference import infer_binding

    for seed in range(15):
        prog = random_program(seed, size=30, p_cobegin=0.2, p_sem_op=0.15)
        result = infer_binding(prog, scheme, {})
        cfm = certify(prog, result.binding)
        assert cfm.certified
        baseline = certify_denning(prog, result.binding, on_concurrency="ignore")
        assert baseline.certified, seed
