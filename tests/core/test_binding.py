"""Static bindings (Definition 3)."""

import pytest

from repro.core.binding import StaticBinding
from repro.errors import BindingError, ElementError
from repro.lang.parser import parse_expression, parse_statement
from repro.lattice.chain import four_level, two_level
from repro.lattice.extended import NIL


def test_variable_lookup(scheme):
    b = StaticBinding(scheme, {"x": "high", "y": "low"})
    assert b.of_var("x") == "high"
    assert b.of_var("y") == "low"


def test_unbound_variable_raises(scheme):
    b = StaticBinding(scheme, {"x": "high"})
    with pytest.raises(BindingError):
        b.of_var("y")


def test_default_class(scheme):
    b = StaticBinding(scheme, {"x": "high"}, default="low")
    assert b.of_var("anything") == "low"


def test_constants_are_low(scheme):
    b = StaticBinding(scheme, {})
    assert b.of_expr(parse_expression("42")) == "low"
    assert b.of_expr(parse_expression("true")) == "low"


def test_expression_binding_joins_operands(scheme):
    b = StaticBinding(scheme, {"h": "high", "l": "low"})
    assert b.of_expr(parse_expression("h + l")) == "high"
    assert b.of_expr(parse_expression("l + l")) == "low"
    assert b.of_expr(parse_expression("l + 3")) == "low"


def test_unary_op_binding(scheme):
    b = StaticBinding(scheme, {"h": "high"})
    assert b.of_expr(parse_expression("-h")) == "high"
    assert b.of_expr(parse_expression("not h = 0")) == "high"


def test_four_level_expression():
    s = four_level()
    b = StaticBinding(s, {"a": "confidential", "b": "secret"})
    assert b.of_expr(parse_expression("a * b")) == "secret"


def test_invalid_class_rejected(scheme):
    with pytest.raises(ElementError):
        StaticBinding(scheme, {"x": "medium"})


def test_invalid_name_rejected(scheme):
    with pytest.raises(BindingError):
        StaticBinding(scheme, {"": "low"})


def test_extended_lattice_attached(scheme):
    b = StaticBinding(scheme, {})
    assert b.extended.base is scheme
    assert b.leq(NIL, "low")


def test_with_bindings(scheme):
    b = StaticBinding(scheme, {"x": "low"})
    b2 = b.with_bindings({"x": "high", "y": "low"})
    assert b.of_var("x") == "low"  # original untouched
    assert b2.of_var("x") == "high"
    assert b2.of_var("y") == "low"


def test_restricted_to(scheme):
    b = StaticBinding(scheme, {"x": "low", "y": "high"})
    b2 = b.restricted_to(["x"])
    assert "y" not in b2
    assert "x" in b2


def test_covers(scheme):
    b = StaticBinding(scheme, {"x": "low", "y": "low"})
    assert b.covers(parse_statement("x := y"))
    assert not b.covers(parse_statement("x := z"))


def test_require_covers_names_missing(scheme):
    b = StaticBinding(scheme, {"x": "low"})
    with pytest.raises(BindingError) as exc:
        b.require_covers(parse_statement("begin x := z; wait(q) end"))
    assert "q" in str(exc.value) and "z" in str(exc.value)


def test_default_always_covers(scheme):
    b = StaticBinding(scheme, {}, default="high")
    b.require_covers(parse_statement("x := y"))  # must not raise


def test_equality_and_hash(scheme):
    a = StaticBinding(scheme, {"x": "low"})
    b = StaticBinding(scheme, {"x": "low"})
    assert a == b
    assert hash(a) == hash(b)
    assert a != StaticBinding(scheme, {"x": "high"})


def test_as_dict_is_copy(scheme):
    b = StaticBinding(scheme, {"x": "low"})
    d = b.as_dict()
    d["x"] = "high"
    assert b.of_var("x") == "low"
