"""The ``repro fuzz`` subcommand."""

import json
from pathlib import Path

from repro.cli import main
from repro.fuzz.oracles import oracle_names

CHECKED_IN = str(Path(__file__).parent / "corpus")


def test_list_oracles(capsys):
    code = main(["fuzz", "--list-oracles"])
    assert code == 0
    out = capsys.readouterr().out
    for name in oracle_names():
        assert name in out


def test_small_campaign_exits_clean(capsys):
    code = main(["fuzz", "--seeds", "3", "--oracles", "parse-pretty,cert-proof"])
    assert code == 0
    out = capsys.readouterr().out
    assert "no violations found" in out
    assert "parse-pretty" in out


def test_json_report(capsys):
    code = main(["fuzz", "--seeds", "2", "--oracles", "parse-pretty", "--json"])
    assert code == 0
    report = json.loads(capsys.readouterr().out)
    assert report["fuzz"]["seeds"] == 2
    assert report["fuzz"]["findings"] == 0
    assert report["findings"] == []


def test_metrics_file_is_written_and_valid(tmp_path, capsys):
    from repro.observe.metrics import validate_metrics

    metrics_path = tmp_path / "metrics.json"
    code = main(
        ["fuzz", "--seeds", "2", "--oracles", "parse-pretty",
         "--metrics", str(metrics_path)]
    )
    assert code == 0
    document = json.loads(metrics_path.read_text())
    assert validate_metrics(document) == []
    assert document["fuzz"]["seeds"] == 2


def test_replay_checked_in_corpus(capsys):
    code = main(["fuzz", "--replay", CHECKED_IN])
    assert code == 0
    out = capsys.readouterr().out
    assert "0 unexpected" in out
    assert "UNEXPECTED" not in out


def test_unknown_oracle_is_a_clean_cli_error():
    import pytest

    with pytest.raises(SystemExit, match="unknown oracle"):
        main(["fuzz", "--seeds", "1", "--oracles", "bogus"])
