"""The campaign driver: counters, metrics, scale-out, persistence."""

import pytest

from repro.fuzz.driver import FUZZ_CONFIG, FuzzResult, run_fuzz
from repro.fuzz.oracles import ORACLES, OracleSpec
from repro.lang.ast import Assign, iter_nodes
from repro.observe.metrics import validate_metrics


def test_small_serial_campaign_is_clean():
    result = run_fuzz(seeds=4, jobs=1)
    assert result.seeds == 4
    assert result.programs == 8  # two profiles per seed
    assert result.checks > 0
    assert result.findings == []
    assert result.errors == []
    assert result.violations == 0
    # counters are consistent with the per-oracle breakdown
    assert sum(c["checks"] for c in result.oracles.values()) == result.checks
    assert sum(c["skips"] for c in result.oracles.values()) == result.skips


def test_campaign_metrics_document_validates():
    result = run_fuzz(seeds=3, jobs=1)
    assert validate_metrics(result.metrics) == []
    fuzz = result.metrics["fuzz"]
    assert fuzz["seeds"] == 3
    assert fuzz["checks"] == result.checks
    assert fuzz["findings"] == 0
    report = result.to_dict()
    assert report["fuzz"] == result.fuzz_section()


def test_parallel_campaign_matches_serial_counters():
    serial = run_fuzz(seeds=4, jobs=1, oracles=("parse-pretty", "cert-proof"))
    fanned = run_fuzz(seeds=4, jobs=2, oracles=("parse-pretty", "cert-proof"))
    assert fanned.errors == []
    assert fanned.checks == serial.checks
    assert fanned.skips == serial.skips
    assert fanned.violations == serial.violations


def test_oracle_subset_and_seed_start():
    result = run_fuzz(seeds=2, seed_start=50, oracles=("parse-pretty",))
    assert set(result.oracles) == {"parse-pretty"}
    assert result.checks == 4  # 2 seeds x 2 profiles x 1 oracle


def test_bad_arguments_are_rejected():
    with pytest.raises(ValueError, match="unknown oracle"):
        run_fuzz(seeds=1, oracles=("bogus",))
    with pytest.raises(ValueError, match="seeds must be"):
        run_fuzz(seeds=0)
    with pytest.raises(ValueError, match="unknown config key"):
        run_fuzz(seeds=1, config={"not_a_key": 1})


def _always_assign_violation(subject, config):
    stmt = subject.body if hasattr(subject, "decls") else subject
    if any(isinstance(n, Assign) for n in iter_nodes(stmt)):
        return {"relation": "test oracle: no assignments allowed"}
    return None


def test_findings_are_shrunk_and_persisted(tmp_path, monkeypatch):
    """End to end on a synthetic oracle: a violation is minimized
    in-worker and lands in the corpus directory, replayable."""
    from repro.fuzz.corpus import replay_corpus
    from repro.lang.ast import program_size
    from repro.lang.parser import parse_program

    spec = OracleSpec(
        "test-no-assign",
        "synthetic: flags any assignment",
        "test",
        ("static", "runtime_safe"),
        _always_assign_violation,
    )
    monkeypatch.setitem(ORACLES, "test-no-assign", spec)

    corpus = tmp_path / "corpus"
    result = run_fuzz(
        seeds=1, oracles=("test-no-assign",), corpus_dir=str(corpus)
    )
    assert result.violations == 2  # one per profile
    assert len(result.findings) == 2
    assert result.shrink_iterations > 0
    for finding in result.findings:
        assert finding["oracle"] == "test-no-assign"
        minimized = parse_program(finding["source"])
        # 1-minimal: a single zero-assignment plus its declaration
        assert program_size(minimized.body) <= 2
        assert len(finding["original_source"]) > len(finding["source"])

    replays = replay_corpus(corpus)
    assert len(replays) == 2
    assert all(r["reproduced"] and r["as_expected"] for r in replays)


def test_worker_crashes_become_error_records(monkeypatch):
    import repro.fuzz.driver as driver_mod

    def _boom(payload):
        raise RuntimeError("worker exploded")

    monkeypatch.setattr(driver_mod, "_fuzz_worker", _boom)
    result = run_fuzz(seeds=2, jobs=2, oracles=("parse-pretty",))
    assert len(result.errors) == 2
    assert result.checks == 0
    assert validate_metrics(result.metrics) == []


def test_fuzz_config_binds_a_generated_variable_high():
    # The pipeline default high set never intersects generated
    # programs; the campaign config must, or policy oracles go vacuous.
    from repro.fuzz.driver import generate_subject
    from repro.lang.ast import used_variables

    assert FUZZ_CONFIG["high"] == ("v0",)
    hits = sum(
        1
        for seed in range(8)
        if "v0" in used_variables(generate_subject(seed, "runtime_safe").body)
    )
    assert hits > 0
