"""Shrinker soundness: every accepted step preserves the violation,
the measure strictly decreases, and shrunken output round-trips."""

import pytest

from repro.fuzz.shrinker import shrink, weight
from repro.lang import builder as b
from repro.lang.ast import Cobegin, Program, Wait, iter_nodes, program_size
from repro.lang.parser import parse_program, parse_statement
from repro.lang.pretty import pretty
from repro.lang.validate import validate_program
from repro.workloads.generators import random_program


def _stmt(subject):
    return subject.body if isinstance(subject, Program) else subject


def _has_wait(subject):
    return any(isinstance(n, Wait) for n in iter_nodes(_stmt(subject)))


def test_shrinks_to_the_minimal_wait():
    s = parse_statement(
        "begin x := 1; cobegin begin signal(m); y := 2 end || "
        "begin wait(m); z := x + y end coend; x := x * 2 end"
    )
    result = shrink(s, _has_wait)
    assert _has_wait(result.subject)
    # 1-minimal: the wait alone (nothing else survives the predicate)
    assert isinstance(result.subject, Wait)
    assert result.iterations > 0
    assert result.weight_after < result.weight_before


def test_every_accepted_step_preserves_the_predicate():
    """The soundness property, observed through an instrumented
    predicate: the shrinker never *keeps* a candidate the predicate
    rejected, so each accepted intermediate must satisfy it."""
    program = random_program(77, size=40, runtime_safe=True)
    accepted = []

    def predicate(subject):
        ok = _has_wait(subject) if not isinstance(subject, Wait) else True
        if ok:
            accepted.append(subject)
        return ok

    if not _has_wait(program):
        pytest.skip("seed has no wait statement")
    result = shrink(program, predicate)
    assert _has_wait(result.subject)
    for subject in accepted:
        assert _has_wait(subject) or isinstance(subject, Wait)


def test_weight_strictly_decreases_along_the_run():
    program = random_program(31, size=40, runtime_safe=True)
    weights = []

    def predicate(subject):
        return True  # everything qualifies: maximal shrinking pressure

    result = shrink(program, predicate)
    # Full shrink of an always-true predicate reaches a fixed point of
    # the reduction set: a single skip (weight 1).
    assert result.weight_after <= 2
    assert result.weight_after < result.weight_before
    assert program_size(result.subject.body) <= 2


@pytest.mark.parametrize("seed", [0, 1, 8, 13, 26])
def test_shrunk_output_round_trips_and_validates(seed):
    """parse -> pretty -> parse is a fixpoint on shrunken programs,
    and the program stays structurally valid (declarations intact)."""
    program = random_program(seed, size=35, runtime_safe=(seed % 2 == 0))

    def predicate(subject):
        return program_size(_stmt(subject)) >= 3

    if not predicate(program):
        pytest.skip("seed generates a program below the size threshold")
    result = shrink(program, predicate)
    assert predicate(result.subject)
    assert validate_program(result.subject) == []
    text = pretty(result.subject)
    assert pretty(parse_program(text)) == text


def test_predicate_exceptions_reject_the_candidate():
    s = parse_statement("begin x := 1; y := 2; wait(m) end")

    def predicate(subject):
        if not _has_wait(subject):
            raise RuntimeError("boom")  # must count as rejection
        return True

    result = shrink(s, predicate)
    assert _has_wait(result.subject)


def test_unshrinkable_input_is_returned_as_is():
    s = parse_statement("skip")
    result = shrink(s, lambda subject: True)
    assert pretty(result.subject) == "skip"
    assert result.iterations == 0


def test_false_on_entry_returns_unshrunk():
    s = parse_statement("begin x := 1; y := 2 end")
    result = shrink(s, lambda subject: False)
    assert result.subject is s
    assert result.iterations == 0


def test_cobegin_never_shrinks_to_zero_branches():
    s = b.cobegin(b.assign("x", b.lit(1)), b.assign("y", b.lit(2)))

    def predicate(subject):
        return isinstance(subject, Cobegin)

    result = shrink(s, predicate)
    assert isinstance(result.subject, Cobegin)
    assert len(result.subject.branches) >= 1


def test_unused_declarations_are_pruned():
    program = parse_program(
        "var x, unused : integer; s : semaphore;\nx := 1"
    )

    def predicate(subject):
        return True

    result = shrink(program, predicate)
    assert validate_program(result.subject) == []
    declared = result.subject.declared()
    assert "unused" not in declared
    assert "s" not in declared
