"""Finding persistence, replay, and the checked-in regression corpus."""

import json
from pathlib import Path

import pytest

from repro.fuzz.corpus import (
    FINDING_SCHEMA,
    load_findings,
    replay_corpus,
    replay_finding,
    save_finding,
)

CHECKED_IN = Path(__file__).parent / "corpus"

DEADLOCK_FINDING = {
    "oracle": "runtime-safe",
    "seed": 0,
    "profile": "runtime_safe",
    "kind": "statement",
    "source": "cobegin begin wait(a); signal(b) end || "
    "begin wait(b); signal(a) end coend",
    "details": {"relation": "runtime-safe programs never deadlock"},
    "shrink_iterations": 0,
    "shrink_checks": 0,
    "config": {"max_states": 2000, "max_depth": 200},
}


def test_save_load_round_trip(tmp_path):
    path = save_finding(tmp_path, DEADLOCK_FINDING)
    assert path.name.startswith("runtime-safe--")
    records = load_findings(tmp_path)
    assert len(records) == 1
    record = records[0]
    assert record["schema"] == FINDING_SCHEMA
    assert record["expect"] == "violates"
    assert record["source"] == DEADLOCK_FINDING["source"]
    assert record["path"] == str(path)


def test_saving_the_same_finding_is_idempotent(tmp_path):
    first = save_finding(tmp_path, DEADLOCK_FINDING)
    second = save_finding(tmp_path, DEADLOCK_FINDING)
    assert first == second
    assert len(list(tmp_path.glob("*.json"))) == 1
    assert not list(tmp_path.glob("*.tmp"))


def test_distinct_findings_get_distinct_files(tmp_path):
    save_finding(tmp_path, DEADLOCK_FINDING)
    save_finding(tmp_path, dict(DEADLOCK_FINDING, seed=1))
    assert len(list(tmp_path.glob("*.json"))) == 2


def test_corrupt_corpus_fails_loudly(tmp_path):
    (tmp_path / "bad-schema.json").write_text(
        json.dumps({"schema": "nope/9", "oracle": "x", "kind": "y", "source": "z"})
    )
    with pytest.raises(ValueError, match="schema"):
        load_findings(tmp_path)

    for path in tmp_path.glob("*.json"):
        path.unlink()
    (tmp_path / "missing-field.json").write_text(
        json.dumps({"schema": FINDING_SCHEMA, "oracle": "x", "kind": "y"})
    )
    with pytest.raises(ValueError, match="source"):
        load_findings(tmp_path)


def test_replay_reproduces_an_open_finding(tmp_path):
    save_finding(tmp_path, DEADLOCK_FINDING)
    (result,) = replay_corpus(tmp_path)
    assert result["outcome"] == "violation"
    assert result["reproduced"]
    assert result["expect"] == "violates"
    assert result["as_expected"]


def test_replay_rejects_unknown_oracles():
    with pytest.raises(ValueError, match="unknown oracle"):
        replay_finding(dict(DEADLOCK_FINDING, oracle="bogus"))


def test_checked_in_regressions_stay_fixed():
    """Tier-1 replay of ``tests/fuzz/corpus``: every record is a
    minimized finding from a past campaign, marked ``expect: fixed``,
    and none of them may reproduce against the current tree."""
    results = replay_corpus(CHECKED_IN)
    assert results, "the checked-in corpus must not be empty"
    for result in results:
        assert result["as_expected"], (
            f"{result['path']}: outcome {result['outcome']!r} "
            f"vs expect {result['expect']!r}"
        )


def test_squaring_regression_explores_and_serializes():
    """The seed-249 machine crash, asserted directly.

    The campaign oracle now *skips* iterated-multiplication programs
    (a single bignum multiply cannot be deadline-polled), so the real
    regression check lives here: the machine must format astronomically
    large values in bounded work instead of dying on CPython's
    ``int_max_str_digits`` limit inside ``repr``/``json.dumps``.
    """
    from repro.lang.parser import parse_program
    from repro.runtime.explorer import explore

    (record,) = [
        r for r in load_findings(CHECKED_IN) if r["oracle"] == "runtime-safe"
    ]
    program = parse_program(record["source"])
    result = explore(program)
    assert result.complete
    outcomes = [o.to_dict() for o in result.sorted_outcomes()]
    text = json.dumps(outcomes)  # must not raise on the 51937-bit value
    assert "<int:" in text and "bits>" in text


def test_format_value_sketches_only_huge_ints():
    from repro.runtime.machine import VALUE_SKETCH_BITS, format_value

    assert format_value(7) == "7"
    assert format_value(-3) == "-3"
    assert format_value(True) == "True"
    assert format_value(2**VALUE_SKETCH_BITS - 1) == str(2**VALUE_SKETCH_BITS - 1)
    big = 2**VALUE_SKETCH_BITS
    assert format_value(big) == f"<int:{VALUE_SKETCH_BITS + 1} bits>"
    assert format_value(-big) == f"-<int:{VALUE_SKETCH_BITS + 1} bits>"
