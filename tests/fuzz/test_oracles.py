"""The differential oracles: known-answer cases for each relation."""

import pytest

from repro.fuzz.driver import FUZZ_CONFIG, generate_subject
from repro.fuzz.oracles import (
    ORACLES,
    OracleSkip,
    PROFILES,
    _value_blowup_risk,
    oracle_names,
)
from repro.lang.parser import parse_program, parse_statement

CONFIG = dict(FUZZ_CONFIG)

SQUARING_LOOP = """\
var v, c : integer;
begin
  v := 9;
  c := 0;
  while c < 14 do
    begin
      v := v * v;
      c := c + 1
    end
end"""


def test_registry_is_complete_and_consistent():
    assert oracle_names() == tuple(sorted(ORACLES))
    for name, spec in ORACLES.items():
        assert spec.name == name
        assert spec.description
        assert spec.paper
        assert spec.profiles
        assert set(spec.profiles) <= set(PROFILES)
    # the policy oracles only apply to explorable programs
    assert ORACLES["cert-ni"].profiles == ("runtime_safe",)
    assert ORACLES["runtime-safe"].profiles == ("runtime_safe",)


class TestValueBlowupRisk:
    def test_squaring_under_a_loop_is_risky(self):
        assert _value_blowup_risk(parse_program(SQUARING_LOOP))

    def test_squaring_without_a_loop_is_fine(self):
        assert not _value_blowup_risk(parse_statement("v := v * v"))

    def test_multiplying_by_a_literal_is_fine(self):
        assert not _value_blowup_risk(
            parse_statement("while c < 5 do begin v := v * 2; c := c + 1 end")
        )

    def test_nested_loops_are_seen(self):
        s = parse_statement(
            "while a < 2 do if b = 0 then while c < 5 do v := v * v"
        )
        assert _value_blowup_risk(s)


def test_runtime_safe_reports_a_deadlock_as_violation():
    s = parse_statement(
        "cobegin begin wait(a); signal(b) end || "
        "begin wait(b); signal(a) end coend"
    )
    outcome = ORACLES["runtime-safe"].check(s, CONFIG)
    assert isinstance(outcome, dict)
    assert "never deadlock" in outcome["relation"]


def test_runtime_safe_passes_on_a_terminating_program():
    s = parse_statement("begin x := 1; cobegin y := x || z := x coend end")
    assert ORACLES["runtime-safe"].check(s, CONFIG) is None


def test_runtime_safe_skips_value_blowups():
    outcome = ORACLES["runtime-safe"].check(parse_program(SQUARING_LOOP), CONFIG)
    assert isinstance(outcome, OracleSkip)
    assert "multiplication" in outcome.reason


def test_runtime_safe_skips_when_the_budget_is_hit():
    s = parse_statement("while true do x := x + 1")
    outcome = ORACLES["runtime-safe"].check(s, dict(CONFIG, max_states=50))
    assert isinstance(outcome, OracleSkip)


def test_deadlock_lint_agrees_on_a_real_deadlock():
    # The static pass must also flag it, so the relation *holds*.
    s = parse_statement(
        "cobegin begin wait(a); signal(b) end || "
        "begin wait(b); signal(a) end coend"
    )
    assert ORACLES["deadlock-lint"].check(s, CONFIG) is None


def test_cert_ni_skips_without_a_high_variable():
    s = parse_statement("begin x := 1; y := x end")
    outcome = ORACLES["cert-ni"].check(s, dict(CONFIG, high=("h",)))
    assert isinstance(outcome, OracleSkip)
    assert "no high variable" in outcome.reason


def test_cert_ni_passes_on_a_certified_program():
    # v0 is bound high by FUZZ_CONFIG; v0 := v0 + 1 flows high -> high.
    s = parse_statement("begin v0 := v0 + 1; y := 1 end")
    assert ORACLES["cert-ni"].check(s, CONFIG) is None


def test_parse_pretty_fixpoint_on_generated_programs():
    for seed in range(6):
        for profile in PROFILES:
            subject = generate_subject(seed, profile)
            assert ORACLES["parse-pretty"].check(subject, CONFIG) is None


def test_cert_proof_on_a_simple_program():
    s = parse_statement("begin x := 1; y := x end")
    assert ORACLES["cert-proof"].check(s, CONFIG) is None


def test_denning_containment_on_a_certified_program():
    s = parse_statement("begin x := 1; y := x end")
    assert ORACLES["denning-contain"].check(s, CONFIG) is None


def test_pipeline_idem_on_a_small_program():
    subject = generate_subject(1, "runtime_safe")
    assert ORACLES["pipeline-idem"].check(subject, CONFIG) is None


def test_generate_subject_rejects_unknown_profiles():
    with pytest.raises(ValueError, match="unknown profile"):
        generate_subject(0, "bogus")


def test_generate_subject_is_deterministic():
    from repro.lang.pretty import pretty

    a = generate_subject(5, "runtime_safe")
    b = generate_subject(5, "runtime_safe")
    assert pretty(a) == pretty(b)


# -- cert-equiv: the fused fast path against the reference analyzers ---------


def test_cert_equiv_holds_on_parsed_and_generated_programs():
    from repro.fastpath import clear_caches

    clear_caches()
    s = parse_statement("begin x := v0; while v0 > 0 do x := x - 1 end")
    assert ORACLES["cert-equiv"].check(s, CONFIG) is None
    for seed in range(4):
        for profile in PROFILES:
            assert ORACLES["cert-equiv"].check(
                generate_subject(seed, profile), CONFIG
            ) is None
    clear_caches()


def test_cert_equiv_skips_when_the_fast_path_is_disabled():
    outcome = ORACLES["cert-equiv"].check(
        parse_statement("x := 1"), dict(CONFIG, fastpath=False)
    )
    assert isinstance(outcome, OracleSkip)
    assert "disabled" in outcome.reason


def test_cert_equiv_skips_subjects_the_fast_path_declines():
    source = (
        "proc inc(in a; out b) b := a + 1 "
        "var x, h : integer; begin call inc(h; x) end"
    )
    outcome = ORACLES["cert-equiv"].check(parse_program(source), CONFIG)
    assert isinstance(outcome, OracleSkip)
    assert "declined" in outcome.reason


def test_cert_equiv_reports_a_divergence(monkeypatch):
    # Sabotage the fused certifier: the oracle must catch the lie.
    def lying_fused_cert(subject, config):
        return {"certified": True, "checks": 0, "violations": []}

    monkeypatch.setattr("repro.fastpath.fused_cert", lying_fused_cert)
    s = parse_statement("x := v0")  # v0 is high under FUZZ_CONFIG
    outcome = ORACLES["cert-equiv"].check(s, CONFIG)
    assert isinstance(outcome, dict)
    assert outcome["relation"] == "fused cert == reference cert"
    assert outcome["fused"] != outcome["reference"]
