"""The batch pipeline test suite."""
