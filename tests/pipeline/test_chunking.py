"""Chunked dispatch: byte-identity, per-cell isolation, accounting.

The chunking PR's contract: ``chunk_size`` (like ``jobs`` and the
cache) is an execution-strategy knob — the pipeline document is
byte-identical for every value — while per-cell crash isolation,
retry/abandon accounting, and deadline repricing survive the move from
one-cell-per-task to many-cells-per-task dispatch.
"""

import os
import tempfile

import pytest

from repro.pipeline import run_pipeline
from repro.pipeline.runner import (
    _auto_chunk_size,
    _error_record,
    _run_chunk,
)
from repro.workloads.litmus import CASES


def litmus_corpus(count=None):
    cases = CASES if count is None else CASES[:count]
    return [(case.name, case.statement()) for case in cases]


# -- auto sizing -------------------------------------------------------------


def test_auto_chunk_size_amortizes_without_starving_workers():
    # enough cells: about _CHUNKS_PER_WORKER chunks per worker
    assert _auto_chunk_size(64, 4) == 4
    assert _auto_chunk_size(100, 2) == 13
    # tiny batches degrade to one cell per chunk, never zero
    assert _auto_chunk_size(1, 8) == 1
    assert _auto_chunk_size(0, 4) == 1
    assert _auto_chunk_size(3, 4) == 1


# -- the chunk-level entry point ---------------------------------------------


def test_run_chunk_isolates_a_raising_cell():
    """One cell raising must fail that cell, never its chunk-mates."""

    def fn(payload):
        if payload[0] == "bad":
            raise RuntimeError("cell fault")
        return {"result": {"ok": payload[0]}, "seconds": 0.0}

    envelopes = _run_chunk(fn, [("a",), ("bad",), ("b",)])
    assert envelopes[0]["result"] == {"ok": "a"}
    assert envelopes[1]["result"]["error_type"] == "RuntimeError"
    assert envelopes[2]["result"] == {"ok": "b"}


def test_run_chunk_isolates_an_unpicklable_envelope():
    """An envelope that cannot cross the process boundary back becomes
    that cell's error record instead of poisoning the whole chunk."""

    def fn(payload):
        if payload[0] == "bad":
            return {"result": {"handle": lambda: None}, "seconds": 0.0}
        return {"result": {"ok": payload[0]}, "seconds": 0.0}

    envelopes = _run_chunk(fn, [("a",), ("bad",), ("b",)])
    assert envelopes[0]["result"] == {"ok": "a"}
    assert "error_type" in envelopes[1]["result"]
    assert envelopes[2]["result"] == {"ok": "b"}


# -- byte-identity across the chunk-size x jobs x cache matrix ---------------


def test_document_is_byte_identical_across_chunk_sizes_and_jobs():
    corpus = litmus_corpus()
    analyses = ("cert", "lint")
    baseline = run_pipeline(corpus, analyses=analyses, jobs=1, use_cache=False)
    expected = baseline.to_json()
    cells = len(corpus) * len(analyses)
    for chunk_size in (1, None, cells):
        for jobs in (1, 4):
            combo = f"chunk_size={chunk_size} jobs={jobs}"
            # a fresh cache per combination: every cold run genuinely
            # exercises this chunk/jobs dispatch shape end to end
            with tempfile.TemporaryDirectory() as cache_dir:
                cold = run_pipeline(
                    corpus,
                    analyses=analyses,
                    jobs=jobs,
                    cache_dir=cache_dir,
                    chunk_size=chunk_size,
                )
                warm = run_pipeline(
                    corpus,
                    analyses=analyses,
                    jobs=jobs,
                    cache_dir=cache_dir,
                    chunk_size=chunk_size,
                )
                assert cold.to_json() == expected, combo
                assert warm.to_json() == expected, combo
                assert warm.stats["computed"] == 0, combo


def test_chunk_counters_reflect_the_requested_granularity():
    corpus = litmus_corpus()
    analyses = ("cert", "lint")
    cells = len(corpus) * len(analyses)

    singleton = run_pipeline(
        corpus, analyses=analyses, jobs=2, use_cache=False, chunk_size=1
    )
    assert singleton.metrics["chunks"]["submitted"] == cells
    assert singleton.metrics["chunks"]["cells"] == cells

    one_chunk = run_pipeline(
        corpus, analyses=analyses, jobs=2, use_cache=False, chunk_size=cells
    )
    assert one_chunk.metrics["chunks"]["submitted"] == 1
    assert one_chunk.metrics["chunks"]["cells"] == cells
    # amortization is the point: one big chunk crosses the pickle
    # boundary in far fewer bytes than one submission per cell
    assert (
        one_chunk.metrics["chunks"]["bytes_pickled"]
        < singleton.metrics["chunks"]["bytes_pickled"]
    )

    serial = run_pipeline(corpus, analyses=analyses, jobs=1, use_cache=False)
    assert serial.metrics["chunks"] == {
        "submitted": 0,
        "cells": 0,
        "bytes_pickled": 0,
    }


def test_chunk_size_is_validated():
    from repro.pipeline.runner import WorkerPool

    with pytest.raises(ValueError, match="chunk_size"):
        WorkerPool(2, chunk_size=0)
    with pytest.raises(ValueError, match="chunk_size"):
        pool = WorkerPool(2)
        try:
            pool.run([], [], None, chunk_size=-1)
        finally:
            pool.close()


# -- crash isolation inside a chunk ------------------------------------------


def _poison_corpus():
    from repro.lang.parser import parse_statement

    return [
        ("healthy-a", parse_statement("begin l := 1; l2 := l end")),
        ("kaboom", parse_statement("kaboom := 1")),
        ("healthy-b", parse_statement("begin m := 2; m2 := m end")),
    ]


def test_crash_in_a_chunk_retries_cellmates_and_abandons_the_poison(
    monkeypatch,
):
    """A poison cell killing its worker takes its whole chunk's futures
    down — but only *it* may be abandoned; its innocent chunk-mates
    must be retried (in singleton chunks) to completion, and the
    ``computed`` stat must not count the abandoned WorkerCrash cell."""
    from repro.pipeline import runner

    def die_on_poison(payload):
        if "kaboom" in payload[0]:
            os._exit(13)

    monkeypatch.setattr(runner, "_INJECT_FAULT", die_on_poison)
    result = run_pipeline(
        _poison_corpus(),
        analyses=("cert",),
        jobs=2,
        use_cache=False,
        chunk_size=3,  # all three cells share one chunk
    )
    data = result.program("kaboom")["analyses"]["cert"]
    assert data["error_type"] == "WorkerCrash"
    assert result.program("healthy-a")["analyses"]["cert"]["certified"] is True
    assert result.program("healthy-b")["analyses"]["cert"]["certified"] is True
    workers = result.metrics["workers"]
    assert workers["abandoned"] == 1
    assert workers["crashes"] >= 1
    # two healthy cells ran; the abandoned cell never computed anywhere
    assert result.stats["computed"] == 2
    assert result.metrics["run"]["computed"] == 3  # cells not served by cache
    # the retry rounds dispatched singleton chunks beyond the first one
    assert result.metrics["chunks"]["submitted"] > 1


def test_transient_crash_in_a_chunk_recovers_every_cell(
    tmp_path, monkeypatch
):
    from repro.pipeline import runner

    tombstone = tmp_path / "crashed-once"

    def die_once(payload):
        if "kaboom" in payload[0] and not tombstone.exists():
            tombstone.write_text("")
            os._exit(13)

    monkeypatch.setattr(runner, "_INJECT_FAULT", die_once)
    result = run_pipeline(
        _poison_corpus(),
        analyses=("cert",),
        jobs=2,
        use_cache=False,
        chunk_size=3,
    )
    assert result.errors() == []
    assert result.stats["computed"] == 3
    workers = result.metrics["workers"]
    assert workers["retries"] >= 1
    assert workers["abandoned"] == 0


#: Deadline each payload arrived with, keyed by source, recorded by
#: :func:`_deadline_spy` (must be module level: chunk submission
#: pickles the entry point for the bytes_pickled counter).
_SPY_DEADLINES = {}


def _deadline_spy(payload):
    _SPY_DEADLINES[payload[0]] = payload[3]["deadline"]
    return {"result": {"ok": True}, "seconds": 0.0}


class _MidLoopBreakPool:
    """A :class:`WorkerPool` whose executor runs chunks inline and
    breaks (``BrokenProcessPool``) on exactly the second submission —
    the mid-submission-loop failure shape of a real pool break."""

    def __new__(cls):
        from repro.pipeline.runner import WorkerPool

        pool = WorkerPool(jobs=2)
        pool._submissions = 0
        pool._handle = lambda observer, _pool=pool: _InlineExecutor(_pool)
        return pool


class _InlineExecutor:
    def __init__(self, pool):
        self._pool = pool

    def submit(self, fn, *args):
        from concurrent.futures import Future
        from concurrent.futures.process import BrokenProcessPool

        self._pool._submissions += 1
        if self._pool._submissions == 2:
            raise BrokenProcessPool("injected mid-loop break")
        future = Future()
        future.set_result(fn(*args))
        return future

    def shutdown(self, wait=True, cancel_futures=False):
        pass


def test_never_submitted_cells_are_not_charged_wall_clock():
    """Regression: ``first_submitted`` must be stamped only after
    ``pool.submit`` succeeds.  A cell whose submission never happened
    (the pool broke mid-submission-loop) must get its *full* deadline
    on its first real run, not one shortened by wall-clock it never
    spent."""
    from repro.observe import MetricsAggregator
    from repro.pipeline.runner import _Task

    _SPY_DEADLINES.clear()
    pool = _MidLoopBreakPool()
    try:
        pending = [
            _Task(i, f"p{i}", f"src{i}", "statement", "cert")
            for i in range(2)
        ]
        payloads = [
            (f"src{i}", "statement", "cert", {"deadline": 30.0})
            for i in range(2)
        ]
        envelopes = pool.run(
            pending,
            payloads,
            MetricsAggregator(),
            fn=_deadline_spy,
            chunk_size=1,
        )
    finally:
        pool.close()
    assert all(e["result"].get("ok") for e in envelopes)
    # the second cell never genuinely reached the executor in round
    # one, so its first real run must carry the full original grant
    assert _SPY_DEADLINES["src0"] == pytest.approx(30.0)
    assert _SPY_DEADLINES["src1"] == pytest.approx(30.0)


# -- fork-shared corpus ------------------------------------------------------


def test_run_owned_pool_shares_the_corpus_by_fork():
    """A run-owned fork pool publishes the corpus once and ships
    indices; the corpus_shared event marks the mode, and the pickled
    payload traffic shrinks against inline dispatch."""
    import multiprocessing

    if "fork" not in multiprocessing.get_all_start_methods():
        pytest.skip("fork start method unavailable")

    from repro.observe import MetricsAggregator, RecordingEmitter

    sink = RecordingEmitter()
    observer = MetricsAggregator(sink=sink)
    result = run_pipeline(
        litmus_corpus(),
        analyses=("cert", "lint"),
        jobs=2,
        use_cache=False,
        observer=observer,
        chunk_size=1000,
    )
    assert not result.errors()
    shared = [
        r for r in sink.records if r.get("name") == "corpus_shared"
    ]
    assert len(shared) == 1
    # the snapshot dedups by canonical source, so at most one slot per
    # program and at least one overall
    assert 1 <= shared[0]["programs"] <= len(litmus_corpus())


def test_persistent_pool_falls_back_to_inline_payloads():
    """A caller-owned pool's workers predate the corpus; they must get
    inline payloads (and still produce the identical document)."""
    from repro.observe import MetricsAggregator, RecordingEmitter
    from repro.pipeline.runner import WorkerPool

    sink = RecordingEmitter()
    observer = MetricsAggregator(sink=sink)
    pool = WorkerPool(2)
    try:
        pool.warm(observer)
        result = run_pipeline(
            litmus_corpus(),
            analyses=("cert",),
            jobs=2,
            use_cache=False,
            pool=pool,
            observer=observer,
        )
    finally:
        pool.close()
    assert not result.errors()
    assert not [
        r for r in sink.records if r.get("name") == "corpus_shared"
    ]
    serial = run_pipeline(
        litmus_corpus(), analyses=("cert",), jobs=1, use_cache=False
    )
    assert result.to_json() == serial.to_json()


# -- the fuzz driver's custom entry point over chunked dispatch --------------


def test_fuzz_driver_chunked_run_matches_serial():
    from repro.fuzz import run_fuzz

    serial = run_fuzz(seeds=4, oracles=("cert-equiv",), jobs=1)
    chunked = run_fuzz(
        seeds=4, oracles=("cert-equiv",), jobs=2, chunk_size=2
    )
    assert chunked.seeds == serial.seeds
    assert chunked.checks == serial.checks
    assert chunked.skips == serial.skips
    assert len(chunked.findings) == len(serial.findings)
