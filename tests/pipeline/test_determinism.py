"""Determinism: serial, parallel, and cached runs are byte-identical.

The pipeline's JSON document is the artifact that gets diffed across
commits and cached across runs, so it must not depend on worker count,
scheduling, set/dict iteration order, or whether results were computed
or replayed from disk.  The property is tested end to end: same
corpus, three execution strategies, one byte string.
"""

import json

from repro.cli import main
from repro.pipeline import run_pipeline
from repro.workloads.generators import random_program
from repro.workloads.litmus import CASES

ANALYSES = ("cert", "denning", "explore", "lint")


def mixed_corpus():
    corpus = [(case.name, case.statement()) for case in CASES[:6]]
    for i in range(3):
        corpus.append(
            (
                f"rand-{i}",
                random_program(
                    seed=5300 + i, size=16, runtime_safe=True, p_cobegin=0.3
                ),
            )
        )
    return corpus


def test_jobs1_jobs4_and_warm_cache_are_byte_identical(tmp_path):
    cache_dir = str(tmp_path / "cache")
    serial = run_pipeline(mixed_corpus(), analyses=ANALYSES, jobs=1, use_cache=False)
    parallel = run_pipeline(mixed_corpus(), analyses=ANALYSES, jobs=4, use_cache=False)
    cold = run_pipeline(mixed_corpus(), analyses=ANALYSES, jobs=1, cache_dir=cache_dir)
    warm = run_pipeline(mixed_corpus(), analyses=ANALYSES, jobs=1, cache_dir=cache_dir)
    assert warm.stats["computed"] == 0  # genuinely replayed from disk
    assert serial.to_json() == parallel.to_json()
    assert serial.to_json() == cold.to_json()
    assert serial.to_json() == warm.to_json()


def test_corpus_order_does_not_matter():
    corpus = mixed_corpus()
    forward = run_pipeline(corpus, analyses=("cert",), use_cache=False)
    backward = run_pipeline(list(reversed(corpus)), analyses=("cert",), use_cache=False)
    assert forward.to_json() == backward.to_json()


def test_document_excludes_volatile_facts():
    result = run_pipeline(mixed_corpus()[:2], analyses=("cert",), use_cache=False)
    text = result.to_json()
    doc = json.loads(text)
    assert "elapsed" not in text and "hits" not in text
    assert set(doc) == {"analyses", "config", "programs", "version"}


def test_cli_batch_json_is_deterministic(tmp_path, capsys):
    program = tmp_path / "p.rl"
    program.write_text(
        "var h, l : integer; s : semaphore;\n"
        "cobegin if h = 0 then signal(s) || begin wait(s); l := 1 end coend"
    )
    cache_dir = str(tmp_path / "cache")
    outputs = []
    for jobs, cached in (("1", False), ("4", False), ("1", True), ("1", True)):
        argv = [
            "batch", str(program), "--corpus", "litmus",
            "--analyses", "cert,explore", "--jobs", jobs, "--json",
        ]
        argv += ["--cache-dir", cache_dir] if cached else ["--no-cache"]
        assert main(argv) == 0
        outputs.append(capsys.readouterr().out)
    assert len(set(outputs)) == 1

    doc = json.loads(outputs[0])
    names = [entry["name"] for entry in doc["programs"]]
    assert names == sorted(names)
    assert "p.rl" in names
