"""Differential testing: the POR explorer against the naive explorer.

Partial-order reduction is only admissible if it is *observationally
invisible*: for every program, the reduced exploration must produce
exactly the same outcome set — completed final stores, deadlock
stores, and cutoffs — as the naive one.  This suite checks that
equivalence over three corpora:

* every litmus case (hand-written flows, races, semaphore protocols);
* every paper fragment (Figure 3 and the section examples);
* 60 seeded ``random_program`` instances (runtime-safe, so every
  exploration completes and the comparison is exhaustive, plus a
  static batch explored under a budget for the incomplete-path
  smoke check).

It also asserts the reduction never *increases* the state count, and
that it strictly reduces it on a healthy fraction of concurrent
programs (the point of shipping it).
"""

import pytest

from repro.runtime.explorer import explore
from repro.workloads.generators import random_program
from repro.workloads.litmus import CASES
from repro.workloads.paper import paper_programs

MAX_STATES = 60_000
MAX_DEPTH = 600


def outcome_set(result):
    """The comparable essence of an exploration (order-free)."""
    return frozenset((o.status, o.store) for o in result.outcomes)


def both(subject, store=None, **kwargs):
    naive = explore(subject, store=dict(store or {}), por=False, **kwargs)
    reduced = explore(subject, store=dict(store or {}), por=True, **kwargs)
    return naive, reduced


@pytest.mark.parametrize("case", CASES, ids=lambda c: c.name)
def test_por_matches_naive_on_litmus(case):
    for probe in case.probe_values:
        store = dict(case.base_store or {})
        store["h"] = probe
        naive, reduced = both(
            case.statement(), store, max_states=MAX_STATES, max_depth=MAX_DEPTH
        )
        assert naive.complete and reduced.complete
        assert outcome_set(naive) == outcome_set(reduced)
        assert reduced.states_visited <= naive.states_visited


@pytest.mark.parametrize(
    "name,stmt", sorted(paper_programs().items()), ids=lambda x: x if isinstance(x, str) else ""
)
def test_por_matches_naive_on_paper_programs(name, stmt):
    for store in ({}, {"x": 1}, {"x": 0}):
        naive, reduced = both(
            stmt, store, max_states=MAX_STATES, max_depth=MAX_DEPTH
        )
        # s22-while diverges for x != 0: both explorations are then cut
        # off, and (single process) must still agree outcome-for-outcome.
        assert naive.complete == reduced.complete, name
        assert outcome_set(naive) == outcome_set(reduced), name
        assert reduced.states_visited <= naive.states_visited, name


@pytest.mark.parametrize("seed", range(40))
def test_por_matches_naive_on_random_runtime_safe(seed):
    program = random_program(
        seed=4100 + seed,
        size=18,
        runtime_safe=True,
        p_cobegin=0.3,
        n_sems=2,
    )
    naive, reduced = both(program, max_states=MAX_STATES, max_depth=MAX_DEPTH)
    assert naive.complete and reduced.complete, seed
    assert outcome_set(naive) == outcome_set(reduced), seed
    assert reduced.states_visited <= naive.states_visited, seed


# Seeds 8207 and 8210 generate genuinely divergent programs (linear
# infinite chains, so every budget truncates them and the outcome
# comparison could never be exhaustive); 8220 and 8221 are verified
# terminating replacements from the same static profile.
STATIC_SEEDS = tuple(
    seed for seed in range(8200, 8220) if seed not in (8207, 8210)
) + (8220, 8221)


@pytest.mark.parametrize("seed", STATIC_SEEDS)
def test_por_matches_naive_on_random_static(seed):
    """The static profile (unbounded loops, unmatched semaphores).

    These programs can deadlock arbitrarily; the seed list above pins
    20 instances whose memoized exploration completes, making the
    outcome comparison exhaustive (the assert guards that assumption —
    no skips: a budget hit here is a regression, not an excuse).
    """
    program = random_program(
        seed=seed,
        size=10,
        runtime_safe=False,
        p_cobegin=0.35,
        p_sem_op=0.2,
        n_sems=2,
        max_loop_iters=2,
    )
    naive, reduced = both(program, max_states=MAX_STATES, max_depth=200)
    assert naive.complete and reduced.complete, seed
    assert outcome_set(naive) == outcome_set(reduced), seed
    assert reduced.states_visited <= naive.states_visited, seed


def test_por_strictly_reduces_concurrent_programs():
    """The reduction must actually fire on concurrent workloads."""
    reduced_count = 0
    total = 20
    for i in range(total):
        program = random_program(
            seed=7000 + i, size=20, runtime_safe=True, p_cobegin=0.3, n_sems=2
        )
        naive, reduced = both(program, max_states=MAX_STATES)
        assert outcome_set(naive) == outcome_set(reduced)
        if reduced.states_visited < naive.states_visited:
            reduced_count += 1
    assert reduced_count >= total // 2, (
        f"POR reduced only {reduced_count}/{total} concurrent programs"
    )


def test_por_result_is_flagged():
    from repro.lang.parser import parse_statement

    stmt = parse_statement("cobegin x := 1 || y := 2 coend")
    assert explore(stmt, por=True).por is True
    assert explore(stmt, por=False).por is False


def test_por_disabled_under_a_monitor():
    """Monitors can observe interleavings; reduction must stand down."""
    from repro.lang.parser import parse_statement
    from repro.runtime.taint import TaintMonitor
    from repro.core.binding import StaticBinding
    from repro.lattice.chain import two_level

    stmt = parse_statement("cobegin x := 1 || y := 2 coend")
    scheme = two_level()
    binding = StaticBinding(scheme, {"x": "low", "y": "low"})
    monitor = TaintMonitor.from_binding(binding, ("x", "y"))
    monitored = explore(stmt, monitor=monitor, por=True)
    assert monitored.por is False  # fell back to the naive exploration
