"""Cache correctness: accounting, key sensitivity, corruption recovery."""

import json
import os

import pytest

import repro
from repro.pipeline import ResultCache, cache_key, run_pipeline
from repro.pipeline.analyses import ANALYSES, DEFAULT_CONFIG
from repro.workloads.litmus import CASES


def small_corpus(n=4):
    return [(case.name, case.statement()) for case in CASES[:n]]


def test_cold_run_misses_then_warm_run_hits(tmp_path):
    cache_dir = str(tmp_path / "cache")
    cold = run_pipeline(small_corpus(), analyses=("cert",), cache_dir=cache_dir)
    assert cold.stats["cache"] == {
        "hits": 0, "misses": 4, "writes": 4, "corrupt": 0,
    }
    warm = run_pipeline(small_corpus(), analyses=("cert",), cache_dir=cache_dir)
    assert warm.stats["cache"] == {
        "hits": 4, "misses": 0, "writes": 0, "corrupt": 0,
    }
    assert warm.stats["computed"] == 0
    assert cold.to_json() == warm.to_json()


def test_partial_overlap_accounts_hits_and_misses(tmp_path):
    cache_dir = str(tmp_path / "cache")
    run_pipeline(small_corpus(2), analyses=("cert",), cache_dir=cache_dir)
    mixed = run_pipeline(small_corpus(4), analyses=("cert",), cache_dir=cache_dir)
    assert mixed.stats["cache"]["hits"] == 2
    assert mixed.stats["cache"]["misses"] == 2


def test_use_cache_false_never_touches_disk(tmp_path):
    cache_dir = str(tmp_path / "cache")
    result = run_pipeline(
        small_corpus(), analyses=("cert",), cache_dir=cache_dir, use_cache=False
    )
    assert result.stats["cache"] == {
        "hits": 0, "misses": 0, "writes": 0, "corrupt": 0,
    }
    assert not os.path.exists(cache_dir)


def _keys_for(config_overrides, version=None):
    """Cache keys for one litmus program under a config variation."""
    from repro.lang.pretty import pretty

    source = pretty(CASES[0].statement())
    config = dict(DEFAULT_CONFIG)
    config.update(config_overrides)
    config["high"] = tuple(sorted(config["high"]))
    return {
        name: cache_key(
            source,
            "statement",
            name,
            spec.config_slice(config),
            version or repro.__version__,
        )
        for name, spec in ANALYSES.items()
    }


def test_key_changes_with_scheme_policy_and_version():
    base = _keys_for({})
    # Changing the lattice invalidates every policy-consuming analysis.
    four = _keys_for({"scheme": "four-level"})
    assert four["cert"] != base["cert"]
    assert four["lint"] != base["lint"]
    # Changing the policy (high-variable set) likewise.
    high = _keys_for({"high": ("h", "h2", "l2")})
    assert high["cert"] != base["cert"]
    # Changing explorer budgets touches only the explorer.
    budget = _keys_for({"max_states": 999})
    assert budget["explore"] != base["explore"]
    assert budget["cert"] == base["cert"]
    assert budget["lint"] == base["lint"]
    # A new package version invalidates everything.
    bumped = _keys_for({}, version="999.0.0")
    for name in base:
        assert bumped[name] != base[name], name


def test_pre_fastpath_entries_miss_cleanly(tmp_path):
    """Stale 1.1.x cert/denning/lint entries must re-key, not replay.

    The fused fast path landed with a version bump precisely so caches
    written by the pre-fastpath release cannot serve results to the new
    code: an entry stored under the old version's key must be a clean
    miss (recompute + rewrite), never a hit and never a crash.
    """
    assert repro.__version__ != "1.1.0"  # the release the bump leaves behind
    old = _keys_for({}, version="1.1.0")
    current = _keys_for({})
    for name in current:
        assert current[name] != old[name], name

    # Simulate the migration end to end: seed the cache under the old
    # version's keys, then run the pipeline and demand zero hits.
    from repro.lang.pretty import pretty

    cache_dir = str(tmp_path / "cache")
    cache = ResultCache(cache_dir)
    config = dict(DEFAULT_CONFIG)
    config["high"] = tuple(sorted(config["high"]))
    for name, subject in small_corpus():
        key = cache_key(
            pretty(subject),
            "statement",
            "cert",
            ANALYSES["cert"].config_slice(config),
            "1.1.0",
        )
        cache.put(key, "cert", {"certified": False, "checks": 0, "violations": []})
    migrated = run_pipeline(small_corpus(), analyses=("cert",), cache_dir=cache_dir)
    assert migrated.stats["cache"]["hits"] == 0
    assert migrated.stats["cache"]["misses"] == 4
    assert migrated.stats["computed"] == 4
    # the stale planted answers never leak into the document
    assert all(
        entry["analyses"]["cert"]["checks"] > 0 or entry["analyses"]["cert"]["certified"]
        for entry in migrated.programs
    )


def test_key_changes_with_program_text():
    a = cache_key("l := h", "statement", "cert", {}, "1.0.0")
    b = cache_key("l := h2", "statement", "cert", {}, "1.0.0")
    assert a != b
    # and is stable for identical inputs
    assert a == cache_key("l := h", "statement", "cert", {}, "1.0.0")


@pytest.mark.parametrize("damage", ["truncate", "garbage", "wrong-key", "empty"])
def test_corrupted_cache_entry_recomputes_not_crashes(tmp_path, damage):
    cache_dir = str(tmp_path / "cache")
    first = run_pipeline(small_corpus(), analyses=("cert",), cache_dir=cache_dir)
    files = sorted(
        os.path.join(root, f)
        for root, _, names in os.walk(cache_dir)
        for f in names
    )
    assert len(files) == 4
    victim = files[0]
    if damage == "truncate":
        with open(victim, "r+", encoding="utf-8") as handle:
            handle.truncate(10)
    elif damage == "garbage":
        with open(victim, "w", encoding="utf-8") as handle:
            handle.write("\x00not json at all")
    elif damage == "wrong-key":
        with open(victim, "w", encoding="utf-8") as handle:
            json.dump({"key": "0" * 64, "analysis": "cert", "result": {}}, handle)
    else:  # empty
        open(victim, "w").close()
    again = run_pipeline(small_corpus(), analyses=("cert",), cache_dir=cache_dir)
    assert again.stats["cache"]["corrupt"] == 1
    assert again.stats["cache"]["hits"] == 3
    assert again.stats["cache"]["misses"] == 1
    # the damaged entry was recomputed and the document is unharmed
    assert again.to_json() == first.to_json()
    # and the entry was healed on disk
    healed = run_pipeline(small_corpus(), analyses=("cert",), cache_dir=cache_dir)
    assert healed.stats["cache"]["hits"] == 4


def test_cache_get_put_roundtrip(tmp_path):
    cache = ResultCache(str(tmp_path / "c"))
    key = "ab" + "0" * 62
    assert cache.get(key) is None
    cache.put(key, "cert", {"certified": True})
    assert cache.get(key) == {"certified": True}
    assert cache.stats.to_dict() == {
        "hits": 1, "misses": 1, "writes": 1, "corrupt": 0,
    }


def test_unwritable_cache_root_is_a_no_op(tmp_path):
    blocker = tmp_path / "flat"
    blocker.write_text("a file where the cache root should be")
    cache = ResultCache(str(blocker / "sub"))
    cache.put("ab" + "0" * 62, "cert", {"certified": True})  # must not raise
    assert cache.stats.writes == 0


# -- write-path hygiene (regression: a failed write stranded *.tmp files) ----


def _tmp_litter(root):
    return [
        f
        for dirpath, _, names in os.walk(str(root))
        for f in names
        if f.endswith(".tmp")
    ]


def test_failed_replace_leaves_no_tmp_litter(tmp_path, monkeypatch):
    cache = ResultCache(str(tmp_path / "c"))

    def refuse(src, dst):
        raise OSError(28, "No space left on device")

    monkeypatch.setattr("repro.pipeline.cache.os.replace", refuse)
    cache.put("ab" + "0" * 62, "cert", {"certified": True})  # must not raise
    assert _tmp_litter(tmp_path) == []
    assert cache.stats.writes == 0
    assert cache.get("ab" + "0" * 62) is None  # nothing half-written


def test_unserializable_result_leaves_no_tmp_litter(tmp_path):
    cache = ResultCache(str(tmp_path / "c"))
    cache.put("ab" + "0" * 62, "cert", {"bad": object()})  # must not raise
    assert _tmp_litter(tmp_path) == []
    assert cache.stats.writes == 0
    assert cache.get("ab" + "0" * 62) is None


# -- key hygiene (regression: default=list silently coerced non-JSON) --------


def test_cache_key_rejects_non_json_config_values():
    with pytest.raises(TypeError, match="not JSON-serializable"):
        cache_key(
            "l := h", "statement", "cert", {"high": {"h", "h2"}}, "1.0.0"
        )


def test_cache_key_tuple_and_list_configs_agree():
    # tuples serialize natively as JSON arrays: removing the silent
    # coercion must not re-key any existing entry
    a = cache_key("l := h", "statement", "cert", {"high": ("h", "h2")}, "1.0.0")
    b = cache_key("l := h", "statement", "cert", {"high": ["h", "h2"]}, "1.0.0")
    assert a == b


# -- the in-memory tier ------------------------------------------------------


def test_memory_lru_eviction_order_and_counters():
    from repro.pipeline import MemoryLRU

    lru = MemoryLRU(capacity=2)
    lru.put("a", {"v": 1})
    lru.put("b", {"v": 2})
    assert lru.get("a") == {"v": 1}  # refreshes "a"
    lru.put("c", {"v": 3})  # evicts "b", the least recently used
    assert lru.get("b") is None
    assert lru.get("a") == {"v": 1}
    assert lru.get("c") == {"v": 3}
    assert len(lru) == 2
    assert lru.to_dict() == {
        "capacity": 2, "entries": 2, "hits": 3, "misses": 1, "evictions": 1,
    }


def test_memory_lru_isolates_entries_from_caller_mutation():
    from repro.pipeline import MemoryLRU

    lru = MemoryLRU()
    original = {"nested": {"v": 1}}
    lru.put("k", original)
    original["nested"]["v"] = 666  # the caller's copy, not the cache's
    got = lru.get("k")
    assert got == {"nested": {"v": 1}}
    got["nested"]["v"] = 999  # nor can a reader corrupt later hits
    assert lru.get("k") == {"nested": {"v": 1}}


def test_memory_lru_capacity_zero_disables_the_tier():
    from repro.pipeline import MemoryLRU

    lru = MemoryLRU(capacity=0)
    lru.put("k", {"v": 1})
    assert lru.get("k") is None
    assert len(lru) == 0


def test_tiered_cache_promotes_disk_hits_into_memory(tmp_path):
    from repro.pipeline import MemoryLRU, TieredCache

    key = "ab" + "0" * 62
    first = TieredCache(ResultCache(str(tmp_path / "c")), MemoryLRU(8))
    first.put(key, "cert", {"certified": True})
    # a new tier over the same disk store: memory is cold, disk is warm
    second = TieredCache(ResultCache(str(tmp_path / "c")), MemoryLRU(8))
    assert second.get(key) == {"certified": True}  # served from disk
    assert second.lru.hits == 0
    assert second.get(key) == {"certified": True}  # now from memory
    assert second.lru.hits == 1
    assert second.stats.hits == 2  # combined accounting: both were hits


def test_tiered_cache_is_a_dropin_for_run_pipeline(tmp_path):
    from repro.pipeline import MemoryLRU, TieredCache

    tier = TieredCache(ResultCache(str(tmp_path / "cache")), MemoryLRU(64))
    cold = run_pipeline(small_corpus(), analyses=("cert",), cache=tier)
    warm = run_pipeline(small_corpus(), analyses=("cert",), cache=tier)
    assert cold.to_json() == warm.to_json()
    # a caller-owned cache accumulates across runs (service semantics):
    # 4 cold misses+writes, then 4 warm hits
    assert warm.stats["cache"] == {
        "hits": 4, "misses": 4, "writes": 4, "corrupt": 0,
    }
    assert tier.lru.hits == 4  # the warm run never went to disk
    assert warm.stats["cache_dir"] == str(tmp_path / "cache")


# -- combined-counter accounting regressions (tiered cache) -------------------


def _garble(cache, key):
    """Plant a corrupt entry at ``key``'s on-disk address."""
    import os

    path = cache._path(key)
    os.makedirs(os.path.dirname(path), exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write("{not json")


def test_tiered_corrupt_counter_tracks_deltas_not_snapshots(tmp_path):
    """Regression: mirroring the disk tier's cumulative counter by
    assignment (miss path only) went stale after any hit; the combined
    counter must advance exactly when new corruption is observed and
    then stay put."""
    from repro.pipeline import MemoryLRU, TieredCache

    disk = ResultCache(str(tmp_path / "c"))
    tier = TieredCache(disk, MemoryLRU(8))
    bad = "ab" + "0" * 62
    good = "cd" + "0" * 62

    _garble(disk, bad)
    assert tier.get(bad) is None
    assert tier.stats.corrupt == 1
    # the corrupt read healed nothing; the next get re-reads the same
    # garbage and counts again — still a delta, never a re-snapshot
    assert tier.get(bad) is None
    assert tier.stats.corrupt == 2

    tier.put(good, "cert", {"certified": True})
    assert tier.get(good) == {"certified": True}  # memory hit
    assert tier.stats.corrupt == 2  # a hit must not disturb the counter


def test_two_tiers_sharing_one_disk_count_their_own_corruption(tmp_path):
    """Regression: with the snapshot-assignment bug, the second tier's
    first miss claimed every corruption the *first* tier had already
    observed on their shared disk store."""
    from repro.pipeline import MemoryLRU, TieredCache

    disk = ResultCache(str(tmp_path / "c"))
    first = TieredCache(disk, MemoryLRU(8))
    second = TieredCache(disk, MemoryLRU(8))
    bad = "ab" + "0" * 62
    clean = "cd" + "0" * 62

    _garble(disk, bad)
    assert first.get(bad) is None
    assert first.stats.corrupt == 1
    # second tier misses a *clean* key: no corruption of its own
    assert second.get(clean) is None
    assert second.stats.corrupt == 0


def test_tiered_put_does_not_count_a_swallowed_disk_write(tmp_path):
    """Regression: ``TieredCache.put`` counted a combined write even
    when the disk tier swallowed the failure (unwritable root)."""
    from repro.pipeline import MemoryLRU, TieredCache

    blocker = tmp_path / "flat"
    blocker.write_text("a file where the cache root should be")
    tier = TieredCache(ResultCache(str(blocker / "sub")), MemoryLRU(8))
    key = "ab" + "0" * 62
    tier.put(key, "cert", {"certified": True})  # disk write swallowed
    assert tier.stats.writes == 0  # nothing durable landed
    assert tier.get(key) == {"certified": True}  # memory still serves
    assert tier.stats.hits == 1


def test_memory_only_tier_still_counts_writes(tmp_path):
    """Without a disk tier the memory write *is* the write; disabling
    both tiers (capacity 0) writes nowhere and counts nothing."""
    from repro.pipeline import MemoryLRU, TieredCache

    tier = TieredCache(None, MemoryLRU(8))
    tier.put("ab" + "0" * 62, "cert", {"certified": True})
    assert tier.stats.writes == 1
    disabled = TieredCache(None, MemoryLRU(0))
    disabled.put("cd" + "0" * 62, "cert", {"certified": True})
    assert disabled.stats.writes == 0
