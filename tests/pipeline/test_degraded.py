"""Degraded mode: deadlines turn runaway programs into partial results.

The hardening contract under test: a divergent (or state-explosive)
program under a wall-clock deadline costs at most the deadline, yields
a partial result flagged ``degraded`` (never an exception, never an
error record), leaves every other corpus item untouched, and is kept
out of the result cache so a later run with more budget can do better.
"""

import json

from repro.cli import main
from repro.lang.parser import parse_statement
from repro.observe import Budget, validate_metrics
from repro.pipeline import run_pipeline
from repro.runtime.explorer import explore

#: Diverges with an ever-growing store: no budget short of infinity
#: ever completes it, which is exactly what the deadline is for.
DIVERGENT = "while 1 = 1 do x := x + 1"

#: Generous enough that only the deadline can fire first.
HUGE = 100_000_000


def divergent_corpus():
    return [
        ("divergent", parse_statement(DIVERGENT)),
        ("fine", parse_statement("begin l := 1; l2 := l end")),
    ]


def test_explore_deadline_returns_degraded_partial_result():
    budget = Budget(max_states=HUGE, max_depth=HUGE, deadline=0.05)
    result = explore(parse_statement(DIVERGENT), budget=budget)
    assert result.degraded
    assert not result.complete
    assert result.limit == "deadline"
    assert result.abandoned > 0
    assert result.states_visited > 0  # partial, not empty
    assert result.elapsed_seconds < 5.0  # it actually stopped


def test_explore_deadline_can_raise_when_asked():
    import pytest

    from repro.errors import ExplorationLimitExceeded

    budget = Budget(max_states=HUGE, max_depth=HUGE, deadline=0.02)
    with pytest.raises(ExplorationLimitExceeded, match="deadline"):
        explore(parse_statement(DIVERGENT), budget=budget, on_limit="raise")


def test_pipeline_deadline_degrades_only_the_runaway_item():
    result = run_pipeline(
        divergent_corpus(),
        analyses=("explore", "cert"),
        use_cache=False,
        config={"max_states": HUGE, "max_depth": HUGE},
        deadline=0.1,
    )
    assert result.errors() == []  # degraded is not an error
    assert result.degraded() == [("divergent", "explore", "deadline")]
    data = result.program("divergent")["analyses"]["explore"]
    assert data["degraded"] is True and data["limit"] == "deadline"
    assert data["abandoned"] > 0
    fine = result.program("fine")["analyses"]["explore"]
    assert fine["complete"] is True and fine["degraded"] is False
    metrics = result.metrics
    assert validate_metrics(metrics) == []
    assert metrics["run"]["degraded"] == 1
    assert metrics["run"]["deadline"] == 0.1


def test_degraded_results_are_never_cached(tmp_path):
    kwargs = dict(
        analyses=("explore",),
        cache_dir=str(tmp_path / "cache"),
        config={"max_states": HUGE, "max_depth": HUGE},
        deadline=0.1,
    )
    first = run_pipeline(divergent_corpus(), **kwargs)
    assert first.degraded()
    assert first.metrics["cache"]["skipped_degraded"] == 1
    second = run_pipeline(divergent_corpus(), **kwargs)
    # the healthy item replays from cache; the degraded one recomputes
    statuses = {
        (e["program"], e["analysis"]): e["status"]
        for e in second.metrics["items"]
    }
    assert statuses[("fine", "explore")] == "cached"
    assert statuses[("divergent", "explore")] == "degraded"


def test_cli_batch_deadline_metrics_and_exit_code(tmp_path, capsys):
    program = tmp_path / "divergent.rp"
    program.write_text(f"var x : integer;\n{DIVERGENT}\n")
    metrics_path = tmp_path / "metrics.json"
    trace_path = tmp_path / "trace.jsonl"
    code = main([
        "batch", str(program), "--corpus", "litmus",
        "--analyses", "explore",
        "--deadline", "0.2",
        "--max-states", str(HUGE), "--max-depth", str(HUGE),
        "--metrics", str(metrics_path), "--trace", str(trace_path),
        "--no-cache",
    ])
    out = capsys.readouterr().out
    assert code == 0  # degraded must not fail the batch
    assert "DEGRADED(deadline)" in out
    assert "degraded (partial) result(s):" in out

    doc = json.loads(metrics_path.read_text())
    assert validate_metrics(doc) == []
    assert doc["run"]["degraded"] == 1
    degraded = [e for e in doc["items"] if e["status"] == "degraded"]
    assert [(e["program"], e["limit"]) for e in degraded] == [
        ("divergent.rp", "deadline")
    ]

    records = [
        json.loads(line) for line in trace_path.read_text().splitlines()
    ]
    assert any(
        r["name"] == "task" and r.get("status") == "degraded"
        for r in records
    )
    assert any(r["name"] == "run" for r in records)
