"""Runner and CLI behaviour of the batch pipeline."""

import pytest

from repro.cli import main
from repro.pipeline import run_pipeline
from repro.pipeline.analyses import analysis_names
from repro.workloads.litmus import CASES


def litmus_corpus():
    return [(case.name, case.statement()) for case in CASES]


def test_cert_results_match_litmus_expectations():
    """The pipeline's config-derived binding is the litmus convention,
    so its ``cert`` verdicts must agree with the labelled suite."""
    result = run_pipeline(litmus_corpus(), analyses=("cert",), use_cache=False)
    for case in CASES:
        got = result.program(case.name)["analyses"]["cert"]["certified"]
        assert got == case.cfm, case.name


def test_denning_and_fs_results_match_litmus_expectations():
    result = run_pipeline(
        litmus_corpus(), analyses=("denning", "fs"), use_cache=False
    )
    for case in CASES:
        entry = result.program(case.name)["analyses"]
        assert entry["denning"]["certified"] == case.denning, case.name
        assert entry["fs"]["certified"] == case.flow_sensitive, case.name


def test_explore_analysis_reports_deadlock():
    from repro.lang.parser import parse_statement

    # cyclic wait: both branches block with every semaphore at zero
    stmt = parse_statement(
        "cobegin begin wait(a); signal(b) end"
        " || begin wait(b); signal(a) end coend"
    )
    result = run_pipeline(
        [("cycle", stmt)], analyses=("explore",), use_cache=False
    )
    data = result.program("cycle")["analyses"]["explore"]
    assert data["complete"] is True
    assert data["deadlock_free"] is False
    statuses = {o["status"] for o in data["outcomes"]}
    assert "deadlock" in statuses


def test_unknown_analysis_and_config_are_rejected():
    corpus = litmus_corpus()[:1]
    with pytest.raises(ValueError, match="unknown analysis"):
        run_pipeline(corpus, analyses=("nope",))
    with pytest.raises(ValueError, match="unknown config key"):
        run_pipeline(corpus, analyses=("cert",), config={"typo": 1})
    with pytest.raises(ValueError, match="no analyses"):
        run_pipeline(corpus, analyses=())
    with pytest.raises(ValueError, match="duplicate program name"):
        run_pipeline(corpus + corpus, analyses=("cert",))


def test_analysis_failure_is_reported_not_fatal():
    """A program one analysis cannot handle yields an error entry."""
    from repro.lang.parser import parse_statement

    # division by zero at runtime: explore fails, cert does not
    corpus = [("bad", parse_statement("x := 1 / 0")), ("ok", CASES[0].statement())]
    result = run_pipeline(corpus, analyses=("cert", "explore"), use_cache=False)
    errors = result.errors()
    assert ("bad", "explore") in {(n, a) for n, a, _ in errors}
    assert result.program("ok")["analyses"]["explore"]["complete"] is True
    assert result.program("bad")["analyses"]["cert"]["certified"] is True


def test_every_registered_analysis_runs_on_a_simple_program():
    from repro.lang.parser import parse_statement

    corpus = [("simple", parse_statement("begin l := 1; l2 := l end"))]
    result = run_pipeline(corpus, analyses=analysis_names(), use_cache=False)
    assert not result.errors()
    entry = result.program("simple")["analyses"]
    assert entry["cert"]["certified"] is True
    assert entry["prove"]["valid"] is True
    assert entry["metrics"]["statements"] == 3


def test_cli_batch_human_output(tmp_path, capsys):
    cache_dir = str(tmp_path / "cache")
    code = main(
        ["batch", "--corpus", "litmus", "--analyses", "cert",
         "--cache-dir", cache_dir]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "explicit: cert=REJECT" in out
    assert "19 programs x 1 analyses" in out


def test_cli_batch_rejects_bad_input(capsys):
    with pytest.raises(SystemExit):
        main(["batch", "--analyses", "cert"])  # no corpus at all
    with pytest.raises(SystemExit):
        main(["batch", "--corpus", "litmus", "--analyses", "nope"])
    with pytest.raises(SystemExit):
        main(["batch", "--corpus", "nope", "--analyses", "cert"])
    with pytest.raises(SystemExit):
        main(["batch", "--corpus", "litmus", "--analyses", "cert",
              "--scheme", "nope"])


def test_cli_batch_listings(capsys):
    assert main(["batch", "--list-corpora"]) == 0
    assert "litmus" in capsys.readouterr().out
    assert main(["batch", "--list-analyses"]) == 0
    out = capsys.readouterr().out
    assert "cert:" in out and "explore:" in out


def test_error_records_are_structured():
    """Satellite of the hardening PR: a failing analysis yields a
    structured record (type + truncated traceback), not a bare string."""
    from repro.lang.parser import parse_statement

    corpus = [("bad", parse_statement("x := 1 / 0"))]
    result = run_pipeline(corpus, analyses=("explore",), use_cache=False)
    data = result.program("bad")["analyses"]["explore"]
    assert data["error_type"] == "RuntimeFault"
    assert data["error"].startswith("RuntimeFault:")
    assert "Traceback" in data["traceback"] or data["traceback"]
    assert len(data["traceback"]) <= 1_000


# -- crash isolation ---------------------------------------------------------
#
# ``runner._INJECT_FAULT`` is the deterministic stand-in for a worker
# dying mid-task (MemoryError escaping the interpreter, the OOM killer,
# a segfault).  Workers are forked, so a monkeypatched module global is
# inherited; ``os._exit`` skips every Python-level cleanup exactly like
# a real kill.  These tests require jobs > 1: the injected fault must
# never run in the pytest process itself.


def _poison_corpus():
    from repro.lang.parser import parse_statement

    return [
        ("healthy-a", parse_statement("begin l := 1; l2 := l end")),
        ("kaboom", parse_statement("kaboom := 1")),
        ("healthy-b", parse_statement("begin m := 2; m2 := m end")),
    ]


def test_worker_crash_is_isolated_and_abandoned(monkeypatch):
    import os

    from repro.pipeline import runner

    def die_on_poison(payload):
        if "kaboom" in payload[0]:
            os._exit(13)

    monkeypatch.setattr(runner, "_INJECT_FAULT", die_on_poison)
    result = run_pipeline(
        _poison_corpus(), analyses=("cert",), jobs=2, use_cache=False
    )
    data = result.program("kaboom")["analyses"]["cert"]
    assert data["error_type"] == "WorkerCrash"
    assert f"died {runner.MAX_TASK_ATTEMPTS} time(s)" in data["error"]
    # the poison program must not take the healthy ones down with it
    assert result.program("healthy-a")["analyses"]["cert"]["certified"] is True
    assert result.program("healthy-b")["analyses"]["cert"]["certified"] is True
    workers = result.metrics["workers"]
    assert workers["crashes"] >= 1
    assert workers["abandoned"] == 1
    assert ("kaboom", "cert") in {(n, a) for n, a, _ in result.errors()}


def test_transient_worker_crash_is_retried_to_success(tmp_path, monkeypatch):
    import os

    from repro.pipeline import runner

    tombstone = tmp_path / "crashed-once"

    def die_once(payload):
        if "kaboom" in payload[0] and not tombstone.exists():
            tombstone.write_text("")
            os._exit(13)

    monkeypatch.setattr(runner, "_INJECT_FAULT", die_once)
    result = run_pipeline(
        _poison_corpus(), analyses=("cert",), jobs=2, use_cache=False
    )
    assert result.errors() == []  # the retry recovered the task
    assert result.program("kaboom")["analyses"]["cert"]["certified"] is True
    workers = result.metrics["workers"]
    assert workers["crashes"] >= 1
    assert workers["retries"] >= 1
    assert workers["abandoned"] == 0
    assert workers["pools"] >= 2  # the broken pool was rebuilt


def test_worker_crash_records_are_not_cached(monkeypatch):
    import os

    from repro.pipeline import runner

    def die_on_poison(payload):
        if "kaboom" in payload[0]:
            os._exit(13)

    monkeypatch.setattr(runner, "_INJECT_FAULT", die_on_poison)
    import tempfile

    with tempfile.TemporaryDirectory() as cache_dir:
        first = run_pipeline(
            _poison_corpus(), analyses=("cert",), jobs=2, cache_dir=cache_dir
        )
        assert first.program("kaboom")["analyses"]["cert"]["error_type"] == (
            "WorkerCrash"
        )
        monkeypatch.setattr(runner, "_INJECT_FAULT", None)
        second = run_pipeline(
            _poison_corpus(), analyses=("cert",), jobs=2, cache_dir=cache_dir
        )
        # environment trouble is not a property of the program: with the
        # fault gone the task recomputes cleanly instead of replaying
        # the crash record from the cache.
        assert second.errors() == []
        assert second.program("kaboom")["analyses"]["cert"]["certified"] is True


def test_cli_batch_high_and_scheme_knobs(tmp_path, capsys):
    program = tmp_path / "p.rl"
    program.write_text("var a, b : integer; b := a")
    # default policy: a and b are both low -> certified
    assert main(["batch", str(program), "--analyses", "cert", "--no-cache"]) == 0
    assert "cert=ok" in capsys.readouterr().out
    # bind a above b -> rejected
    assert main(
        ["batch", str(program), "--analyses", "cert", "--no-cache",
         "--high", "a"]
    ) == 0
    assert "cert=REJECT" in capsys.readouterr().out


# -- per-task budgets (regressions: shared config dicts, full-deadline
#    retries) ----------------------------------------------------------------


def test_reprice_deadline_charges_elapsed_wall_clock():
    from repro.pipeline.runner import _reprice_deadline

    no_deadline = {"deadline": None}
    assert _reprice_deadline(no_deadline, 0.0, 99.0) is no_deadline
    repriced = _reprice_deadline({"deadline": 5.0}, 100.0, 102.0)
    assert repriced["deadline"] == pytest.approx(3.0)
    # clamped at zero: a zero deadline degrades immediately, on time
    spent = _reprice_deadline({"deadline": 1.0}, 100.0, 200.0)
    assert spent["deadline"] == 0.0


def test_each_task_gets_an_independent_config(monkeypatch):
    """One task mutating its config (e.g. consuming a budget) must
    never shorten a sibling's grant: every payload carries its own
    dict, each holding the caller's full original deadline."""
    from repro.pipeline import runner

    arrivals = []
    real_compute = runner._compute

    def spy(payload):
        arrivals.append((id(payload[3]), payload[3]["deadline"]))
        payload[3]["deadline"] = 0.0  # simulate a task spending its grant
        return real_compute(payload)

    monkeypatch.setattr(runner, "_compute", spy)
    result = run_pipeline(
        litmus_corpus()[:3],
        analyses=("cert",),
        use_cache=False,
        config={"deadline": 30.0},
    )
    assert not result.errors()
    assert len(arrivals) == 3
    assert len({ident for ident, _ in arrivals}) == 3  # three distinct dicts
    assert [deadline for _, deadline in arrivals] == [30.0, 30.0, 30.0]


def test_retry_after_crash_gets_remaining_deadline_not_original(
    tmp_path, monkeypatch
):
    """A crash-retried task is charged the wall clock it already spent:
    the retry's deadline must be strictly below the original grant."""
    import json as json_mod
    import os
    import time

    from repro.pipeline import runner

    log = tmp_path / "deadlines.jsonl"
    tombstone = tmp_path / "crashed-once"

    def record_and_die_once(payload):
        if "kaboom" in payload[0]:
            with open(log, "a", encoding="utf-8") as handle:
                handle.write(json_mod.dumps(payload[3]["deadline"]) + "\n")
            if not tombstone.exists():
                tombstone.write_text("")
                time.sleep(0.2)  # burn wall clock against the grant
                os._exit(13)

    monkeypatch.setattr(runner, "_INJECT_FAULT", record_and_die_once)
    result = run_pipeline(
        _poison_corpus(),
        analyses=("cert",),
        jobs=2,
        use_cache=False,
        config={"deadline": 30.0},
    )
    assert result.program("kaboom")["analyses"]["cert"]["certified"] is True
    deadlines = [
        json_mod.loads(line) for line in log.read_text().splitlines()
    ]
    assert len(deadlines) >= 2  # first attempt + at least one retry
    assert deadlines[0] == pytest.approx(30.0)
    assert all(d < 30.0 - 0.1 for d in deadlines[1:])


# -- the run span in the metrics document (regression: emitted after
#    to_dict assembled the document, so it never appeared) ------------------


def test_run_span_lands_in_the_metrics_document():
    result = run_pipeline(
        litmus_corpus()[:2], analyses=("cert",), use_cache=False
    )
    spans = [s for s in result.metrics["spans"] if s["name"] == "run"]
    assert len(spans) == 1
    span = spans[0]
    assert span["jobs"] == 1
    assert span["tasks"] == 2
    assert isinstance(span["seconds"], float)
