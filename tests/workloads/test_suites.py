"""Named corpora."""

import pytest

from repro.lang.validate import validate_program
from repro.lang.ast import Program
from repro.workloads.suites import corpus, corpus_names


def test_names():
    assert set(corpus_names()) == {
        "paper", "sequential", "concurrent", "runtime", "litmus",
    }


def test_litmus_corpus_materializes():
    entries = corpus("litmus")
    assert len(entries) >= 17
    names = [n for n, _ in entries]
    assert "sanitize-then-copy" in names


def test_unknown_corpus():
    with pytest.raises(KeyError):
        corpus("nope")


def test_paper_corpus_nonempty():
    entries = corpus("paper")
    assert len(entries) == 8
    names = [n for n, _ in entries]
    assert names == sorted(names)


def test_generated_corpora_validate():
    for name in ("sequential", "concurrent", "runtime"):
        for entry_name, prog in corpus(name):
            assert isinstance(prog, Program)
            assert validate_program(prog) == [], entry_name


def test_sequential_corpus_is_sequential():
    from repro.analysis.metrics import measure

    for entry_name, prog in corpus("sequential"):
        assert not measure(prog).has_concurrency, entry_name


def test_corpora_are_reproducible():
    from repro.lang.pretty import pretty

    a = [pretty(p) for _, p in corpus("concurrent")]
    b = [pretty(p) for _, p in corpus("concurrent")]
    assert a == b


def test_runtime_corpus_terminates():
    from repro.runtime.executor import run

    for entry_name, prog in corpus("runtime")[:8]:
        assert run(prog, max_steps=100_000).completed, entry_name
