"""The litmus suite: every expected verdict, statically and semantically."""

import pytest

from repro.core.cfm import certify
from repro.core.denning import certify_denning
from repro.core.flowsensitive import certify_flow_sensitive
from repro.lang.ast import used_variables
from repro.lattice.chain import two_level
from repro.runtime.explorer import explore
from repro.workloads.litmus import CASES, HIGH_NAMES, binding_for, by_name

SCHEME = two_level()


@pytest.mark.parametrize("case", CASES, ids=lambda c: c.name)
def test_denning_verdict(case):
    stmt, binding = binding_for(case, SCHEME)
    got = certify_denning(stmt, binding, on_concurrency="ignore").certified
    assert got == case.denning, case.notes


@pytest.mark.parametrize("case", CASES, ids=lambda c: c.name)
def test_cfm_verdict(case):
    stmt, binding = binding_for(case, SCHEME)
    got = certify(stmt, binding).certified
    assert got == case.cfm, case.notes


@pytest.mark.parametrize("case", CASES, ids=lambda c: c.name)
def test_flow_sensitive_verdict(case):
    stmt, binding = binding_for(case, SCHEME)
    got = certify_flow_sensitive(stmt, binding).certified
    assert got == case.flow_sensitive, case.notes


@pytest.mark.parametrize("case", CASES, ids=lambda c: c.name)
def test_ground_truth_labels(case):
    """``secure`` must match exhaustive exploration: projected outcome
    sets over the low variables, statuses included (divergence and
    deadlock are observable for these labels)."""
    stmt = case.statement()
    low = frozenset(n for n in used_variables(stmt) if n not in HIGH_NAMES)
    sets = []
    for value in case.probe_values:
        store = dict(case.base_store or {})
        store["h"] = value
        res = explore(
            case.statement(),
            store=store,
            max_states=30_000,
            max_depth=120,
        )
        projected = frozenset(o.project(low) for o in res.outcomes)
        sets.append(projected)
    indistinguishable = sets[0] == sets[1]
    assert indistinguishable == case.secure, (case.name, sets)


def test_no_mechanism_accepts_an_insecure_case():
    """Soundness across the whole suite: an accepting verdict on an
    insecure case would be a genuine bug (Denning's known misses are
    encoded as expected verdicts, so they are asserted *against*
    security here on purpose for CFM and the flow-sensitive pass)."""
    for case in CASES:
        if case.secure:
            continue
        stmt, binding = binding_for(case, SCHEME)
        assert not certify(stmt, binding).certified, case.name
        stmt2, binding2 = binding_for(case, SCHEME)
        assert not certify_flow_sensitive(stmt2, binding2).certified, case.name


def test_strictness_ordering():
    """Acceptance sets are nested: denning >= cfm ... wait, the other
    way: everything CFM accepts, Denning accepts; everything CFM
    accepts, flow-sensitive accepts."""
    for case in CASES:
        assert case.cfm <= case.denning or not case.cfm, case.name
        assert case.cfm <= case.flow_sensitive, case.name


def test_by_name():
    assert by_name("explicit").source == "l := h"
    with pytest.raises(KeyError):
        by_name("nope")


def test_all_names_unique():
    names = [c.name for c in CASES]
    assert len(names) == len(set(names))
