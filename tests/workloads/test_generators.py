"""Random program generators."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.analysis.metrics import measure
from repro.core.cfm import certify
from repro.lang.ast import program_size
from repro.lang.validate import validate_program
from repro.runtime.executor import run
from repro.workloads.generators import (
    GeneratorConfig,
    ProgramGenerator,
    random_certified_case,
    random_program,
    sized_program,
)


def test_determinism():
    from repro.lang.pretty import pretty

    assert pretty(random_program(5)) == pretty(random_program(5))
    assert pretty(random_program(5)) != pretty(random_program(6))


def test_generated_programs_validate():
    for seed in range(30):
        prog = random_program(seed, size=30, p_cobegin=0.25, p_sem_op=0.2)
        assert validate_program(prog) == [], seed


def test_runtime_safe_programs_terminate():
    for seed in range(15):
        prog = random_program(seed, size=25, runtime_safe=True, p_cobegin=0.25)
        result = run(prog, max_steps=100_000)
        assert result.completed, seed


def test_runtime_safe_has_no_unbounded_loops():
    for seed in range(10):
        prog = random_program(seed, size=30, runtime_safe=True)
        m = measure(prog)
        # every while in runtime_safe mode is counter-bounded; a crude
        # but effective check is that execution terminates quickly.
        result = run(prog, max_steps=5_000)
        assert result.status != "step-limit"


def test_sized_program_hits_target():
    for target in (50, 200, 1000):
        prog = sized_program(1, target)
        size = program_size(prog.body)
        assert abs(size - target) <= 2, (target, size)


def test_certified_cases_certify():
    from repro.lattice.chain import two_level

    scheme = two_level()
    for seed in range(20):
        prog, binding = random_certified_case(seed, scheme, size=30, n_pins=3)
        assert certify(prog, binding).certified, seed


def test_certified_cases_use_nontrivial_classes_sometimes():
    from repro.lattice.chain import two_level

    scheme = two_level()
    saw_high = False
    for seed in range(30):
        _, binding = random_certified_case(seed, scheme, size=25, n_pins=3)
        if any(c == "high" for c in binding.as_dict().values()):
            saw_high = True
            break
    assert saw_high


@given(st.integers(min_value=0, max_value=500))
@settings(max_examples=40, deadline=None)
def test_generator_never_emits_invalid_programs(seed):
    prog = random_program(seed, size=20, p_cobegin=0.3, p_sem_op=0.25, n_sems=3)
    assert validate_program(prog) == []


def test_concurrency_knob():
    no_conc = random_program(3, size=60, p_cobegin=0.0, p_sem_op=0.0)
    assert not measure(no_conc).has_concurrency


def test_config_defaults():
    gen = ProgramGenerator(GeneratorConfig(size=10), seed=1)
    stmt = gen.statement()
    assert program_size(stmt) >= 1
