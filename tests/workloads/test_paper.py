"""The paper program corpus behaves exactly as the paper describes."""

from repro.core.binding import StaticBinding
from repro.core.cfm import certify
from repro.lang.validate import validate_program
from repro.runtime.executor import run
from repro.runtime.explorer import explore
from repro.workloads.paper import (
    figure3_looped,
    figure3_program,
    figure3_sequential_equivalent,
    paper_programs,
)


def test_figure3_parses_and_validates():
    assert validate_program(figure3_program()) == []


def test_figure3_matches_sequential_equivalent():
    """Section 4.3: same effect on x and y as the sequential program."""
    for xv in range(0, 4):
        par = explore(figure3_program(), store={"x": xv})
        seq = run(figure3_sequential_equivalent(), store={"x": xv})
        assert par.complete and par.deadlock_free
        assert par.final_values("y") == {seq.store["y"]}


def test_figure3_cannot_deadlock_any_schedule():
    """Section 4.3: 'the program of Figure 3 cannot deadlock'."""
    for xv in (0, 1, 7):
        assert explore(figure3_program(), store={"x": xv}).deadlock_free


def test_figure3_semaphores_restored():
    """Section 4.3: 'the final values of the semaphores are the same as
    their initial values'."""
    res = explore(figure3_program(), store={"x": 1})
    for outcome in res.completed_outcomes:
        for sem in ("modify", "modified", "read", "done"):
            assert outcome.value(sem) == 0


def test_figure3_execution_is_fully_sequentialized():
    """The extra semaphores force one interleaving: a single outcome and
    a linear state graph."""
    res = explore(figure3_program(), store={"x": 0})
    assert len(res.outcomes) == 1


def test_looped_figure3_transmits_arbitrary_bits():
    """Section 4.3's closing remark: loop the processes to move any
    amount of information."""
    pipe = figure3_looped(bits=6)
    for xv in (0, 1, 42, 63):
        result = run(pipe, store={"x": xv}, max_steps=50_000)
        assert result.completed
        assert result.store["y"] == xv % 64


def test_looped_figure3_under_random_schedules():
    from repro.runtime.scheduler import RandomScheduler

    pipe_src = figure3_looped(bits=4)
    for seed in range(5):
        result = run(
            figure3_looped(bits=4),
            scheduler=RandomScheduler(seed),
            store={"x": 11},
            max_steps=50_000,
        )
        assert result.completed
        assert result.store["y"] == 11


def test_corpus_is_complete():
    names = set(paper_programs())
    assert names == {
        "figure3",
        "figure3-sequential",
        "s22-if",
        "s22-while",
        "s22-cobegin",
        "s42-loop",
        "s42-composition",
        "s52-begin",
    }


def test_corpus_returns_fresh_nodes():
    a = paper_programs()["figure3"]
    b = paper_programs()["figure3"]
    assert a is not b
    assert a.uid != b.uid


def test_every_fragment_is_certifiable_under_some_binding(scheme):
    from repro.core.inference import infer_binding

    for name, stmt in paper_programs().items():
        result = infer_binding(stmt, scheme, {})
        assert result.satisfiable, name
        assert certify(stmt, result.binding).certified, name
