"""The ``repro loadtest`` driver: one tiny real campaign plus wiring.

The driver spawns an actual ``repro serve`` subprocess, so one short
end-to-end run covers the whole chain: spawn, identity oracle, steady
closed loop, overload, metrics validation, SIGTERM drain.
"""

from repro.cli import build_parser
from repro.service.loadtest import (
    LoadtestOptions,
    _overload_body,
    _percentiles,
    run_loadtest,
)


def test_tiny_campaign_end_to_end():
    options = LoadtestOptions(
        duration=1.0,
        clients=2,
        jobs=2,
        shards=2,
        max_queue=3,
        overload_clients=6,
        overload_seconds=1.0,
        smoke=True,
    )
    payload = run_loadtest(options)

    assert payload["identity"]["documents"] == 4
    assert payload["identity"]["invalid_documents"] == 0
    steady = payload["loadtest"]
    assert steady["requests"] > 0
    assert steady["network_errors"] == 0
    assert steady["statuses"].get("200", 0) > 0
    assert steady["latency_ms"]["p50"] is not None
    assert payload["metrics_valid"], payload["metrics_problems"]
    assert payload["clean_exit"]
    service = payload["service"]
    assert service["shards"] == 2
    assert service["admission"]["admitted"] > 0
    # all four steady tenants plus the overload tenant were accounted
    assert set(service["tenants"]) >= {"alpha", "beta", "gamma",
                                       "default", "storm"}
    # 6 closed-loop clients against 3 admission slots of ~0.4s unique
    # work: admission control must have refused at least once
    assert payload["overload"]["rejected_busy_429"] > 0
    healthz = payload["overload"]["healthz"]
    assert healthz["probes"] > 0 and healthz["ok"] == healthz["probes"]


def test_overload_bodies_are_unique_and_deadline_bound():
    import json

    first = json.loads(_overload_body(1))
    second = json.loads(_overload_body(2))
    assert first["program"] != second["program"]
    assert first["config"]["deadline"] < 1.0
    # budgets are sized so the deadline is the binding limit
    assert first["config"]["max_states"] >= 10**6


def test_percentiles_are_ordered_and_empty_safe():
    empty = _percentiles([])
    assert empty == {"p50": None, "p95": None, "p99": None, "max": None,
                     "samples": 0}
    stats = _percentiles([i / 1000.0 for i in range(1, 101)])
    assert stats["samples"] == 100
    assert stats["p50"] <= stats["p95"] <= stats["p99"] <= stats["max"]
    assert stats["max"] == 100.0  # 0.1 s -> 100 ms


def test_cli_wires_loadtest_and_serve_front_line_flags():
    parser = build_parser()
    args = parser.parse_args([
        "serve", "--shards", "4", "--max-queue", "9",
        "--tenant-rps", "2.5", "--tenant-burst", "5",
    ])
    assert (args.shards, args.max_queue) == (4, 9)
    assert (args.tenant_rps, args.tenant_burst) == (2.5, 5.0)

    args = parser.parse_args(["loadtest", "--smoke", "--out", "x.json"])
    assert args.command == "loadtest"
    assert args.smoke and args.out == "x.json"
    assert args.duration == 10.0 and args.overload_clients == 32
