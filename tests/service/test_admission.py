"""The serve front-line: admission control, tenants, shards, 500s.

In-process tests of :class:`repro.service.AnalysisService` covering
the layer in front of the pipeline: the bounded admission gauge
(429 + ``Retry-After``), per-tenant token buckets, coalesced-follower
accounting in the ``waiting`` gauge, shard routing, and the
client-error/server-error split (unknown names are 400s decided
before the pipeline; anything escaping the pipeline is a 500).
"""

import json
import threading

import pytest

from repro.pipeline import run_pipeline
from repro.service import AnalysisService
from repro.service import app as app_module
from repro.workloads.paper import FIGURE3_SOURCE, figure3_program

TINY = {"program": "l := 1", "kind": "statement", "name": "tiny",
        "analyses": ["cert"]}


def body(**overrides) -> bytes:
    payload = dict(TINY)
    payload.update(overrides)
    return json.dumps(payload).encode("utf-8")


class _GatedPipeline:
    """A ``run_pipeline`` stand-in that blocks until released."""

    def __init__(self):
        self.entered = threading.Event()
        self.release = threading.Event()
        self.calls = 0

    def __call__(self, *args, **kwargs):
        self.calls += 1
        self.entered.set()
        assert self.release.wait(timeout=30)

        class _Result:
            def to_json(self):
                return "{}"

        return _Result()


def test_over_capacity_requests_get_429_with_retry_after(monkeypatch):
    gate = _GatedPipeline()
    monkeypatch.setattr(app_module, "run_pipeline", gate)
    svc = AnalysisService(jobs=1, cache_dir=None, lru_capacity=0,
                          max_queue=1)

    outcome = {}
    leader = threading.Thread(
        target=lambda: outcome.update(leader=svc.analyze_request(body()))
    )
    leader.start()
    try:
        assert gate.entered.wait(timeout=30)
        # capacity 1 is fully held by the leader: a *different* request
        # must be refused immediately, cheaply, with a retry hint —
        # never queued on a thread.
        status, payload, headers = svc.analyze_request(
            body(name="other", program="l2 := 1")
        )
        assert status == 429
        assert headers["Retry-After"] == str(app_module.RETRY_AFTER_BUSY)
        assert b"capacity" in payload
        assert svc.admission["rejected_busy"] == 1
        assert svc.admission["admitted"] == 1
        assert gate.calls == 1  # the rejected request never ran anything
    finally:
        gate.release.set()
        leader.join(timeout=30)
    assert outcome["leader"][0] == 200
    # gauges return to rest
    assert (svc.in_flight, svc.waiting) == (0, 0)


def test_per_tenant_rate_limits_are_independent_buckets():
    svc = AnalysisService(jobs=1, cache_dir=None, lru_capacity=0,
                          tenant_rps=0.01, tenant_burst=1)
    status, _, _ = svc.analyze_request(body(), tenant="alpha")
    assert status == 200
    # alpha's single-token bucket is empty for the next ~100 seconds
    status, payload, headers = svc.analyze_request(body(), tenant="alpha")
    assert status == 429
    assert b"rate limit" in payload
    assert int(headers["Retry-After"]) >= 1
    # a different tenant has its own full bucket
    status, _, _ = svc.analyze_request(body(), tenant="beta")
    assert status == 200
    assert svc.tenants["alpha"] == {"requests": 2, "rate_limited": 1}
    assert svc.tenants["beta"] == {"requests": 1, "rate_limited": 0}
    assert svc.admission["rate_limited"] == 1


def test_tenant_registry_is_bounded(monkeypatch):
    monkeypatch.setattr(app_module, "MAX_TENANTS", 3)
    svc = AnalysisService(jobs=1, cache_dir=None, lru_capacity=0)
    for i in range(5):
        status, _, _ = svc.analyze_request(body(), tenant=f"t{i}")
        assert status == 200
    # 3 tracked names plus the overflow bucket holding the rest
    assert len(svc.tenants) == 4
    assert svc.tenants[app_module.OVERFLOW_TENANT]["requests"] == 2


def test_internal_pipeline_error_is_a_500_not_a_400(monkeypatch):
    def explode(*args, **kwargs):
        raise ValueError("a ValueError from deep inside an analysis")

    monkeypatch.setattr(app_module, "run_pipeline", explode)
    svc = AnalysisService(jobs=1, cache_dir=None, lru_capacity=0)
    status, payload = svc.analyze_json(body())
    assert status == 500
    assert json.loads(payload) == {"error": "internal service error",
                                   "status": 500}
    assert svc.admission["aborted"] == 1
    # the gauges survived the failure path
    assert (svc.in_flight, svc.waiting) == (0, 0)


def test_unknown_names_are_400s_decided_before_the_pipeline(monkeypatch):
    def must_not_run(*args, **kwargs):
        raise AssertionError("pipeline reached for an invalid request")

    monkeypatch.setattr(app_module, "run_pipeline", must_not_run)
    svc = AnalysisService(jobs=1, cache_dir=None, lru_capacity=0)

    status, payload = svc.analyze_json(body(analyses=["nope"]))
    assert status == 400
    assert b"unknown analysis" in payload

    status, payload = svc.analyze_json(body(config={"bogus": 1}))
    assert status == 400
    assert b"unknown config key" in payload

    assert svc.rejected == 2
    assert svc.admission["aborted"] == 0


def test_waiting_gauge_counts_coalesced_followers(monkeypatch):
    gate = _GatedPipeline()
    monkeypatch.setattr(app_module, "run_pipeline", gate)
    svc = AnalysisService(jobs=1, cache_dir=None, lru_capacity=0)

    results = []

    def submit():
        results.append(svc.analyze_json(body()))

    leader = threading.Thread(target=submit)
    leader.start()
    assert gate.entered.wait(timeout=30)
    follower = threading.Thread(target=submit)
    follower.start()
    try:
        # the follower holds a thread the drain will join — it must be
        # visible in the health document, not just the leader
        deadline = threading.Event()
        for _ in range(200):
            if svc.coalesced == 1:
                break
            deadline.wait(0.05)
        assert svc.coalesced == 1
        status, health = svc.health_document()
        assert status == 200
        assert health["in_flight"] == 1
        assert health["waiting"] >= 1
    finally:
        gate.release.set()
        leader.join(timeout=30)
        follower.join(timeout=30)
    assert results == [(200, b"{}\n"), (200, b"{}\n")]
    assert gate.calls == 1
    assert (svc.in_flight, svc.waiting) == (0, 0)


def test_sharded_pools_route_by_key_and_stay_byte_identical():
    svc = AnalysisService(jobs=2, shards=2, cache_dir=None, lru_capacity=0)
    try:
        assert len(svc.pools) == 2
        assert svc.pool is svc.pools[0]  # backwards-compatible alias
        assert [pool.label for pool in svc.pools] == ["shard-0", "shard-1"]

        raw = json.dumps({
            "program": FIGURE3_SOURCE, "name": "figure3.rl",
            "analyses": ["cert", "lint"],
        }).encode("utf-8")
        status, served = svc.analyze_json(raw)
        assert status == 200
        expected = run_pipeline(
            [("figure3.rl", figure3_program())],
            analyses=("cert", "lint"),
            use_cache=False,
        )
        assert served == (expected.to_json() + "\n").encode("utf-8")
        # exactly one shard did the work for this key
        assert sum(pool.submitted for pool in svc.pools) > 0
        assert sum(1 for pool in svc.pools if pool.submitted) == 1

        # routing is a pure function of the key and covers both shards
        shards = {svc._shard_for(f"{i:08x}") for i in range(16)}
        assert shards == {0, 1}
    finally:
        svc.close()


def test_shards_collapse_to_one_without_a_pool():
    svc = AnalysisService(jobs=1, shards=4, cache_dir=None, lru_capacity=0)
    assert svc.shards == 1
    assert svc.pools == []
    assert svc.pool is None
    counters = svc.service_counters()
    assert counters["shards"] == 1
    assert "pool" not in counters


def test_bad_front_line_parameters_are_rejected():
    with pytest.raises(ValueError):
        AnalysisService(jobs=2, shards=0)
    with pytest.raises(ValueError):
        AnalysisService(jobs=2, max_queue=0)
    with pytest.raises(ValueError):
        AnalysisService(jobs=2, tenant_rps=0.0)
