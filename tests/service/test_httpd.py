"""End-to-end HTTP tests: a real ``repro serve`` process, real sockets.

The drain test is the load-bearing one: SIGTERM must let an in-flight
request run to completion (its response arrives whole) and then exit 0.
"""

import json
import os
import re
import signal
import subprocess
import sys
import threading
import time
import urllib.error
import urllib.request
from pathlib import Path

import pytest

from repro.observe.metrics import validate_metrics

SRC = str(Path(__file__).resolve().parents[2] / "src")

#: Unbounded state space: explore only ever stops on a budget.
DIVERGENT = "begin x := 0; while 0 = 0 do x := x + 1 end"


def start_server(*extra):
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0",
         "--no-cache", "--quiet", *extra],
        stdout=subprocess.PIPE,
        stderr=subprocess.DEVNULL,
        text=True,
        env=env,
    )
    announce = proc.stdout.readline()
    match = re.search(r"http://[\d.]+:(\d+)", announce)
    assert match, f"no port announcement in {announce!r}"
    return proc, f"http://127.0.0.1:{match.group(1)}"


def get_json(url):
    with urllib.request.urlopen(url, timeout=30) as response:
        return response.status, json.load(response)


def post_analyze(base, payload):
    request = urllib.request.Request(
        f"{base}/analyze", data=json.dumps(payload).encode(), method="POST"
    )
    try:
        with urllib.request.urlopen(request, timeout=60) as response:
            return response.status, response.read()
    except urllib.error.HTTPError as error:
        return error.code, error.read()


def test_http_roundtrip_health_metrics_and_clean_exit():
    proc, base = start_server("--jobs", "1")
    try:
        status, health = get_json(f"{base}/healthz")
        assert (status, health["status"]) == (200, "ok")

        status, body = post_analyze(base, {
            "program": "l := 1", "kind": "statement", "name": "tiny",
            "analyses": ["cert"],
        })
        assert status == 200
        document = json.loads(body)
        assert document["programs"][0]["analyses"]["cert"]["certified"] is True

        status, bad = post_analyze(base, {"program": ""})
        assert status == 400

        status, metrics = get_json(f"{base}/metrics")
        assert status == 200
        assert validate_metrics(metrics) == []
        assert metrics["service"]["requests"] == 2
        assert metrics["service"]["rejected"] == 1

        with pytest.raises(urllib.error.HTTPError):
            urllib.request.urlopen(f"{base}/nope", timeout=30)
    finally:
        proc.send_signal(signal.SIGTERM)
        assert proc.wait(timeout=30) == 0


def test_content_length_abuse_is_rejected_before_reading():
    """Regression: the handler used to trust ``Content-Length`` and
    block on ``rfile.read(length)`` for an arbitrarily large declared
    body.  Garbage and negative lengths are clean 400s, oversized
    declarations a clean 413 — all decided from the header alone,
    before any body bytes exist."""
    import http.client

    from repro.service.app import MAX_REQUEST_BYTES

    proc, base = start_server("--jobs", "1")
    host_port = base.split("//", 1)[1]
    try:
        cases = [
            ("not-a-number", 400),
            ("-5", 400),
            (str(MAX_REQUEST_BYTES + 1), 413),
            (str(10**12), 413),
        ]
        for declared, expected in cases:
            conn = http.client.HTTPConnection(host_port, timeout=30)
            try:
                conn.putrequest("POST", "/analyze")
                conn.putheader("Content-Type", "application/json")
                conn.putheader("Content-Length", declared)
                conn.endheaders()
                # No body is ever sent: the response must come from the
                # header alone, not from a read that would block.
                response = conn.getresponse()
                assert response.status == expected, (declared, response.status)
                body = json.loads(response.read())
                assert body["status"] == expected and body["error"]
            finally:
                conn.close()
        # the server survived all of it
        status, health = get_json(f"{base}/healthz")
        assert (status, health["status"]) == (200, "ok")
    finally:
        proc.send_signal(signal.SIGTERM)
        assert proc.wait(timeout=30) == 0


def test_sigterm_drains_the_inflight_request():
    proc, base = start_server("--jobs", "1")
    outcome = {}

    def inflight():
        outcome["response"] = post_analyze(base, {
            "program": DIVERGENT, "kind": "statement", "name": "spin",
            "analyses": ["explore"],
            "config": {"deadline": 2.0, "max_states": 10**8,
                       "max_depth": 10**8},
        })

    worker = threading.Thread(target=inflight)
    worker.start()
    try:
        # wait until the slow request is genuinely in flight
        deadline = time.monotonic() + 10
        while time.monotonic() < deadline:
            _, metrics = get_json(f"{base}/metrics")
            if metrics["service"]["in_flight"] >= 1:
                break
            time.sleep(0.05)
        assert metrics["service"]["in_flight"] >= 1

        proc.send_signal(signal.SIGTERM)
        worker.join(timeout=60)
        assert not worker.is_alive()
        # the in-flight request completed across the shutdown: a whole,
        # valid, degraded-flagged document — not a reset connection
        status, body = outcome["response"]
        assert status == 200
        data = json.loads(body)["programs"][0]["analyses"]["explore"]
        assert data["degraded"] is True and data["limit"] == "deadline"
        assert proc.wait(timeout=30) == 0
    finally:
        worker.join(timeout=1)
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=30)


def test_413_arrives_without_the_body_being_read():
    """The pre-read guard, proven server-side: an oversized declaration
    is refused from the header alone — the service's bytes-read counter
    must not move, while a normal request's body is counted."""
    import http.client

    from repro.service.app import MAX_REQUEST_BYTES

    proc, base = start_server("--jobs", "1")
    host_port = base.split("//", 1)[1]
    try:
        conn = http.client.HTTPConnection(host_port, timeout=30)
        try:
            conn.putrequest("POST", "/analyze")
            conn.putheader("Content-Type", "application/json")
            conn.putheader("Content-Length", str(MAX_REQUEST_BYTES + 1))
            conn.endheaders()
            # send a partial body: the 413 must come back while these
            # bytes sit unread in the socket buffer
            conn.send(b"x" * 1024)
            response = conn.getresponse()
            assert response.status == 413
            response.read()
        finally:
            conn.close()
        _, metrics = get_json(f"{base}/metrics")
        assert metrics["service"]["bytes_read"] == 0
        assert metrics["service"]["requests"] == 0

        # a well-formed request's body IS read and counted
        payload = {"program": "l := 1", "kind": "statement",
                   "name": "tiny", "analyses": ["cert"]}
        status, _ = post_analyze(base, payload)
        assert status == 200
        _, metrics = get_json(f"{base}/metrics")
        assert metrics["service"]["bytes_read"] == len(
            json.dumps(payload).encode()
        )
    finally:
        proc.send_signal(signal.SIGTERM)
        assert proc.wait(timeout=30) == 0


def test_client_disconnect_is_counted_not_a_crash():
    """A client that gives up mid-request must become a
    ``client_disconnects`` tick, not an unhandled traceback — and the
    server must stay fully serviceable afterwards."""
    import socket
    import struct

    proc, base = start_server("--jobs", "1")
    host, port = base.split("//", 1)[1].split(":")
    try:
        request = json.dumps({
            "program": DIVERGENT, "kind": "statement", "name": "spin",
            "analyses": ["explore"],
            "config": {"deadline": 1.0, "max_states": 10**8,
                       "max_depth": 10**8},
        }).encode()
        sock = socket.create_connection((host, int(port)), timeout=30)
        sock.sendall(
            b"POST /analyze HTTP/1.1\r\n"
            b"Host: x\r\nContent-Type: application/json\r\n"
            + f"Content-Length: {len(request)}\r\n\r\n".encode()
            + request
        )
        # abort with RST (SO_LINGER 0) while the analysis is running,
        # so the server's eventual write hits a dead connection
        time.sleep(0.3)
        sock.setsockopt(
            socket.SOL_SOCKET, socket.SO_LINGER, struct.pack("ii", 1, 0)
        )
        sock.close()

        deadline = time.monotonic() + 30
        disconnects = 0
        while time.monotonic() < deadline:
            _, metrics = get_json(f"{base}/metrics")
            disconnects = metrics["service"]["client_disconnects"]
            if disconnects:
                break
            time.sleep(0.1)
        assert disconnects >= 1

        # still serviceable
        status, _ = post_analyze(base, {
            "program": "l := 1", "kind": "statement", "name": "tiny",
            "analyses": ["cert"],
        })
        assert status == 200
    finally:
        proc.send_signal(signal.SIGTERM)
        assert proc.wait(timeout=30) == 0
