"""Tests for the resident analysis service (``repro serve``)."""
