"""AnalysisService contract tests (in-process, no sockets).

The service's one promise: it is a cache and a pool in front of
``run_pipeline``, never a different pipeline — responses are
byte-identical to ``repro batch --json``, warm hits skip the pool,
identical concurrent requests share one computation, and deadlines
degrade instead of erroring.
"""

import json
import threading
import time

import pytest

from repro.observe.metrics import validate_metrics
from repro.pipeline import run_pipeline
from repro.service import AnalysisService
from repro.workloads.paper import FIGURE3_SOURCE, figure3_program

#: Unbounded state space: explore only ever stops on a budget.
DIVERGENT = "begin x := 0; while 0 = 0 do x := x + 1 end"


def request_body(**overrides) -> bytes:
    payload = {"program": FIGURE3_SOURCE, "name": "figure3.rl"}
    payload.update(overrides)
    return json.dumps(payload).encode("utf-8")


def test_response_is_byte_identical_to_the_batch_document(tmp_path):
    svc = AnalysisService(jobs=1, cache_dir=str(tmp_path / "cache"))
    raw = request_body(analyses=["cert", "explore"])
    status, body = svc.analyze_json(raw)
    assert status == 200
    expected = run_pipeline(
        [("figure3.rl", figure3_program())],
        analyses=("cert", "explore"),
        use_cache=False,
    )
    assert body == (expected.to_json() + "\n").encode("utf-8")
    # a warm (memory-tier) hit must serve the very same bytes
    status2, body2 = svc.analyze_json(raw)
    assert (status2, body2) == (200, body)
    assert svc.cache.lru.hits >= 2


def test_warm_lru_hit_never_touches_the_pool(tmp_path):
    svc = AnalysisService(jobs=2, cache_dir=str(tmp_path / "cache"))
    try:
        raw = request_body(analyses=["cert", "lint"])
        status, body = svc.analyze_json(raw)
        assert status == 200
        cold_submitted = svc.pool.submitted
        assert cold_submitted >= 1  # the cold request did use the pool
        status2, body2 = svc.analyze_json(raw)
        assert (status2, body2) == (200, body)
        # zero new pool submissions: the hit was served from memory
        assert svc.pool.submitted == cold_submitted
        assert svc.cache.lru.hits >= 2
    finally:
        svc.close()


def test_chunk_size_flows_through_to_the_pool(tmp_path):
    # chunk_size=1 forces one submitted task per (program, analysis)
    # cell, so the pool's submission counter exposes the pass-through.
    svc = AnalysisService(
        jobs=2, chunk_size=1, cache_dir=str(tmp_path / "cache")
    )
    try:
        assert svc.chunk_size == 1
        raw = request_body(analyses=["cert", "lint"])
        status, body = svc.analyze_json(raw)
        assert status == 200
        assert svc.pool.submitted == 2  # 1 program x 2 analyses, singleton chunks
        expected = run_pipeline(
            [("figure3.rl", figure3_program())],
            analyses=("cert", "lint"),
            use_cache=False,
        )
        assert body == (expected.to_json() + "\n").encode("utf-8")
    finally:
        svc.close()


def test_concurrent_identical_requests_coalesce(monkeypatch):
    from repro.service import app as app_module

    svc = AnalysisService(jobs=1, cache_dir=None, lru_capacity=0)
    canned = run_pipeline(
        [("figure3.rl", figure3_program())], analyses=("cert",),
        use_cache=False,
    )
    release = threading.Event()
    calls = []

    def slow_pipeline(*args, **kwargs):
        calls.append(1)
        assert release.wait(timeout=30)
        return canned

    monkeypatch.setattr(app_module, "run_pipeline", slow_pipeline)
    raw = request_body(analyses=["cert"])
    outcomes = []
    threads = [
        threading.Thread(target=lambda: outcomes.append(svc.analyze_json(raw)))
        for _ in range(3)
    ]
    for t in threads:
        t.start()
    # wait for both followers to attach to the leader's future, then
    # let the (single) computation finish
    deadline = time.monotonic() + 10
    while svc.coalesced < 2 and time.monotonic() < deadline:
        time.sleep(0.01)
    release.set()
    for t in threads:
        t.join(timeout=30)
    assert calls == [1]  # one computation served all three requests
    assert svc.coalesced == 2
    assert {status for status, _ in outcomes} == {200}
    assert len({body for _, body in outcomes}) == 1


def test_deadline_degrades_the_result_never_500s(tmp_path):
    svc = AnalysisService(jobs=1, cache_dir=str(tmp_path / "cache"))
    status, body = svc.analyze_json(request_body(
        program=DIVERGENT,
        name="spin",
        kind="statement",
        analyses=["explore"],
        config={"deadline": 0.1, "max_states": 10**8, "max_depth": 10**8},
    ))
    assert status == 200
    data = json.loads(body)["programs"][0]["analyses"]["explore"]
    assert data["degraded"] is True
    assert data["limit"] == "deadline"
    # a budget-truncated partial result must never enter the cache
    assert svc.observer.skipped_degraded >= 1
    assert svc.cache.stats.writes == 0


def test_default_deadline_applies_when_the_request_sets_none():
    svc = AnalysisService(jobs=1, cache_dir=None, lru_capacity=0,
                          default_deadline=0.1)
    status, body = svc.analyze_json(request_body(
        program=DIVERGENT, name="spin", kind="statement",
        analyses=["explore"],
        config={"max_states": 10**8, "max_depth": 10**8},
    ))
    assert status == 200
    document = json.loads(body)
    assert document["config"]["deadline"] == 0.1
    assert document["programs"][0]["analyses"]["explore"]["degraded"] is True


@pytest.mark.parametrize("raw,fragment", [
    (b"{not json", "not valid JSON"),
    (b"[1, 2]", "JSON object"),
    (b"{}", "'program'"),
    (json.dumps({"program": "x := 1", "programs": []}).encode(), "not both"),
    (json.dumps({"programs": []}).encode(), "non-empty"),
    (json.dumps({"program": "x := 1", "kind": "poem"}).encode(), "kind"),
    (json.dumps({"program": "x := 1", "analyses": "cert"}).encode(), "array"),
    (json.dumps({"program": "x := 1", "bogus": 1}).encode(), "unknown request field"),
    (json.dumps({"program": "x := 1", "config": []}).encode(), "object"),
    (json.dumps({"program": "x := 1", "deadline": 1.0,
                 "config": {"deadline": 2.0}}).encode(), "once"),
    (json.dumps({"program": "x := := 1"}).encode(), "parse error"),
    (json.dumps({"program": "x := 1", "kind": "statement",
                 "analyses": ["nope"]}).encode(), "unknown analysis"),
    (json.dumps({"program": "x := 1", "kind": "statement",
                 "config": {"typo": 1}}).encode(), "unknown config key"),
])
def test_malformed_requests_are_clean_400s(raw, fragment):
    svc = AnalysisService(jobs=1, cache_dir=None, lru_capacity=0)
    status, body = svc.analyze_json(raw)
    assert status == 400
    document = json.loads(body)
    assert fragment in document["error"]
    assert svc.rejected == 1


def test_undeclared_variable_in_a_program_is_a_400():
    svc = AnalysisService(jobs=1, cache_dir=None, lru_capacity=0)
    status, body = svc.analyze_json(request_body(program="begin l := 1 end"))
    assert status == 400
    assert "declared" in json.loads(body)["error"]


def test_metrics_document_is_valid_and_cumulative(tmp_path):
    svc = AnalysisService(jobs=1, cache_dir=str(tmp_path / "cache"))
    raw = request_body(analyses=["cert", "lint"])
    svc.analyze_json(raw)
    svc.analyze_json(raw)
    document = svc.metrics_document()
    assert validate_metrics(document) == []
    service = document["service"]
    assert service["requests"] == 2
    assert service["in_flight"] == 0
    assert service["coalesced"] == 0
    assert service["lru_hits"] >= 2
    assert "pool" not in service  # jobs=1 runs in-process
    # both requests' cells accumulated in one document
    assert document["run"]["tasks"] == 4
    assert document["run"]["cached"] == 2


def test_health_document_reflects_draining():
    svc = AnalysisService(jobs=1, cache_dir=None, lru_capacity=0)
    status, document = svc.health_document()
    assert (status, document["status"]) == (200, "ok")
    svc.begin_drain()
    status, document = svc.health_document()
    assert (status, document["status"]) == (503, "draining")


def test_corpus_requests_accept_many_programs():
    svc = AnalysisService(jobs=1, cache_dir=None, lru_capacity=0)
    status, body = svc.analyze_json(json.dumps({
        "programs": [
            {"name": "b.rl", "program": "l := 1", "kind": "statement"},
            {"name": "a.rl", "program": "l2 := 2", "kind": "statement"},
        ],
        "analyses": ["cert"],
    }).encode("utf-8"))
    assert status == 200
    names = [p["name"] for p in json.loads(body)["programs"]]
    assert names == ["a.rl", "b.rl"]  # document order is sorted, as in batch


def test_cli_serve_flags_parse():
    from repro.cli import build_parser

    args = build_parser().parse_args(
        ["serve", "--port", "0", "--jobs", "3", "--no-cache",
         "--lru-size", "7", "--deadline", "1.5", "--quiet"]
    )
    assert args.command == "serve"
    assert (args.port, args.jobs, args.lru_size) == (0, 3, 7)
    assert args.no_cache and args.quiet
    assert args.deadline == 1.5
