"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.core.binding import StaticBinding
from repro.lattice.chain import four_level, two_level
from repro.lattice.finite import diamond
from repro.lattice.powerset import PowersetLattice
from repro.lattice.product import military
from repro.workloads.paper import (
    figure3_program,
    section22_cobegin_fragment,
    section22_if_fragment,
    section22_while_fragment,
    section42_composition,
    section42_loop,
    section52_program,
)


@pytest.fixture
def scheme():
    """The canonical two-level scheme (low < high)."""
    return two_level()


@pytest.fixture
def levels():
    return four_level()


@pytest.fixture
def diamond_scheme():
    return diamond()


@pytest.fixture
def military_scheme():
    return military()


@pytest.fixture(params=["two-level", "four-level", "diamond", "powerset"])
def any_scheme(request):
    """Parametrized over four structurally different schemes."""
    if request.param == "two-level":
        return two_level()
    if request.param == "four-level":
        return four_level()
    if request.param == "diamond":
        return diamond()
    return PowersetLattice(["a", "b"], name="powerset-ab")


@pytest.fixture
def fig3():
    return figure3_program()


@pytest.fixture
def fig3_binding_leaky(scheme):
    """x high, everything else low: the binding Figure 3 must violate."""
    names = ["x", "y", "m", "modify", "modified", "read", "done"]
    return StaticBinding(scheme, {n: ("high" if n == "x" else "low") for n in names})


@pytest.fixture
def fig3_binding_safe(scheme):
    """Everything high: trivially certifiable."""
    names = ["x", "y", "m", "modify", "modified", "read", "done"]
    return StaticBinding(scheme, {n: "high" for n in names})


@pytest.fixture
def paper_fragments():
    return {
        "s22-if": section22_if_fragment(),
        "s22-while": section22_while_fragment(),
        "s22-cobegin": section22_cobegin_fragment(),
        "s42-loop": section42_loop(),
        "s42-composition": section42_composition(),
        "s52-begin": section52_program(),
    }
