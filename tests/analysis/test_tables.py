"""Figure 2-style tables and JSON serialization."""

import json

from repro.analysis.tables import (
    certification_table,
    denning_report_to_dict,
    fs_report_to_dict,
    report_to_dict,
)
from repro.core.binding import StaticBinding
from repro.core.cfm import certify
from repro.core.denning import certify_denning
from repro.core.flowsensitive import certify_flow_sensitive
from repro.lang.parser import parse_statement
from repro.lattice.product import military
from repro.workloads.paper import figure3_program


def test_table_has_row_per_statement(scheme):
    stmt = parse_statement("begin wait(s); y := 1 end")
    report = certify(stmt, StaticBinding(scheme, {"s": "high", "y": "low"}))
    table = certification_table(report)
    assert "wait(s)" in table
    assert "y := 1" in table
    assert "mod(S)" in table and "flow(S)" in table
    assert "FAIL" in table  # the composition condition fails


def test_table_marks_nil_flow(scheme):
    stmt = parse_statement("x := 1")
    report = certify(stmt, StaticBinding(scheme, {"x": "low"}))
    assert "nil" in certification_table(report)


def test_table_for_figure3(scheme, fig3_binding_leaky):
    report = certify(figure3_program(), fig3_binding_leaky)
    table = certification_table(report)
    assert table.count("\n") > 20  # one row per statement
    assert "cobegin" in table


def test_cfm_json_round_trips(scheme):
    stmt = parse_statement("y := x")
    report = certify(stmt, StaticBinding(scheme, {"x": "high", "y": "low"}))
    data = report_to_dict(report)
    text = json.dumps(data)  # must be serializable
    parsed = json.loads(text)
    assert parsed["mechanism"] == "cfm"
    assert parsed["certified"] is False
    assert parsed["checks"][0]["lhs"] == "high"
    assert parsed["checks"][0]["passed"] is False


def test_json_handles_product_classes():
    scheme = military(("n",))
    stmt = parse_statement("y := x")
    hi = ("secret", frozenset({"n"}))
    lo = ("unclassified", frozenset())
    report = certify(stmt, StaticBinding(scheme, {"x": hi, "y": lo}))
    data = report_to_dict(report)
    json.dumps(data)
    assert data["checks"][0]["lhs"] == ["secret", ["n"]]


def test_denning_json(scheme):
    stmt = parse_statement("cobegin x := 1 || wait(s) coend")
    report = certify_denning(stmt, StaticBinding(scheme, {"x": "low", "s": "low"}))
    data = denning_report_to_dict(report)
    json.dumps(data)
    assert data["mechanism"] == "denning"
    assert len(data["unsupported"]) == 2


def test_fs_json(scheme):
    stmt = parse_statement("y := x")
    report = certify_flow_sensitive(
        stmt, StaticBinding(scheme, {"x": "high", "y": "low"})
    )
    data = fs_report_to_dict(report)
    json.dumps(data)
    assert data["certified"] is False
    assert data["violations"][0]["variable"] == "y"
    assert data["final_state"]["y"] == "high"


def test_cli_table_and_json(tmp_path, capsys):
    from repro.cli import main

    path = tmp_path / "p.rl"
    path.write_text("var x, y : integer; y := x")
    main(["certify", str(path), "--bind", "x=high", "--bind", "y=low", "--table"])
    out = capsys.readouterr().out
    assert "mod(S)" in out and "REJECTED" in out
    main(["certify", str(path), "--bind", "x=high", "--bind", "y=low", "--json"])
    data = json.loads(capsys.readouterr().out)
    assert data["certified"] is False
