"""The variable flow relation."""

from repro.analysis.flowgraph import flow_graph
from repro.lang.parser import parse_statement
from repro.workloads.paper import figure3_program


def test_direct_assignment_edge(scheme):
    g = flow_graph(parse_statement("y := x"), scheme)
    assert g.can_flow("x", "y")
    assert not g.can_flow("y", "x")
    assert "assignment" in g.why("x", "y")


def test_transitive_reachability(scheme):
    g = flow_graph(parse_statement("begin b := a; c := b end"), scheme)
    assert g.can_flow("a", "c")
    assert ("a", "c") not in g.direct_edges()  # only via b


def test_guard_flows(scheme):
    g = flow_graph(parse_statement("if h = 0 then y := 1"), scheme)
    assert g.can_flow("h", "y")
    assert "alternation" in g.why("h", "y")


def test_loop_termination_flow(scheme):
    g = flow_graph(
        parse_statement("begin while h > 0 do h := h - 1; z := 1 end"), scheme
    )
    assert g.can_flow("h", "z")


def test_synchronization_flow(scheme):
    g = flow_graph(parse_statement("begin wait(s); y := 1 end"), scheme)
    assert g.can_flow("s", "y")


def test_no_backwards_flow(scheme):
    g = flow_graph(parse_statement("begin y := 1; wait(s) end"), scheme)
    assert not g.can_flow("s", "y")


def test_figure3_chain(scheme):
    g = flow_graph(figure3_program(), scheme)
    # Section 4.3's chain: x -> modify -> m -> y.
    assert g.can_flow("x", "modify")
    assert g.can_flow("modify", "m")
    assert g.can_flow("m", "y")
    assert g.can_flow("x", "y")


def test_constant_only_program_has_no_edges(scheme):
    g = flow_graph(parse_statement("begin x := 1; y := 2 end"), scheme)
    assert g.direct_edges() == []


def test_flows_to_excludes_unreachable(scheme):
    g = flow_graph(parse_statement("begin y := x; a := b end"), scheme)
    assert g.flows_to("x") == frozenset({"y"})


def test_repr(scheme):
    g = flow_graph(parse_statement("y := x"), scheme)
    assert "FlowGraph" in repr(g)
