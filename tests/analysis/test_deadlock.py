"""Deadlock analysis."""

from repro.analysis.deadlock import find_deadlock, replay
from repro.lang.parser import parse_statement
from repro.workloads.paper import figure3_program, section22_cobegin_fragment


def test_figure3_is_deadlock_free():
    for xv in (0, 2):
        report = find_deadlock(figure3_program(), store={"x": xv})
        assert report.complete
        assert report.deadlock_free
        assert report.witness is None


def test_cross_wait_deadlock_found():
    s = parse_statement(
        "cobegin begin wait(a); signal(b) end || begin wait(b); signal(a) end coend"
    )
    report = find_deadlock(s)
    assert not report.deadlock_free
    assert set(report.witness.blocked) == {(0,), (1,)}
    assert "blocked" in str(report.witness)


def test_conditional_deadlock_found():
    s = section22_cobegin_fragment()  # deadlocks iff x != 0
    report = find_deadlock(s, store={"x": 1})
    assert not report.deadlock_free
    report2 = find_deadlock(section22_cobegin_fragment(), store={"x": 0})
    assert report2.deadlock_free


def test_witness_schedule_replays_into_the_deadlock():
    s = parse_statement(
        "cobegin begin x := 1; wait(go) end || begin y := 2; wait(go) end coend"
    )
    report = find_deadlock(s)
    assert not report.deadlock_free
    machine = replay(s, report.witness.schedule)
    assert machine.deadlocked
    assert tuple(sorted(machine.store.items())) == report.witness.store


def test_racy_deadlock_detected_among_many_outcomes():
    # One signal, two waiters: exactly one waiter is always starved.
    s = parse_statement(
        "cobegin signal(s) || begin wait(s); a := 1 end || begin wait(s); b := 1 end coend"
    )
    report = find_deadlock(s)
    assert not report.deadlock_free
    assert len(report.witness.blocked) == 1


def test_report_repr():
    report = find_deadlock(parse_statement("x := 1"))
    assert "deadlock-free" in repr(report)
