"""Timeline rendering."""

from repro.analysis.timeline import context_switches, lane_summary, render_timeline
from repro.lang.parser import parse_statement
from repro.runtime.executor import run
from repro.runtime.scheduler import RandomScheduler


def traced(source, **kwargs):
    return run(parse_statement(source), collect_trace=True, **kwargs)


def test_single_process_timeline():
    result = traced("begin x := 1; y := 2 end")
    text = render_timeline(result.trace)
    assert "root" in text
    assert "x := 1" in text and "y := 2" in text


def test_concurrent_lanes():
    result = traced(
        "cobegin x := 1 || y := 2 coend", scheduler=RandomScheduler(1)
    )
    text = render_timeline(result.trace)
    header = text.splitlines()[0]
    assert "0" in header and "1" in header


def test_empty_trace():
    assert render_timeline([]) == "(empty trace)"


def test_long_details_truncated():
    result = traced("verylongvariablename := 1 + 2 + 3 + 4 + 5 + 6 + 7 + 8 + 9")
    text = render_timeline(result.trace, width=12)
    assert "..." in text


def test_lane_summary():
    result = traced("cobegin begin a := 1; a := 2 end || b := 1 coend")
    counts = lane_summary(result.trace)
    assert counts["0"] == 2
    assert counts["1"] == 1


def test_context_switches():
    result = traced("begin x := 1; y := 2; z := 3 end")
    assert context_switches(result.trace) == 0
    result2 = traced("cobegin x := 1 || y := 1 coend")
    assert context_switches(result2.trace) == 1


def test_figure3_forced_alternation():
    from repro.workloads.paper import figure3_program

    result = run(figure3_program(), store={"x": 0}, collect_trace=True)
    # Three processes all appear; the protocol forces many switches.
    counts = lane_summary(result.trace)
    assert set(counts) == {"0", "1", "2"}
    assert context_switches(result.trace) >= 4
