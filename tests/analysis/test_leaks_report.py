"""Leak-witness search and full reports."""

from repro.analysis.leaks import find_leak
from repro.analysis.report import full_report
from repro.core.binding import StaticBinding
from repro.lang.parser import parse_statement
from repro.workloads.paper import figure3_program, section52_program


def test_leak_found_for_direct_flow(scheme):
    s = parse_statement("l := h")
    b = StaticBinding(scheme, {"l": "low", "h": "high"})
    witness = find_leak(s, b, "low", values=(0, 1))
    assert witness is not None
    assert witness.variable == "h"
    assert "distinguishes" in str(witness)


def test_leak_found_for_figure3(scheme, fig3, fig3_binding_leaky):
    witness = find_leak(fig3, fig3_binding_leaky, "low", values=(0, 1))
    assert witness is not None
    assert witness.variable == "x"


def test_no_leak_for_section52(scheme):
    """CFM rejects begin x := 0; y := x end, but no run actually leaks —
    the paper's point about CFM's conservatism."""
    s = section52_program()
    b = StaticBinding(scheme, {"x": "high", "y": "low"})
    assert find_leak(s, b, "low", values=(0, 1, 5)) is None


def test_no_leak_for_certified_program(scheme):
    s = parse_statement("begin l := 1; h := l end")
    b = StaticBinding(scheme, {"l": "low", "h": "high"})
    assert find_leak(s, b, "low", values=(0, 1)) is None


def test_full_report_sections(scheme, fig3, fig3_binding_leaky):
    text = full_report(fig3, fig3_binding_leaky, include_source=True)
    assert "REJECTED" in text
    assert "Denning-Denning certification: CERTIFIED" in text
    assert "the paper's motivating gap" in text
    assert "flow relation" in text
    assert "cobegin" in text  # the source listing


def test_full_report_without_flows(scheme):
    s = parse_statement("x := 1")
    b = StaticBinding(scheme, {"x": "low"})
    text = full_report(s, b, include_flows=False, denning_mode=None)
    assert "flow relation" not in text
    assert "Denning" not in text
