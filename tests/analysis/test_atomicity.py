"""The section 2.0 single-shared-reference condition."""

from repro.analysis.atomicity import check_atomicity, shared_variables
from repro.lang.parser import parse_statement
from repro.workloads.paper import figure3_program


def test_no_concurrency_nothing_shared():
    report = check_atomicity(parse_statement("begin x := y + y; y := x end"))
    assert report.shared == frozenset()
    assert report.satisfied


def test_shared_requires_a_writer():
    # Both branches only read r: not shared.
    s = parse_statement("cobegin a := r || b := r coend")
    assert shared_variables(s) == frozenset()
    # One branch writes r: shared.
    s2 = parse_statement("cobegin a := r || r := 1 coend")
    assert shared_variables(s2) == frozenset({"r"})


def test_single_shared_reference_ok():
    s = parse_statement("cobegin x := r + 1 || r := 2 coend")
    report = check_atomicity(s)
    assert report.shared == {"r"}
    assert report.satisfied


def test_double_read_violates():
    s = parse_statement("cobegin x := r + r || r := 2 coend")
    report = check_atomicity(s)
    assert not report.satisfied
    (violation,) = report.violations
    assert violation.references == 2
    assert violation.variables == ("r",)
    assert "2 references" in str(violation)


def test_read_write_same_shared_violates():
    # r := r + 1 makes two shared references (read + write).
    s = parse_statement("cobegin r := r + 1 || x := r coend")
    report = check_atomicity(s)
    assert not report.satisfied


def test_guard_references_counted():
    s = parse_statement("cobegin if r = r then x := 1 || r := 2 coend")
    report = check_atomicity(s)
    assert not report.satisfied
    s2 = parse_statement("cobegin if r = 0 then x := 1 || r := 2 coend")
    assert check_atomicity(s2).satisfied


def test_two_distinct_shared_variables_violate():
    s = parse_statement(
        "cobegin x := a + b || begin a := 1; b := 2 end coend"
    )
    report = check_atomicity(s)
    assert report.shared == {"a", "b"}
    assert not report.satisfied
    assert report.violations[0].variables == ("a", "b")


def test_semaphores_exempt():
    s = parse_statement(
        "cobegin begin wait(s); wait(s) end || signal(s) coend"
    )
    # s is 'modified' by both branches but wait/signal are indivisible
    # by definition; only data references count.
    assert check_atomicity(s).satisfied


def test_figure3_satisfies_the_condition():
    """Figure 3 is realistic: it runs correctly even on hardware that
    only guarantees memory-reference atomicity."""
    report = check_atomicity(figure3_program())
    assert report.shared <= {"m", "y", "x"}
    assert report.satisfied, [str(v) for v in report.violations]


def test_nested_cobegin_sharing():
    s = parse_statement(
        "cobegin cobegin x := r || r := 1 coend || y := 2 coend"
    )
    assert "r" in shared_variables(s)


def test_report_repr():
    assert "satisfied" in repr(check_atomicity(parse_statement("x := 1")))
