"""Program metrics."""

from repro.analysis.metrics import measure
from repro.lang.parser import parse_statement
from repro.workloads.paper import figure3_program


def test_counts_each_form():
    m = measure(parse_statement(
        """
        begin
          x := 1;
          if x = 0 then skip else y := 1;
          while y < 3 do y := y + 1;
          cobegin wait(s) || signal(s) coend
        end
        """
    ))
    assert m.assignments == 3
    assert m.ifs == 1
    assert m.whiles == 1
    assert m.begins == 1
    assert m.cobegins == 1
    assert m.waits == 1
    assert m.signals == 1
    assert m.skips == 1
    assert m.statements == 10


def test_flags():
    seq = measure(parse_statement("x := 1"))
    assert not seq.has_concurrency and not seq.has_global_flows
    loop = measure(parse_statement("while x > 0 do x := x - 1"))
    assert loop.has_global_flows and not loop.has_concurrency
    con = measure(parse_statement("cobegin x := 1 || y := 2 coend"))
    assert con.has_concurrency and not con.has_global_flows


def test_figure3_metrics():
    m = measure(figure3_program())
    assert m.has_concurrency
    assert m.max_cobegin_width == 3
    assert m.waits == 5
    assert m.signals == 5
    assert m.variables == 7


def test_nesting_and_width():
    m = measure(parse_statement("if a = 0 then if b = 0 then if c = 0 then x := 1"))
    assert m.max_nesting == 4


def test_str_is_informative():
    text = str(measure(parse_statement("x := 1")))
    assert "1 statements" in text
