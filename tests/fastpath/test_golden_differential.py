"""The golden wall: fused pipeline documents are byte-identical.

The pipeline JSON document is the repo's diffable artifact, so the
fast path is pinned at that level: over the litmus and paper corpora,
for cert + denning + lint together, the document produced with
``fastpath`` enabled equals the reference document **byte for byte** —
cold caches, memo-warm caches, serial and ``jobs=4``.  (Workers fork,
so the jobs=4 runs are warmed by first warming the parent's memo.)

When may the fused and reference paths legally differ?  Never.  Any
byte of divergence is a fast-path bug by definition (docs/fastpath.md).
"""

import pytest

from repro.fastpath import cache_stats, clear_caches
from repro.pipeline import run_pipeline
from repro.workloads.suites import corpus

ANALYSES = ("cert", "denning", "lint")


def _corpus():
    return corpus("litmus") + corpus("paper")


def _document(*, fastpath, jobs=1, config_extra=()):
    config = {"fastpath": fastpath}
    config.update(config_extra)
    return run_pipeline(
        _corpus(),
        analyses=ANALYSES,
        jobs=jobs,
        use_cache=False,
        config=config,
    ).to_json()


@pytest.fixture(autouse=True)
def _fresh_caches():
    clear_caches()
    yield
    clear_caches()


def test_cold_fused_document_is_byte_identical():
    reference = _document(fastpath=False)
    clear_caches()
    fused = _document(fastpath=True)
    assert fused == reference
    assert cache_stats()["irs"] > 0  # the fused run really took the fast path


def test_memo_warm_fused_document_is_byte_identical():
    reference = _document(fastpath=False)
    clear_caches()
    _document(fastpath=True)  # cold pass populates IR + record + lint memos
    stats = cache_stats()
    assert stats["memo"] > 0 and stats["resolved"] > 0
    warm = _document(fastpath=True)
    assert warm == reference


def test_jobs4_fused_document_is_byte_identical():
    reference = _document(fastpath=False, jobs=1)
    clear_caches()
    # jobs=4 cold: each forked worker lowers and evaluates on its own
    cold_parallel = _document(fastpath=True, jobs=4)
    assert cold_parallel == reference
    # jobs=4 memo-warm: warm the parent first; forks inherit its memo
    _document(fastpath=True, jobs=1)
    warm_parallel = _document(fastpath=True, jobs=4)
    assert warm_parallel == reference


def test_reject_mode_documents_are_byte_identical():
    extra = {"on_concurrency": "reject"}
    reference = _document(fastpath=False, config_extra=extra)
    clear_caches()
    cold = _document(fastpath=True, config_extra=extra)
    warm = _document(fastpath=True, config_extra=extra)
    assert cold == reference
    assert warm == reference


def test_other_schemes_are_byte_identical():
    for scheme in ("four-level", "diamond"):
        extra = {"scheme": scheme, "high": ("h",)}
        reference = _document(fastpath=False, config_extra=extra)
        clear_caches()
        assert _document(fastpath=True, config_extra=extra) == reference


def test_fastpath_flag_does_not_change_cache_keys(tmp_path):
    # ``fastpath`` is deliberately excluded from every analysis's
    # config_keys: results are byte-identical by contract, so a cache
    # entry written with the fast path on must be served to a run with
    # it off (and vice versa) rather than recomputed.
    cache_dir = str(tmp_path / "cache")
    subset = _corpus()[:5]
    first = run_pipeline(
        subset,
        analyses=ANALYSES,
        jobs=1,
        cache_dir=cache_dir,
        config={"fastpath": True},
    )
    second = run_pipeline(
        subset,
        analyses=ANALYSES,
        jobs=1,
        cache_dir=cache_dir,
        config={"fastpath": False},
    )
    assert second.stats["computed"] == 0
    assert first.to_json() == second.to_json()
