"""Property tests: interned lattices agree with their bases pointwise.

Two layers of evidence, both over every interned shape (chain,
powerset, product-as-table, product-as-mixed-radix, generic finite,
extended):

* **pointwise agreement** — for every element pair (exhaustively for
  small carriers, seeded random sweeps for big ones), the interned
  ``join``/``meet``/``leq`` decode to exactly what the base lattice
  computes, and ``encode``/``decode`` round-trip;
* **the lattice axioms** — commutativity, associativity, absorption,
  and the top/bottom identities hold *of the interned operations
  themselves*, so the fast path is a lattice in its own right, not
  just a lookup that happens to match today.

Only stdlib ``random`` is used, with fixed seeds.
"""

import itertools
import random

import pytest

from repro.errors import ElementError
from repro.fastpath.interning import (
    ChainInterned,
    ExtendedInterned,
    PowersetInterned,
    ProductInterned,
    TableInterned,
    intern_lattice,
)
from repro.lattice.chain import ChainLattice, four_level, two_level
from repro.lattice.extended import NIL, ExtendedLattice
from repro.lattice.finite import diamond
from repro.lattice.powerset import PowersetLattice
from repro.lattice.product import ProductLattice, military


def _cases():
    return [
        ("two-level", two_level()),
        ("four-level", four_level()),
        ("chain-7", ChainLattice([f"c{i}" for i in range(7)], name="chain-7")),
        ("powerset-1", PowersetLattice(("a",))),
        ("powerset-4", PowersetLattice(("a", "b", "c", "d"))),
        ("diamond", diamond()),
        ("military", military()),
        (
            "product-3",
            ProductLattice(two_level(), four_level(), PowersetLattice(("x", "y"))),
        ),
        ("ext-two-level", ExtendedLattice(two_level())),
        ("ext-diamond", ExtendedLattice(diamond())),
        ("ext-military", ExtendedLattice(military())),
    ]


CASES = _cases()
IDS = [name for name, _ in CASES]

#: Exhaustive pairs below this carrier size; seeded sampling above.
EXHAUSTIVE_LIMIT = 40


def _element_pairs(lattice, seed):
    elements = sorted(lattice.elements, key=repr)
    if len(elements) <= EXHAUSTIVE_LIMIT:
        return list(itertools.product(elements, elements))
    rng = random.Random(seed)
    return [
        (rng.choice(elements), rng.choice(elements)) for _ in range(1500)
    ]


@pytest.mark.parametrize("name,lattice", CASES, ids=IDS)
def test_encode_decode_round_trips(name, lattice):
    interned = intern_lattice(lattice)
    assert interned.n == len(lattice.elements)
    for element in lattice.elements:
        i = interned.encode(element)
        assert 0 <= i < interned.n
        assert interned.decode(i) == element
    assert interned.decode(interned.top) == lattice.top
    assert interned.decode(interned.bottom) == lattice.bottom


@pytest.mark.parametrize("name,lattice", CASES, ids=IDS)
def test_join_meet_leq_agree_pointwise(name, lattice):
    interned = intern_lattice(lattice)
    for a, b in _element_pairs(lattice, seed=hash(name) % 10_000):
        i, j = interned.encode(a), interned.encode(b)
        assert interned.decode(interned.join(i, j)) == lattice.join(a, b)
        assert interned.decode(interned.meet(i, j)) == lattice.meet(a, b)
        assert interned.leq(i, j) == lattice.leq(a, b)


@pytest.mark.parametrize("name,lattice", CASES, ids=IDS)
def test_lattice_axioms_hold_over_ids(name, lattice):
    interned = intern_lattice(lattice)
    rng = random.Random(20_260_808 + interned.n)
    ids = list(range(interned.n))
    sample = ids if len(ids) <= 16 else rng.sample(ids, 16)
    for i in sample:
        # identities: bottom is the join identity, top the meet identity
        assert interned.join(i, interned.bottom) == i
        assert interned.meet(i, interned.top) == i
        assert interned.leq(interned.bottom, i)
        assert interned.leq(i, interned.top)
        # idempotence and reflexivity
        assert interned.join(i, i) == i
        assert interned.meet(i, i) == i
        assert interned.leq(i, i)
        for j in sample:
            # commutativity and absorption
            assert interned.join(i, j) == interned.join(j, i)
            assert interned.meet(i, j) == interned.meet(j, i)
            assert interned.join(i, interned.meet(i, j)) == i
            assert interned.meet(i, interned.join(i, j)) == i
            # consistency: i <= j iff join is j iff meet is i
            assert interned.leq(i, j) == (interned.join(i, j) == j)
            assert interned.leq(i, j) == (interned.meet(i, j) == i)
        for _ in range(8):
            j, k = rng.choice(ids), rng.choice(ids)
            assert interned.join(interned.join(i, j), k) == interned.join(
                i, interned.join(j, k)
            )
            assert interned.meet(interned.meet(i, j), k) == interned.meet(
                i, interned.meet(j, k)
            )


def test_factory_picks_structural_representations():
    assert isinstance(intern_lattice(two_level()), ChainInterned)
    assert isinstance(intern_lattice(PowersetLattice(("a", "b"))), PowersetInterned)
    assert isinstance(intern_lattice(ExtendedLattice(diamond())), ExtendedInterned)
    assert isinstance(intern_lattice(diamond()), TableInterned)
    # small products get tables; huge ones fall back to mixed-radix
    assert isinstance(intern_lattice(military()), TableInterned)
    wide = ProductLattice(
        *[PowersetLattice(tuple("abcd"), name=f"p{i}") for i in range(3)],
        name="wide",
    )
    assert isinstance(intern_lattice(wide), ProductInterned)


def test_mixed_radix_product_agrees_with_table():
    # Force both representations of the same lattice and cross-check.
    base = ProductLattice(two_level(), diamond(), name="cross")
    table = TableInterned(base)
    packed = ProductInterned(base)
    for a, b in itertools.product(sorted(base.elements, key=repr), repeat=2):
        want_join = base.join(a, b)
        want_meet = base.meet(a, b)
        for interned in (table, packed):
            i, j = interned.encode(a), interned.encode(b)
            assert interned.decode(interned.join(i, j)) == want_join
            assert interned.decode(interned.meet(i, j)) == want_meet
            assert interned.leq(i, j) == base.leq(a, b)


def test_extended_nil_laws():
    interned = intern_lattice(ExtendedLattice(four_level()))
    nil = interned.encode(NIL)
    assert nil == interned.bottom
    assert interned.decode(nil) is NIL
    for i in range(interned.n):
        assert interned.join(nil, i) == i  # nil is the join identity
        assert interned.meet(nil, i) == nil  # and the meet absorber
        assert interned.leq(nil, i)
    assert not interned.leq(interned.top, nil)


def test_foreign_elements_are_rejected():
    interned = intern_lattice(two_level())
    with pytest.raises(ElementError):
        interned.encode("no-such-level")
    with pytest.raises(ElementError):
        interned.decode(interned.n)
    with pytest.raises(ElementError):
        interned.decode(-1)
