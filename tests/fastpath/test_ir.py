"""The hash-consed IR: sharing, ordering, and the location contract."""

import pytest

from repro.fastpath.ir import (
    K_BEGIN,
    NO_NODE,
    NodeStore,
    Unsupported,
    child_nids,
    expr_signature,
    lower,
)
from repro.lang.parser import parse_program, parse_statement


def _body(source):
    return parse_program(source).body


def test_identical_subtrees_share_one_nid():
    store = NodeStore()
    a = lower(parse_statement("x := h + 1"), store)
    b = lower(parse_statement("x := h + 1"), store)
    assert a == b
    assert len(store) == 1


def test_sharing_crosses_programs():
    store = NodeStore()
    lower(_body("var x, h : integer; begin x := h; x := x + 1 end"), store)
    before = len(store)
    # the same statements inside a different composition: only the new
    # begin row is interned
    lower(
        _body("var x, h : integer; begin x := x + 1; x := h end"),
        store,
    )
    assert len(store) == before + 1


def test_child_nids_are_smaller_than_parents():
    store = NodeStore()
    root = lower(
        _body(
            "var x, h, s : integer;"
            "begin if h > 0 then x := 1 else skip;"
            "while x < 3 do x := x + 1 end"
        ),
        store,
    )
    for nid, row in enumerate(store.rows):
        assert all(child < nid for child in child_nids(row))
    assert root == len(store) - 1


def test_locations_do_not_affect_nids():
    one_line = _body("var x, h : integer; begin x := h; x := x + 1 end")
    spread = _body(
        "var x, h : integer;\nbegin\n  x := h;\n\n  x := x + 1\nend"
    )
    store = NodeStore()
    assert lower(one_line, store) == lower(spread, store)


def test_variable_renaming_changes_nids():
    store = NodeStore()
    a = lower(parse_statement("x := h"), store)
    b = lower(parse_statement("y := h"), store)
    assert a != b


def test_expr_signature_is_sorted_unique_names():
    stmt = parse_statement("x := b + a * b + 2")
    assert expr_signature(stmt.expr) == ("a", "b")


def test_missing_else_is_distinct_from_skip_else():
    store = NodeStore()
    bare = lower(parse_statement("if h > 0 then x := 1"), store)
    explicit = lower(parse_statement("if h > 0 then x := 1 else skip"), store)
    assert bare != explicit
    assert store.rows[bare][3] == NO_NODE


def test_unknown_nodes_raise_unsupported():
    from repro.lang.ast import Stmt

    class Exotic(Stmt):
        __slots__ = ()

    store = NodeStore()
    with pytest.raises(Unsupported):
        lower(Exotic(), store)


def test_clear_resets_the_store():
    store = NodeStore()
    lower(parse_statement("x := 1"), store)
    assert len(store) == 1
    store.clear()
    assert len(store) == 0
    assert store.index == {}


def test_begin_row_lists_children_in_order():
    store = NodeStore()
    root = lower(_body("var x : integer; begin x := 1; x := 2; skip end"), store)
    row = store.rows[root]
    assert row[0] == K_BEGIN
    assert len(row[1]) == 3
    assert child_nids(row) == row[1]
