"""Direct fused-vs-reference agreement, plus the fallback contract.

The golden differential test pins the *pipeline* output; this file
drives the engine entry points themselves — over the named corpora,
seeded generator output in both profiles, every scheme, both Denning
modes — and checks the decline/fallback behavior that keeps the fast
path a pure optimization.
"""

import pytest

from repro.fastpath import (
    cache_stats,
    clear_caches,
    fused_cert,
    fused_denning,
    lint_memo_get,
    lint_memo_put,
)
from repro.lang.builder import assign
from repro.lang.parser import parse_program, parse_statement
from repro.pipeline.analyses import (
    DEFAULT_CONFIG,
    _reference_cert,
    _reference_denning,
    _reference_lint,
)
from repro.workloads.generators import random_program
from repro.workloads.suites import corpus, corpus_names

CONFIGS = [
    dict(DEFAULT_CONFIG),
    dict(DEFAULT_CONFIG, on_concurrency="reject"),
    dict(DEFAULT_CONFIG, scheme="four-level", high=("h",)),
    dict(DEFAULT_CONFIG, scheme="diamond", high=("h", "v0")),
]


@pytest.fixture(autouse=True)
def _fresh_caches():
    clear_caches()
    yield
    clear_caches()


@pytest.mark.parametrize("corpus_name", sorted(corpus_names()))
def test_fused_agrees_on_every_corpus(corpus_name):
    for name, subject in corpus(corpus_name):
        for config in CONFIGS:
            fast = fused_cert(subject, config)
            assert fast is not None, (corpus_name, name)
            assert fast == _reference_cert(subject, config), (corpus_name, name)
            fast_d = fused_denning(subject, config)
            assert fast_d == _reference_denning(subject, config), (
                corpus_name,
                name,
            )


def test_fused_agrees_on_generated_programs_both_profiles():
    config = dict(DEFAULT_CONFIG, high=("v0",))
    for seed in range(25):
        for runtime_safe in (False, True):
            subject = random_program(
                seed=seed, size=30, runtime_safe=runtime_safe, p_cobegin=0.2
            )
            assert fused_cert(subject, config) == _reference_cert(
                subject, config
            ), seed
            assert fused_denning(subject, config) == _reference_denning(
                subject, config
            ), seed


def test_memo_warm_answers_are_identical_to_cold():
    subject = parse_program(
        "var x, h, s : integer;"
        "begin x := h; while x > 0 do x := x - 1; "
        "cobegin x := 1 || h := x coend end"
    )
    config = dict(DEFAULT_CONFIG)
    cold = fused_cert(subject, config)
    stats = cache_stats()
    assert stats["irs"] > 0 and stats["memo"] > 0
    warm = fused_cert(subject, config)
    assert warm == cold == _reference_cert(subject, config)


def test_declines_procedure_programs():
    source = (
        "proc inc(in a; out b) b := a + 1 "
        "var x, h : integer; begin call inc(h; x) end"
    )
    subject = parse_program(source)
    assert subject.procs
    assert fused_cert(subject, dict(DEFAULT_CONFIG)) is None
    assert fused_denning(subject, dict(DEFAULT_CONFIG)) is None
    assert lint_memo_get(subject, dict(DEFAULT_CONFIG)) is None


def test_declines_unknown_scheme_and_bad_mode():
    subject = parse_statement("x := 1")
    assert fused_cert(subject, dict(DEFAULT_CONFIG, scheme="no-such")) is None
    assert (
        fused_denning(subject, dict(DEFAULT_CONFIG, on_concurrency="weird"))
        is None
    )


def test_declines_non_statement_subjects():
    assert fused_cert("not a program", dict(DEFAULT_CONFIG)) is None


def test_registry_falls_back_when_fastpath_declines():
    from repro.errors import BindingError
    from repro.pipeline.analyses import ANALYSES

    # Procedure expansion introduces activation variables the config-
    # derived policy cannot see, so the *reference* outcome for this
    # subject is a BindingError; the fast path must decline and let the
    # registry surface exactly that, not swallow or alter it.
    source = (
        "proc inc(in a; out b) b := a + 1 "
        "var x, h : integer; begin call inc(h; x) end"
    )
    subject = parse_program(source)
    with pytest.raises(BindingError):
        _reference_cert(subject, dict(DEFAULT_CONFIG))
    with pytest.raises(BindingError):
        ANALYSES["cert"].run(subject, dict(DEFAULT_CONFIG))


def test_registry_respects_the_fastpath_flag():
    from repro.pipeline.analyses import ANALYSES

    subject = parse_statement("begin x := h; while h > 0 do skip end")
    on = ANALYSES["cert"].run(subject, dict(DEFAULT_CONFIG, fastpath=True))
    off = ANALYSES["cert"].run(subject, dict(DEFAULT_CONFIG, fastpath=False))
    assert on == off == _reference_cert(subject, dict(DEFAULT_CONFIG))
    assert cache_stats()["irs"] > 0  # the flagged-on run used the engine


def test_lint_memo_round_trip_matches_reference():
    subject = parse_program(
        "var x, h : integer; s : semaphore initially(1);"
        "begin wait(s); x := h; signal(s) end"
    )
    config = dict(DEFAULT_CONFIG)
    assert lint_memo_get(subject, config) is None  # cold miss
    reference = _reference_lint(subject, config)
    lint_memo_put(subject, config, reference)
    hit = lint_memo_get(subject, config)
    assert hit == reference
    assert hit is not reference  # a defensive copy, not the stored object
    hit["findings"] = -1  # mutating the copy must not poison the memo
    assert lint_memo_get(subject, config) == reference


def test_lint_memo_distinguishes_layouts_of_one_structure():
    compact = parse_program("var x, h : integer; begin x := h end")
    spread = parse_program("var x, h : integer;\nbegin\n\n  x := h\nend")
    config = dict(DEFAULT_CONFIG)
    lint_memo_put(compact, config, _reference_lint(compact, config))
    # same structure, different spans: the memo must not cross-serve
    cross = lint_memo_get(spread, config)
    assert cross is None or cross == _reference_lint(spread, config)
    assert lint_memo_get(spread, config) != lint_memo_get(compact, config) or (
        _reference_lint(spread, config) == _reference_lint(compact, config)
    )


def test_clear_caches_resets_all_stats():
    fused_cert(parse_statement("x := h"), dict(DEFAULT_CONFIG))
    assert cache_stats()["irs"] > 0
    clear_caches()
    assert cache_stats() == {"irs": 0, "memo": 0, "resolved": 0, "schemes": 0}


def test_builder_and_parser_subjects_share_records():
    parsed = parse_statement("x := h")
    built = assign("x", "h")
    config = dict(DEFAULT_CONFIG)
    assert fused_cert(parsed, config) == fused_cert(built, config)
    assert cache_stats()["irs"] == 1  # one shared row for both subjects
