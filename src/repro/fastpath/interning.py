"""Interned lattices: security classes as small ints, operations as O(1).

The reference :class:`~repro.lattice.base.Lattice` operations validate
their operands on every call (``check`` raises on foreign elements) and
dispatch through Python objects — frozensets for powersets, tuples for
products.  Certification performs thousands of joins/meets per corpus,
so the fast path *interns* each scheme once: every element gets an id in
``0..n-1`` and the operations become integer arithmetic:

=====================  =============================================
scheme                 representation
=====================  =============================================
chains                 id = rank; join/meet are ``max``/``min``
powersets              id = category bitmask; join/meet are ``|``/``&``
products               id = mixed-radix packing of component ids
extended (Definition 4) base ids plus one extra id for ``nil``
anything finite        precomputed n x n join/meet tables
=====================  =============================================

Every interned lattice agrees with its base lattice pointwise — the
property tests in ``tests/fastpath/test_interning.py`` sweep encode/
decode round-trips, pointwise join/meet/leq agreement, and the lattice
axioms (commutativity, associativity, absorption, identities) over
seeded random element pairs for all of the shapes above.

Interning is a *construction-time* cost (linear to quadratic in the
carrier); :func:`intern_lattice` results are therefore cached by the
engine, one per scheme.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.errors import ElementError, LatticeError
from repro.lattice.base import Element, Lattice
from repro.lattice.chain import ChainLattice
from repro.lattice.extended import NIL, ExtendedLattice
from repro.lattice.powerset import PowersetLattice
from repro.lattice.product import ProductLattice

#: Largest carrier the generic table representation will precompute
#: (n x n int tables); larger lattices need a structural representation.
TABLE_LIMIT = 1024


class InternedLattice:
    """Base class: a finite lattice with elements renamed to ``0..n-1``.

    Subclasses implement :meth:`join`, :meth:`meet` and :meth:`leq` over
    ids; :meth:`encode`/:meth:`decode` translate to and from the base
    lattice's elements.  ``top`` and ``bottom`` are ids.
    """

    base: Lattice
    n: int
    top: int
    bottom: int

    def encode(self, element: Element) -> int:
        """The id of ``element``; raises :class:`ElementError` if foreign."""
        raise NotImplementedError

    def decode(self, i: int) -> Element:
        """The base-lattice element with id ``i``."""
        raise NotImplementedError

    def join(self, i: int, j: int) -> int:
        """Least upper bound, by id."""
        raise NotImplementedError

    def meet(self, i: int, j: int) -> int:
        """Greatest lower bound, by id."""
        raise NotImplementedError

    def leq(self, i: int, j: int) -> bool:
        """Order test, by id."""
        raise NotImplementedError

    def _check_id(self, i: int) -> int:
        if not isinstance(i, int) or not 0 <= i < self.n:
            raise ElementError(f"{i!r} is not an element id of {self.base.name}")
        return i

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} over {self.base.name!r}, {self.n} ids>"


class ChainInterned(InternedLattice):
    """A chain interned by rank: join is ``max``, meet is ``min``."""

    def __init__(self, base: ChainLattice):
        self.base = base
        self._labels = base.labels
        self._rank = {label: i for i, label in enumerate(self._labels)}
        self.n = len(self._labels)
        self.bottom = 0
        self.top = self.n - 1

    def encode(self, element: Element) -> int:
        try:
            return self._rank[element]
        except (KeyError, TypeError):
            raise ElementError(
                f"{element!r} is not an element of {self.base.name}"
            ) from None

    def decode(self, i: int) -> Element:
        return self._labels[self._check_id(i)]

    def join(self, i: int, j: int) -> int:
        return i if i >= j else j

    def meet(self, i: int, j: int) -> int:
        return i if i <= j else j

    def leq(self, i: int, j: int) -> bool:
        return i <= j


class PowersetInterned(InternedLattice):
    """A powerset interned as category bitmasks: join ``|``, meet ``&``."""

    def __init__(self, base: PowersetLattice):
        self.base = base
        self._categories: Tuple[str, ...] = tuple(sorted(base.universe))
        self._bit = {cat: 1 << k for k, cat in enumerate(self._categories)}
        self.n = 1 << len(self._categories)
        self.bottom = 0
        self.top = self.n - 1

    def encode(self, element: Element) -> int:
        try:
            mask = 0
            for cat in element:
                mask |= self._bit[cat]
            return mask
        except (KeyError, TypeError):
            raise ElementError(
                f"{element!r} is not an element of {self.base.name}"
            ) from None

    def decode(self, i: int) -> Element:
        self._check_id(i)
        return frozenset(
            cat for k, cat in enumerate(self._categories) if i >> k & 1
        )

    def join(self, i: int, j: int) -> int:
        return i | j

    def meet(self, i: int, j: int) -> int:
        return i & j

    def leq(self, i: int, j: int) -> bool:
        return i | j == j


class ProductInterned(InternedLattice):
    """A product interned by mixed-radix packing of component ids.

    ``id = c0 + c1*n0 + c2*n0*n1 + ...`` — componentwise operations
    unpack with ``divmod``.  Small products are better served by
    :class:`TableInterned` (the factory prefers it); this representation
    exists for products whose carrier exceeds :data:`TABLE_LIMIT`.
    """

    def __init__(self, base: ProductLattice):
        self.base = base
        self._parts: List[InternedLattice] = [
            intern_lattice(component) for component in base.components
        ]
        self.n = 1
        for part in self._parts:
            self.n *= part.n
        self.top = self._pack([part.top for part in self._parts])
        self.bottom = self._pack([part.bottom for part in self._parts])

    def _pack(self, ids: List[int]) -> int:
        packed = 0
        for part, i in zip(reversed(self._parts), reversed(ids)):
            packed = packed * part.n + i
        return packed

    def _unpack(self, i: int) -> List[int]:
        out = []
        for part in self._parts:
            i, rem = divmod(i, part.n)
            out.append(rem)
        return out

    def encode(self, element: Element) -> int:
        if not isinstance(element, tuple) or len(element) != len(self._parts):
            raise ElementError(
                f"{element!r} is not an element of {self.base.name}"
            )
        return self._pack(
            [part.encode(coord) for part, coord in zip(self._parts, element)]
        )

    def decode(self, i: int) -> Element:
        self._check_id(i)
        return tuple(
            part.decode(coord)
            for part, coord in zip(self._parts, self._unpack(i))
        )

    def join(self, i: int, j: int) -> int:
        return self._pack(
            [
                part.join(a, b)
                for part, a, b in zip(self._parts, self._unpack(i), self._unpack(j))
            ]
        )

    def meet(self, i: int, j: int) -> int:
        return self._pack(
            [
                part.meet(a, b)
                for part, a, b in zip(self._parts, self._unpack(i), self._unpack(j))
            ]
        )

    def leq(self, i: int, j: int) -> bool:
        return all(
            part.leq(a, b)
            for part, a, b in zip(self._parts, self._unpack(i), self._unpack(j))
        )


class ExtendedInterned(InternedLattice):
    """Definition 4 over an interned base: ``nil`` gets the one extra id.

    Base elements keep their ids; ``nil`` is ``id == base.n``.  Join
    treats ``nil`` as identity, meet as absorbing, and ``nil <= x`` for
    every ``x`` — exactly :class:`~repro.lattice.extended.ExtendedLattice`.
    """

    def __init__(self, base: ExtendedLattice):
        self.base = base
        self._inner = intern_lattice(base.base)
        self.nil = self._inner.n
        self.n = self._inner.n + 1
        self.top = self._inner.top
        self.bottom = self.nil

    def encode(self, element: Element) -> int:
        if self.base.is_nil(element):
            return self.nil
        return self._inner.encode(element)

    def decode(self, i: int) -> Element:
        self._check_id(i)
        return NIL if i == self.nil else self._inner.decode(i)

    def join(self, i: int, j: int) -> int:
        if i == self.nil:
            return j
        if j == self.nil:
            return i
        return self._inner.join(i, j)

    def meet(self, i: int, j: int) -> int:
        if i == self.nil or j == self.nil:
            return self.nil
        return self._inner.meet(i, j)

    def leq(self, i: int, j: int) -> bool:
        if i == self.nil:
            return True
        if j == self.nil:
            return False
        return self._inner.leq(i, j)


class TableInterned(InternedLattice):
    """Any finite lattice, with n x n join/meet tables and leq bitrows.

    Elements are ordered deterministically by ``repr`` (the same order
    :class:`~repro.lattice.product.ProductLattice` materializes its
    carrier in), the tables are flat lists indexed ``i * n + j``, and
    ``leq`` reads one bit of a per-row bitmask — three O(1) operations
    regardless of the base lattice's own cost model.
    """

    def __init__(self, base: Lattice):
        elements = sorted(base.elements, key=repr)
        n = len(elements)
        if n > TABLE_LIMIT:
            raise LatticeError(
                f"{base.name}: carrier of {n} exceeds the table limit "
                f"({TABLE_LIMIT}); use a structural interning"
            )
        self.base = base
        self.n = n
        self._elements = elements
        self._ids = {element: i for i, element in enumerate(elements)}
        join_table = [0] * (n * n)
        meet_table = [0] * (n * n)
        up_rows = [0] * n
        for i, a in enumerate(elements):
            for j, b in enumerate(elements):
                join_table[i * n + j] = self._ids[base.join(a, b)]
                meet_table[i * n + j] = self._ids[base.meet(a, b)]
                if base.leq(a, b):
                    up_rows[i] |= 1 << j
        self._join = join_table
        self._meet = meet_table
        self._up = up_rows
        self.top = self._ids[base.top]
        self.bottom = self._ids[base.bottom]

    def encode(self, element: Element) -> int:
        try:
            return self._ids[element]
        except (KeyError, TypeError):
            raise ElementError(
                f"{element!r} is not an element of {self.base.name}"
            ) from None

    def decode(self, i: int) -> Element:
        return self._elements[self._check_id(i)]

    def join(self, i: int, j: int) -> int:
        return self._join[i * self.n + j]

    def meet(self, i: int, j: int) -> int:
        return self._meet[i * self.n + j]

    def leq(self, i: int, j: int) -> bool:
        return bool(self._up[i] >> j & 1)


def intern_lattice(lattice: Lattice) -> InternedLattice:
    """The cheapest faithful interning of ``lattice``.

    Chains, powersets and the extended scheme get structural
    representations (no tables to build); products fall back to
    mixed-radix packing only when their carrier would blow the table
    limit; everything else gets :class:`TableInterned`.
    """
    if isinstance(lattice, ChainLattice):
        return ChainInterned(lattice)
    if isinstance(lattice, PowersetLattice):
        return PowersetInterned(lattice)
    if isinstance(lattice, ExtendedLattice):
        return ExtendedInterned(lattice)
    if isinstance(lattice, ProductLattice) and len(lattice.elements) > TABLE_LIMIT:
        return ProductInterned(lattice)
    return TableInterned(lattice)
