"""The fused single-sweep certifier (the section 6 complexity claim, made real).

The reference analyzers (:mod:`repro.core.cfm`, :mod:`repro.core.denning`,
:mod:`repro.staticlint`) re-walk the dataclass AST once per analysis and
build a :class:`~repro.core.cfm.Check` record — detail string included —
for every side condition.  That is the honest paper mechanism, and it is
the hot path every ``repro batch``, ``repro serve`` and ``repro fuzz``
cycle pays.  This package is the fast path behind the analysis registry:

* :mod:`repro.fastpath.interning` — lattice elements become small ints
  with O(1) join/meet/leq (rank comparisons for chains, bit operations
  for powersets, precomputed tables for anything finite);
* :mod:`repro.fastpath.ir` — programs are lowered once into a
  hash-consed array-of-structs IR, so structurally identical subtrees
  share one node id across an entire corpus;
* :mod:`repro.fastpath.engine` — ``mod``/``flow``/``cert`` and the
  Denning baseline are evaluated in one fused linear sweep over the IR,
  memoized per subtree, and the RPL lint passes ride the same memo at
  whole-program granularity.

The contract is byte-identity: for every subject the fast path supports,
its result dicts equal the reference implementation's exactly (the
``cert-equiv`` fuzz oracle, the golden differential tests, and
``benchmarks/bench_cert.py`` all pin this).  Subjects the fast path does
not support (procedure programs, exotic nodes) return ``None`` and the
registry falls back to the reference implementation — the fast path may
only ever be faster, never different.  Disable it with the ``fastpath``
config key (``repro batch/serve/fuzz --no-fastpath``).
"""

from repro.fastpath.engine import (
    cache_stats,
    clear_caches,
    fused_cert,
    fused_denning,
    lint_memo_get,
    lint_memo_put,
)
from repro.fastpath.interning import (
    ChainInterned,
    ExtendedInterned,
    InternedLattice,
    PowersetInterned,
    ProductInterned,
    TableInterned,
    intern_lattice,
)
from repro.fastpath.ir import NodeStore, lower

__all__ = [
    "ChainInterned",
    "ExtendedInterned",
    "InternedLattice",
    "NodeStore",
    "PowersetInterned",
    "ProductInterned",
    "TableInterned",
    "cache_stats",
    "clear_caches",
    "fused_cert",
    "fused_denning",
    "intern_lattice",
    "lint_memo_get",
    "lint_memo_put",
    "lower",
]
