"""Hash-consed array-of-structs IR for the fused certifier.

The reference analyzers walk the dataclass AST, whose nodes have
*identity* equality (deliberately — program points carry facts).  The
fused sweep does not need program points: the registry's cert/denning
result dicts are location-free aggregates (check counts plus sorted
rule names), so two structurally identical subtrees always produce
identical contributions.  Lowering therefore *hash-conses*: every
statement becomes a small tuple row interned in a :class:`NodeStore`,
and structurally identical subtrees — within one program or across an
entire corpus — share a single node id.

Rows are interned bottom-up, so a row's child ids are always smaller
than its own id.  That invariant is what makes the fused evaluation a
single linear sweep: collect the not-yet-memoized ids under a root,
sort ascending, and every child record is ready before its parent
needs it.

Expressions are flattened to their variable-name sets on the way in:
``sbind(e)`` is the join of the classes of ``e``'s variables (constants
contribute the identity ``low``), and join is associative, commutative
and idempotent, so the sorted unique name tuple is a complete summary.

Source locations are deliberately **excluded** from rows — that is the
point of the sharing.  Anything whose output mentions locations (the
lint diagnostics) must key on a separate location signature; see
``repro.fastpath.engine``.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Tuple

from repro.lang.ast import (
    Assign,
    Begin,
    BinOp,
    BoolLit,
    Cobegin,
    Expr,
    If,
    IntLit,
    Signal,
    Skip,
    Stmt,
    UnOp,
    Var,
    Wait,
    While,
)

#: Row kind tags (first element of every row tuple).
K_ASSIGN = 0
K_SKIP = 1
K_WAIT = 2
K_SIGNAL = 3
K_IF = 4
K_WHILE = 5
K_BEGIN = 6
K_COBEGIN = 7

#: "No else branch" / "no flow" sentinel for child-id slots.
NO_NODE = -1

Row = Tuple


class Unsupported(Exception):
    """Raised by :func:`lower` on AST shapes the fast path does not model.

    The engine converts this into a ``None`` return, which the registry
    treats as "run the reference implementation" — unsupported input is
    a fallback, never an error.
    """


class NodeStore:
    """An append-only intern table of IR rows: ``row <-> nid``.

    ``rows[nid]`` is the row tuple; :attr:`index` maps a row back to its
    id.  Interning is guarded by a lock so concurrent service threads
    cannot assign two ids to one row; lookups of already-interned rows
    stay lock-free on the dict fast path.
    """

    def __init__(self) -> None:
        self.rows: List[Row] = []
        self.index: Dict[Row, int] = {}
        self._lock = threading.Lock()

    def __len__(self) -> int:
        return len(self.rows)

    def intern(self, row: Row) -> int:
        """The id of ``row``, assigning the next id on first sight."""
        nid = self.index.get(row)
        if nid is not None:
            return nid
        with self._lock:
            nid = self.index.get(row)
            if nid is None:
                nid = len(self.rows)
                self.rows.append(row)
                self.index[row] = nid
            return nid

    def clear(self) -> None:
        """Drop every row.  Callers must also drop anything keyed by nid."""
        with self._lock:
            self.rows.clear()
            self.index.clear()


def expr_signature(expr: Expr) -> Tuple[str, ...]:
    """Sorted unique variable names of ``expr`` — its complete sbind summary."""
    names = set()
    stack = [expr]
    while stack:
        node = stack.pop()
        if isinstance(node, Var):
            names.add(node.name)
        elif isinstance(node, (IntLit, BoolLit)):
            pass
        elif isinstance(node, UnOp):
            stack.append(node.operand)
        elif isinstance(node, BinOp):
            stack.append(node.left)
            stack.append(node.right)
        else:
            raise Unsupported(f"unknown expression node {type(node).__name__}")
    return tuple(sorted(names))


def lower(stmt: Stmt, store: NodeStore) -> int:
    """Intern ``stmt``'s subtree into ``store``; return the root nid.

    Raises :class:`Unsupported` on statement or expression forms outside
    the paper's core language (anything the reference analyzers would
    need to see themselves).
    """
    if isinstance(stmt, Assign):
        row: Row = (K_ASSIGN, stmt.target, expr_signature(stmt.expr))
    elif isinstance(stmt, Skip):
        row = (K_SKIP,)
    elif isinstance(stmt, Wait):
        row = (K_WAIT, stmt.sem)
    elif isinstance(stmt, Signal):
        row = (K_SIGNAL, stmt.sem)
    elif isinstance(stmt, If):
        then_nid = lower(stmt.then_branch, store)
        else_nid = (
            NO_NODE if stmt.else_branch is None else lower(stmt.else_branch, store)
        )
        row = (K_IF, expr_signature(stmt.cond), then_nid, else_nid)
    elif isinstance(stmt, While):
        row = (K_WHILE, expr_signature(stmt.cond), lower(stmt.body, store))
    elif isinstance(stmt, Begin):
        row = (K_BEGIN, tuple(lower(child, store) for child in stmt.body))
    elif isinstance(stmt, Cobegin):
        row = (K_COBEGIN, tuple(lower(branch, store) for branch in stmt.branches))
    else:
        raise Unsupported(f"unknown statement node {type(stmt).__name__}")
    return store.intern(row)


def child_nids(row: Row) -> Tuple[int, ...]:
    """The nid slots of ``row`` (excluding :data:`NO_NODE`)."""
    kind = row[0]
    if kind == K_IF:
        return (row[2],) if row[3] == NO_NODE else (row[2], row[3])
    if kind == K_WHILE:
        return (row[2],)
    if kind in (K_BEGIN, K_COBEGIN):
        return row[1]
    return ()
