"""The fused single-sweep evaluation of cert + denning, and the lint memo.

One linear pass over the hash-consed IR computes, per node id, an
8-slot record covering *both* certifiers at once:

``(mod, flow, cn, cf, dmod, dn, df, du)``

* ``mod``/``flow`` — CFM's Figure 2 functions, as interned class ids
  (``flow`` uses :data:`NIL` for "no global flow");
* ``cn``/``cf`` — how many CFM side conditions the subtree evaluates,
  and the frozenset of rule names among them that *fail*;
* ``dmod`` — the Denning ``mod`` (semaphores excluded: they are not
  data variables to the sequential mechanism);
* ``dn``/``df`` — Denning check count and failed rule names (identical
  under both ``on_concurrency`` modes);
* ``du`` — how many ``wait``/``signal``/``cobegin`` nodes the subtree
  contains (reported as unsupported under ``on_concurrency="reject"``,
  as zero under ``"ignore"``).

That record is exactly enough to assemble the registry's result dicts
— ``certified``, ``checks``, ``violations`` (sorted rule names), and
``unsupported`` are location-free aggregates — which is why records can
be memoized by *structure* and shared across every program in a corpus
that repeats a subtree.  Records are keyed by ``(scheme, high)``
context; the policy is the registry's config-derived binding (names in
``high`` bind to the scheme top, everything else to bottom), so a
variable's class is a set-membership test.

The RPL lint passes are *not* re-implemented here: their diagnostics
carry source spans, which hash-consing deliberately erases.  Instead
the reference lint result is memoized whole-program, keyed by the IR
root plus a location/declaration signature, so repeated analysis of
the same source text (fuzz replays, warm service caches, repeated
batches) skips the engine entirely while staying byte-identical.

Entry points return ``None`` for anything they do not model (procedure
programs, unknown nodes, unknown schemes); the registry then runs the
reference implementation.  The fast path may only ever be faster,
never different — ``tests/fastpath/`` and the ``cert-equiv`` fuzz
oracle hold it to that.

All shared state (one IR store, per-context record memos, the lint
memo) sits behind a single re-entrant lock; caps trigger a coordinated
clear, since records and lint entries dangle once the store resets.
"""

from __future__ import annotations

import copy
import threading
from typing import Dict, FrozenSet, Optional, Tuple

from repro.fastpath.interning import InternedLattice, intern_lattice
from repro.fastpath.ir import (
    K_ASSIGN,
    K_BEGIN,
    K_COBEGIN,
    K_IF,
    K_SIGNAL,
    K_SKIP,
    K_WAIT,
    K_WHILE,
    NO_NODE,
    NodeStore,
    Unsupported,
    child_nids,
    lower,
)
from repro.lang.ast import Program, Stmt, iter_nodes

#: ``flow(S)`` id for "no global flow" (Definition 4's ``nil``).
NIL = -1

#: Cap on interned IR rows before a coordinated cache clear.
MAX_IR_ROWS = 250_000
#: Cap on memoized records summed across all ``(scheme, high)`` contexts.
MAX_RECORDS = 1_000_000
#: Cap on memoized whole-program lint results.
MAX_LINT_ENTRIES = 4_096
MAX_ROOT_ENTRIES = 65_536

_EMPTY: FrozenSet[str] = frozenset()
_ASSIGNMENT = frozenset(["assignment"])
_ALTERNATION = frozenset(["alternation"])
_ITERATION = frozenset(["iteration"])
_COMPOSITION = frozenset(["composition"])

Record = Tuple[int, int, int, FrozenSet[str], int, int, FrozenSet[str], int]


class _Context:
    """Interned scheme + high-variable set + the record memo they key."""

    __slots__ = ("base", "high", "memo")

    def __init__(self, base: InternedLattice, high: FrozenSet[str]):
        self.base = base
        self.high = high
        self.memo: Dict[int, Record] = {}


_LOCK = threading.RLock()
_STORE = NodeStore()
_SCHEMES_INTERNED: Dict[str, InternedLattice] = {}
_CONTEXTS: Dict[Tuple[str, Tuple[str, ...]], _Context] = {}
_LINT_MEMO: Dict[tuple, dict] = {}
# Root uid -> interned nid.  AST uids come from a process-global counter
# and are never reused, and nothing in the repo mutates a node after
# construction (the shrinker and builders rebuild), so a uid hit means
# the exact structure already lowered — the warm path skips the walk.
_ROOT_NIDS: Dict[int, int] = {}


def clear_caches() -> None:
    """Drop the IR store, every record memo, and the lint memo."""
    with _LOCK:
        _STORE.clear()
        _SCHEMES_INTERNED.clear()
        _CONTEXTS.clear()
        _LINT_MEMO.clear()
        _ROOT_NIDS.clear()


def cache_stats() -> Dict[str, int]:
    """Sizes of the shared caches (for benchmarks and diagnostics)."""
    with _LOCK:
        return {
            "irs": len(_STORE),
            "memo": sum(len(ctx.memo) for ctx in _CONTEXTS.values()),
            "resolved": len(_LINT_MEMO),
            "schemes": len(_SCHEMES_INTERNED),
        }


def _trim_if_needed() -> None:
    """Clear everything when a cap trips (records dangle once rows do)."""
    if (
        len(_STORE) > MAX_IR_ROWS
        or sum(len(ctx.memo) for ctx in _CONTEXTS.values()) > MAX_RECORDS
        or len(_ROOT_NIDS) > MAX_ROOT_ENTRIES
    ):
        _STORE.clear()
        for ctx in _CONTEXTS.values():
            ctx.memo.clear()
        _LINT_MEMO.clear()
        _ROOT_NIDS.clear()
    elif len(_LINT_MEMO) > MAX_LINT_ENTRIES:
        _LINT_MEMO.clear()


def _interned_scheme(name: str) -> Optional[InternedLattice]:
    interned = _SCHEMES_INTERNED.get(name)
    if interned is None:
        # Late import: the registry imports this module, not vice versa.
        from repro.pipeline.analyses import _SCHEMES

        factory = _SCHEMES.get(name)
        if factory is None:
            return None
        interned = intern_lattice(factory())
        _SCHEMES_INTERNED[name] = interned
    return interned


def _context(config: dict) -> Optional[_Context]:
    name = str(config.get("scheme", ""))
    raw_high = config.get("high", ())
    try:
        high = tuple(sorted(str(h) for h in raw_high))
    except TypeError:
        return None
    key = (name, high)
    ctx = _CONTEXTS.get(key)
    if ctx is None:
        base = _interned_scheme(name)
        if base is None:
            return None
        ctx = _Context(base, frozenset(high))
        _CONTEXTS[key] = ctx
    return ctx


def _supported_body(subject) -> Optional[Stmt]:
    """The statement the reference would analyze, or ``None`` to decline.

    Procedure programs go through expansion (``resolve_subject``) and
    synthetic-binding completion in the reference path; the fast path
    declines them rather than re-modeling that machinery.
    """
    if isinstance(subject, Program):
        if subject.procs or subject.synthetic:
            return None
        return subject.body
    if isinstance(subject, Stmt):
        return subject
    return None


def _lowered(subject, config) -> Optional[Tuple[int, _Context]]:
    """Intern ``subject`` and resolve its context; ``None`` declines."""
    stmt = _supported_body(subject)
    if stmt is None:
        return None
    ctx = _context(config)
    if ctx is None:
        return None
    _trim_if_needed()
    nid = _ROOT_NIDS.get(stmt.uid)
    if nid is None:
        try:
            nid = lower(stmt, _STORE)
        except Unsupported:
            return None
        _ROOT_NIDS[stmt.uid] = nid
    return nid, ctx


def _evaluate(root: int, ctx: _Context) -> Record:
    """The fused linear sweep: children first, both certifiers at once.

    Rows are interned bottom-up, so child ids are smaller than parent
    ids; sorting the not-yet-memoized ids ascending makes one flat loop
    sufficient — no recursion, and a memo hit prunes its whole subtree.
    """
    memo = ctx.memo
    rec = memo.get(root)
    if rec is not None:
        return rec
    rows = _STORE.rows
    pending = []
    seen = set()
    stack = [root]
    while stack:
        nid = stack.pop()
        if nid in seen or nid in memo:
            continue
        seen.add(nid)
        pending.append(nid)
        stack.extend(child_nids(rows[nid]))
    pending.sort()

    base = ctx.base
    high = ctx.high
    top, bot = base.top, base.bottom
    join, meet, leq = base.join, base.meet, base.leq
    # Config-derived policy: every class is top or bot, so the join
    # fold over an expression's variables is a membership test.
    skip_rec: Record = (top, NIL, 0, _EMPTY, top, 0, _EMPTY, 0)

    for nid in pending:
        row = rows[nid]
        kind = row[0]
        if kind == K_ASSIGN:
            target = top if row[1] in high else bot
            expr_cls = top if any(n in high for n in row[2]) else bot
            failed = _EMPTY if leq(expr_cls, target) else _ASSIGNMENT
            rec = (target, NIL, 1, failed, target, 1, failed, 0)
        elif kind == K_SKIP:
            rec = skip_rec
        elif kind == K_WAIT:
            sem = top if row[1] in high else bot
            rec = (sem, sem, 0, _EMPTY, top, 0, _EMPTY, 1)
        elif kind == K_SIGNAL:
            sem = top if row[1] in high else bot
            rec = (sem, NIL, 0, _EMPTY, top, 0, _EMPTY, 1)
        elif kind == K_IF:
            m1, f1, c1, cf1, dm1, d1, df1, u1 = memo[row[2]]
            if row[3] == NO_NODE:
                m2, f2, c2, cf2, dm2, d2, df2, u2 = skip_rec
            else:
                m2, f2, c2, cf2, dm2, d2, df2, u2 = memo[row[3]]
            cond = top if any(n in high for n in row[1]) else bot
            mod = meet(m1, m2)
            if f1 == NIL and f2 == NIL:
                flow = NIL
            else:
                branch_flow = f2 if f1 == NIL else (f1 if f2 == NIL else join(f1, f2))
                flow = join(branch_flow, cond)
            cf = cf1 | cf2
            if not leq(cond, mod):
                cf = cf | _ALTERNATION
            dmod = meet(dm1, dm2)
            df = df1 | df2
            if not leq(cond, dmod):
                df = df | _ALTERNATION
            rec = (mod, flow, c1 + c2 + 1, cf, dmod, d1 + d2 + 1, df, u1 + u2)
        elif kind == K_WHILE:
            m1, f1, c1, cf1, dm1, d1, df1, u1 = memo[row[2]]
            cond = top if any(n in high for n in row[1]) else bot
            flow = cond if f1 == NIL else join(f1, cond)
            cf = cf1 if leq(flow, m1) else cf1 | _ITERATION
            df = df1 if leq(cond, dm1) else df1 | _ITERATION
            rec = (m1, flow, c1 + 1, cf, dm1, d1 + 1, df, u1)
        elif kind == K_BEGIN:
            mod, flow = top, NIL
            cn, cf = 0, _EMPTY
            dmod, dn, df, du = top, 0, _EMPTY, 0
            first = True
            for cnid in row[1]:
                m, f, c, cfi, dm, d, dfi, u = memo[cnid]
                cn += c
                cf = cf | cfi
                dn += d
                df = df | dfi
                du += u
                if flow != NIL:
                    # flow(Sj) <= mod(Si) for j < i, folded into the
                    # running prefix join exactly like the reference.
                    cn += 1
                    if not leq(flow, m):
                        cf = cf | _COMPOSITION
                mod = m if first else meet(mod, m)
                dmod = dm if first else meet(dmod, dm)
                first = False
                if f != NIL:
                    flow = f if flow == NIL else join(flow, f)
            rec = (mod, flow, cn, cf, dmod, dn, df, du)
        else:  # K_COBEGIN
            mod, flow = top, NIL
            cn, cf = 0, _EMPTY
            dmod, dn, df, du = top, 0, _EMPTY, 1  # the cobegin itself
            first = True
            for cnid in row[1]:
                m, f, c, cfi, dm, d, dfi, u = memo[cnid]
                cn += c
                cf = cf | cfi
                dn += d
                df = df | dfi
                du += u
                mod = m if first else meet(mod, m)
                dmod = dm if first else meet(dmod, dm)
                first = False
                if f != NIL:
                    flow = f if flow == NIL else join(flow, f)
            rec = (mod, flow, cn, cf, dmod, dn, df, du)
        memo[nid] = rec
    return memo[root]


def fused_cert(subject, config: dict) -> Optional[dict]:
    """The ``cert`` registry result via the fused sweep; ``None`` declines."""
    with _LOCK:
        lowered = _lowered(subject, config)
        if lowered is None:
            return None
        nid, ctx = lowered
        _mod, _flow, checks, failed, *_rest = _evaluate(nid, ctx)
    return {
        "certified": not failed,
        "checks": checks,
        "violations": sorted(failed),
    }


def fused_denning(subject, config: dict) -> Optional[dict]:
    """The ``denning`` registry result via the fused sweep; ``None`` declines."""
    mode = str(config.get("on_concurrency", ""))
    if mode not in ("reject", "ignore"):
        return None
    with _LOCK:
        lowered = _lowered(subject, config)
        if lowered is None:
            return None
        nid, ctx = lowered
        rec = _evaluate(nid, ctx)
    unsupported = rec[7] if mode == "reject" else 0
    failed = rec[6]
    return {
        "certified": not failed and not unsupported,
        "checks": rec[5],
        "violations": sorted(failed),
        "unsupported": unsupported,
    }


def _lint_key(subject, config) -> Optional[tuple]:
    """Whole-program lint memo key, or ``None`` when not memoizable.

    The IR root pins the structure; because hash-consing erases source
    positions while lint diagnostics report them, the key adds the
    preorder ``(line, column)`` signature of *every* node plus the
    declaration list (names, kind, initial value — the deadlock pass
    reads semaphore initials) and the subject kind.
    """
    with _LOCK:
        lowered = _lowered(subject, config)
        if lowered is None:
            return None
        nid, ctx = lowered
    is_program = isinstance(subject, Program)
    decl_sig = (
        tuple((tuple(d.names), d.kind, d.initial) for d in subject.decls)
        if is_program
        else ()
    )
    loc_sig = tuple((n.loc.line, n.loc.column) for n in iter_nodes(subject))
    return (nid, is_program, decl_sig, loc_sig, ctx.base.base.name, ctx.high)


def lint_memo_get(subject, config: dict) -> Optional[dict]:
    """A deep copy of the memoized lint result dict, if present."""
    key = _lint_key(subject, config)
    if key is None:
        return None
    with _LOCK:
        cached = _LINT_MEMO.get(key)
        return copy.deepcopy(cached) if cached is not None else None


def lint_memo_put(subject, config: dict, result: dict) -> None:
    """Memoize a freshly computed lint result dict (stored as a copy)."""
    key = _lint_key(subject, config)
    if key is None:
        return
    with _LOCK:
        _trim_if_needed()
        _LINT_MEMO[key] = copy.deepcopy(result)
