"""Control-flow graphs for the paper's concurrent language.

The CFG is the shared substrate of every lint pass.  Nodes are atomic
program actions (assignments, ``wait``/``signal``, ``skip``) plus guard
nodes for ``if``/``while`` and fork/join nodes for ``cobegin``; edges
are labelled:

* ``seq`` — unconditional sequencing;
* ``true``/``false`` — the two outcomes of a guard evaluation;
* ``fork`` — from a ``cobegin`` fork node into each arm;
* ``join`` — from each arm's exits into the matching join node;
* ``sync`` — from every ``signal(s)`` to every ``wait(s)`` on the same
  semaphore: the may-synchronize-with relation.  Most analyses exclude
  these; the must-assigned pass uses them to learn facts that every
  possible signaller establishes.

Each node records the ``cobegin`` arms it executes under (``arm`` — a
stack of ``(fork_index, branch_index)`` pairs), which the race pass
uses to decide whether two actions can run in parallel.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Tuple, Union

from repro.lang.ast import (
    Assign,
    Begin,
    BinOp,
    BoolLit,
    Cobegin,
    Expr,
    If,
    IntLit,
    Loc,
    Program,
    Signal,
    Skip,
    Stmt,
    UnOp,
    Wait,
    While,
    expr_variables,
)

#: Edge labels (see module docstring).
EDGE_KINDS = ("seq", "true", "false", "fork", "join", "sync")

#: Node kinds that correspond to a real program action or guard.
ACTION_KINDS = frozenset({"assign", "wait", "signal", "skip", "branch", "loop"})


class CFGNode:
    """One control-flow node.

    ``kind`` is one of ``entry``, ``exit``, ``nop``, ``assign``,
    ``wait``, ``signal``, ``skip``, ``branch`` (an ``if`` guard),
    ``loop`` (a ``while`` guard), ``fork``, ``join``.
    """

    __slots__ = ("idx", "kind", "stmt", "arm")

    def __init__(self, idx: int, kind: str, stmt: Optional[Stmt], arm: Tuple):
        self.idx = idx
        self.kind = kind
        self.stmt = stmt
        self.arm = arm

    @property
    def loc(self) -> Loc:
        """The source position of the underlying statement."""
        return self.stmt.loc if self.stmt is not None else Loc.none()

    def reads(self) -> FrozenSet[str]:
        """Variable names this node reads (guards read their condition;
        ``wait``/``signal`` read their semaphore)."""
        s = self.stmt
        if isinstance(s, Assign) and self.kind == "assign":
            return expr_variables(s.expr)
        if self.kind in ("branch", "loop"):
            return expr_variables(s.cond)
        if self.kind in ("wait", "signal"):
            return frozenset((s.sem,))
        return frozenset()

    def writes(self) -> FrozenSet[str]:
        """Variable names this node writes (``wait``/``signal`` modify
        their semaphore, per Figure 2's ``mod``)."""
        s = self.stmt
        if isinstance(s, Assign) and self.kind == "assign":
            return frozenset((s.target,))
        if self.kind in ("wait", "signal"):
            return frozenset((s.sem,))
        return frozenset()

    def __repr__(self) -> str:
        return f"<CFGNode {self.idx} {self.kind} @{self.loc}>"


class CFG:
    """A labelled control-flow graph with entry/exit sentinels."""

    def __init__(self):
        self.nodes: List[CFGNode] = []
        #: successor adjacency: idx -> list of (succ_idx, edge_kind)
        self.succ: List[List[Tuple[int, str]]] = []
        #: predecessor adjacency: idx -> list of (pred_idx, edge_kind)
        self.pred: List[List[Tuple[int, str]]] = []
        self.entry: Optional[CFGNode] = None
        self.exit: Optional[CFGNode] = None
        #: semaphore name -> wait nodes / signal nodes
        self.waits: Dict[str, List[CFGNode]] = {}
        self.signals: Dict[str, List[CFGNode]] = {}

    # -- construction ---------------------------------------------------

    def add_node(self, kind: str, stmt: Optional[Stmt], arm: Tuple) -> CFGNode:
        """Append a node and return it."""
        node = CFGNode(len(self.nodes), kind, stmt, arm)
        self.nodes.append(node)
        self.succ.append([])
        self.pred.append([])
        if kind == "wait":
            self.waits.setdefault(stmt.sem, []).append(node)
        elif kind == "signal":
            self.signals.setdefault(stmt.sem, []).append(node)
        return node

    def add_edge(self, a: CFGNode, b: CFGNode, kind: str) -> None:
        """Add a labelled edge ``a -> b``."""
        assert kind in EDGE_KINDS, kind
        self.succ[a.idx].append((b.idx, kind))
        self.pred[b.idx].append((a.idx, kind))

    # -- queries ---------------------------------------------------------

    def action_nodes(self) -> List[CFGNode]:
        """Nodes corresponding to real program actions/guards."""
        return [n for n in self.nodes if n.kind in ACTION_KINDS]

    def semaphores(self) -> FrozenSet[str]:
        """Semaphores that appear in a ``wait`` or ``signal``."""
        return frozenset(self.waits) | frozenset(self.signals)

    def guard_constant(self, node: CFGNode):
        """The constant value of a guard node's condition, or ``None``."""
        if node.kind in ("branch", "loop"):
            return const_value(node.stmt.cond)
        return None

    def __repr__(self) -> str:
        edges = sum(len(s) for s in self.succ)
        return f"<CFG {len(self.nodes)} nodes, {edges} edges>"


def const_value(expr: Expr):
    """Fold an expression to a Python constant, or ``None`` if it is not
    constant.  Division by a constant zero folds to ``None`` (the
    runtime faults there; the linter stays silent)."""
    if isinstance(expr, IntLit):
        return expr.value
    if isinstance(expr, BoolLit):
        return expr.value
    if isinstance(expr, UnOp):
        v = const_value(expr.operand)
        if v is None:
            return None
        return (not v) if expr.op == "not" else -v
    if isinstance(expr, BinOp):
        a = const_value(expr.left)
        b = const_value(expr.right)
        if a is None or b is None:
            return None
        try:
            return {
                "+": lambda: a + b,
                "-": lambda: a - b,
                "*": lambda: a * b,
                "/": lambda: int(a / b) if b else None,
                "mod": lambda: a % b if b else None,
                "=": lambda: a == b,
                "#": lambda: a != b,
                "<": lambda: a < b,
                "<=": lambda: a <= b,
                ">": lambda: a > b,
                ">=": lambda: a >= b,
                "and": lambda: bool(a) and bool(b),
                "or": lambda: bool(a) or bool(b),
            }[expr.op]()
        except (ZeroDivisionError, KeyError):
            return None
    return None


def build_cfg(subject: Union[Program, Stmt], sync_edges: bool = True) -> CFG:
    """Construct the CFG of ``subject`` (a program's body or a statement).

    ``sync_edges=False`` omits the signal-to-wait ``sync`` edges for
    analyses that model processes independently.
    """
    stmt = subject.body if isinstance(subject, Program) else subject
    cfg = CFG()
    cfg.entry = cfg.add_node("entry", None, ())
    first, exits = _wire(cfg, stmt, ())
    cfg.add_edge(cfg.entry, first, "seq")
    cfg.exit = cfg.add_node("exit", None, ())
    for node, kind in exits:
        cfg.add_edge(node, cfg.exit, kind)
    if sync_edges:
        for sem, signal_nodes in cfg.signals.items():
            for s in signal_nodes:
                for w in cfg.waits.get(sem, ()):
                    cfg.add_edge(s, w, "sync")
    return cfg


_ATOMIC = {Assign: "assign", Wait: "wait", Signal: "signal", Skip: "skip"}


def _wire(cfg: CFG, stmt: Stmt, arm: Tuple):
    """Wire ``stmt`` into ``cfg``; returns ``(entry_node, exits)`` where
    ``exits`` is a list of ``(node, edge_kind)`` pairs to connect to
    whatever follows."""
    kind = _ATOMIC.get(type(stmt))
    if kind is not None:
        node = cfg.add_node(kind, stmt, arm)
        return node, [(node, "seq")]
    if isinstance(stmt, Begin):
        if not stmt.body:
            node = cfg.add_node("nop", stmt, arm)
            return node, [(node, "seq")]
        first = None
        pending = []
        for child in stmt.body:
            entry, exits = _wire(cfg, child, arm)
            for node, ekind in pending:
                cfg.add_edge(node, entry, ekind)
            if first is None:
                first = entry
            pending = exits
        return first, pending
    if isinstance(stmt, If):
        guard = cfg.add_node("branch", stmt, arm)
        then_entry, then_exits = _wire(cfg, stmt.then_branch, arm)
        cfg.add_edge(guard, then_entry, "true")
        exits = list(then_exits)
        if stmt.else_branch is not None:
            else_entry, else_exits = _wire(cfg, stmt.else_branch, arm)
            cfg.add_edge(guard, else_entry, "false")
            exits.extend(else_exits)
        else:
            exits.append((guard, "false"))
        return guard, exits
    if isinstance(stmt, While):
        guard = cfg.add_node("loop", stmt, arm)
        body_entry, body_exits = _wire(cfg, stmt.body, arm)
        cfg.add_edge(guard, body_entry, "true")
        for node, ekind in body_exits:
            cfg.add_edge(node, guard, ekind)
        return guard, [(guard, "false")]
    if isinstance(stmt, Cobegin):
        fork = cfg.add_node("fork", stmt, arm)
        join = cfg.add_node("join", stmt, arm)
        for i, branch in enumerate(stmt.branches):
            entry, exits = _wire(cfg, branch, arm + ((fork.idx, i),))
            cfg.add_edge(fork, entry, "fork")
            for node, _ekind in exits:
                cfg.add_edge(node, join, "join")
        return fork, [(join, "seq")]
    raise TypeError(
        f"cannot build a CFG for {type(stmt).__name__}; expand procedures "
        f"first (repro.lang.procs.resolve_subject)"
    )


def may_run_in_parallel(a: CFGNode, b: CFGNode) -> bool:
    """True when the two nodes sit in *different* arms of some common
    ``cobegin`` — the structural may-happen-in-parallel relation."""
    for (fork_a, branch_a) in a.arm:
        for (fork_b, branch_b) in b.arm:
            if fork_a == fork_b and branch_a != branch_b:
                return True
    return False
