"""Security-label lint: label creep and synchronization channels.

* **RPL501 label-creep** — with a policy binding in hand, re-derive for
  each bound variable the *least* class certification actually forces
  on it (pin every other variable at its policy class and run
  :func:`repro.core.inference.infer_binding`).  When the forced class
  strictly exceeds the policy class, the binding cannot certify and the
  diagnostic names the precise gap — the per-variable refinement of a
  CFM rejection.

* **RPL503 over-classification** — the other side of the same
  computation, in the spirit of the paper's section 5.2 precision gap:
  a *sink* (a variable the program writes) bound strictly above the
  least class any check requires.  Informational: the policy is sound
  but looser than the program needs.

* **RPL502 synchronization-channel** — needs no binding: a ``wait`` or
  ``signal`` that is control-dependent on data turns the *order* of
  semaphore operations into a message (the paper's Figure 3).  The
  diagnostic names the guard variables and, via the flow relation, the
  variables the channel can reach.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.lang.ast import (
    Expr,
    If,
    Node,
    Signal,
    Stmt,
    Wait,
    While,
    expr_variables,
    iter_statements,
)
from repro.staticlint.diagnostics import Diagnostic, make
from repro.staticlint.passes import LintContext, LintPass


def _conditional_sync_ops(stmt: Stmt) -> List[Tuple[Stmt, Tuple[str, ...]]]:
    """Every ``wait``/``signal`` with an ``if``/``while`` ancestor,
    paired with the sorted union of the guard variables above it."""
    out: List[Tuple[Stmt, Tuple[str, ...]]] = []

    def walk(node: Stmt, guards: Set[str]) -> None:
        if isinstance(node, (Wait, Signal)):
            if guards:
                out.append((node, tuple(sorted(guards))))
            return
        if isinstance(node, (If, While)):
            inner = guards | set(expr_variables(node.cond))
            for child in node.children():
                if isinstance(child, Stmt):
                    walk(child, inner)
            return
        for child in node.children():
            if isinstance(child, Stmt):
                walk(child, guards)

    walk(stmt, set())
    return out


class LabelPass(LintPass):
    """RPL5xx: label-creep, over-classification, synchronization channels."""

    name = "labels"
    codes = ("RPL501", "RPL502", "RPL503")
    description = "policy-binding precision and covert-channel lint"

    def run(self, ctx: LintContext) -> List[Diagnostic]:
        """Channel detection always runs; creep needs a binding."""
        out = self._channels(ctx)
        if ctx.binding is not None:
            out.extend(self._creep(ctx))
        out.sort(key=Diagnostic.sort_key)
        return out

    def _channels(self, ctx: LintContext) -> List[Diagnostic]:
        from repro.analysis.flowgraph import flow_graph
        from repro.lattice.chain import two_level

        scheme = ctx.scheme if ctx.scheme is not None else two_level()
        try:
            graph = flow_graph(ctx.stmt, scheme)
        except Exception:  # flow extraction must never kill the lint run
            graph = None
        out = []
        for op, guards in _conditional_sync_ops(ctx.stmt):
            verb = "signal" if isinstance(op, Signal) else "wait"
            downstream: List[str] = []
            if graph is not None and op.sem in graph.variables:
                downstream = sorted(
                    v for v in graph.flows_to(op.sem)
                    if v != op.sem and v not in guards
                )
            hint = (
                "every statement sequenced after a wait on "
                f"'{op.sem}' observes the guard"
            )
            if downstream:
                hint += "; reaches: " + ", ".join(downstream[:4])
            out.append(make(
                "RPL502",
                f"{verb}({op.sem}) is control-dependent on "
                f"{{{', '.join(guards)}}}: the order of semaphore "
                f"operations carries their information "
                f"(synchronization channel)",
                op,
                pass_name=self.name,
                hint=hint,
                extra={"semaphore": op.sem, "guards": list(guards),
                       "reaches": downstream},
            ))
        return out

    def _creep(self, ctx: LintContext) -> List[Diagnostic]:
        from repro.core.inference import infer_binding
        from repro.errors import ReproError
        from repro.lang.ast import Assign, used_variables

        binding = ctx.binding
        scheme = binding.scheme
        program_vars = sorted(used_variables(ctx.stmt))
        policy: Dict[str, object] = {}
        for name in program_vars:
            try:
                policy[name] = binding.of_var(name)
            except ReproError:
                continue  # unbound and no default: not our problem here
        sinks = {
            s.target for s in iter_statements(ctx.stmt) if isinstance(s, Assign)
        } | {s.sem for s in iter_statements(ctx.stmt) if isinstance(s, (Wait, Signal))}
        first_write: Dict[str, Stmt] = {}
        for s in iter_statements(ctx.stmt):
            name: Optional[str] = None
            if isinstance(s, Assign):
                name = s.target
            elif isinstance(s, (Wait, Signal)):
                name = s.sem
            if name is not None and name not in first_write:
                first_write[name] = s
        out = []
        for name in program_vars:
            if name not in policy:
                continue
            others = {n: c for n, c in policy.items() if n != name}
            try:
                result = infer_binding(ctx.stmt, scheme, others)
            except ReproError:
                continue
            if not result.satisfiable:
                continue  # the conflict does not involve this variable
            required = result.inferred.get(name)
            if required is None:
                continue
            declared = policy[name]
            anchor = first_write.get(name, ctx.stmt)
            if not scheme.leq(required, declared):
                out.append(make(
                    "RPL501",
                    f"certification forces the class of '{name}' up to "
                    f"{required!r}, but the policy binds it at {declared!r}",
                    anchor,
                    pass_name=self.name,
                    hint=f"either raise the binding of '{name}' to "
                         f"{required!r} or break the flow that forces it",
                    extra={"variable": name,
                           "declared": str(declared),
                           "required": str(required)},
                ))
            elif (name in sinks
                  and scheme.leq(required, declared)
                  and required != declared):
                out.append(make(
                    "RPL503",
                    f"'{name}' is bound at {declared!r} but certification "
                    f"only requires {required!r} (labels may have crept)",
                    anchor,
                    pass_name=self.name,
                    hint=f"the binding is sound; lowering '{name}' to "
                         f"{required!r} would still certify",
                    extra={"variable": name,
                           "declared": str(declared),
                           "required": str(required)},
                ))
        return out
