"""The lint driver: run every registered pass over a subject.

:func:`run_lint` is the library entry point (the ``repro lint`` CLI
and :func:`repro.analysis.report.full_report` both sit on top of it):
normalize the subject (procedures are inlined first, so diagnostics on
expanded code point at the call site thanks to location propagation),
build one shared :class:`~repro.staticlint.passes.LintContext`, run
the requested passes, and filter/sort the result.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.lang.ast import Program, Stmt
from repro.staticlint.concurrency import RacePass
from repro.staticlint.deadlock import DeadlockPass
from repro.staticlint.diagnostics import (
    CODES,
    Diagnostic,
    Severity,
    filter_diagnostics,
)
from repro.staticlint.flowpasses import (
    DeadAssignmentPass,
    UnreachablePass,
    UnusedPass,
    UseBeforeAssignPass,
)
from repro.staticlint.labels import LabelPass
from repro.staticlint.passes import LintContext, LintPass

#: The default pass pipeline, in execution order.
ALL_PASSES: Tuple[LintPass, ...] = (
    DeadlockPass(),
    RacePass(),
    UseBeforeAssignPass(),
    DeadAssignmentPass(),
    UnreachablePass(),
    UnusedPass(),
    LabelPass(),
)


@dataclass
class LintResult:
    """Every diagnostic the pipeline produced for one subject."""

    diagnostics: List[Diagnostic]
    passes_run: Tuple[str, ...]
    subject_name: str = ""

    @property
    def errors(self) -> List[Diagnostic]:
        """Only the error-severity findings (drive the exit code)."""
        return [d for d in self.diagnostics if d.severity == Severity.ERROR]

    def count(self, severity: str) -> int:
        """Number of findings at exactly ``severity``."""
        return sum(1 for d in self.diagnostics if d.severity == severity)

    def to_dict(self) -> Dict[str, object]:
        """JSON shape: stable across runs for identical input."""
        return {
            "subject": self.subject_name,
            "passes": list(self.passes_run),
            "counts": {
                s: self.count(s)
                for s in (Severity.ERROR, Severity.WARNING, Severity.INFO)
            },
            "diagnostics": [d.to_dict() for d in self.diagnostics],
        }

    def to_json(self, indent: Optional[int] = 2) -> str:
        """Serialize :meth:`to_dict`."""
        return json.dumps(self.to_dict(), indent=indent)

    def summary(self) -> str:
        """A compact human-readable account."""
        if not self.diagnostics:
            return "lint: clean (no findings)"
        parts = []
        for severity in (Severity.ERROR, Severity.WARNING, Severity.INFO):
            n = self.count(severity)
            if n:
                parts.append(f"{n} {severity}{'s' if n != 1 else ''}")
        return f"lint: {', '.join(parts)}"

    def __repr__(self) -> str:
        return f"<LintResult {len(self.diagnostics)} findings>"


def run_lint(
    subject: Union[Program, Stmt],
    binding=None,
    scheme=None,
    select: Sequence[str] = (),
    ignore: Sequence[str] = (),
    passes: Optional[Sequence[LintPass]] = None,
    subject_name: str = "",
) -> LintResult:
    """Lint ``subject`` and return the filtered, sorted findings.

    ``binding`` (a :class:`~repro.core.binding.StaticBinding`) enables
    the RPL501/RPL503 label diagnostics; ``select``/``ignore`` are
    flake8-style code prefixes (``RPL1`` means all of ``RPL1xx``).
    """
    from repro.lang.procs import resolve_subject

    resolved, stmt = resolve_subject(subject)
    program = resolved if isinstance(resolved, Program) else None
    if scheme is None and binding is not None:
        scheme = binding.scheme
    ctx = LintContext(subject, stmt, program, scheme=scheme, binding=binding)
    pipeline = tuple(passes) if passes is not None else ALL_PASSES
    diagnostics: List[Diagnostic] = []
    for lint_pass in pipeline:
        diagnostics.extend(lint_pass.run(ctx))
    return LintResult(
        diagnostics=filter_diagnostics(
            diagnostics, tuple(select), tuple(ignore)
        ),
        passes_run=tuple(p.name for p in pipeline),
        subject_name=subject_name,
    )


def codes_table() -> List[Tuple[str, str, str, str]]:
    """``(code, name, default severity, description)`` rows, sorted —
    the source of truth behind ``repro lint --list-codes`` and the
    table in ``docs/linting.md``."""
    return [
        (code, name, severity, description)
        for code, (name, severity, description) in sorted(CODES.items())
    ]
