"""Static deadlock analysis: semaphore wait-for and imbalance checks.

The exponential complement of :mod:`repro.analysis.deadlock`: instead
of exploring interleavings, this pass proves a *sufficient* condition
for deadlock freedom and reports every semaphore for which the proof
fails.  The analysis is conservative in the sound direction — it never
claims "deadlock-free" for a program in which the explorer can find a
witness (cross-validated on the litmus suite by
``tests/staticlint/test_cross_validation.py``) — and polynomial: one
AST traversal per semaphore plus a cycle check.

The balance argument.  Call a ``signal(s)`` *guaranteed* when it has
no ``if``/``while`` ancestor (it executes in every run) and nothing
that could block or diverge — a ``wait`` or a loop — precedes it in
its sequential prefix.  Guaranteed signals always fire.  If, for every
semaphore, the maximum number of ``wait``\\ s any single execution can
attempt (``if`` takes the larger branch, a ``wait`` under ``while``
counts as unbounded) is covered by the initial value plus the
guaranteed signals, then in any global state where every process is
blocked some guaranteed token is still owed to a blocked waiter — a
contradiction, so no deadlock is reachable.  Programs that synchronize
conditionally (Figure 3) fail the proof and are reported, which is
exactly the conservatism the paper prices into CFM itself.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple, Union

from repro.lang.ast import (
    Begin,
    Cobegin,
    If,
    Program,
    Signal,
    Stmt,
    Wait,
    While,
    iter_statements,
)
from repro.staticlint.diagnostics import Diagnostic, make
from repro.staticlint.passes import LintContext, LintPass


@dataclass
class SemaphoreFacts:
    """Everything the analysis learned about one semaphore."""

    name: str
    initial: int
    #: Max waits a single execution can attempt (math.inf under loops).
    possible_waits: float
    #: Signals that are guaranteed to fire (never guarded, never
    #: preceded by a wait or a loop).
    guaranteed_signals: int
    #: Total signal occurrences in the text.
    signal_occurrences: int
    #: First wait statement (for diagnostics), if any.
    first_wait: Optional[Wait] = None
    #: Semaphores whose waits can precede a wait on this one.
    waited_before: Set[str] = field(default_factory=set)

    @property
    def balanced(self) -> bool:
        """True when every possible wait is covered by guaranteed tokens."""
        return self.possible_waits <= self.initial + self.guaranteed_signals


@dataclass
class StaticDeadlockReport:
    """Result of :func:`static_deadlock`.

    ``deadlock_free`` is a *proof*; ``may_deadlock`` is the
    conservative complement (it may be a false alarm, never a missed
    real deadlock).
    """

    facts: Dict[str, SemaphoreFacts]
    diagnostics: List[Diagnostic]
    cycles: List[Tuple[str, ...]]

    @property
    def may_deadlock(self) -> bool:
        """Conservatively, could any schedule starve a waiter?"""
        return any(not f.balanced for f in self.facts.values() if f.first_wait)

    @property
    def deadlock_free(self) -> bool:
        """True only when the balance proof succeeds for every semaphore."""
        return not self.may_deadlock

    def __repr__(self) -> str:
        verdict = "deadlock-free" if self.deadlock_free else "may deadlock"
        return f"<StaticDeadlockReport {verdict}, {len(self.facts)} semaphores>"


def _collect(stmt: Stmt, facts: Dict[str, SemaphoreFacts],
             guarded: bool, prefix_blocked: bool,
             waited: Set[str]) -> bool:
    """Walk ``stmt`` accumulating per-semaphore facts.

    ``guarded`` — an ``if``/``while`` ancestor exists; ``prefix_blocked``
    — a ``wait`` or loop precedes this statement in sequence; ``waited``
    — semaphores waited on earlier in this statement's sequential
    prefix (mutated only through copies).  Returns whether the subtree
    can block or diverge (contains a wait or a while).
    """
    if isinstance(stmt, Wait):
        f = facts[stmt.sem]
        f.possible_waits += 1
        if f.first_wait is None:
            f.first_wait = stmt
        f.waited_before |= waited - {stmt.sem}
        waited.add(stmt.sem)
        return True
    if isinstance(stmt, Signal):
        f = facts[stmt.sem]
        f.signal_occurrences += 1
        if not guarded and not prefix_blocked:
            f.guaranteed_signals += 1
        return False
    if isinstance(stmt, Begin):
        blocked = prefix_blocked
        inner_waited = set(waited)
        any_block = False
        for child in stmt.body:
            child_blocks = _collect(child, facts, guarded, blocked, inner_waited)
            blocked = blocked or child_blocks
            any_block = any_block or child_blocks
        waited |= inner_waited
        return any_block
    if isinstance(stmt, If):
        before_then: Dict[str, float] = {s: f.possible_waits for s, f in facts.items()}
        then_waited = set(waited)
        a = _collect(stmt.then_branch, facts, True, prefix_blocked, then_waited)
        after_then = {s: f.possible_waits for s, f in facts.items()}
        # rewind, walk the else branch, then take the per-semaphore max
        for s, f in facts.items():
            f.possible_waits = before_then.get(s, 0)
        b = False
        else_waited = set(waited)
        if stmt.else_branch is not None:
            b = _collect(stmt.else_branch, facts, True, prefix_blocked, else_waited)
        for s, f in facts.items():
            f.possible_waits = max(f.possible_waits, after_then.get(s, 0))
        waited |= then_waited | else_waited
        return a or b
    if isinstance(stmt, While):
        body_waited = set(waited)
        _collect(stmt.body, facts, True, True, body_waited)
        # any wait under a loop may repeat without bound
        for s in iter_statements(stmt.body):
            if isinstance(s, Wait):
                facts[s.sem].possible_waits = math.inf
        waited |= body_waited
        return True
    if isinstance(stmt, Cobegin):
        any_block = False
        arm_waiteds = []
        for branch in stmt.branches:
            arm_waited = set(waited)
            child_blocks = _collect(branch, facts, guarded, prefix_blocked, arm_waited)
            any_block = any_block or child_blocks
            arm_waiteds.append(arm_waited)
        for w in arm_waiteds:
            waited |= w
        return any_block
    return False  # Assign / Skip never block


def _cycles(facts: Dict[str, SemaphoreFacts]) -> List[Tuple[str, ...]]:
    """Cycles in the waited-before relation (wait-ordering cycles)."""
    graph = {s: sorted(f.waited_before) for s, f in facts.items()}
    cycles: List[Tuple[str, ...]] = []
    seen_cycles: Set[frozenset] = set()
    for root in sorted(graph):
        stack = [(root, (root,))]
        while stack:
            node, path = stack.pop()
            for nxt in graph.get(node, ()):
                if nxt == root and len(path) > 1:
                    key = frozenset(path)
                    if key not in seen_cycles:
                        seen_cycles.add(key)
                        cycles.append(path)
                elif nxt not in path and nxt > root:
                    stack.append((nxt, path + (nxt,)))
    return cycles


def static_deadlock(
    subject: Union[Program, Stmt],
    initials: Optional[Dict[str, int]] = None,
) -> StaticDeadlockReport:
    """Analyse ``subject`` without exploring interleavings.

    ``initials`` overrides the semaphore initial values (defaults come
    from the declarations; bare statements default every semaphore
    to 0, matching the runtime).
    """
    program = subject if isinstance(subject, Program) else None
    stmt = subject.body if isinstance(subject, Program) else subject
    sems = {
        s.sem for s in iter_statements(stmt) if isinstance(s, (Wait, Signal))
    }
    declared_initials: Dict[str, int] = {}
    if program is not None:
        for d in program.decls:
            if d.kind == "semaphore":
                for name in d.names:
                    declared_initials[name] = d.initial
                    sems.add(name)
    if initials:
        declared_initials.update(initials)

    facts = {
        s: SemaphoreFacts(
            name=s,
            initial=declared_initials.get(s, 0),
            possible_waits=0,
            guaranteed_signals=0,
            signal_occurrences=0,
        )
        for s in sorted(sems)
    }
    _collect(stmt, facts, guarded=False, prefix_blocked=False, waited=set())

    diagnostics: List[Diagnostic] = []
    for name, f in sorted(facts.items()):
        if f.first_wait is None or f.balanced:
            continue
        waits = "unbounded" if f.possible_waits == math.inf else int(f.possible_waits)
        extra = {
            "semaphore": name,
            "initial": f.initial,
            "possible_waits": -1 if waits == "unbounded" else waits,
            "guaranteed_signals": f.guaranteed_signals,
            "signal_occurrences": f.signal_occurrences,
        }
        if f.signal_occurrences == 0:
            diagnostics.append(make(
                "RPL101",
                f"semaphore '{name}' is waited on but never signalled "
                f"(initial value {f.initial} cannot cover {waits} possible "
                f"wait(s))",
                f.first_wait,
                pass_name="deadlock",
                hint=f"add a signal({name}) on every path that reaches this "
                     f"wait, or raise the initial value",
                extra=extra,
            ))
        else:
            diagnostics.append(make(
                "RPL102",
                f"semaphore '{name}': {waits} wait(s) possible but only "
                f"{f.guaranteed_signals} signal(s) guaranteed "
                f"(initial {f.initial}); a schedule may starve this wait",
                f.first_wait,
                pass_name="deadlock",
                hint="signals that are conditional, inside loops, or "
                     "sequenced after a wait are not guaranteed to fire",
                extra=extra,
            ))
    cycles = _cycles(facts)
    for cycle in cycles:
        involved = [facts[s] for s in cycle if facts[s].first_wait is not None]
        if not involved or all(f.balanced for f in involved):
            continue  # a balanced cycle cannot starve anyone
        anchor = involved[0].first_wait
        diagnostics.append(make(
            "RPL103",
            "semaphores are waited on in a cyclic order: "
            + " -> ".join(cycle + (cycle[0],)),
            anchor,
            pass_name="deadlock",
            hint="acquire semaphores in one global order to break the cycle",
            extra={"cycle": list(cycle)},
        ))
    return StaticDeadlockReport(facts, diagnostics, cycles)


class DeadlockPass(LintPass):
    """RPL1xx: conservative semaphore wait-for / imbalance analysis."""

    name = "deadlock"
    codes = ("RPL101", "RPL102", "RPL103")
    description = "static deadlock detection (polynomial, conservative)"

    def run(self, ctx: LintContext) -> List[Diagnostic]:
        """Run :func:`static_deadlock` against the context's program."""
        initials = {s: ctx.initial(s) for s in ctx.semaphores}
        report = static_deadlock(
            ctx.program if ctx.program is not None else ctx.stmt,
            initials=initials,
        )
        return report.diagnostics
