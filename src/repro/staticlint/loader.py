"""Load lintable programs from files.

``repro lint`` accepts two kinds of input:

* a source file in the paper's language (any extension but ``.py``,
  or ``-`` for stdin) — one program per file;
* a Python module (``.py``) — the convention used by ``examples/``.
  The module is imported and searched for embedded programs: module
  attributes that are :class:`~repro.lang.ast.Program` instances,
  zero-required-argument module-level callables whose name suggests a
  program factory (``figure3_program``, ``*_looped`` ...), and string
  constants that parse as programs.  This lets ``repro lint
  examples/synchronization_channel.py`` analyse the actual Figure 3
  AST the example demonstrates.

Parse and validation failures inside an embedded candidate are
*skipped* (an example may hold deliberately broken fragments); for a
paper-language file they are reported as ``RPL001``/``RPL002``
diagnostics so the CLI can present them uniformly.
"""

from __future__ import annotations

import importlib.util
import inspect
import re
import sys
from dataclasses import dataclass
from typing import List, Optional, Union

from repro.errors import LanguageError, ReproError
from repro.lang.ast import Program, Stmt
from repro.staticlint.diagnostics import Diagnostic, Span, make

#: Callable names worth probing for an embedded program.
_FACTORY_NAME = re.compile(r"(_program$|_looped$|^program_|^build_)")


@dataclass
class LintUnit:
    """One lintable program and where it came from."""

    path: str
    name: str
    subject: Optional[Union[Program, Stmt]]
    #: Loader-level diagnostics (parse/validation errors).
    problems: List[Diagnostic]

    @property
    def label(self) -> str:
        """``path`` or ``path:name`` when a file holds several programs."""
        return self.path if not self.name else f"{self.path}:{self.name}"


class LoadError(ReproError):
    """The input cannot be read or imported at all (I/O, bad module)."""


def load_units(path: str) -> List[LintUnit]:
    """All lintable programs found at ``path`` (see module docstring)."""
    if path.endswith(".py"):
        return _load_python(path)
    return [_load_source(path)]


def _read(path: str) -> str:
    if path == "-":
        return sys.stdin.read()
    try:
        with open(path, "r", encoding="utf-8") as handle:
            return handle.read()
    except (OSError, UnicodeDecodeError) as exc:
        raise LoadError(f"cannot read {path}: {exc}") from exc


def _load_source(path: str) -> LintUnit:
    """Parse a paper-language file; failures become diagnostics."""
    from repro.lang.parser import parse_program
    from repro.lang.validate import validate_program

    source = _read(path)
    try:
        program = parse_program(source)
    except LanguageError as exc:
        span = Span(exc.line or 0, exc.column or 0, exc.line or 0, exc.column or 0)
        return LintUnit(path, "", None, [make(
            "RPL001", f"parse error: {exc}", span=span, pass_name="loader",
        )])
    problems = validate_program(program)
    if problems:
        diags = []
        for problem in problems:
            loc = getattr(problem, "loc", None)
            span = (Span(loc.line, loc.column, loc.line, loc.column)
                    if loc else Span(0, 0, 0, 0))
            diags.append(make(
                "RPL002", f"validation: {problem}", span=span,
                pass_name="loader",
            ))
        return LintUnit(path, "", None, diags)
    return LintUnit(path, "", program, [])


def _load_python(path: str) -> List[LintUnit]:
    """Import a Python module and harvest its embedded programs."""
    from repro.lang.parser import parse_program, parse_statement

    module_name = "_repro_lint_" + re.sub(r"\W", "_", path)
    spec = importlib.util.spec_from_file_location(module_name, path)
    if spec is None or spec.loader is None:
        raise LoadError(f"cannot import {path}")
    module = importlib.util.module_from_spec(spec)
    # register before exec so dataclasses/typing lookups resolve
    sys.modules[module_name] = module
    try:
        spec.loader.exec_module(module)
    except BaseException as exc:
        sys.modules.pop(module_name, None)
        raise LoadError(f"importing {path} failed: {exc!r}") from exc

    units: List[LintUnit] = []
    seen_sources = set()
    for attr in sorted(vars(module)):
        if attr.startswith("_"):
            continue
        value = getattr(module, attr)
        if isinstance(value, Program):
            units.append(LintUnit(path, attr, value, []))
        elif isinstance(value, str) and ("begin" in value or ":=" in value):
            program = None
            for parse in (parse_program, parse_statement):
                try:
                    program = parse(value)
                    break
                except ReproError:
                    continue
            if program is not None and value not in seen_sources:
                seen_sources.add(value)
                units.append(LintUnit(path, attr, program, []))
        elif callable(value) and _FACTORY_NAME.search(attr):
            try:
                signature = inspect.signature(value)
            except (TypeError, ValueError):
                continue
            if any(
                p.default is inspect.Parameter.empty
                and p.kind not in (p.VAR_POSITIONAL, p.VAR_KEYWORD)
                for p in signature.parameters.values()
            ):
                continue
            try:
                produced = value()
            except Exception:
                continue
            if isinstance(produced, (Program, Stmt)):
                units.append(LintUnit(path, attr, produced, []))
    sys.modules.pop(module_name, None)
    if not units:
        units.append(LintUnit(path, "", None, []))
    return units
