"""Lint-pass infrastructure: the shared context and the pass registry.

A pass is a :class:`LintPass` subclass with a stable ``name``, the
code family it owns, and a ``run(ctx)`` returning diagnostics.  All
passes share one :class:`LintContext`, which lazily builds and caches
the expensive artifacts (CFG, shared-variable sets) so that five
passes cost roughly one traversal each, keeping ``repro lint``
polynomial end to end — the whole point of its existence next to the
exponential interleaving explorer.

Authoring a new pass (see ``docs/linting.md`` for the full guide):

1. reserve a code in :mod:`repro.staticlint.diagnostics`;
2. subclass :class:`LintPass`, read what you need off the context;
3. append an instance to :data:`ALL_PASSES` in
   :mod:`repro.staticlint.engine`;
4. add a golden fixture under ``tests/staticlint/``.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Union

from repro.lang.ast import (
    Program,
    Signal,
    Stmt,
    Wait,
    iter_statements,
    used_variables,
)
from repro.staticlint.cfg import CFG, build_cfg
from repro.staticlint.diagnostics import Diagnostic


class LintContext:
    """Everything a pass may want, computed once and cached."""

    def __init__(
        self,
        subject: Union[Program, Stmt],
        stmt: Stmt,
        program: Optional[Program],
        scheme=None,
        binding=None,
    ):
        #: The original analysis subject (before procedure expansion).
        self.subject = subject
        #: The procedure-free body statement every pass analyses.
        self.stmt = stmt
        #: The enclosing program, when the subject was one (decls etc.).
        self.program = program
        #: Classification scheme (defaults to two-level when unset).
        self.scheme = scheme
        #: Optional policy binding; label passes skip without one.
        self.binding = binding
        self._cfg: Optional[CFG] = None
        self._shared: Optional[FrozenSet[str]] = None
        self._kinds: Optional[Dict[str, str]] = None

    @property
    def cfg(self) -> CFG:
        """The control-flow graph (built on first use, with sync edges)."""
        if self._cfg is None:
            self._cfg = build_cfg(self.stmt)
        return self._cfg

    @property
    def shared(self) -> FrozenSet[str]:
        """Variables shared between parallel processes (non-semaphores)."""
        if self._shared is None:
            from repro.analysis.atomicity import shared_variables

            self._shared = shared_variables(self.stmt)
        return self._shared

    @property
    def kinds(self) -> Dict[str, str]:
        """``name -> "integer" | "semaphore"`` for every known variable.

        Uses declarations when the subject is a program; for bare
        statements, semaphores are inferred from ``wait``/``signal``
        operands.
        """
        if self._kinds is None:
            kinds: Dict[str, str] = {}
            if self.program is not None:
                for d in self.program.decls:
                    for name in d.names:
                        kinds[name] = d.kind
            sem_ops = {
                s.sem
                for s in iter_statements(self.stmt)
                if isinstance(s, (Wait, Signal))
            }
            for name in used_variables(self.stmt):
                kinds.setdefault(
                    name, "semaphore" if name in sem_ops else "integer"
                )
            self._kinds = kinds
        return self._kinds

    @property
    def semaphores(self) -> FrozenSet[str]:
        """Names typed as semaphores."""
        return frozenset(n for n, k in self.kinds.items() if k == "semaphore")

    def initial(self, name: str) -> int:
        """The declared initial value of ``name`` (0 when undeclared)."""
        if self.program is not None:
            for d in self.program.decls:
                if name in d.names:
                    return d.initial
        return 0


class LintPass:
    """Base class for all lint passes."""

    #: Stable pass identifier (used in ``--json`` and reports).
    name = "base"
    #: The ``RPLnxx`` family this pass emits.
    codes: tuple = ()
    #: One-line description for ``repro lint --list-passes``.
    description = ""

    def run(self, ctx: LintContext) -> List[Diagnostic]:
        """Produce this pass' diagnostics for ``ctx``."""
        raise NotImplementedError
