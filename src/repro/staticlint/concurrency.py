"""Race and atomicity lint: unsynchronized access to shared state.

Two families:

* **RPL201** — a variable is written in one ``cobegin`` arm and read or
  written in a sibling arm while the two actions hold no semaphore in
  common.  "Held" is computed by a must-dataflow over the CFG
  (``wait(s)`` acquires, ``signal(s)`` releases, branches meet by
  intersection), so the classic ``wait(mutex) ... signal(mutex)``
  bracket is recognized on every path.  This is the static counterpart
  of what :func:`repro.analysis.atomicity.check_atomicity` assumes and
  the scheduler explores.

* **RPL202** — the section 2.0 at-most-one-shared-reference condition,
  reported through the existing :mod:`repro.analysis.atomicity`
  checker but as spanned diagnostics.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Tuple

from repro.lang.ast import Signal, Wait
from repro.staticlint.cfg import CFG, CFGNode, may_run_in_parallel
from repro.staticlint.dataflow import DataflowAnalysis, solve
from repro.staticlint.diagnostics import Diagnostic, Span, make
from repro.staticlint.passes import LintContext, LintPass


class HeldSemaphores(DataflowAnalysis):
    """Forward must-analysis: semaphores certainly held at each point.

    ``wait(s)`` acquires ``s``; ``signal(s)`` releases it.  The lattice
    is sets of semaphore names ordered by ⊇ (top = all), met by
    intersection — a semaphore is "held" only when every path agrees.
    """

    direction = "forward"
    include_sync = False

    def __init__(self, semaphores: FrozenSet[str]):
        self.semaphores = semaphores

    def boundary(self, cfg: CFG) -> FrozenSet[str]:
        """Nothing is held at program entry."""
        return frozenset()

    def init(self, cfg: CFG) -> FrozenSet[str]:
        """Optimistic top: all semaphores (narrowed by the fixpoint)."""
        return self.semaphores

    def join2(self, a: FrozenSet[str], b: FrozenSet[str]) -> FrozenSet[str]:
        """Must-join: intersection."""
        return a & b

    def transfer(self, node: CFGNode, value: FrozenSet[str], cfg: CFG) -> FrozenSet[str]:
        """Acquire on ``wait``, release on ``signal``."""
        if node.kind == "wait":
            return value | {node.stmt.sem}
        if node.kind == "signal":
            return value - {node.stmt.sem}
        return value


class RacePass(LintPass):
    """RPL201/RPL202: shared-state races and atomicity violations."""

    name = "races"
    codes = ("RPL201", "RPL202")
    description = "unsynchronized shared writes across cobegin arms"

    def run(self, ctx: LintContext) -> List[Diagnostic]:
        """Report conflicting parallel accesses with no common guard."""
        diagnostics = list(self._races(ctx))
        diagnostics.extend(self._atomicity(ctx))
        return diagnostics

    def _races(self, ctx: LintContext) -> List[Diagnostic]:
        cfg = ctx.cfg
        shared = ctx.shared
        if not shared:
            return []
        held = solve(cfg, HeldSemaphores(ctx.semaphores))
        # collect (node, held-at-node) per variable, split by write/read
        accesses: Dict[str, List[Tuple[CFGNode, bool, FrozenSet[str]]]] = {}
        for node in cfg.action_nodes():
            guard = held[node.idx][0]  # value flowing *into* the action
            for v in node.writes():
                if v in shared:
                    accesses.setdefault(v, []).append((node, True, guard))
            for v in node.reads():
                if v in shared:
                    accesses.setdefault(v, []).append((node, False, guard))
        out: List[Diagnostic] = []
        reported = set()
        for v, pairs in sorted(accesses.items()):
            for i, (a, a_writes, a_held) in enumerate(pairs):
                for b, b_writes, b_held in pairs[i + 1:]:
                    if not (a_writes or b_writes):
                        continue
                    if not may_run_in_parallel(a, b):
                        continue
                    if a_held & b_held:
                        continue  # a common semaphore brackets both
                    key = (v, a.arm[-1] if a.arm else None,
                           b.arm[-1] if b.arm else None)
                    if key in reported:
                        continue
                    reported.add(key)
                    writer, other = (a, b) if a_writes else (b, a)
                    kind = "written" if (a_writes and b_writes) else "read"
                    out.append(make(
                        "RPL201",
                        f"'{v}' is written here and {kind} at {other.loc} in "
                        f"a parallel arm with no common semaphore held",
                        writer.stmt,
                        pass_name=self.name,
                        hint=f"bracket both accesses with wait/signal on one "
                             f"mutex semaphore, or confine '{v}' to one arm",
                        extra={"variable": v,
                               "other_line": other.loc.line,
                               "other_column": other.loc.column},
                    ))
        out.sort(key=Diagnostic.sort_key)
        return out

    def _atomicity(self, ctx: LintContext) -> List[Diagnostic]:
        from repro.analysis.atomicity import check_atomicity

        report = check_atomicity(ctx.stmt)
        out = []
        for violation in report.violations:
            out.append(make(
                "RPL202",
                f"atomic action references shared variables "
                f"{list(violation.variables)} {violation.references} times; "
                f"statement-level atomicity is a modelling assumption here",
                violation.stmt,
                pass_name=self.name,
                hint="split the action so it touches at most one "
                     "process-shared variable (Owicki-Gries)",
                extra={"variables": list(violation.variables),
                       "references": violation.references},
            ))
        return out
