"""A generic forward/backward dataflow fixpoint engine over the CFG.

An analysis is described by a :class:`DataflowAnalysis` subclass: a
direction, a boundary value, an optimistic initial value, a join, and a
transfer function.  :func:`solve` runs a worklist to the least (with
respect to the analysis' join) fixpoint.  Values must be immutable and
comparable with ``==`` — ``frozenset`` is the workhorse.

Join receives the *node* and the labelled incoming values, so analyses
can treat ``cobegin`` join nodes or ``sync`` edges specially (see the
must-assigned pass for the canonical example).  The engine never
inspects value contents, so any finite-height lattice works.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.staticlint.cfg import CFG, CFGNode


class DataflowAnalysis:
    """Base class: parameterize and pass to :func:`solve`.

    Subclasses set :attr:`direction` (``"forward"`` or ``"backward"``)
    and :attr:`include_sync` (whether ``sync`` edges propagate values),
    and implement the four functions below.
    """

    direction = "forward"
    include_sync = False

    def boundary(self, cfg: CFG):
        """The value at the entry (forward) / exit (backward) node."""
        raise NotImplementedError

    def init(self, cfg: CFG):
        """The optimistic initial value for every other node (the
        lattice top for must-analyses, bottom for may-analyses)."""
        raise NotImplementedError

    def join2(self, a, b):
        """Binary join of two values (used by the default :meth:`join`)."""
        raise NotImplementedError

    def join(self, node: CFGNode, incoming: List[Tuple[str, object]], cfg: CFG):
        """Combine the labelled incoming values ``(edge_kind, value)``.

        The default folds :meth:`join2` over all of them; override to
        be node- or edge-kind-aware.
        """
        it = iter(incoming)
        acc = next(it)[1]
        for _kind, value in it:
            acc = self.join2(acc, value)
        return acc

    def transfer(self, node: CFGNode, value, cfg: CFG):
        """The effect of executing ``node`` on ``value``."""
        raise NotImplementedError


def solve(cfg: CFG, analysis: DataflowAnalysis) -> Dict[int, Tuple[object, object]]:
    """Run ``analysis`` to fixpoint; returns ``{idx: (pre, post)}``.

    ``pre`` is the joined value flowing *into* the node in the analysis
    direction and ``post`` the value after :meth:`transfer`.  For a
    backward analysis, ``pre`` is therefore the value *after* the node
    in program order.
    """
    forward = analysis.direction == "forward"
    edges_in = cfg.pred if forward else cfg.succ
    edges_out = cfg.succ if forward else cfg.pred
    start = cfg.entry if forward else cfg.exit

    boundary = analysis.boundary(cfg)
    init = analysis.init(cfg)
    pre: Dict[int, object] = {}
    post: Dict[int, object] = {n.idx: init for n in cfg.nodes}
    post[start.idx] = analysis.transfer(start, boundary, cfg)
    pre[start.idx] = boundary

    order = range(len(cfg.nodes)) if forward else range(len(cfg.nodes) - 1, -1, -1)
    worklist = list(order)
    queued = set(worklist)
    while worklist:
        idx = worklist.pop(0)
        queued.discard(idx)
        node = cfg.nodes[idx]
        incoming = [
            (kind, post[p])
            for p, kind in edges_in[idx]
            if analysis.include_sync or kind != "sync"
        ]
        if idx == start.idx:
            value = boundary
        elif incoming:
            value = analysis.join(node, incoming, cfg)
        else:
            value = init
        new_post = analysis.transfer(node, value, cfg)
        pre[idx] = value
        if new_post != post[idx]:
            post[idx] = new_post
            for s, kind in edges_out[idx]:
                if not analysis.include_sync and kind == "sync":
                    continue
                if s not in queued:
                    worklist.append(s)
                    queued.add(s)
    return {idx: (pre.get(idx, init), post[idx]) for idx in range(len(cfg.nodes))}


def reachable(cfg: CFG, respect_constant_guards: bool = True) -> frozenset:
    """Node indices reachable from the entry along non-``sync`` edges.

    With ``respect_constant_guards``, a guard whose condition folds to
    a constant only lets the corresponding edge through — this is what
    makes ``if 1 = 2 then S`` report ``S`` as unreachable.
    """
    seen = set()
    stack = [cfg.entry.idx]
    while stack:
        idx = stack.pop()
        if idx in seen:
            continue
        seen.add(idx)
        node = cfg.nodes[idx]
        const = cfg.guard_constant(node) if respect_constant_guards else None
        for s, kind in cfg.succ[idx]:
            if kind == "sync":
                continue
            if const is not None and kind in ("true", "false"):
                wanted = "true" if const else "false"
                if kind != wanted:
                    continue
            if s not in seen:
                stack.append(s)
    return frozenset(seen)
