"""Dataflow lint passes: use-before-assign, dead stores, dead code.

All three are instances of the generic engine in
:mod:`repro.staticlint.dataflow`:

* **RPL301 use-before-assign** — a forward *must-assigned* analysis.
  ``cobegin`` join nodes union their arms (all arms complete before the
  join); a ``wait`` additionally learns the intersection of the facts
  established before every possible matching ``signal`` (some signal
  happened-before the wait completed), which is how the pass sees
  through Figure 3's hand-off protocol.  Only variables that *are*
  assigned somewhere are reported — a never-assigned variable is a
  program input by this language's convention.

* **RPL302 dead-assignment** — a backward liveness analysis.  The final
  store is observable (the explorer reports it), so every variable is
  live at exit; an assignment is dead only when some later assignment
  always overwrites it first.  Variables shared across ``cobegin`` arms
  are exempt (a parallel read may observe the value mid-flight).

* **RPL303 unreachable-code** — reachability with constant-folded
  guards (``if 1 = 2 then S`` and friends).
"""

from __future__ import annotations

from typing import FrozenSet, List, Set

from repro.lang.ast import used_variables
from repro.staticlint.cfg import CFG, CFGNode
from repro.staticlint.dataflow import DataflowAnalysis, reachable, solve
from repro.staticlint.diagnostics import Diagnostic, make
from repro.staticlint.passes import LintContext, LintPass


class MustAssigned(DataflowAnalysis):
    """Forward must-analysis of "an assignment has definitely reached
    this point" (see the module docstring for the concurrency rules)."""

    direction = "forward"
    include_sync = True

    def __init__(self, variables: FrozenSet[str], pre_assigned: FrozenSet[str]):
        self.variables = variables
        self.pre_assigned = pre_assigned

    def boundary(self, cfg: CFG) -> FrozenSet[str]:
        """Variables with a non-default declared initial count as assigned."""
        return self.pre_assigned

    def init(self, cfg: CFG) -> FrozenSet[str]:
        """Optimistic top: everything (narrowed by the fixpoint)."""
        return self.variables

    def join2(self, a: FrozenSet[str], b: FrozenSet[str]) -> FrozenSet[str]:
        """Must-join: intersection."""
        return a & b

    def join(self, node: CFGNode, incoming, cfg: CFG) -> FrozenSet[str]:
        """Node-aware join.

        * ``join`` nodes union their arms — every arm has completed.
        * ``wait`` nodes intersect their sequential predecessors, then
          add what *every* possible signaller guarantees (at least one
          ``signal`` happened-before the wait completed).
        * everything else intersects.
        """
        seq = [v for kind, v in incoming if kind != "sync"]
        sync = [v for kind, v in incoming if kind == "sync"]
        if node.kind == "join":
            acc: FrozenSet[str] = frozenset()
            for v in seq:
                acc |= v
            return acc
        if seq:
            base = seq[0]
            for v in seq[1:]:
                base &= v
        else:
            base = frozenset()
        if node.kind == "wait" and sync:
            every_signaller = sync[0]
            for v in sync[1:]:
                every_signaller &= v
            base |= every_signaller
        return base

    def transfer(self, node: CFGNode, value: FrozenSet[str], cfg: CFG) -> FrozenSet[str]:
        """Assignments establish their target."""
        if node.kind == "assign":
            return value | {node.stmt.target}
        return value


class Liveness(DataflowAnalysis):
    """Backward may-analysis of "this value may still be read"."""

    direction = "backward"
    include_sync = True  # a parallel waiter may observe the value

    def __init__(self, variables: FrozenSet[str]):
        self.variables = variables

    def boundary(self, cfg: CFG) -> FrozenSet[str]:
        """The final store is observable: everything is live at exit."""
        return self.variables

    def init(self, cfg: CFG) -> FrozenSet[str]:
        """Optimistic bottom for a may-analysis: nothing live."""
        return frozenset()

    def join2(self, a: FrozenSet[str], b: FrozenSet[str]) -> FrozenSet[str]:
        """May-join: union."""
        return a | b

    def transfer(self, node: CFGNode, value: FrozenSet[str], cfg: CFG) -> FrozenSet[str]:
        """Kill the written name, gen every read name."""
        if node.kind == "assign":
            value = value - {node.stmt.target}
        return value | node.reads()


class UseBeforeAssignPass(LintPass):
    """RPL301: reads that may observe the implicit initial value."""

    name = "use-before-assign"
    codes = ("RPL301",)
    description = "reads that no assignment is guaranteed to reach"

    def run(self, ctx: LintContext) -> List[Diagnostic]:
        """Report the first offending read of each variable."""
        cfg = ctx.cfg
        assigned_somewhere = frozenset(
            n.stmt.target for n in cfg.nodes if n.kind == "assign"
        )
        if not assigned_somewhere:
            return []
        variables = frozenset(ctx.kinds)
        pre = frozenset(
            name for name in variables
            if ctx.kinds.get(name) == "semaphore" or ctx.initial(name) != 0
        )
        solution = solve(cfg, MustAssigned(variables, pre))
        live = reachable(cfg)
        worst: dict = {}
        for node in cfg.action_nodes():
            if node.idx not in live:
                continue  # unreachable reads are RPL303's business
            must = solution[node.idx][0]
            for v in node.reads():
                if ctx.kinds.get(v) == "semaphore":
                    continue
                if v in assigned_somewhere and v not in must:
                    key = (node.loc.line, node.loc.column, node.idx)
                    if v not in worst or key < worst[v][0]:
                        worst[v] = (key, node)
        out = []
        for v, (_key, node) in sorted(worst.items()):
            out.append(make(
                "RPL301",
                f"'{v}' may be read before any assignment reaches it; the "
                f"read would see the initial value {ctx.initial(v)}",
                node.stmt,
                pass_name=self.name,
                hint=f"assign '{v}' on every path (and in every "
                     f"interleaving) before this statement, or declare the "
                     f"intended initial value explicitly",
                extra={"variable": v, "initial": ctx.initial(v)},
            ))
        out.sort(key=Diagnostic.sort_key)
        return out


class DeadAssignmentPass(LintPass):
    """RPL302: stores certainly overwritten before any read."""

    name = "dead-assignment"
    codes = ("RPL302",)
    description = "assignments whose value is always overwritten unread"

    def run(self, ctx: LintContext) -> List[Diagnostic]:
        """Report assignments that are dead on every path."""
        cfg = ctx.cfg
        variables = frozenset(ctx.kinds)
        solution = solve(cfg, Liveness(variables))
        live_nodes = reachable(cfg)
        out = []
        for node in cfg.action_nodes():
            if node.kind != "assign" or node.idx not in live_nodes:
                continue
            target = node.stmt.target
            if ctx.kinds.get(target) == "semaphore" or target in ctx.shared:
                continue
            live_out = solution[node.idx][0]  # backward pre = after in program order
            if target not in live_out:
                out.append(make(
                    "RPL302",
                    f"the value assigned to '{target}' is always "
                    f"overwritten before it can be read",
                    node.stmt,
                    pass_name=self.name,
                    hint="delete the assignment or use the value before "
                         "the next store",
                    extra={"variable": target},
                ))
        out.sort(key=Diagnostic.sort_key)
        return out


class UnreachablePass(LintPass):
    """RPL303: statements no execution can reach."""

    name = "unreachable"
    codes = ("RPL303",)
    description = "statements cut off by constant guards"

    def run(self, ctx: LintContext) -> List[Diagnostic]:
        """Report the frontier of each unreachable region once."""
        cfg = ctx.cfg
        live = reachable(cfg)
        out = []
        dead: Set[int] = set()
        for node in cfg.action_nodes():
            if node.idx in live:
                continue
            dead.add(node.idx)
        for idx in sorted(dead):
            node = cfg.nodes[idx]
            preds = [p for p, kind in cfg.pred[idx] if kind != "sync"]
            if preds and all(p in dead for p in preds):
                continue  # interior of a region already reported at its head
            out.append(make(
                "RPL303",
                f"this statement can never execute",
                node.stmt,
                pass_name=self.name,
                hint="a guard on the way here folds to a constant",
                extra={},
            ))
        out.sort(key=Diagnostic.sort_key)
        return out


class UnusedPass(LintPass):
    """RPL401/RPL402: declarations the program never touches."""

    name = "unused"
    codes = ("RPL401", "RPL402")
    description = "declared but unused variables and semaphores"

    def run(self, ctx: LintContext) -> List[Diagnostic]:
        """Compare the declarations against the body's used names."""
        if ctx.program is None:
            return []  # bare statements declare nothing
        used = used_variables(ctx.program.body)
        out = []
        for decl in ctx.program.decls:
            for name in decl.names:
                if name in used or name in ctx.program.synthetic:
                    continue
                if decl.kind == "semaphore":
                    out.append(make(
                        "RPL402",
                        f"semaphore '{name}' is declared but never waited "
                        f"on or signalled",
                        decl,
                        pass_name=self.name,
                        hint=f"remove '{name}' from the declaration",
                        extra={"variable": name},
                    ))
                else:
                    out.append(make(
                        "RPL401",
                        f"variable '{name}' is declared but never used",
                        decl,
                        pass_name=self.name,
                        hint=f"remove '{name}' from the declaration",
                        extra={"variable": name},
                    ))
        out.sort(key=Diagnostic.sort_key)
        return out
