"""``repro.staticlint`` — the CFG/dataflow static-analysis engine.

A family of cooperating compile-time passes over a shared program
representation (CFG + generic dataflow fixpoints), complementing the
exponential interleaving explorer with polynomial, conservative
answers: static deadlock detection, race/atomicity lint, classic
dataflow hygiene (use-before-assign, dead stores, unreachable code,
unused declarations), and security-label precision diagnostics.
Exposed on the command line as ``repro-ifc lint``.

>>> from repro import parse_program
>>> from repro.staticlint import run_lint
>>> result = run_lint(parse_program(
...     "var l : integer; s : semaphore initially(0);"
...     " begin wait(s); l := 1 end"
... ))
>>> [d.code for d in result.diagnostics]
['RPL101']
"""

from repro.staticlint.cfg import CFG, CFGNode, build_cfg, may_run_in_parallel
from repro.staticlint.dataflow import DataflowAnalysis, reachable, solve
from repro.staticlint.deadlock import (
    StaticDeadlockReport,
    static_deadlock,
)
from repro.staticlint.diagnostics import (
    CODES,
    Diagnostic,
    Severity,
    Span,
    filter_diagnostics,
)
from repro.staticlint.engine import ALL_PASSES, LintResult, codes_table, run_lint
from repro.staticlint.loader import LintUnit, LoadError, load_units
from repro.staticlint.passes import LintContext, LintPass

__all__ = [
    # diagnostics
    "Diagnostic",
    "Severity",
    "Span",
    "CODES",
    "filter_diagnostics",
    # representation
    "CFG",
    "CFGNode",
    "build_cfg",
    "may_run_in_parallel",
    # dataflow engine
    "DataflowAnalysis",
    "solve",
    "reachable",
    # passes and driver
    "LintContext",
    "LintPass",
    "ALL_PASSES",
    "LintResult",
    "run_lint",
    "codes_table",
    # deadlock analysis
    "static_deadlock",
    "StaticDeadlockReport",
    # loading
    "LintUnit",
    "LoadError",
    "load_units",
]
