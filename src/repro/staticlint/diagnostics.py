"""The diagnostic model for ``repro lint``.

Every finding a lint pass produces is a :class:`Diagnostic`: a stable
error code (``RPLnnn``), a severity, a :class:`Span` built from the
AST's :class:`~repro.lang.ast.Loc` positions, a human message, and an
optional fix-it hint.  Diagnostics serialize to JSON (``to_dict``) with
a stable key order so ``repro lint --json`` output can be golden-tested
and consumed by editors or CI.

The code space is partitioned by pass family:

* ``RPL0xx`` — front-end problems (parse, validation, loader);
* ``RPL1xx`` — static deadlock analysis;
* ``RPL2xx`` — races and atomicity;
* ``RPL3xx`` — dataflow (use-before-assign, dead code);
* ``RPL4xx`` — unused declarations;
* ``RPL5xx`` — security-label diagnostics (label creep, channels).

The authoritative human-readable table lives in ``docs/linting.md``;
``tests/staticlint/test_docs_codes.py`` keeps the two in sync.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.lang.ast import Loc, Node, iter_nodes


class Severity:
    """Diagnostic severities, ordered ``INFO < WARNING < ERROR``."""

    INFO = "info"
    WARNING = "warning"
    ERROR = "error"

    _RANK = {INFO: 0, WARNING: 1, ERROR: 2}

    @classmethod
    def rank(cls, severity: str) -> int:
        """Numeric rank for comparisons (higher is more severe)."""
        return cls._RANK[severity]


#: code -> (symbolic name, default severity, one-line description).
CODES: Dict[str, Tuple[str, str, str]] = {
    "RPL001": ("parse-error", Severity.ERROR,
               "the source text does not parse as a program"),
    "RPL002": ("validation-error", Severity.ERROR,
               "the program is statically ill-formed (validator problem)"),
    "RPL101": ("wait-never-signalled", Severity.ERROR,
               "a semaphore is waited on but never signalled and its "
               "initial value cannot cover the waits"),
    "RPL102": ("semaphore-imbalance", Severity.WARNING,
               "more waits are possible than signals are guaranteed; "
               "a schedule may starve a waiter"),
    "RPL103": ("wait-for-cycle", Severity.WARNING,
               "semaphores are acquired in a cyclic order across waits"),
    "RPL201": ("unsynchronized-shared-access", Severity.WARNING,
               "a variable is written in one cobegin arm and accessed in a "
               "sibling arm with no common semaphore held"),
    "RPL202": ("atomicity-violation", Severity.WARNING,
               "an atomic action makes more than one reference to "
               "process-shared variables (Owicki-Gries condition)"),
    "RPL301": ("use-before-assign", Severity.WARNING,
               "a variable may be read before any assignment reaches it "
               "(the read sees the implicit initial value)"),
    "RPL302": ("dead-assignment", Severity.WARNING,
               "an assigned value is always overwritten before any read"),
    "RPL303": ("unreachable-code", Severity.WARNING,
               "a statement can never execute (constant guard)"),
    "RPL401": ("unused-variable", Severity.WARNING,
               "an integer variable is declared but never used"),
    "RPL402": ("unused-semaphore", Severity.WARNING,
               "a semaphore is declared but never waited on or signalled"),
    "RPL501": ("label-creep", Severity.ERROR,
               "certification requires a strictly higher class for a "
               "variable than its policy binding grants"),
    "RPL502": ("synchronization-channel", Severity.WARNING,
               "a wait/signal is control-dependent on data: the order of "
               "semaphore operations carries information (Figure 3)"),
    "RPL503": ("over-classification", Severity.INFO,
               "a sink variable is bound strictly above the least class "
               "certification requires (precision gap, section 5.2)"),
}


@dataclass(frozen=True)
class Span:
    """A 1-based source region ``line:column .. end_line:end_column``.

    Synthesized nodes (``Loc.none()``) produce the empty span
    ``0:0``; :func:`repro.lang.ast.propagate_locs` exists precisely to
    make these rare.
    """

    line: int
    column: int
    end_line: int
    end_column: int

    @staticmethod
    def from_loc(loc: Loc) -> "Span":
        """A single-point span at ``loc``."""
        return Span(loc.line, loc.column, loc.line, loc.column)

    @staticmethod
    def from_node(node: Node) -> "Span":
        """The region covered by ``node``: its own location extended to
        the last located descendant."""
        start = node.loc
        end = start
        for sub in iter_nodes(node):
            loc = sub.loc
            if loc and (loc.line, loc.column) > (end.line, end.column):
                end = loc
        if not start:
            # fall back to the earliest located descendant
            located = [
                n.loc for n in iter_nodes(node) if n.loc
            ]
            if located:
                start = min(located, key=lambda l: (l.line, l.column))
            else:
                return Span(0, 0, 0, 0)
        return Span(start.line, start.column, end.line, end.column)

    def __bool__(self) -> bool:
        return self.line > 0

    def __str__(self) -> str:
        if not self:
            return "<synth>"
        if (self.line, self.column) == (self.end_line, self.end_column):
            return f"{self.line}:{self.column}"
        return f"{self.line}:{self.column}-{self.end_line}:{self.end_column}"

    def to_dict(self) -> Dict[str, int]:
        """JSON shape (stable key order)."""
        return {
            "line": self.line,
            "column": self.column,
            "end_line": self.end_line,
            "end_column": self.end_column,
        }


@dataclass(frozen=True)
class Diagnostic:
    """One lint finding.

    ``code`` is a stable ``RPLnnn`` identifier from :data:`CODES`;
    ``extra`` carries machine-readable pass-specific details (e.g. the
    semaphore counts behind an imbalance) and must be JSON-safe.
    """

    code: str
    message: str
    span: Span
    severity: str = Severity.WARNING
    pass_name: str = ""
    hint: Optional[str] = None
    extra: Tuple[Tuple[str, object], ...] = field(default_factory=tuple)

    def __post_init__(self):
        if self.code not in CODES:
            raise ValueError(f"unknown diagnostic code {self.code!r}")
        if self.severity not in Severity._RANK:
            raise ValueError(f"unknown severity {self.severity!r}")

    @property
    def name(self) -> str:
        """The symbolic name of this diagnostic's code."""
        return CODES[self.code][0]

    def sort_key(self) -> Tuple:
        """Diagnostics order by position, then code."""
        return (self.span.line, self.span.column, self.code, self.message)

    def to_dict(self) -> Dict[str, object]:
        """JSON shape (stable key order; golden-tested)."""
        out: Dict[str, object] = {
            "code": self.code,
            "name": self.name,
            "severity": self.severity,
            "span": self.span.to_dict(),
            "message": self.message,
        }
        if self.hint:
            out["hint"] = self.hint
        if self.extra:
            out["extra"] = {k: v for k, v in self.extra}
        return out

    def __str__(self) -> str:
        hint = f" (hint: {self.hint})" if self.hint else ""
        return f"{self.span}: {self.severity} {self.code} {self.message}{hint}"


def make(code: str, message: str, node: Optional[Node] = None, *,
         span: Optional[Span] = None, severity: Optional[str] = None,
         pass_name: str = "", hint: Optional[str] = None,
         extra: Optional[Dict[str, object]] = None) -> Diagnostic:
    """Convenience constructor: default severity from :data:`CODES`,
    span from ``node`` unless given explicitly."""
    if span is None:
        span = Span.from_node(node) if node is not None else Span(0, 0, 0, 0)
    return Diagnostic(
        code=code,
        message=message,
        span=span,
        severity=severity if severity is not None else CODES[code][1],
        pass_name=pass_name,
        hint=hint,
        extra=tuple(sorted(extra.items())) if extra else (),
    )


def matches(code: str, prefixes: Tuple[str, ...]) -> bool:
    """flake8-style prefix matching: ``RPL1`` selects all ``RPL1xx``."""
    return any(code.startswith(p) for p in prefixes)


def filter_diagnostics(
    diagnostics: List[Diagnostic],
    select: Tuple[str, ...] = (),
    ignore: Tuple[str, ...] = (),
) -> List[Diagnostic]:
    """Apply ``--select``/``--ignore`` code-prefix filters and sort."""
    out = []
    for d in diagnostics:
        if select and not matches(d.code, select):
            continue
        if ignore and matches(d.code, ignore):
            continue
        out.append(d)
    return sorted(out, key=Diagnostic.sort_key)
