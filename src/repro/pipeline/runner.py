"""The batch pipeline: fan a corpus out over workers, memoize on disk.

``run_pipeline`` takes a corpus of named programs (the shape produced
by :func:`repro.workloads.suites.corpus`), a set of analyses, a worker
count, and a cache directory, and produces one deterministic result
document.  The execution strategy:

1. every subject is canonicalized to pretty-printed source text — the
   unit of work that crosses process boundaries and the content that
   addresses the cache;
2. the parent resolves cache hits up front (a warm run never touches
   the pool at all, which is what makes re-runs near-free);
3. the remaining tasks go to a ``concurrent.futures`` process pool
   when ``jobs > 1`` (workers re-parse the source — parsing is a tiny
   fraction of any analysis this pipeline runs);
4. fresh results are written back to the cache and merged, and the
   document is assembled in sorted program order.

Fault isolation contract: no single program can take down a corpus
run.  An analysis that *raises* becomes a structured per-item error
record (exception type + truncated traceback) inside the worker; a
worker that *dies* (``MemoryError`` escaping the interpreter, a
signal, ``os._exit``) breaks the pool, which the parent rebuilds —
surviving tasks are retried a bounded number of times and a task that
repeatedly kills its worker is abandoned with a ``WorkerCrash`` error
record.  An analysis that exhausts its :class:`repro.observe.Budget`
(``deadline=...``) returns a partial result flagged ``degraded``;
degraded results are reported but never cached.

Observability: the run narrates itself through a
:class:`repro.observe.MetricsAggregator` — per-task spans, pool
lifecycle events, cache counters — which both feeds an optional
JSON-lines trace sink and renders the metrics document available as
:attr:`PipelineResult.metrics` (and ``repro batch --metrics``).

Determinism contract: :meth:`PipelineResult.to_json` is byte-identical
across ``jobs=1``, ``jobs=N`` and warm-cache runs of the same corpus
and configuration.  Volatile facts (timings, hit/miss counts, worker
count, metrics) live in :attr:`PipelineResult.stats` and
:attr:`PipelineResult.metrics`, which are deliberately *not* part of
the document.  Runs with a ``deadline`` are the one exception: where
the clock truncates an analysis is inherently timing-dependent, so
degraded cells may differ between runs (they are flagged, auditable,
and excluded from the cache for exactly that reason).
"""

from __future__ import annotations

import json
import multiprocessing
import threading
import time
import traceback
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

import repro
from repro.lang.ast import Program, Stmt
from repro.lang.parser import parse_program, parse_statement
from repro.lang.pretty import pretty
from repro.observe import MetricsAggregator, TraceEmitter
from repro.pipeline.analyses import ANALYSES, DEFAULT_CONFIG
from repro.pipeline.cache import CacheStats, ResultCache, cache_key

Subject = Union[Program, Stmt]

#: Total attempts a task gets when its worker keeps dying (the first
#: run plus bounded retries for transient failures).
MAX_TASK_ATTEMPTS = 3

#: Characters of formatted traceback kept in an error record.
_TRACEBACK_LIMIT = 1_000

#: Test seam: when set (module-level, inherited by forked workers), it
#: is called with each payload before the analysis runs — the only way
#: to deterministically simulate a dying worker in the test suite.
_INJECT_FAULT = None


@dataclass(frozen=True)
class _Task:
    """One unit of work: run ``analysis`` on the program at ``index``."""

    index: int  # position in the sorted program list
    name: str
    source: str
    kind: str  # "program" | "statement"
    analysis: str


def _subject_from_source(source: str, kind: str) -> Subject:
    return parse_program(source) if kind == "program" else parse_statement(source)


def _error_record(exc: BaseException) -> dict:
    """A structured, deterministic per-item error entry."""
    tb = "".join(
        traceback.format_exception(type(exc), exc, exc.__traceback__)
    )
    return {
        "error": f"{type(exc).__name__}: {exc}",
        "error_type": type(exc).__name__,
        "traceback": tb[-_TRACEBACK_LIMIT:],
    }


def _compute(payload: Tuple[str, str, str, dict]) -> dict:
    """Worker entry point: run one analysis on one program.

    Top-level (picklable) and exception-safe: analysis failures become
    a deterministic structured error record instead of poisoning the
    pool — a batch over an arbitrary corpus must report per-program
    failures, not die on the first odd program.  Returns an envelope
    ``{"result": ..., "seconds": ...}``; the wall time is measured in
    the worker so it covers exactly the analysis, not queueing.
    """
    source, kind, analysis, config = payload
    spec = ANALYSES[analysis]
    if _INJECT_FAULT is not None:
        _INJECT_FAULT(payload)
    started = time.perf_counter()
    try:
        subject = _subject_from_source(source, kind)
        result = spec.run(subject, config)
    except Exception as exc:  # noqa: BLE001 - reported, not swallowed
        result = _error_record(exc)
    return {"result": result, "seconds": time.perf_counter() - started}


class PipelineResult:
    """Everything one ``run_pipeline`` call produced.

    ``programs`` is a sorted list of
    ``{"name", "source", "analyses": {analysis: result}}`` entries;
    ``stats`` holds the volatile run facts (wall time, cache counters,
    worker count) and ``metrics`` the full observability document
    (schema in :mod:`repro.observe.metrics`) — both are excluded from
    :meth:`to_dict`.
    """

    def __init__(
        self,
        programs: List[dict],
        analyses: Tuple[str, ...],
        config: Dict[str, object],
        stats: Dict[str, object],
        metrics: Optional[Dict[str, object]] = None,
    ):
        self.programs = programs
        self.analyses = analyses
        self.config = dict(config)
        self.stats = dict(stats)
        self.metrics = dict(metrics or {})

    def to_dict(self) -> dict:
        """The deterministic result document (no timings, no counters).

        ``fastpath`` is an execution-strategy knob with a byte-identity
        contract (like ``jobs`` or caching, which are also not part of
        the document): toggling it must not change a single byte, so it
        is excluded from the config echo.
        """
        echoed = {k: self.config[k] for k in sorted(self.config) if k != "fastpath"}
        return {
            "analyses": list(self.analyses),
            "config": echoed,
            "programs": self.programs,
            "version": repro.__version__,
        }

    def to_json(self, indent: Optional[int] = 2) -> str:
        """Serialize :meth:`to_dict`; byte-stable for identical inputs."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def program(self, name: str) -> dict:
        """The entry for the program called ``name``."""
        for entry in self.programs:
            if entry["name"] == name:
                return entry
        raise KeyError(name)

    def errors(self) -> List[Tuple[str, str, str]]:
        """Every failed analysis as ``(program, analysis, message)``."""
        out = []
        for entry in self.programs:
            for analysis in self.analyses:
                result = entry["analyses"][analysis]
                if "error" in result:
                    out.append((entry["name"], analysis, result["error"]))
        return out

    def degraded(self) -> List[Tuple[str, str, str]]:
        """Budget-truncated cells as ``(program, analysis, limit)``."""
        out = []
        for entry in self.programs:
            for analysis in self.analyses:
                result = entry["analyses"][analysis]
                if result.get("degraded"):
                    out.append(
                        (entry["name"], analysis, str(result.get("limit")))
                    )
        return out

    def __repr__(self) -> str:
        return (
            f"<PipelineResult {len(self.programs)} programs x "
            f"{len(self.analyses)} analyses>"
        )


def _canonical_corpus(
    corpus: Sequence[Tuple[str, Subject]]
) -> List[Tuple[str, str, str]]:
    """Sorted ``(name, canonical-source, kind)`` triples.

    Sorting by name makes the document independent of corpus order;
    duplicate names are rejected (they would silently shadow).
    """
    seen = set()
    out = []
    for name, subject in corpus:
        if name in seen:
            raise ValueError(f"duplicate program name {name!r} in corpus")
        seen.add(name)
        kind = "program" if isinstance(subject, Program) else "statement"
        out.append((name, pretty(subject), kind))
    out.sort(key=lambda triple: triple[0])
    return out


def _item_status(result: dict, cached: bool) -> str:
    if "error" in result:
        return "error"
    if result.get("degraded"):
        return "degraded"
    return "cached" if cached else "ok"


def _explore_counters(analysis: str, result: dict) -> Optional[Dict[str, int]]:
    """The explorer counters carried into the metrics document."""
    if analysis != "explore" or "error" in result:
        return None
    return {
        key: int(result[key])
        for key in ("states", "transitions", "reduced_states")
        if isinstance(result.get(key), int)
    }


def run_pipeline(
    corpus: Sequence[Tuple[str, Subject]],
    analyses: Sequence[str] = ("cert", "lint"),
    jobs: int = 1,
    cache_dir: Optional[str] = None,
    use_cache: bool = True,
    config: Optional[Dict[str, object]] = None,
    deadline: Optional[float] = None,
    trace: Optional[TraceEmitter] = None,
    pool: Optional[WorkerPool] = None,
    cache: Optional[object] = None,
    observer: Optional[MetricsAggregator] = None,
) -> PipelineResult:
    """Run ``analyses`` over every program in ``corpus``.

    ``corpus`` is a sequence of ``(name, Program-or-Stmt)`` pairs with
    unique names.  ``jobs > 1`` fans cache misses out over a process
    pool; ``cache_dir`` (with ``use_cache=True``) enables the on-disk
    content-addressed cache.  ``config`` overlays
    :data:`repro.pipeline.analyses.DEFAULT_CONFIG`; unknown keys are
    rejected so typos cannot silently produce wrong cache keys.

    ``deadline`` (seconds) is the per-analysis wall-clock budget: an
    analysis that exhausts it returns a partial result flagged
    ``degraded`` and the batch carries on — so one divergent or
    state-explosive program costs at most the deadline, never the run.
    Deadlines are per *task*: every (program, analysis) cell starts its
    own clock, so an earlier slow task never shortens a later one's
    grant.  ``trace`` (a :class:`repro.observe.TraceEmitter`) receives
    the run's spans and lifecycle events; the aggregated metrics
    document is always available as :attr:`PipelineResult.metrics`.

    The three resident-service hooks (``repro serve`` uses all of
    them): ``pool`` is a caller-owned :class:`WorkerPool` reused
    across calls instead of a per-call executor; ``cache`` is a
    caller-owned cache object (``get``/``put``/``stats``, e.g. a
    :class:`repro.pipeline.cache.TieredCache`) that overrides
    ``cache_dir``/``use_cache``; ``observer`` is a caller-owned
    :class:`repro.observe.MetricsAggregator` that accumulates across
    calls (when given, ``trace`` should be wired as its sink).
    """
    started = time.perf_counter()
    if observer is None:
        observer = MetricsAggregator(sink=trace) if trace is not None else MetricsAggregator()
    for analysis in analyses:
        if analysis not in ANALYSES:
            raise ValueError(
                f"unknown analysis {analysis!r}; "
                f"available: {sorted(ANALYSES)}"
            )
    if not analyses:
        raise ValueError("no analyses requested")
    merged = dict(DEFAULT_CONFIG)
    for key, value in (config or {}).items():
        if key not in DEFAULT_CONFIG:
            raise ValueError(
                f"unknown config key {key!r}; "
                f"available: {sorted(DEFAULT_CONFIG)}"
            )
        merged[key] = value
    if deadline is not None:
        merged["deadline"] = float(deadline)
    # Normalize sequence-valued knobs so cache keys don't depend on
    # whether the caller passed a list or a tuple.
    merged["high"] = tuple(sorted(merged["high"]))

    entries = _canonical_corpus(corpus)
    analyses = tuple(analyses)
    if cache is None:
        cache = ResultCache(cache_dir) if (cache_dir and use_cache) else None

    results: Dict[Tuple[int, str], dict] = {}
    cached_cells: set = set()
    pending: List[_Task] = []
    keys: Dict[Tuple[int, str], str] = {}
    for index, (name, source, kind) in enumerate(entries):
        for analysis in analyses:
            task = _Task(index, name, source, kind, analysis)
            if cache is not None:
                key = cache_key(
                    source,
                    kind,
                    analysis,
                    ANALYSES[analysis].config_slice(merged),
                    repro.__version__,
                )
                keys[(index, analysis)] = key
                hit = cache.get(key)
                if hit is not None:
                    results[(index, analysis)] = hit
                    cached_cells.add((index, analysis))
                    continue
            pending.append(task)

    computed = _execute(pending, merged, jobs, observer, pool=pool)
    seconds: Dict[Tuple[int, str], Optional[float]] = {}
    for task, envelope in zip(pending, computed):
        result = envelope["result"]
        results[(task.index, task.analysis)] = result
        seconds[(task.index, task.analysis)] = envelope.get("seconds")
        if cache is not None:
            if result.get("degraded"):
                # A budget-truncated partial result is a fact about
                # this run's clock, not about the program — caching it
                # would replay the truncation forever.
                observer.cache_skip_degraded()
            elif result.get("error_type") == "WorkerCrash":
                pass  # environment trouble, not a property of the program
            else:
                cache.put(
                    keys[(task.index, task.analysis)], task.analysis, result
                )

    for index, (name, source, kind) in enumerate(entries):
        for analysis in analyses:
            cell = (index, analysis)
            result = results[cell]
            cached = cell in cached_cells
            status = _item_status(result, cached)
            observer.item(
                name,
                analysis,
                status,
                seconds=seconds.get(cell),
                error_type=result.get("error_type")
                if status == "error"
                else None,
                limit=result.get("limit") if status == "degraded" else None,
                explore=_explore_counters(analysis, result),
            )

    programs = [
        {
            "name": name,
            "kind": kind,
            "analyses": {a: results[(index, a)] for a in sorted(analyses)},
        }
        for index, (name, source, kind) in enumerate(entries)
    ]
    elapsed = time.perf_counter() - started
    cache_counters = (cache.stats if cache is not None else CacheStats()).to_dict()
    metrics = observer.to_dict(
        elapsed_seconds=elapsed,
        jobs=jobs,
        deadline=merged.get("deadline"),
        cache=cache_counters,
    )
    observer.span("run", elapsed, jobs=jobs, tasks=len(entries) * len(analyses))
    stats = {
        "jobs": jobs,
        "tasks": len(entries) * len(analyses),
        "computed": len(pending),
        "elapsed_seconds": elapsed,
        "cache": cache_counters,
        "cache_dir": getattr(cache, "root", cache_dir) if cache is not None else None,
        "workers": dict(observer.workers),
    }
    return PipelineResult(
        programs, tuple(sorted(analyses)), merged, stats, metrics=metrics
    )


def _pool_context():
    """fork shares the already-imported package with workers; spawn
    (the only option on some platforms) pays a per-worker import."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX fallback
        return multiprocessing.get_context("spawn")


def _crash_record(attempts: int, detail: str) -> dict:
    """The envelope for a task whose worker died on every attempt."""
    return {
        "result": {
            "error": f"WorkerCrash: worker died {attempts} time(s) ({detail})",
            "error_type": "WorkerCrash",
            "traceback": "",
        },
        "seconds": None,
    }


def _reprice_deadline(
    config: dict, first_submitted: float, now: float
) -> dict:
    """The retry-time config: the deadline is what's *left*, not the
    original grant.

    A deadline-carrying task whose worker crashed is retried; giving
    the retry the original deadline would let a crash + retry spend up
    to ``MAX_TASK_ATTEMPTS`` times the caller's budget.  The retry is
    charged the wall-clock already spent since the task's first
    submission, clamped at zero (a zero deadline degrades immediately,
    which is exactly the contract: partial result, flagged, on time).
    """
    deadline = config.get("deadline")
    if deadline is None:
        return config
    repriced = dict(config)
    repriced["deadline"] = max(0.0, float(deadline) - (now - first_submitted))
    return repriced


def _warm_worker() -> bool:
    """A no-op task used to pre-spawn pool workers (see WorkerPool.warm)."""
    return True


class WorkerPool:
    """A persistent, crash-isolated process pool for pipeline tasks.

    ``run_pipeline`` historically built a pool per call and tore it
    down afterwards; a resident service cannot afford that — worker
    startup would dominate every request.  A ``WorkerPool`` owns one
    ``ProcessPoolExecutor`` that survives across ``run_pipeline(...,
    pool=...)`` calls, rebuilding it only when a dying worker breaks
    it.  The crash-isolation contract is unchanged: a task that keeps
    killing its worker is abandoned with a ``WorkerCrash`` record
    after :data:`MAX_TASK_ATTEMPTS` attempts, and a retried
    deadline-carrying task only gets the *remaining* wall-clock budget
    (see :func:`_reprice_deadline`).

    Thread-safe: concurrent ``run`` calls (service requests) share the
    executor; only creation/teardown is serialized.  ``submitted``
    counts every task ever handed to the executor — the observability
    hook behind the service's "an LRU hit never touches the pool"
    guarantee.
    """

    def __init__(self, jobs: int):
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.jobs = jobs
        self.submitted = 0
        self.pools_started = 0
        self._ctx = _pool_context()
        self._lock = threading.RLock()
        self._executor = None
        self._closed = False

    def _handle(self, observer: MetricsAggregator):
        """The live executor, creating (and announcing) one if needed."""
        from concurrent.futures import ProcessPoolExecutor

        with self._lock:
            if self._closed:
                raise RuntimeError("WorkerPool is closed")
            if self._executor is None:
                self._executor = ProcessPoolExecutor(
                    max_workers=self.jobs, mp_context=self._ctx
                )
                self.pools_started += 1
                observer.event("pool_start", workers=self.jobs)
            return self._executor

    def _discard(self, executor) -> None:
        """Drop a broken executor (unless a racing call already did)."""
        with self._lock:
            if self._executor is executor:
                self._executor = None
        executor.shutdown(wait=False, cancel_futures=True)

    def warm(self, observer: Optional[MetricsAggregator] = None) -> None:
        """Pre-spawn every worker now.

        A threaded server should fork its workers *before* request
        threads exist — forking a many-threaded process risks
        inheriting held locks.  Also moves worker startup cost out of
        the first request.
        """
        observer = observer if observer is not None else MetricsAggregator()
        pool = self._handle(observer)
        futures = [pool.submit(_warm_worker) for _ in range(self.jobs)]
        for future in futures:
            future.result()

    def close(self) -> None:
        """Shut the executor down; the pool cannot be reused after."""
        with self._lock:
            executor, self._executor = self._executor, None
            self._closed = True
        if executor is not None:
            executor.shutdown(wait=False, cancel_futures=True)

    def run(
        self,
        pending: List[_Task],
        payloads: List[tuple],
        observer: MetricsAggregator,
        fn=None,
    ) -> List[dict]:
        """Run one batch of tasks, retrying across worker crashes.

        Returns one envelope per task, in task order (so the assembled
        document never depends on completion order).  When a worker
        dies the broken executor is rebuilt and the unfinished tasks
        are retried up to :data:`MAX_TASK_ATTEMPTS` times.

        ``fn`` is the worker entry point (default :func:`_compute`);
        it must be a top-level picklable callable taking one payload
        tuple.  Payload convention: the *last* element is the config
        dict, so deadline repricing on retry works for any caller
        (the fuzz driver reuses this pool with its own entry point).
        """
        from concurrent.futures import as_completed
        from concurrent.futures.process import BrokenProcessPool

        if fn is None:
            fn = _compute
        results: List[Optional[dict]] = [None] * len(payloads)
        attempts = [0] * len(payloads)
        first_submitted: List[Optional[float]] = [None] * len(payloads)
        remaining = list(range(len(payloads)))
        while remaining:
            pool = self._handle(observer)
            broken = False
            futures = {}
            now = time.monotonic()
            try:
                for i in remaining:
                    payload = payloads[i]
                    if first_submitted[i] is None:
                        first_submitted[i] = now
                    else:  # a retry: charge the wall-clock already spent
                        *head, config = payload
                        payload = tuple(head) + (
                            _reprice_deadline(config, first_submitted[i], now),
                        )
                    futures[pool.submit(fn, payload)] = i
                    self.submitted += 1
            except (BrokenProcessPool, RuntimeError):
                # the executor broke under a concurrent run() before we
                # finished submitting; collect what we did submit
                broken = True
            try:
                for future in as_completed(futures):
                    index = futures[future]
                    try:
                        results[index] = future.result()
                    except BrokenProcessPool:
                        broken = True
                        break
                    except Exception as exc:  # e.g. an unpicklable result
                        results[index] = {
                            "result": _error_record(exc),
                            "seconds": None,
                        }
                # A pool break fails every unfinished future at once;
                # sweep up the tasks that finished before the crash.
                if broken:
                    for future, index in futures.items():
                        if results[index] is not None or not future.done():
                            continue
                        try:
                            results[index] = future.result()
                        except Exception:
                            pass
            finally:
                if broken:
                    self._discard(pool)
                    observer.event("pool_broken")
            retry = []
            for index in remaining:
                if results[index] is not None:
                    continue
                attempts[index] += 1
                if attempts[index] >= MAX_TASK_ATTEMPTS:
                    results[index] = _crash_record(
                        attempts[index],
                        f"{pending[index].name}/{pending[index].analysis}",
                    )
                    observer.event(
                        "task_abandoned",
                        program=pending[index].name,
                        analysis=pending[index].analysis,
                        attempts=attempts[index],
                    )
                else:
                    retry.append(index)
                    observer.event(
                        "task_retry",
                        program=pending[index].name,
                        analysis=pending[index].analysis,
                        attempt=attempts[index],
                    )
            remaining = retry
        assert all(envelope is not None for envelope in results)
        return results


def _execute(
    pending: List[_Task],
    config: dict,
    jobs: int,
    observer: MetricsAggregator,
    pool: Optional[WorkerPool] = None,
) -> List[dict]:
    """Run the cache misses, in-process or across a crash-isolated pool.

    Each task gets its *own* config dict: per-task resource budgets
    (``deadline``) are started from the task's own clock, never shared
    or inherited from a sibling task's partially-spent budget — one
    slow program must not shorten the next program's grant.
    """
    payloads = [(t.source, t.kind, t.analysis, dict(config)) for t in pending]
    if pool is not None:
        if not payloads:
            return []
        return pool.run(pending, payloads, observer)
    if jobs <= 1 or len(payloads) <= 1:
        return [_compute(payload) for payload in payloads]
    own = WorkerPool(jobs)
    try:
        return own.run(pending, payloads, observer)
    finally:
        own.close()
