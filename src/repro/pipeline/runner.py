"""The batch pipeline: fan a corpus out over workers, memoize on disk.

``run_pipeline`` takes a corpus of named programs (the shape produced
by :func:`repro.workloads.suites.corpus`), a set of analyses, a worker
count, and a cache directory, and produces one deterministic result
document.  The execution strategy:

1. every subject is canonicalized to pretty-printed source text — the
   unit of work that crosses process boundaries and the content that
   addresses the cache;
2. the parent resolves cache hits up front (a warm run never touches
   the pool at all, which is what makes re-runs near-free);
3. the remaining tasks go to a ``multiprocessing`` pool when
   ``jobs > 1`` (workers re-parse the source — parsing is a tiny
   fraction of any analysis this pipeline runs);
4. fresh results are written back to the cache and merged, and the
   document is assembled in sorted program order.

Determinism contract: :meth:`PipelineResult.to_json` is byte-identical
across ``jobs=1``, ``jobs=N`` and warm-cache runs of the same corpus
and configuration.  Volatile facts (timings, hit/miss counts, worker
count) live in :attr:`PipelineResult.stats`, which is deliberately
*not* part of the document.
"""

from __future__ import annotations

import json
import multiprocessing
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

import repro
from repro.lang.ast import Program, Stmt
from repro.lang.parser import parse_program, parse_statement
from repro.lang.pretty import pretty
from repro.pipeline.analyses import ANALYSES, DEFAULT_CONFIG
from repro.pipeline.cache import CacheStats, ResultCache, cache_key

Subject = Union[Program, Stmt]


@dataclass(frozen=True)
class _Task:
    """One unit of work: run ``analysis`` on the program at ``index``."""

    index: int  # position in the sorted program list
    name: str
    source: str
    kind: str  # "program" | "statement"
    analysis: str


def _subject_from_source(source: str, kind: str) -> Subject:
    return parse_program(source) if kind == "program" else parse_statement(source)


def _compute(payload: Tuple[str, str, str, dict]) -> dict:
    """Worker entry point: run one analysis on one program.

    Top-level (picklable) and exception-safe: analysis failures become
    a deterministic ``{"error": ...}`` result instead of poisoning the
    pool — a batch over an arbitrary corpus must report per-program
    failures, not die on the first odd program.
    """
    source, kind, analysis, config = payload
    spec = ANALYSES[analysis]
    try:
        subject = _subject_from_source(source, kind)
        return spec.run(subject, config)
    except Exception as exc:  # noqa: BLE001 - reported, not swallowed
        return {"error": f"{type(exc).__name__}: {exc}"}


class PipelineResult:
    """Everything one ``run_pipeline`` call produced.

    ``programs`` is a sorted list of
    ``{"name", "source", "analyses": {analysis: result}}`` entries;
    ``stats`` holds the volatile run facts (wall time, cache counters,
    worker count) and is excluded from :meth:`to_dict`.
    """

    def __init__(
        self,
        programs: List[dict],
        analyses: Tuple[str, ...],
        config: Dict[str, object],
        stats: Dict[str, object],
    ):
        self.programs = programs
        self.analyses = analyses
        self.config = dict(config)
        self.stats = dict(stats)

    def to_dict(self) -> dict:
        """The deterministic result document (no timings, no counters)."""
        return {
            "analyses": list(self.analyses),
            "config": {k: self.config[k] for k in sorted(self.config)},
            "programs": self.programs,
            "version": repro.__version__,
        }

    def to_json(self, indent: Optional[int] = 2) -> str:
        """Serialize :meth:`to_dict`; byte-stable for identical inputs."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def program(self, name: str) -> dict:
        """The entry for the program called ``name``."""
        for entry in self.programs:
            if entry["name"] == name:
                return entry
        raise KeyError(name)

    def errors(self) -> List[Tuple[str, str, str]]:
        """Every failed analysis as ``(program, analysis, message)``."""
        out = []
        for entry in self.programs:
            for analysis in self.analyses:
                result = entry["analyses"][analysis]
                if "error" in result:
                    out.append((entry["name"], analysis, result["error"]))
        return out

    def __repr__(self) -> str:
        return (
            f"<PipelineResult {len(self.programs)} programs x "
            f"{len(self.analyses)} analyses>"
        )


def _canonical_corpus(
    corpus: Sequence[Tuple[str, Subject]]
) -> List[Tuple[str, str, str]]:
    """Sorted ``(name, canonical-source, kind)`` triples.

    Sorting by name makes the document independent of corpus order;
    duplicate names are rejected (they would silently shadow).
    """
    seen = set()
    out = []
    for name, subject in corpus:
        if name in seen:
            raise ValueError(f"duplicate program name {name!r} in corpus")
        seen.add(name)
        kind = "program" if isinstance(subject, Program) else "statement"
        out.append((name, pretty(subject), kind))
    out.sort(key=lambda triple: triple[0])
    return out


def run_pipeline(
    corpus: Sequence[Tuple[str, Subject]],
    analyses: Sequence[str] = ("cert", "lint"),
    jobs: int = 1,
    cache_dir: Optional[str] = None,
    use_cache: bool = True,
    config: Optional[Dict[str, object]] = None,
) -> PipelineResult:
    """Run ``analyses`` over every program in ``corpus``.

    ``corpus`` is a sequence of ``(name, Program-or-Stmt)`` pairs with
    unique names.  ``jobs > 1`` fans cache misses out over a process
    pool; ``cache_dir`` (with ``use_cache=True``) enables the on-disk
    content-addressed cache.  ``config`` overlays
    :data:`repro.pipeline.analyses.DEFAULT_CONFIG`; unknown keys are
    rejected so typos cannot silently produce wrong cache keys.
    """
    started = time.perf_counter()
    for analysis in analyses:
        if analysis not in ANALYSES:
            raise ValueError(
                f"unknown analysis {analysis!r}; "
                f"available: {sorted(ANALYSES)}"
            )
    if not analyses:
        raise ValueError("no analyses requested")
    merged = dict(DEFAULT_CONFIG)
    for key, value in (config or {}).items():
        if key not in DEFAULT_CONFIG:
            raise ValueError(
                f"unknown config key {key!r}; "
                f"available: {sorted(DEFAULT_CONFIG)}"
            )
        merged[key] = value
    # Normalize sequence-valued knobs so cache keys don't depend on
    # whether the caller passed a list or a tuple.
    merged["high"] = tuple(sorted(merged["high"]))

    entries = _canonical_corpus(corpus)
    analyses = tuple(analyses)
    cache = ResultCache(cache_dir) if (cache_dir and use_cache) else None

    results: Dict[Tuple[int, str], dict] = {}
    pending: List[_Task] = []
    keys: Dict[Tuple[int, str], str] = {}
    for index, (name, source, kind) in enumerate(entries):
        for analysis in analyses:
            task = _Task(index, name, source, kind, analysis)
            if cache is not None:
                key = cache_key(
                    source,
                    kind,
                    analysis,
                    ANALYSES[analysis].config_slice(merged),
                    repro.__version__,
                )
                keys[(index, analysis)] = key
                hit = cache.get(key)
                if hit is not None:
                    results[(index, analysis)] = hit
                    continue
            pending.append(task)

    computed = _execute(pending, merged, jobs)
    for task, result in zip(pending, computed):
        results[(task.index, task.analysis)] = result
        if cache is not None:
            cache.put(keys[(task.index, task.analysis)], task.analysis, result)

    programs = [
        {
            "name": name,
            "kind": kind,
            "analyses": {a: results[(index, a)] for a in sorted(analyses)},
        }
        for index, (name, source, kind) in enumerate(entries)
    ]
    stats = {
        "jobs": jobs,
        "tasks": len(entries) * len(analyses),
        "computed": len(pending),
        "elapsed_seconds": time.perf_counter() - started,
        "cache": (cache.stats if cache is not None else CacheStats()).to_dict(),
        "cache_dir": cache_dir if cache is not None else None,
    }
    return PipelineResult(programs, tuple(sorted(analyses)), merged, stats)


def _execute(pending: List[_Task], config: dict, jobs: int) -> List[dict]:
    """Run the cache misses, in-process or across a worker pool."""
    payloads = [(t.source, t.kind, t.analysis, config) for t in pending]
    if jobs <= 1 or len(payloads) <= 1:
        return [_compute(payload) for payload in payloads]
    # fork shares the already-imported package with workers; spawn (the
    # only option on some platforms) pays a per-worker import instead.
    try:
        ctx = multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX fallback
        ctx = multiprocessing.get_context("spawn")
    with ctx.Pool(processes=min(jobs, len(payloads))) as pool:
        return pool.map(_compute, payloads, chunksize=1)
