"""The batch pipeline: fan a corpus out over workers, memoize on disk.

``run_pipeline`` takes a corpus of named programs (the shape produced
by :func:`repro.workloads.suites.corpus`), a set of analyses, a worker
count, and a cache directory, and produces one deterministic result
document.  The execution strategy:

1. every subject is canonicalized to pretty-printed source text — the
   unit of work that crosses process boundaries and the content that
   addresses the cache;
2. the parent resolves cache hits up front (a warm run never touches
   the pool at all, which is what makes re-runs near-free);
3. the remaining tasks go to a ``concurrent.futures`` process pool
   when ``jobs > 1`` (workers re-parse the source — parsing is a tiny
   fraction of any analysis this pipeline runs).  Tasks are dispatched
   in *chunks*: many (program, analysis) cells ride one submitted
   task, so executor dispatch and pickling are amortized instead of
   dominating tiny analyses (``chunk_size``; auto-sized from the
   pending-cell count and ``jobs``).  When the pool is freshly forked
   for the run, the canonical corpus is published in a module-level
   snapshot *before* the fork and payloads carry indices into it —
   source text never crosses the pickle boundary at all (inline
   payloads remain the fallback under spawn and for persistent pools
   whose workers predate the corpus);
4. fresh results are written back to the cache and merged, and the
   document is assembled in sorted program order.

Fault isolation contract: no single program can take down a corpus
run.  An analysis that *raises* becomes a structured per-item error
record (exception type + truncated traceback) inside the worker; a
worker that *dies* (``MemoryError`` escaping the interpreter, a
signal, ``os._exit``) breaks the pool, which the parent rebuilds —
surviving tasks are retried a bounded number of times and a task that
repeatedly kills its worker is abandoned with a ``WorkerCrash`` error
record.  An analysis that exhausts its :class:`repro.observe.Budget`
(``deadline=...``) returns a partial result flagged ``degraded``;
degraded results are reported but never cached.

Observability: the run narrates itself through a
:class:`repro.observe.MetricsAggregator` — per-task spans, pool
lifecycle events, cache counters — which both feeds an optional
JSON-lines trace sink and renders the metrics document available as
:attr:`PipelineResult.metrics` (and ``repro batch --metrics``).

Determinism contract: :meth:`PipelineResult.to_json` is byte-identical
across ``jobs=1``, ``jobs=N`` and warm-cache runs of the same corpus
and configuration.  Volatile facts (timings, hit/miss counts, worker
count, metrics) live in :attr:`PipelineResult.stats` and
:attr:`PipelineResult.metrics`, which are deliberately *not* part of
the document.  Runs with a ``deadline`` are the one exception: where
the clock truncates an analysis is inherently timing-dependent, so
degraded cells may differ between runs (they are flagged, auditable,
and excluded from the cache for exactly that reason).
"""

from __future__ import annotations

import json
import multiprocessing
import pickle
import threading
import time
import traceback
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

import repro
from repro.lang.ast import Program, Stmt
from repro.lang.parser import parse_program, parse_statement
from repro.lang.pretty import pretty
from repro.observe import MetricsAggregator, TraceEmitter
from repro.pipeline.analyses import ANALYSES, DEFAULT_CONFIG
from repro.pipeline.cache import CacheStats, ResultCache, cache_key

Subject = Union[Program, Stmt]

#: Total attempts a task gets when its worker keeps dying (the first
#: run plus bounded retries for transient failures).
MAX_TASK_ATTEMPTS = 3

#: Characters of formatted traceback kept in an error record.
_TRACEBACK_LIMIT = 1_000

#: Test seam: when set (module-level, inherited by forked workers), it
#: is called with each payload before the analysis runs — the only way
#: to deterministically simulate a dying worker in the test suite.
_INJECT_FAULT = None

#: Auto chunk sizing aims at about this many chunks per worker: large
#: enough to amortize submission/pickling over many cells, small
#: enough that one slow chunk cannot serialize the tail of the run.
_CHUNKS_PER_WORKER = 4

#: The fork-shared corpus snapshot.  ``_execute`` publishes the
#: canonical source texts here *before* a run-owned pool forks its
#: workers; payloads then carry indices into this table instead of the
#: text itself, so the dominant pickling cost of tiny analyses
#: disappears.  Only ever read by workers forked while the table is
#: set — persistent pools (whose workers predate any given corpus) and
#: spawn contexts (no memory inheritance) use inline payloads instead.
_SHARED_SOURCES: Optional[List[str]] = None

#: Serializes fork-shared runs within one parent process: the snapshot
#: is a single module slot, so a second concurrent run falls back to
#: inline payloads instead of clobbering the first run's table.
_SHARED_LOCK = threading.Lock()


@dataclass(frozen=True)
class _Task:
    """One unit of work: run ``analysis`` on the program at ``index``."""

    index: int  # position in the sorted program list
    name: str
    source: str
    kind: str  # "program" | "statement"
    analysis: str


def _subject_from_source(source: str, kind: str) -> Subject:
    return parse_program(source) if kind == "program" else parse_statement(source)


def _error_record(exc: BaseException) -> dict:
    """A structured, deterministic per-item error entry."""
    tb = "".join(
        traceback.format_exception(type(exc), exc, exc.__traceback__)
    )
    return {
        "error": f"{type(exc).__name__}: {exc}",
        "error_type": type(exc).__name__,
        "traceback": tb[-_TRACEBACK_LIMIT:],
    }


def _compute(payload: Tuple[object, str, str, dict]) -> dict:
    """Worker entry point: run one analysis on one program.

    Top-level (picklable) and exception-safe: analysis failures become
    a deterministic structured error record instead of poisoning the
    pool — a batch over an arbitrary corpus must report per-program
    failures, not die on the first odd program.  Returns an envelope
    ``{"result": ..., "seconds": ...}``; the wall time is measured in
    the worker so it covers exactly the analysis, not queueing.

    The first payload element is either the canonical source text
    (inline payloads) or an ``int`` index into the fork-inherited
    :data:`_SHARED_SOURCES` snapshot (fork-shared payloads).
    """
    source, kind, analysis, config = payload
    if isinstance(source, int):
        source = _SHARED_SOURCES[source]
    spec = ANALYSES[analysis]
    if _INJECT_FAULT is not None:
        _INJECT_FAULT((source, kind, analysis, config))
    started = time.perf_counter()
    try:
        subject = _subject_from_source(source, kind)
        result = spec.run(subject, config)
    except Exception as exc:  # noqa: BLE001 - reported, not swallowed
        result = _error_record(exc)
    return {"result": result, "seconds": time.perf_counter() - started}


def _run_chunk(fn, chunk: List[tuple]) -> List[dict]:
    """Chunk-level worker entry point: run ``fn`` over many payloads.

    One submitted task per chunk amortizes executor dispatch and
    payload pickling over many cells, which is what lets ``jobs > 1``
    beat serial on corpora of tiny analyses.  Per-cell isolation is
    preserved: a payload whose ``fn`` raises, or whose envelope cannot
    cross the process boundary back, becomes *that cell's* error
    record — never the chunk's.
    """
    envelopes = []
    for payload in chunk:
        try:
            envelope = fn(payload)
            pickle.dumps(envelope)  # must survive the trip back intact
        except Exception as exc:  # noqa: BLE001 - reported, not swallowed
            envelope = {"result": _error_record(exc), "seconds": None}
        envelopes.append(envelope)
    return envelopes


def _auto_chunk_size(cells: int, jobs: int) -> int:
    """Cells per chunk when the caller sets no ``chunk_size``."""
    return max(1, -(-cells // (jobs * _CHUNKS_PER_WORKER)))


class PipelineResult:
    """Everything one ``run_pipeline`` call produced.

    ``programs`` is a sorted list of
    ``{"name", "source", "analyses": {analysis: result}}`` entries;
    ``stats`` holds the volatile run facts (wall time, cache counters,
    worker count) and ``metrics`` the full observability document
    (schema in :mod:`repro.observe.metrics`) — both are excluded from
    :meth:`to_dict`.
    """

    def __init__(
        self,
        programs: List[dict],
        analyses: Tuple[str, ...],
        config: Dict[str, object],
        stats: Dict[str, object],
        metrics: Optional[Dict[str, object]] = None,
    ):
        self.programs = programs
        self.analyses = analyses
        self.config = dict(config)
        self.stats = dict(stats)
        self.metrics = dict(metrics or {})

    def to_dict(self) -> dict:
        """The deterministic result document (no timings, no counters).

        ``fastpath`` is an execution-strategy knob with a byte-identity
        contract (like ``jobs`` or caching, which are also not part of
        the document): toggling it must not change a single byte, so it
        is excluded from the config echo.
        """
        echoed = {k: self.config[k] for k in sorted(self.config) if k != "fastpath"}
        return {
            "analyses": list(self.analyses),
            "config": echoed,
            "programs": self.programs,
            "version": repro.__version__,
        }

    def to_json(self, indent: Optional[int] = 2) -> str:
        """Serialize :meth:`to_dict`; byte-stable for identical inputs."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def program(self, name: str) -> dict:
        """The entry for the program called ``name``."""
        for entry in self.programs:
            if entry["name"] == name:
                return entry
        raise KeyError(name)

    def errors(self) -> List[Tuple[str, str, str]]:
        """Every failed analysis as ``(program, analysis, message)``."""
        out = []
        for entry in self.programs:
            for analysis in self.analyses:
                result = entry["analyses"][analysis]
                if "error" in result:
                    out.append((entry["name"], analysis, result["error"]))
        return out

    def degraded(self) -> List[Tuple[str, str, str]]:
        """Budget-truncated cells as ``(program, analysis, limit)``."""
        out = []
        for entry in self.programs:
            for analysis in self.analyses:
                result = entry["analyses"][analysis]
                if result.get("degraded"):
                    out.append(
                        (entry["name"], analysis, str(result.get("limit")))
                    )
        return out

    def __repr__(self) -> str:
        return (
            f"<PipelineResult {len(self.programs)} programs x "
            f"{len(self.analyses)} analyses>"
        )


def _canonical_corpus(
    corpus: Sequence[Tuple[str, Subject]]
) -> List[Tuple[str, str, str]]:
    """Sorted ``(name, canonical-source, kind)`` triples.

    Sorting by name makes the document independent of corpus order;
    duplicate names are rejected (they would silently shadow).
    """
    seen = set()
    out = []
    for name, subject in corpus:
        if name in seen:
            raise ValueError(f"duplicate program name {name!r} in corpus")
        seen.add(name)
        kind = "program" if isinstance(subject, Program) else "statement"
        out.append((name, pretty(subject), kind))
    out.sort(key=lambda triple: triple[0])
    return out


def _item_status(result: dict, cached: bool) -> str:
    if "error" in result:
        return "error"
    if result.get("degraded"):
        return "degraded"
    return "cached" if cached else "ok"


def _explore_counters(analysis: str, result: dict) -> Optional[Dict[str, int]]:
    """The explorer counters carried into the metrics document."""
    if analysis != "explore" or "error" in result:
        return None
    return {
        key: int(result[key])
        for key in ("states", "transitions", "reduced_states")
        if isinstance(result.get(key), int)
    }


def run_pipeline(
    corpus: Sequence[Tuple[str, Subject]],
    analyses: Sequence[str] = ("cert", "lint"),
    jobs: int = 1,
    cache_dir: Optional[str] = None,
    use_cache: bool = True,
    config: Optional[Dict[str, object]] = None,
    deadline: Optional[float] = None,
    trace: Optional[TraceEmitter] = None,
    pool: Optional[WorkerPool] = None,
    cache: Optional[object] = None,
    observer: Optional[MetricsAggregator] = None,
    chunk_size: Optional[int] = None,
) -> PipelineResult:
    """Run ``analyses`` over every program in ``corpus``.

    ``corpus`` is a sequence of ``(name, Program-or-Stmt)`` pairs with
    unique names.  ``jobs > 1`` fans cache misses out over a process
    pool; ``cache_dir`` (with ``use_cache=True``) enables the on-disk
    content-addressed cache.  ``config`` overlays
    :data:`repro.pipeline.analyses.DEFAULT_CONFIG`; unknown keys are
    rejected so typos cannot silently produce wrong cache keys.

    ``deadline`` (seconds) is the per-analysis wall-clock budget: an
    analysis that exhausts it returns a partial result flagged
    ``degraded`` and the batch carries on — so one divergent or
    state-explosive program costs at most the deadline, never the run.
    Deadlines are per *task*: every (program, analysis) cell starts its
    own clock, so an earlier slow task never shortens a later one's
    grant.  ``trace`` (a :class:`repro.observe.TraceEmitter`) receives
    the run's spans and lifecycle events; the aggregated metrics
    document is always available as :attr:`PipelineResult.metrics`.

    The three resident-service hooks (``repro serve`` uses all of
    them): ``pool`` is a caller-owned :class:`WorkerPool` reused
    across calls instead of a per-call executor; ``cache`` is a
    caller-owned cache object (``get``/``put``/``stats``, e.g. a
    :class:`repro.pipeline.cache.TieredCache`) that overrides
    ``cache_dir``/``use_cache``; ``observer`` is a caller-owned
    :class:`repro.observe.MetricsAggregator` that accumulates across
    calls (when given, ``trace`` should be wired as its sink).

    ``chunk_size`` sets how many (program, analysis) cells ride one
    submitted worker task (CLI: ``--chunk-size``).  ``None`` auto-sizes
    from the pending-cell count and ``jobs``; ``1`` restores per-cell
    dispatch.  Chunking is an execution-strategy knob like ``jobs``:
    the document is byte-identical for every value.
    """
    started = time.perf_counter()
    if observer is None:
        observer = MetricsAggregator(sink=trace) if trace is not None else MetricsAggregator()
    for analysis in analyses:
        if analysis not in ANALYSES:
            raise ValueError(
                f"unknown analysis {analysis!r}; "
                f"available: {sorted(ANALYSES)}"
            )
    if not analyses:
        raise ValueError("no analyses requested")
    merged = dict(DEFAULT_CONFIG)
    for key, value in (config or {}).items():
        if key not in DEFAULT_CONFIG:
            raise ValueError(
                f"unknown config key {key!r}; "
                f"available: {sorted(DEFAULT_CONFIG)}"
            )
        merged[key] = value
    if deadline is not None:
        merged["deadline"] = float(deadline)
    # Normalize sequence-valued knobs so cache keys don't depend on
    # whether the caller passed a list or a tuple.
    merged["high"] = tuple(sorted(merged["high"]))

    entries = _canonical_corpus(corpus)
    analyses = tuple(analyses)
    if cache is None:
        cache = ResultCache(cache_dir) if (cache_dir and use_cache) else None

    results: Dict[Tuple[int, str], dict] = {}
    cached_cells: set = set()
    pending: List[_Task] = []
    keys: Dict[Tuple[int, str], str] = {}
    for index, (name, source, kind) in enumerate(entries):
        for analysis in analyses:
            task = _Task(index, name, source, kind, analysis)
            if cache is not None:
                key = cache_key(
                    source,
                    kind,
                    analysis,
                    ANALYSES[analysis].config_slice(merged),
                    repro.__version__,
                )
                keys[(index, analysis)] = key
                hit = cache.get(key)
                if hit is not None:
                    results[(index, analysis)] = hit
                    cached_cells.add((index, analysis))
                    continue
            pending.append(task)

    computed = _execute(
        pending, merged, jobs, observer, pool=pool, chunk_size=chunk_size
    )
    seconds: Dict[Tuple[int, str], Optional[float]] = {}
    for task, envelope in zip(pending, computed):
        result = envelope["result"]
        results[(task.index, task.analysis)] = result
        seconds[(task.index, task.analysis)] = envelope.get("seconds")
        if cache is not None:
            if result.get("degraded"):
                # A budget-truncated partial result is a fact about
                # this run's clock, not about the program — caching it
                # would replay the truncation forever.
                observer.cache_skip_degraded()
            elif result.get("error_type") == "WorkerCrash":
                pass  # environment trouble, not a property of the program
            else:
                cache.put(
                    keys[(task.index, task.analysis)], task.analysis, result
                )

    for index, (name, source, kind) in enumerate(entries):
        for analysis in analyses:
            cell = (index, analysis)
            result = results[cell]
            cached = cell in cached_cells
            status = _item_status(result, cached)
            observer.item(
                name,
                analysis,
                status,
                seconds=seconds.get(cell),
                error_type=result.get("error_type")
                if status == "error"
                else None,
                limit=result.get("limit") if status == "degraded" else None,
                explore=_explore_counters(analysis, result),
            )

    programs = [
        {
            "name": name,
            "kind": kind,
            "analyses": {a: results[(index, a)] for a in sorted(analyses)},
        }
        for index, (name, source, kind) in enumerate(entries)
    ]
    elapsed = time.perf_counter() - started
    cache_counters = (cache.stats if cache is not None else CacheStats()).to_dict()
    # The run span must land before the document is assembled, or
    # ``PipelineResult.metrics`` would never contain it.
    observer.span("run", elapsed, jobs=jobs, tasks=len(entries) * len(analyses))
    metrics = observer.to_dict(
        elapsed_seconds=elapsed,
        jobs=jobs,
        deadline=merged.get("deadline"),
        cache=cache_counters,
    )
    stats = {
        "jobs": jobs,
        "tasks": len(entries) * len(analyses),
        # Abandoned WorkerCrash cells never ran to completion anywhere;
        # counting them as computed would overstate what the run did.
        "computed": sum(
            1
            for envelope in computed
            if envelope["result"].get("error_type") != "WorkerCrash"
        ),
        "elapsed_seconds": elapsed,
        "cache": cache_counters,
        "cache_dir": getattr(cache, "root", cache_dir) if cache is not None else None,
        "workers": dict(observer.workers),
    }
    return PipelineResult(
        programs, tuple(sorted(analyses)), merged, stats, metrics=metrics
    )


def _pool_context():
    """fork shares the already-imported package with workers; spawn
    (the only option on some platforms) pays a per-worker import."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX fallback
        return multiprocessing.get_context("spawn")


def _crash_record(attempts: int, detail: str) -> dict:
    """The envelope for a task whose worker died on every attempt."""
    return {
        "result": {
            "error": f"WorkerCrash: worker died {attempts} time(s) ({detail})",
            "error_type": "WorkerCrash",
            "traceback": "",
        },
        "seconds": None,
    }


def _reprice_deadline(
    config: dict, first_submitted: float, now: float
) -> dict:
    """The retry-time config: the deadline is what's *left*, not the
    original grant.

    A deadline-carrying task whose worker crashed is retried; giving
    the retry the original deadline would let a crash + retry spend up
    to ``MAX_TASK_ATTEMPTS`` times the caller's budget.  The retry is
    charged the wall-clock already spent since the task's first
    submission, clamped at zero (a zero deadline degrades immediately,
    which is exactly the contract: partial result, flagged, on time).
    """
    deadline = config.get("deadline")
    if deadline is None:
        return config
    repriced = dict(config)
    repriced["deadline"] = max(0.0, float(deadline) - (now - first_submitted))
    return repriced


def _warm_worker() -> bool:
    """A no-op task used to pre-spawn pool workers (see WorkerPool.warm)."""
    return True


class WorkerPool:
    """A persistent, crash-isolated process pool for pipeline tasks.

    ``run_pipeline`` historically built a pool per call and tore it
    down afterwards; a resident service cannot afford that — worker
    startup would dominate every request.  A ``WorkerPool`` owns one
    ``ProcessPoolExecutor`` that survives across ``run_pipeline(...,
    pool=...)`` calls, rebuilding it only when a dying worker breaks
    it.  The crash-isolation contract is unchanged: a task that keeps
    killing its worker is abandoned with a ``WorkerCrash`` record
    after :data:`MAX_TASK_ATTEMPTS` attempts, and a retried
    deadline-carrying task only gets the *remaining* wall-clock budget
    (see :func:`_reprice_deadline`).

    Thread-safe: concurrent ``run`` calls (service requests) share the
    executor; only creation/teardown is serialized.  ``submitted``
    counts every task ever handed to the executor — the observability
    hook behind the service's "an LRU hit never touches the pool"
    guarantee.
    """

    def __init__(
        self,
        jobs: int,
        chunk_size: Optional[int] = None,
        label: Optional[str] = None,
    ):
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        if chunk_size is not None and chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        self.jobs = jobs
        self.chunk_size = chunk_size
        #: Optional display name (the sharded service labels each
        #: shard's pool) — carried on ``pool_start`` events so a trace
        #: can attribute worker startups to the shard that paid them.
        self.label = label
        self.submitted = 0
        self.pools_started = 0
        self._ctx = _pool_context()
        self._lock = threading.RLock()
        self._executor = None
        self._closed = False

    @property
    def start_method(self) -> str:
        """The multiprocessing start method workers are created with."""
        return self._ctx.get_start_method()

    def _handle(self, observer: MetricsAggregator):
        """The live executor, creating (and announcing) one if needed."""
        from concurrent.futures import ProcessPoolExecutor

        with self._lock:
            if self._closed:
                raise RuntimeError("WorkerPool is closed")
            if self._executor is None:
                self._executor = ProcessPoolExecutor(
                    max_workers=self.jobs, mp_context=self._ctx
                )
                self.pools_started += 1
                if self.label is not None:
                    observer.event(
                        "pool_start", workers=self.jobs, label=self.label
                    )
                else:
                    observer.event("pool_start", workers=self.jobs)
            return self._executor

    def _discard(self, executor) -> None:
        """Drop a broken executor (unless a racing call already did)."""
        with self._lock:
            if self._executor is executor:
                self._executor = None
        executor.shutdown(wait=False, cancel_futures=True)

    def warm(self, observer: Optional[MetricsAggregator] = None) -> None:
        """Pre-spawn every worker now.

        A threaded server should fork its workers *before* request
        threads exist — forking a many-threaded process risks
        inheriting held locks.  Also moves worker startup cost out of
        the first request.
        """
        observer = observer if observer is not None else MetricsAggregator()
        pool = self._handle(observer)
        futures = [pool.submit(_warm_worker) for _ in range(self.jobs)]
        for future in futures:
            future.result()

    def close(self) -> None:
        """Shut the executor down; the pool cannot be reused after."""
        with self._lock:
            executor, self._executor = self._executor, None
            self._closed = True
        if executor is not None:
            executor.shutdown(wait=False, cancel_futures=True)

    def run(
        self,
        pending: List[_Task],
        payloads: List[tuple],
        observer: MetricsAggregator,
        fn=None,
        chunk_size: Optional[int] = None,
    ) -> List[dict]:
        """Run one batch of tasks, retrying across worker crashes.

        Returns one envelope per task, in task order (so the assembled
        document never depends on completion order).  Cells are
        dispatched in chunks of ``chunk_size`` (default: the pool's
        knob, else auto-sized — see :func:`_auto_chunk_size`): each
        chunk is one submitted :func:`_run_chunk` task returning a
        batched list of envelopes, with per-cell exception isolation
        inside the chunk.  When a worker dies the broken executor is
        rebuilt and only the unfinished cells are retried, up to
        :data:`MAX_TASK_ATTEMPTS` attempts per cell; retried cells go
        into singleton chunks so an innocent cell is never re-killed
        by the cell that broke its chunk's worker.

        ``fn`` is the per-cell worker entry point (default
        :func:`_compute`); it must be a top-level picklable callable
        taking one payload tuple.  Payload convention: the *last*
        element is the config dict, so per-cell deadline repricing on
        retry works for any caller (the fuzz driver reuses this pool
        with its own entry point).
        """
        from concurrent.futures import as_completed
        from concurrent.futures.process import BrokenProcessPool

        if fn is None:
            fn = _compute
        if chunk_size is None:
            chunk_size = self.chunk_size
        if chunk_size is not None and chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        results: List[Optional[dict]] = [None] * len(payloads)
        attempts = [0] * len(payloads)
        first_submitted: List[Optional[float]] = [None] * len(payloads)
        remaining = list(range(len(payloads)))

        def _batch_for(cells: List[int], now: float) -> List[tuple]:
            batch = []
            for i in cells:
                payload = payloads[i]
                if first_submitted[i] is not None:
                    # a retry: charge the wall-clock spent since
                    # the cell was first handed to a worker
                    *head, config = payload
                    payload = tuple(head) + (
                        _reprice_deadline(config, first_submitted[i], now),
                    )
                batch.append(payload)
            return batch

        def _account_submit(cells: List[int], batch, now: float) -> None:
            # Only now did these cells genuinely reach the executor;
            # stamping before a submit that never happens would charge
            # never-run cells wall-clock and wrongly shorten their
            # repriced deadlines.
            for i in cells:
                if first_submitted[i] is None:
                    first_submitted[i] = now
            self.submitted += 1
            try:
                nbytes = len(pickle.dumps((fn, batch)))
            except Exception:
                # An unpicklable fn/payload fails its own future
                # inside the executor and becomes per-cell error
                # records below; the ledger just can't price it.
                nbytes = 0
            observer.chunk(cells=len(cells), bytes_pickled=nbytes)

        while remaining:
            now = time.monotonic()
            size = chunk_size or _auto_chunk_size(len(remaining), self.jobs)
            fresh = [i for i in remaining if attempts[i] == 0]
            suspects = [i for i in remaining if attempts[i] > 0]
            chunks = [
                fresh[pos:pos + size] for pos in range(0, len(fresh), size)
            ]
            chunks.extend([i] for i in suspects)
            if suspects:
                # Retry rounds run their chunks one at a time.  A
                # suspect that kills its worker breaks the whole
                # executor, failing every future in flight — submitted
                # concurrently, one poison cell would charge innocent
                # singletons an attempt per round and abandon them.
                # Sequential dispatch means a crasher can only fail
                # itself; the pool is rebuilt before the next chunk.
                for cells in chunks:
                    batch = _batch_for(cells, now)
                    pool = self._handle(observer)
                    try:
                        future = pool.submit(_run_chunk, fn, batch)
                        _account_submit(cells, batch, now)
                        envelopes = future.result()
                    except (BrokenProcessPool, RuntimeError):
                        self._discard(pool)
                        observer.event("pool_broken")
                        continue
                    except Exception as exc:
                        envelopes = [
                            {"result": _error_record(exc), "seconds": None}
                            for _ in cells
                        ]
                    for i, envelope in zip(cells, envelopes):
                        results[i] = envelope
            else:
                pool = self._handle(observer)
                broken = False
                futures: Dict[object, List[int]] = {}
                try:
                    for cells in chunks:
                        batch = _batch_for(cells, now)
                        future = pool.submit(_run_chunk, fn, batch)
                        _account_submit(cells, batch, now)
                        futures[future] = cells
                except (BrokenProcessPool, RuntimeError):
                    # the executor broke under a concurrent run() before
                    # we finished submitting; collect what we did submit
                    broken = True
                try:
                    for future in as_completed(futures):
                        cells = futures[future]
                        try:
                            envelopes = future.result()
                        except BrokenProcessPool:
                            broken = True
                            break
                        except Exception as exc:  # e.g. an unpicklable chunk
                            envelopes = [
                                {"result": _error_record(exc), "seconds": None}
                                for _ in cells
                            ]
                        for i, envelope in zip(cells, envelopes):
                            results[i] = envelope
                    # A pool break fails every unfinished future at once;
                    # sweep up the chunks that finished before the crash.
                    if broken:
                        for future, cells in futures.items():
                            if not future.done():
                                continue
                            try:
                                envelopes = future.result()
                            except Exception:
                                continue
                            for i, envelope in zip(cells, envelopes):
                                if results[i] is None:
                                    results[i] = envelope
                finally:
                    if broken:
                        self._discard(pool)
                        observer.event("pool_broken")
            retry = []
            for index in remaining:
                if results[index] is not None:
                    continue
                attempts[index] += 1
                if attempts[index] >= MAX_TASK_ATTEMPTS:
                    results[index] = _crash_record(
                        attempts[index],
                        f"{pending[index].name}/{pending[index].analysis}",
                    )
                    observer.event(
                        "task_abandoned",
                        program=pending[index].name,
                        analysis=pending[index].analysis,
                        attempts=attempts[index],
                    )
                else:
                    retry.append(index)
                    observer.event(
                        "task_retry",
                        program=pending[index].name,
                        analysis=pending[index].analysis,
                        attempt=attempts[index],
                    )
            remaining = retry
        assert all(envelope is not None for envelope in results)
        return results


def _execute(
    pending: List[_Task],
    config: dict,
    jobs: int,
    observer: MetricsAggregator,
    pool: Optional[WorkerPool] = None,
    chunk_size: Optional[int] = None,
) -> List[dict]:
    """Run the cache misses, in-process or across a crash-isolated pool.

    Each task gets its *own* config dict: per-task resource budgets
    (``deadline``) are started from the task's own clock, never shared
    or inherited from a sibling task's partially-spent budget — one
    slow program must not shorten the next program's grant.

    A run-owned pool under the fork start method shares the corpus by
    inheritance: the canonical sources are published in
    :data:`_SHARED_SOURCES` before the workers fork, and payloads
    carry indices into the snapshot.  A caller-owned (persistent)
    pool, a spawn context, or a racing concurrent run falls back to
    inlining the source text — workers that did not fork from this
    snapshot cannot see it.
    """
    global _SHARED_SOURCES

    def _inline():
        return [
            (t.source, t.kind, t.analysis, dict(config)) for t in pending
        ]

    if pool is not None:
        if not pending:
            return []
        return pool.run(pending, _inline(), observer, chunk_size=chunk_size)
    if jobs <= 1 or len(pending) <= 1:
        return [_compute(payload) for payload in _inline()]
    own = WorkerPool(jobs)
    shared = own.start_method == "fork" and _SHARED_LOCK.acquire(
        blocking=False
    )
    try:
        if shared:
            table: List[str] = []
            index_of: Dict[str, int] = {}
            for task in pending:
                if task.source not in index_of:
                    index_of[task.source] = len(table)
                    table.append(task.source)
            _SHARED_SOURCES = table
            observer.event("corpus_shared", programs=len(table))
            payloads = [
                (index_of[t.source], t.kind, t.analysis, dict(config))
                for t in pending
            ]
        else:
            payloads = _inline()
        return own.run(pending, payloads, observer, chunk_size=chunk_size)
    finally:
        own.close()
        if shared:
            _SHARED_SOURCES = None
            _SHARED_LOCK.release()
