"""The analyses the batch pipeline can run, as a uniform registry.

Each entry wraps one of the repo's analysis engines behind the same
signature — ``run(subject, config) -> dict`` — with three contracts:

* the returned dict is **pure JSON data** (no AST nodes, no lattice
  elements), so results can cross process boundaries and live in the
  on-disk cache;
* the dict is **deterministic**: every list is explicitly sorted, so
  serializing with ``sort_keys=True`` yields identical bytes whether
  the result was computed serially, in a worker process, or replayed
  from a cache hit;
* ``config_keys`` names exactly the configuration slice the analysis
  reads, which becomes part of its cache key — changing the explorer's
  state budget must not invalidate certification entries, but changing
  the scheme or the high-variable set must invalidate everything that
  consulted the policy.

Policy convention: batch corpora (litmus cases, generated programs)
do not carry bindings, so the registry derives one from the config —
variables named in ``config["high"]`` bind to the scheme's top,
everything else to its bottom (the litmus-suite convention).  Use
``repro certify`` directly when you need a bespoke binding for a
single program.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Tuple, Union

from repro.lang.ast import Program, Stmt, program_size, used_variables
from repro.lattice.chain import four_level, two_level
from repro.lattice.finite import diamond

#: Configuration defaults; ``run_pipeline`` overlays user overrides.
DEFAULT_CONFIG: Dict[str, object] = {
    "scheme": "two-level",
    #: Variables bound to the scheme top; the rest bind to bottom.
    "high": ("h", "h2"),
    #: How the Denning baseline treats cobegin/wait/signal.
    "on_concurrency": "ignore",
    #: Explorer budgets (the pipeline default is deliberately lower
    #: than the library default: batch corpora are many small programs).
    "max_states": 20_000,
    "max_depth": 2_000,
    #: Partial-order reduction for the ``explore`` analysis.
    "por": True,
    #: Per-analysis wall-clock deadline in seconds (None = unlimited).
    #: Hitting it returns a partial result flagged ``degraded`` — see
    #: ``docs/observability.md`` for the degradation contract.
    "deadline": None,
    #: Use the fused single-sweep certifier (``repro.fastpath``) for
    #: ``cert``/``denning``/``lint``.  Byte-identical to the reference
    #: implementation by contract, so deliberately **not** part of any
    #: analysis's ``config_keys`` — toggling it must not re-key caches.
    "fastpath": True,
}

_SCHEMES = {
    "two-level": two_level,
    "four-level": four_level,
    "diamond": diamond,
}

Subject = Union[Program, Stmt]


def scheme_names() -> Tuple[str, ...]:
    """The schemes the pipeline configuration accepts."""
    return tuple(sorted(_SCHEMES))


def _binding(subject: Subject, config: dict):
    """The config-derived policy: ``high`` names top, the rest bottom."""
    from repro.core.binding import StaticBinding

    scheme = _SCHEMES[str(config["scheme"])]()
    stmt = subject.body if isinstance(subject, Program) else subject
    high = frozenset(config["high"])
    classes = {
        name: (scheme.top if name in high else scheme.bottom)
        for name in used_variables(stmt)
    }
    return StaticBinding(scheme, classes)


def _fastpath_enabled(config: dict) -> bool:
    return bool(config.get("fastpath", True))


def _reference_cert(subject: Subject, config: dict) -> dict:
    from repro.core.cfm import certify

    report = certify(subject, _binding(subject, config))
    return {
        "certified": report.certified,
        "checks": len(report.checks),
        "violations": sorted(
            {c.rule for c in report.violations}
        ),
    }


def _run_cert(subject: Subject, config: dict) -> dict:
    if _fastpath_enabled(config):
        from repro.fastpath import fused_cert

        fast = fused_cert(subject, config)
        if fast is not None:
            return fast
    # Single reference call site: declined-fast-path and disabled-fast-
    # path runs raise through identical frames (error records embed
    # tracebacks, and ``fastpath`` is not part of the cache key).
    return _reference_cert(subject, config)


def _reference_denning(subject: Subject, config: dict) -> dict:
    from repro.core.denning import certify_denning

    report = certify_denning(
        subject,
        _binding(subject, config),
        on_concurrency=str(config["on_concurrency"]),
    )
    return {
        "certified": report.certified,
        "checks": len(report.checks),
        "violations": sorted({c.rule for c in report.violations}),
        "unsupported": len(report.unsupported),
    }


def _run_denning(subject: Subject, config: dict) -> dict:
    if _fastpath_enabled(config):
        from repro.fastpath import fused_denning

        fast = fused_denning(subject, config)
        if fast is not None:
            return fast
    return _reference_denning(subject, config)


def _run_fs(subject: Subject, config: dict) -> dict:
    from repro.core.flowsensitive import certify_flow_sensitive

    report = certify_flow_sensitive(subject, _binding(subject, config))
    return {
        "certified": report.certified,
        "violations": len(report.violations),
    }


def _run_prove(subject: Subject, config: dict) -> dict:
    from repro.lang.procs import resolve_subject
    from repro.logic.checker import check_proof
    from repro.logic.extract import is_completely_invariant
    from repro.logic.generator import generate_proof

    binding = _binding(subject, config)
    resolved, _ = resolve_subject(subject)
    proof = generate_proof(resolved, binding)
    checked = check_proof(proof, binding.scheme)
    return {
        "valid": checked.ok,
        "rules": proof.size(),
        "problems": len(checked.problems),
        "completely_invariant": is_completely_invariant(proof, binding),
    }


def _reference_lint(subject: Subject, config: dict) -> dict:
    from repro.staticlint import run_lint

    result = run_lint(subject, binding=_binding(subject, config))
    return {
        "findings": len(result.diagnostics),
        "errors": len(result.errors),
        # filter_diagnostics already sorts by Diagnostic.sort_key.
        "diagnostics": [d.to_dict() for d in result.diagnostics],
    }


def _run_lint(subject: Subject, config: dict) -> dict:
    # Lint diagnostics carry source spans, so the fast path memoizes the
    # reference result whole-program (keyed by structure + locations)
    # rather than re-deriving it: one dict assembly, zero divergence.
    use_fast = _fastpath_enabled(config)
    if use_fast:
        from repro.fastpath import lint_memo_get

        cached = lint_memo_get(subject, config)
        if cached is not None:
            return cached
    result = _reference_lint(subject, config)
    if use_fast:
        from repro.fastpath import lint_memo_put

        lint_memo_put(subject, config, result)
    return result


def _run_explore(subject: Subject, config: dict) -> dict:
    from repro.observe.budget import Budget
    from repro.runtime.explorer import explore

    deadline = config.get("deadline")
    budget = Budget(
        max_states=int(config["max_states"]),
        max_depth=int(config["max_depth"]),
        deadline=float(deadline) if deadline is not None else None,
    )
    result = explore(subject, budget=budget, por=bool(config["por"]))
    return {
        "complete": result.complete,
        "degraded": result.degraded,
        "limit": result.limit,
        "abandoned": result.abandoned,
        "deadlock_free": result.deadlock_free,
        "states": result.states_visited,
        "transitions": result.transitions,
        "por": result.por,
        "reduced_states": result.reduced_states,
        "peak_processes": result.peak_processes,
        "outcomes": [o.to_dict() for o in result.sorted_outcomes()],
    }


def _run_metrics(subject: Subject, config: dict) -> dict:
    stmt = subject.body if isinstance(subject, Program) else subject
    return {
        "statements": program_size(stmt),
        "variables": len(used_variables(stmt)),
    }


@dataclass(frozen=True)
class AnalysisSpec:
    """One pipeline-runnable analysis.

    ``config_keys`` is the slice of the pipeline configuration the
    analysis reads; only those keys enter its cache key.
    """

    name: str
    config_keys: Tuple[str, ...]
    run: Callable[[Subject, dict], dict]
    description: str

    def config_slice(self, config: dict) -> Dict[str, object]:
        """The cache-relevant subset of ``config`` for this analysis."""
        return {k: config[k] for k in self.config_keys}


#: Registry of every analysis ``repro batch`` can run.
ANALYSES: Dict[str, AnalysisSpec] = {
    spec.name: spec
    for spec in (
        AnalysisSpec(
            "cert",
            ("scheme", "high"),
            _run_cert,
            "Concurrent Flow Mechanism certification (Figure 2)",
        ),
        AnalysisSpec(
            "denning",
            ("scheme", "high", "on_concurrency"),
            _run_denning,
            "sequential Denning & Denning baseline",
        ),
        AnalysisSpec(
            "fs",
            ("scheme", "high"),
            _run_fs,
            "flow-sensitive certification",
        ),
        AnalysisSpec(
            "prove",
            ("scheme", "high"),
            _run_prove,
            "Theorem 1 proof generation + independent check",
        ),
        AnalysisSpec(
            "lint",
            ("scheme", "high"),
            _run_lint,
            "static lint (deadlock, races, dataflow, labels)",
        ),
        AnalysisSpec(
            "explore",
            ("max_states", "max_depth", "por", "deadline"),
            _run_explore,
            "exhaustive interleaving exploration",
        ),
        AnalysisSpec(
            "metrics",
            (),
            _run_metrics,
            "program size metrics",
        ),
    )
}


def analysis_names() -> Tuple[str, ...]:
    """Registered analysis names, sorted."""
    return tuple(sorted(ANALYSES))
