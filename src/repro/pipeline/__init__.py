"""Batch analysis pipeline: parallel workers + content-addressed cache.

The production-scale entry point for running any subset of the repo's
analyses (CFM certification, the Denning baseline, flow-sensitive
certification, Theorem 1 proof search, static lint, exhaustive
exploration) over whole corpora of programs:

>>> from repro.pipeline import run_pipeline
>>> from repro.workloads.suites import corpus
>>> result = run_pipeline(corpus("litmus"), analyses=("cert",))
>>> result.program("explicit")["analyses"]["cert"]["certified"]
False

Results are memoized in an on-disk content-addressed cache (keyed by
canonical program text x analysis x config slice x package version),
so re-running over an unchanged corpus is near-free; see
``docs/pipeline.md`` for the cache layout and invalidation rules, and
``repro batch --help`` for the CLI surface.
"""

from repro.pipeline.analyses import (
    ANALYSES,
    DEFAULT_CONFIG,
    AnalysisSpec,
    analysis_names,
    scheme_names,
)
from repro.pipeline.cache import (
    CacheStats,
    MemoryLRU,
    ResultCache,
    TieredCache,
    cache_key,
)
from repro.pipeline.runner import PipelineResult, WorkerPool, run_pipeline

__all__ = [
    "ANALYSES",
    "DEFAULT_CONFIG",
    "AnalysisSpec",
    "CacheStats",
    "MemoryLRU",
    "PipelineResult",
    "ResultCache",
    "TieredCache",
    "WorkerPool",
    "analysis_names",
    "cache_key",
    "run_pipeline",
    "scheme_names",
]
