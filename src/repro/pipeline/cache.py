"""Content-addressed on-disk result cache for the batch pipeline.

Every cached entry is addressed by the SHA-256 of a canonical JSON
document describing *everything the result depends on*: the canonical
(pretty-printed) program text, the analysis name, the slice of the
pipeline configuration that analysis reads, and the package version.
Two consequences:

* a cache never returns a stale result — any change to the program,
  the policy/lattice configuration, or the code version lands on a
  different key, so invalidation is automatic and no entry is ever
  mutated in place;
* the cache is safe to share between concurrent pipelines — writes go
  through a temp file + ``os.replace`` (atomic on POSIX), and losing a
  race merely rewrites identical bytes.

Layout: ``<root>/<key[:2]>/<key>.json`` (two-level fan-out keeps
directories small on large corpora).  Each file holds
``{"key": ..., "analysis": ..., "result": ...}``; a file that fails to
parse, or whose embedded key disagrees with its address, is treated as
a miss and recomputed — corruption can cost time, never correctness.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from dataclasses import dataclass, field
from typing import Dict, Optional

#: Bump when the on-disk entry format changes (part of every key).
CACHE_FORMAT = 1


def cache_key(
    source: str,
    kind: str,
    analysis: str,
    config: Dict[str, object],
    version: str,
) -> str:
    """The content address of one (program, analysis, config) result.

    ``source`` must be the *canonical* program text (the pretty-printed
    AST, not the raw input), so formatting-only differences between
    inputs still share an entry.  ``config`` should already be sliced
    down to the keys the analysis actually reads (see
    :data:`repro.pipeline.analyses.ANALYSES`), so that e.g. changing
    explorer budgets does not invalidate certification entries.
    """
    document = json.dumps(
        {
            "format": CACHE_FORMAT,
            "source": source,
            "kind": kind,
            "analysis": analysis,
            "config": config,
            "version": version,
        },
        sort_keys=True,
        separators=(",", ":"),
        default=list,
    )
    return hashlib.sha256(document.encode("utf-8")).hexdigest()


@dataclass
class CacheStats:
    """Hit/miss accounting for one pipeline run."""

    hits: int = 0
    misses: int = 0
    writes: int = 0
    #: Entries that existed but failed validation and were recomputed.
    corrupt: int = 0

    def to_dict(self) -> Dict[str, int]:
        """JSON shape of the counters."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "writes": self.writes,
            "corrupt": self.corrupt,
        }


class ResultCache:
    """A content-addressed store of analysis results under ``root``.

    All methods degrade gracefully: an unreadable or corrupted entry is
    a miss, an unwritable directory turns ``put`` into a no-op.  The
    pipeline must never fail because its cache did.
    """

    def __init__(self, root: str):
        self.root = root
        self.stats = CacheStats()

    def _path(self, key: str) -> str:
        return os.path.join(self.root, key[:2], f"{key}.json")

    def get(self, key: str) -> Optional[dict]:
        """The cached result for ``key``, or ``None`` on miss/corruption."""
        path = self._path(key)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except FileNotFoundError:
            self.stats.misses += 1
            return None
        except (OSError, ValueError):
            self.stats.corrupt += 1
            self.stats.misses += 1
            return None
        if not isinstance(payload, dict) or payload.get("key") != key \
                or "result" not in payload:
            self.stats.corrupt += 1
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return payload["result"]

    def put(self, key: str, analysis: str, result: dict) -> None:
        """Atomically store ``result`` under ``key`` (best effort)."""
        path = self._path(key)
        payload = {"key": key, "analysis": analysis, "result": result}
        try:
            os.makedirs(os.path.dirname(path), exist_ok=True)
            fd, tmp = tempfile.mkstemp(
                dir=os.path.dirname(path), suffix=".tmp"
            )
            try:
                with os.fdopen(fd, "w", encoding="utf-8") as handle:
                    json.dump(payload, handle, sort_keys=True)
                os.replace(tmp, path)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
        except OSError:
            return
        self.stats.writes += 1
