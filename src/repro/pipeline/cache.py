"""Content-addressed on-disk result cache for the batch pipeline.

Every cached entry is addressed by the SHA-256 of a canonical JSON
document describing *everything the result depends on*: the canonical
(pretty-printed) program text, the analysis name, the slice of the
pipeline configuration that analysis reads, and the package version.
Two consequences:

* a cache never returns a stale result — any change to the program,
  the policy/lattice configuration, or the code version lands on a
  different key, so invalidation is automatic and no entry is ever
  mutated in place;
* the cache is safe to share between concurrent pipelines — writes go
  through a temp file + ``os.replace`` (atomic on POSIX), and losing a
  race merely rewrites identical bytes.

Layout: ``<root>/<key[:2]>/<key>.json`` (two-level fan-out keeps
directories small on large corpora).  Each file holds
``{"key": ..., "analysis": ..., "result": ...}``; a file that fails to
parse, or whose embedded key disagrees with its address, is treated as
a miss and recomputed — corruption can cost time, never correctness.
"""

from __future__ import annotations

import copy
import hashlib
import json
import os
import tempfile
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Optional

#: Bump when the on-disk entry format changes (part of every key).
CACHE_FORMAT = 1


def _reject_non_json(value: object) -> object:
    """``json.dumps`` fallback for :func:`cache_key`: always raises.

    Silently coercing arbitrary objects (the old behaviour was
    ``default=list``) lets two distinct configurations alias one cache
    key — a set's iteration order is arbitrary, and any stateful
    iterable serializes as whatever it happened to yield.  A loud
    ``TypeError`` turns a wrong-result bug into an immediate one.
    """
    raise TypeError(
        f"cache_key config value {value!r} of type "
        f"{type(value).__name__} is not JSON-serializable; cache keys "
        "require plain JSON config values (normalize sets and custom "
        "objects before keying)"
    )


def cache_key(
    source: str,
    kind: str,
    analysis: str,
    config: Dict[str, object],
    version: str,
) -> str:
    """The content address of one (program, analysis, config) result.

    ``source`` must be the *canonical* program text (the pretty-printed
    AST, not the raw input), so formatting-only differences between
    inputs still share an entry.  ``config`` should already be sliced
    down to the keys the analysis actually reads (see
    :data:`repro.pipeline.analyses.ANALYSES`), so that e.g. changing
    explorer budgets does not invalidate certification entries.

    Config values must be plain JSON data (tuples are fine — they
    serialize exactly like lists); anything else raises ``TypeError``
    rather than silently coercing into a possibly-aliasing key.
    """
    document = json.dumps(
        {
            "format": CACHE_FORMAT,
            "source": source,
            "kind": kind,
            "analysis": analysis,
            "config": config,
            "version": version,
        },
        sort_keys=True,
        separators=(",", ":"),
        default=_reject_non_json,
    )
    return hashlib.sha256(document.encode("utf-8")).hexdigest()


@dataclass
class CacheStats:
    """Hit/miss accounting for one pipeline run."""

    hits: int = 0
    misses: int = 0
    writes: int = 0
    #: Entries that existed but failed validation and were recomputed.
    corrupt: int = 0

    def to_dict(self) -> Dict[str, int]:
        """JSON shape of the counters."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "writes": self.writes,
            "corrupt": self.corrupt,
        }


class ResultCache:
    """A content-addressed store of analysis results under ``root``.

    All methods degrade gracefully: an unreadable or corrupted entry is
    a miss, an unwritable directory turns ``put`` into a no-op.  The
    pipeline must never fail because its cache did.
    """

    def __init__(self, root: str):
        self.root = root
        self.stats = CacheStats()

    def _path(self, key: str) -> str:
        return os.path.join(self.root, key[:2], f"{key}.json")

    def get(self, key: str) -> Optional[dict]:
        """The cached result for ``key``, or ``None`` on miss/corruption."""
        path = self._path(key)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except FileNotFoundError:
            self.stats.misses += 1
            return None
        except (OSError, ValueError):
            self.stats.corrupt += 1
            self.stats.misses += 1
            return None
        if not isinstance(payload, dict) or payload.get("key") != key \
                or "result" not in payload:
            self.stats.corrupt += 1
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return payload["result"]

    def put(self, key: str, analysis: str, result: dict) -> None:
        """Atomically store ``result`` under ``key`` (best effort).

        The temp file is removed in a ``finally`` whenever the write
        did not complete — a serialization error or a failing
        ``os.replace`` must never strand ``*.json.tmp`` litter in the
        cache root (a long-running service makes this path hot).  Any
        write failure, including an unserializable ``result``, is
        swallowed: the pipeline must never fail because its cache did.
        """
        path = self._path(key)
        payload = {"key": key, "analysis": analysis, "result": result}
        tmp: Optional[str] = None
        try:
            os.makedirs(os.path.dirname(path), exist_ok=True)
            fd, tmp = tempfile.mkstemp(
                dir=os.path.dirname(path), suffix=".json.tmp"
            )
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(payload, handle, sort_keys=True)
            os.replace(tmp, path)
            tmp = None  # the write landed; nothing to clean up
            self.stats.writes += 1
        except (OSError, TypeError, ValueError):
            return
        finally:
            if tmp is not None:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass


class MemoryLRU:
    """A bounded, thread-safe in-memory LRU of analysis results.

    The memory tier of a :class:`TieredCache`: keyed by the same
    :func:`cache_key` addresses as the on-disk store, so promoting or
    demoting an entry between tiers never changes what it means.
    ``get`` returns a deep copy — entries are shared across service
    requests and threads, and a caller mutating its result document
    must not corrupt every later hit.

    ``capacity`` bounds the entry count (the results this repo caches
    are small JSON documents; an entry cap is predictable where a byte
    cap would be guesswork).  ``capacity=0`` disables the tier.
    """

    def __init__(self, capacity: int = 4096):
        if capacity < 0:
            raise ValueError(f"capacity must be >= 0, got {capacity}")
        self.capacity = capacity
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._lock = threading.Lock()
        self._entries: "OrderedDict[str, dict]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: str) -> Optional[dict]:
        """The cached result for ``key`` (a fresh copy), or ``None``."""
        with self._lock:
            try:
                value = self._entries[key]
            except KeyError:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return copy.deepcopy(value)

    def put(self, key: str, result: dict) -> None:
        """Insert ``result`` under ``key``, evicting the LRU entry."""
        if self.capacity == 0:
            return
        with self._lock:
            self._entries[key] = copy.deepcopy(result)
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1

    def clear(self) -> None:
        """Drop every entry (counters are kept)."""
        with self._lock:
            self._entries.clear()

    def to_dict(self) -> Dict[str, int]:
        """JSON shape of the tier's counters."""
        with self._lock:
            return {
                "capacity": self.capacity,
                "entries": len(self._entries),
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
            }


class TieredCache:
    """A :class:`MemoryLRU` in front of an (optional) on-disk store.

    Drop-in for :class:`ResultCache` where ``run_pipeline`` is
    concerned (``get``/``put``/``stats``): reads try memory first and
    promote disk hits; writes land in both tiers.  The ``stats``
    object is the *combined* hit/miss accounting (a memory hit is
    still a cache hit), so pipeline counters keep meaning what they
    always meant; per-tier counters live in :meth:`lru_stats`.
    """

    def __init__(self, disk: Optional[ResultCache], lru: Optional[MemoryLRU] = None):
        self.disk = disk
        self.lru = lru if lru is not None else MemoryLRU()
        self.stats = CacheStats()

    @property
    def root(self) -> Optional[str]:
        """The disk tier's root directory (``None`` when memory-only)."""
        return self.disk.root if self.disk is not None else None

    def get(self, key: str) -> Optional[dict]:
        """Memory first, then disk (promoting the entry on a disk hit)."""
        found = self.lru.get(key)
        if found is not None:
            self.stats.hits += 1
            return found
        if self.disk is not None:
            # Count corruption by delta, not by mirroring the disk
            # tier's cumulative counter: a hit would otherwise leave
            # the combined counter stale, and two tiered caches
            # sharing one disk store would each claim the other's
            # corrupt entries.
            corrupt_before = self.disk.stats.corrupt
            found = self.disk.get(key)
            self.stats.corrupt += self.disk.stats.corrupt - corrupt_before
            if found is not None:
                self.lru.put(key, found)
                self.stats.hits += 1
                return found
        self.stats.misses += 1
        return None

    def put(self, key: str, analysis: str, result: dict) -> None:
        """Store ``result`` in both tiers (disk write is best effort)."""
        self.lru.put(key, result)
        if self.disk is not None:
            # The disk tier swallows write failures; only count a
            # combined write when its own counter says one landed.
            writes_before = self.disk.stats.writes
            self.disk.put(key, analysis, result)
            self.stats.writes += self.disk.stats.writes - writes_before
        elif self.lru.capacity > 0:
            self.stats.writes += 1

    def lru_stats(self) -> Dict[str, int]:
        """The memory tier's own counters (see :class:`MemoryLRU`)."""
        return self.lru.to_dict()
