"""Dynamic label tracking — a runtime mirror of the flow logic.

The monitor maintains an :class:`~repro.core.policy.InformationState`
(Definition 2: the current class of every variable) and, per process,
the runtime counterparts of the certification variables:

* a *local context stack* — one entry per entered ``if``/``while``
  body, holding the guard's class (popped on exit);
* a monotone *global label* — raised by loop-guard evaluations
  (conditional termination) and by completed ``wait`` operations
  (conditional delay), exactly the two sources of global flows the
  paper identifies.

Label propagation follows the Figure 1 axioms:

* assignment:      ``class(x) := class(e) (+) local (+) global``
* signal:          ``class(sem) (+)= local (+) global``
* wait:            ``class(sem) (+)= local (+) global`` and
                   ``global (+)= class(sem) (+) local`` (old class)
* loop evaluation: ``global (+)= class(e) (+) local``
* spawn:           children inherit the parent's contexts
* join:            the parent's global absorbs each child's global

For a CFM-certified program the dynamic class of every variable stays
below its static binding at all times — an empirical soundness check
exercised heavily in the test suite and benchmarks.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Tuple

from repro.core.binding import StaticBinding
from repro.core.policy import InformationState, PolicySpec
from repro.errors import RuntimeFault
from repro.lang.ast import Expr, expr_variables
from repro.lattice.base import Element, Lattice
from repro.runtime.machine import Pid


class TaintMonitor:
    """Attachable dynamic label monitor (see :class:`~repro.runtime.machine.Machine`)."""

    def __init__(self, scheme: Lattice, initial: Mapping[str, Element]):
        self.scheme = scheme
        self.state = InformationState(scheme, initial)
        self._locals: Dict[Pid, Tuple[Element, ...]] = {(): ()}
        self._globals: Dict[Pid, Element] = {(): scheme.bottom}

    @staticmethod
    def from_binding(binding: StaticBinding, variables) -> "TaintMonitor":
        """Start every variable at its static binding.

        The natural initial information state: each variable initially
        holds information of exactly its own class.
        """
        initial = {name: binding.of_var(name) for name in variables}
        return TaintMonitor(binding.scheme, initial)

    # -- context helpers -----------------------------------------------------

    def _stack(self, pid: Pid) -> Tuple[Element, ...]:
        try:
            return self._locals[pid]
        except KeyError:
            raise RuntimeFault(f"monitor has no context for process {pid!r}") from None

    def local_label(self, pid: Pid) -> Element:
        """The runtime ``local``: join of the context stack."""
        return self.scheme.join_all(self._stack(pid))

    def global_label(self, pid: Pid) -> Element:
        """The runtime ``global`` of the process."""
        return self._globals[pid]

    def expr_label(self, expr: Expr) -> Element:
        """The current class of an expression (Definition 2)."""
        labels = [self.state.cls(name) for name in expr_variables(expr)]
        return self.scheme.join_all(labels)

    def _context(self, pid: Pid) -> Element:
        return self.scheme.join(self.local_label(pid), self._globals[pid])

    # -- machine callbacks ------------------------------------------------------

    def on_assign(self, pid: Pid, target: str, expr: Expr) -> None:
        self.state.set_cls(
            target, self.scheme.join(self.expr_label(expr), self._context(pid))
        )

    def on_branch(self, pid: Pid, cond: Expr) -> None:
        self._locals[pid] = self._stack(pid) + (self.expr_label(cond),)

    def on_loop_eval(self, pid: Pid, cond: Expr, taken: bool) -> None:
        guard = self.scheme.join(self.expr_label(cond), self.local_label(pid))
        self._globals[pid] = self.scheme.join(self._globals[pid], guard)
        if taken:
            self._locals[pid] = self._stack(pid) + (self.expr_label(cond),)

    def on_pop_local(self, pid: Pid) -> None:
        stack = self._stack(pid)
        if not stack:
            raise RuntimeFault(f"monitor local stack underflow in {pid!r}")
        self._locals[pid] = stack[:-1]

    def on_wait(self, pid: Pid, sem: str) -> None:
        old_sem = self.state.cls(sem)
        context = self._context(pid)
        # global (+)= sem (+) local (old values); sem (+)= local (+) global.
        self._globals[pid] = self.scheme.join(
            self._globals[pid], self.scheme.join(old_sem, self.local_label(pid))
        )
        self.state.set_cls(sem, self.scheme.join(old_sem, context))

    def on_signal(self, pid: Pid, sem: str) -> None:
        self.state.raise_cls(sem, self._context(pid))

    def on_spawn(self, pid: Pid, children: List[Pid]) -> None:
        for child in children:
            self._locals[child] = self._locals[pid]
            self._globals[child] = self._globals[pid]

    def on_child_done(self, parent: Pid, child: Pid) -> None:
        self._globals[parent] = self.scheme.join(
            self._globals[parent], self._globals[child]
        )
        self._locals.pop(child, None)
        self._globals.pop(child, None)

    def on_join(self, parent: Pid) -> None:
        """All children joined; nothing further (absorption happened per child)."""

    # -- results -----------------------------------------------------------------

    def violations(self, binding: StaticBinding) -> List[Tuple[str, Element, Element]]:
        """Variables whose current class exceeds the binding (Definition 6)."""
        return PolicySpec.from_binding(binding).check(self.state)

    def respects(self, binding: StaticBinding) -> bool:
        """True iff no variable's current class exceeds its binding."""
        return not self.violations(binding)

    # -- snapshot / copy (for the explorer) -----------------------------------------

    def snapshot(self) -> Tuple:
        return (
            tuple(sorted(self.state.as_dict().items(), key=lambda kv: kv[0])),
            tuple(sorted(self._locals.items())),
            tuple(sorted(self._globals.items())),
        )

    def copy(self) -> "TaintMonitor":
        clone = object.__new__(type(self))
        clone.scheme = self.scheme
        clone.state = self.state.copy()
        clone._locals = dict(self._locals)
        clone._globals = dict(self._globals)
        return clone
