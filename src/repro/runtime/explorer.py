"""Exhaustive interleaving exploration — a small model checker.

``explore`` walks every reachable interleaving of a program (DFS with
state memoization), collecting the set of distinct *outcomes*: final
stores of completed runs, deadlocked states, and depth cutoffs (which
flag possible divergence).  The paper argues operationally about what
parallel programs *can* transmit ("it could occur and would be
considered by CFM"); the explorer makes those possibility claims
executable — e.g. that Figure 3 is deadlock-free under every schedule
and always copies the zero-ness of ``x`` into ``y``.

State identity includes the attached monitor (if any), so label
evolution can be explored exhaustively too.

``explore(..., por=True)`` enables an independence-based partial-order
reduction: when some enabled process's next action has a variable
footprint disjoint from everything every *other* process may ever
touch, the two orders of any pair of such steps commute, so only one
representative interleaving is expanded from that state.  The
reduction preserves the outcome set exactly (see ``docs/pipeline.md``
for the argument) while visiting strictly fewer states on programs
with thread-local work.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Set, Tuple, Union

from repro.errors import ExplorationLimitExceeded
from repro.observe.budget import DEADLINE_CHECK_EVERY, Budget
from repro.lang.ast import (
    Assign,
    If,
    Program,
    Signal,
    Stmt,
    Wait,
    While,
    expr_variables,
    used_variables,
)
from repro.runtime.eval import Value
from repro.runtime.machine import VALUE_SKETCH_BITS, Machine, Pid, format_value

#: Outcome statuses.
COMPLETED = "completed"
DEADLOCK = "deadlock"
CUTOFF = "cutoff"


def _json_value(value: Value) -> object:
    """A value as JSON can carry it: huge ints become sketch strings."""
    if (
        isinstance(value, int)
        and not isinstance(value, bool)
        and value.bit_length() > VALUE_SKETCH_BITS
    ):
        return format_value(value)
    return value


@dataclass(frozen=True)
class Outcome:
    """One terminal observation: a status plus the final store."""

    status: str
    store: Tuple[Tuple[str, Value], ...]

    def value(self, name: str) -> Value:
        for key, val in self.store:
            if key == name:
                return val
        raise KeyError(name)

    def project(self, names) -> "Outcome":
        """Restrict the store to ``names`` (an observer's view)."""
        keep = frozenset(names)
        return Outcome(self.status, tuple(kv for kv in self.store if kv[0] in keep))

    def sort_key(self) -> Tuple:
        """A total order on outcomes, stable across processes and runs.

        Serialization paths must never rely on set/dict iteration order
        (which varies with ``PYTHONHASHSEED``); sorting by this key
        makes any outcome listing canonical.
        """
        return (self.status, self.store)

    def to_dict(self) -> Dict[str, object]:
        """JSON shape: ``{"status": ..., "store": [[name, value], ...]}``.

        Integers past :data:`~repro.runtime.machine.VALUE_SKETCH_BITS`
        become magnitude-sketch strings — ``json.dumps`` shares
        CPython's int->str digit limit, and a value a bounded loop
        squared into megadigits would otherwise make the outcome
        unserializable.
        """
        return {
            "status": self.status,
            "store": [[k, _json_value(v)] for k, v in self.store],
        }

    def __str__(self) -> str:
        items = ", ".join(f"{k}={format_value(v)}" for k, v in self.store)
        return f"{self.status}({items})"


class ExplorationResult:
    """Everything ``explore`` learned."""

    def __init__(
        self,
        outcomes: FrozenSet[Outcome],
        states_visited: int,
        transitions: int,
        complete: bool,
        schedules: Dict[Outcome, Tuple[Pid, ...]],
        por: bool = False,
        abandoned: int = 0,
        limit: Optional[str] = None,
        elapsed_seconds: float = 0.0,
        reduced_states: int = 0,
        peak_processes: int = 0,
    ):
        self.outcomes = outcomes
        self.states_visited = states_visited
        self.transitions = transitions
        #: True when no budget limit truncated the exploration.
        self.complete = complete
        #: One witness schedule per outcome (replayable via FixedScheduler).
        self.schedules = dict(schedules)
        #: True when partial-order reduction was active for this run.
        self.por = por
        #: Frontier entries discarded when a limit fired (the popped
        #: state plus everything left on the stack) — the audit trail
        #: behind ``complete=False``.
        self.abandoned = abandoned
        #: Which budget fired: ``"states"``, ``"depth"``, ``"deadline"``
        #: or ``None`` when the exploration ran to exhaustion.
        self.limit = limit
        #: Wall-clock seconds the exploration took (volatile — never
        #: part of a deterministic document).
        self.elapsed_seconds = elapsed_seconds
        #: States at which the POR ample-set reduction actually fired.
        self.reduced_states = reduced_states
        #: Largest live process count in any visited state.
        self.peak_processes = peak_processes

    @property
    def degraded(self) -> bool:
        """True when a budget truncated the exploration (partial result)."""
        return not self.complete

    @property
    def completed_outcomes(self) -> FrozenSet[Outcome]:
        return frozenset(o for o in self.outcomes if o.status == COMPLETED)

    @property
    def deadlock_outcomes(self) -> FrozenSet[Outcome]:
        return frozenset(o for o in self.outcomes if o.status == DEADLOCK)

    @property
    def deadlock_free(self) -> bool:
        """No reachable deadlock (meaningful when ``complete``)."""
        return not self.deadlock_outcomes

    def final_values(self, name: str) -> Set[Value]:
        """All values ``name`` can hold at completion."""
        return {o.value(name) for o in self.completed_outcomes}

    def sorted_outcomes(self) -> List[Outcome]:
        """The outcomes in canonical order (see :meth:`Outcome.sort_key`)."""
        return sorted(self.outcomes, key=Outcome.sort_key)

    def __repr__(self) -> str:
        return (
            f"<ExplorationResult {len(self.outcomes)} outcomes, "
            f"{self.states_visited} states, complete={self.complete}>"
        )


def _action_footprint(head) -> FrozenSet[str]:
    """Variables the next atomic action of a process reads or writes.

    Semaphore operations count as read+write of the semaphore (a
    ``signal`` can enable a blocked ``wait``, so two operations on the
    same semaphore never commute).  ``skip`` touches nothing.
    """
    if isinstance(head, Assign):
        return expr_variables(head.expr) | {head.target}
    if isinstance(head, (If, While)):
        return expr_variables(head.cond)
    if isinstance(head, (Wait, Signal)):
        return frozenset((head.sem,))
    return frozenset()


def _future_footprints(machine: Machine, cache: Dict[int, FrozenSet[str]]):
    """Per-process union of every variable its continuation can touch.

    Every action a process (or any process it later spawns) can ever
    perform sits in the subtree of some statement currently on its
    continuation — loop bodies stay attached to their ``while`` node
    and ``cobegin`` branches are children of the ``cobegin`` — so the
    statically collected variable set over-approximates the process's
    entire future footprint.  ``cache`` memoizes per statement ``uid``
    (the AST is shared across all machine copies of one exploration).
    """
    footprints = {}
    for pid, proc in machine.processes.items():
        fp: Set[str] = set()
        for item in proc.continuation:
            if isinstance(item, Stmt):
                vars_ = cache.get(item.uid)
                if vars_ is None:
                    vars_ = used_variables(item)
                    cache[item.uid] = vars_
                fp |= vars_
        footprints[pid] = fp
    return footprints


def _ample(machine: Machine, enabled: List[Pid], cache) -> List[Pid]:
    """Pick a sound subset of ``enabled`` to expand (POR step).

    If some enabled process's next action touches only variables no
    other live process can ever touch again, that action commutes with
    every other-process action in any future schedule, and a maximal
    run reaching a terminal state must eventually perform it (it can
    never be disabled, and completion/deadlock both require this
    process to move).  Expanding only that process therefore preserves
    the exact set of completed and deadlocked outcomes.  When no such
    process exists, the full enabled set is returned (no reduction).
    """
    footprints = _future_footprints(machine, cache)
    for pid in enabled:
        action = _action_footprint(machine.processes[pid].head())
        if all(
            action.isdisjoint(fp)
            for other, fp in footprints.items()
            if other != pid
        ):
            return [pid]
    return enabled


def explore(
    subject: Union[Program, Stmt],
    store: Optional[Dict[str, Value]] = None,
    monitor=None,
    max_states: int = 200_000,
    max_depth: int = 2_000,
    on_limit: str = "mark",
    por: bool = False,
    budget: Optional[Budget] = None,
    emitter=None,
) -> ExplorationResult:
    """Explore every interleaving of ``subject``.

    ``monitor`` (optional) is copied along each branch, so e.g. a
    :class:`~repro.runtime.taint.TaintMonitor` can be exhaustively
    checked.  ``max_states`` bounds distinct states; ``max_depth``
    bounds schedule length (hitting it records a ``cutoff`` outcome —
    evidence of possible divergence).  ``on_limit`` is ``"mark"``
    (record incompleteness in the result) or ``"raise"``.

    ``budget`` (a :class:`repro.observe.Budget`) unifies the limits:
    its non-``None`` fields override ``max_states``/``max_depth``, and
    its ``deadline`` bounds wall-clock time.  Hitting any limit under
    ``on_limit="mark"`` returns the partial result *flagged degraded*
    (``complete=False``, ``limit`` naming the budget that fired,
    ``abandoned`` counting the discarded frontier) — never an
    exception.  ``emitter`` (a :class:`repro.observe.TraceEmitter`)
    receives one ``explore`` span with the run's counters.

    ``por=True`` enables the independence-based partial-order
    reduction (see :func:`_ample`): same outcome set, usually fewer
    states.  A machine with a monitor attached is never reduced —
    monitor snapshots can distinguish interleavings that the store
    cannot, so commuting steps would not be outcome-preserving.
    """
    if budget is not None:
        if budget.max_states is not None:
            max_states = budget.max_states
        if budget.max_depth is not None:
            max_depth = budget.max_depth
    clock = (budget or Budget()).start()
    has_deadline = budget is not None and budget.deadline is not None
    started = time.perf_counter()

    root = Machine(subject, store=store, monitor=monitor)
    reduce = por and monitor is None
    footprint_cache: Dict[int, FrozenSet[str]] = {}
    visited: Set[Tuple] = set()
    outcomes: Set[Outcome] = set()
    schedules: Dict[Outcome, Tuple[Pid, ...]] = {}
    states_visited = 0
    transitions = 0
    reduced_states = 0
    peak_processes = 0
    complete = True
    limit: Optional[str] = None
    abandoned = 0

    def record(outcome: Outcome, schedule: Tuple[Pid, ...]) -> None:
        if outcome not in outcomes:
            outcomes.add(outcome)
            schedules[outcome] = schedule

    stack: List[Tuple[Machine, Tuple[Pid, ...]]] = [(root, ())]
    while stack:
        machine, schedule = stack.pop()
        snap = machine.snapshot()
        if snap in visited:
            continue
        if states_visited >= max_states:
            # The budget is spent *before* this new state is counted,
            # so the result reports exactly ``max_states`` states.
            if on_limit == "raise":
                raise ExplorationLimitExceeded(
                    f"more than {max_states} distinct states"
                )
            complete = False
            limit = "states"
            abandoned = len(stack) + 1
            break
        if (
            has_deadline
            and states_visited % DEADLINE_CHECK_EVERY == 0
            and clock.expired()
        ):
            if on_limit == "raise":
                raise ExplorationLimitExceeded(
                    f"deadline of {budget.deadline}s exceeded"
                )
            complete = False
            limit = "deadline"
            abandoned = len(stack) + 1
            break
        visited.add(snap)
        states_visited += 1
        if len(machine.processes) > peak_processes:
            peak_processes = len(machine.processes)
        if machine.done:
            record(Outcome(COMPLETED, tuple(sorted(machine.store.items()))), schedule)
            continue
        if machine.deadlocked:
            record(Outcome(DEADLOCK, tuple(sorted(machine.store.items()))), schedule)
            continue
        if len(schedule) >= max_depth:
            if on_limit == "raise":
                raise ExplorationLimitExceeded(f"schedule longer than {max_depth}")
            record(Outcome(CUTOFF, tuple(sorted(machine.store.items()))), schedule)
            complete = False
            if limit is None:
                limit = "depth"
            continue
        enabled = machine.enabled()
        if reduce and len(enabled) > 1:
            ample = _ample(machine, enabled, footprint_cache)
            if len(ample) < len(enabled):
                reduced_states += 1
            enabled = ample
        for i, pid in enumerate(enabled):
            # The last branch may reuse the machine instead of copying.
            branch = machine if i == len(enabled) - 1 else machine.copy()
            branch.step(pid)
            transitions += 1
            stack.append((branch, schedule + (pid,)))
    elapsed = time.perf_counter() - started
    result = ExplorationResult(
        frozenset(outcomes), states_visited, transitions, complete, schedules,
        por=reduce,
        abandoned=abandoned,
        limit=limit,
        elapsed_seconds=elapsed,
        reduced_states=reduced_states,
        peak_processes=peak_processes,
    )
    if emitter is not None:
        emitter.span(
            "explore",
            elapsed,
            states=states_visited,
            transitions=transitions,
            outcomes=len(outcomes),
            complete=complete,
            limit=limit,
            abandoned=abandoned,
            por=reduce,
            reduced_states=reduced_states,
        )
    return result
