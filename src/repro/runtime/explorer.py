"""Exhaustive interleaving exploration — a small model checker.

``explore`` walks every reachable interleaving of a program (DFS with
state memoization), collecting the set of distinct *outcomes*: final
stores of completed runs, deadlocked states, and depth cutoffs (which
flag possible divergence).  The paper argues operationally about what
parallel programs *can* transmit ("it could occur and would be
considered by CFM"); the explorer makes those possibility claims
executable — e.g. that Figure 3 is deadlock-free under every schedule
and always copies the zero-ness of ``x`` into ``y``.

State identity includes the attached monitor (if any), so label
evolution can be explored exhaustively too.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Set, Tuple, Union

from repro.errors import ExplorationLimitExceeded
from repro.lang.ast import Program, Stmt
from repro.runtime.eval import Value
from repro.runtime.machine import Machine, Pid

#: Outcome statuses.
COMPLETED = "completed"
DEADLOCK = "deadlock"
CUTOFF = "cutoff"


@dataclass(frozen=True)
class Outcome:
    """One terminal observation: a status plus the final store."""

    status: str
    store: Tuple[Tuple[str, Value], ...]

    def value(self, name: str) -> Value:
        for key, val in self.store:
            if key == name:
                return val
        raise KeyError(name)

    def project(self, names) -> "Outcome":
        """Restrict the store to ``names`` (an observer's view)."""
        keep = frozenset(names)
        return Outcome(self.status, tuple(kv for kv in self.store if kv[0] in keep))

    def __str__(self) -> str:
        items = ", ".join(f"{k}={v}" for k, v in self.store)
        return f"{self.status}({items})"


class ExplorationResult:
    """Everything ``explore`` learned."""

    def __init__(
        self,
        outcomes: FrozenSet[Outcome],
        states_visited: int,
        transitions: int,
        complete: bool,
        schedules: Dict[Outcome, Tuple[Pid, ...]],
    ):
        self.outcomes = outcomes
        self.states_visited = states_visited
        self.transitions = transitions
        #: True when no budget limit truncated the exploration.
        self.complete = complete
        #: One witness schedule per outcome (replayable via FixedScheduler).
        self.schedules = dict(schedules)

    @property
    def completed_outcomes(self) -> FrozenSet[Outcome]:
        return frozenset(o for o in self.outcomes if o.status == COMPLETED)

    @property
    def deadlock_outcomes(self) -> FrozenSet[Outcome]:
        return frozenset(o for o in self.outcomes if o.status == DEADLOCK)

    @property
    def deadlock_free(self) -> bool:
        """No reachable deadlock (meaningful when ``complete``)."""
        return not self.deadlock_outcomes

    def final_values(self, name: str) -> Set[Value]:
        """All values ``name`` can hold at completion."""
        return {o.value(name) for o in self.completed_outcomes}

    def __repr__(self) -> str:
        return (
            f"<ExplorationResult {len(self.outcomes)} outcomes, "
            f"{self.states_visited} states, complete={self.complete}>"
        )


def explore(
    subject: Union[Program, Stmt],
    store: Optional[Dict[str, Value]] = None,
    monitor=None,
    max_states: int = 200_000,
    max_depth: int = 2_000,
    on_limit: str = "mark",
) -> ExplorationResult:
    """Explore every interleaving of ``subject``.

    ``monitor`` (optional) is copied along each branch, so e.g. a
    :class:`~repro.runtime.taint.TaintMonitor` can be exhaustively
    checked.  ``max_states`` bounds distinct states; ``max_depth``
    bounds schedule length (hitting it records a ``cutoff`` outcome —
    evidence of possible divergence).  ``on_limit`` is ``"mark"``
    (record incompleteness in the result) or ``"raise"``.
    """
    root = Machine(subject, store=store, monitor=monitor)
    visited: Set[Tuple] = set()
    outcomes: Set[Outcome] = set()
    schedules: Dict[Outcome, Tuple[Pid, ...]] = {}
    states_visited = 0
    transitions = 0
    complete = True

    def record(outcome: Outcome, schedule: Tuple[Pid, ...]) -> None:
        if outcome not in outcomes:
            outcomes.add(outcome)
            schedules[outcome] = schedule

    stack: List[Tuple[Machine, Tuple[Pid, ...]]] = [(root, ())]
    while stack:
        machine, schedule = stack.pop()
        snap = machine.snapshot()
        if snap in visited:
            continue
        visited.add(snap)
        states_visited += 1
        if states_visited > max_states:
            if on_limit == "raise":
                raise ExplorationLimitExceeded(
                    f"more than {max_states} distinct states"
                )
            complete = False
            break
        if machine.done:
            record(Outcome(COMPLETED, tuple(sorted(machine.store.items()))), schedule)
            continue
        if machine.deadlocked:
            record(Outcome(DEADLOCK, tuple(sorted(machine.store.items()))), schedule)
            continue
        if len(schedule) >= max_depth:
            if on_limit == "raise":
                raise ExplorationLimitExceeded(f"schedule longer than {max_depth}")
            record(Outcome(CUTOFF, tuple(sorted(machine.store.items()))), schedule)
            complete = False
            continue
        enabled = machine.enabled()
        for i, pid in enumerate(enabled):
            # The last branch may reuse the machine instead of copying.
            branch = machine if i == len(enabled) - 1 else machine.copy()
            branch.step(pid)
            transitions += 1
            stack.append((branch, schedule + (pid,)))
    return ExplorationResult(
        frozenset(outcomes), states_visited, transitions, complete, schedules
    )
