"""Expression evaluation.

Expressions are evaluated atomically (the section 2.0 assumption), so
evaluation never interleaves with other processes; this module is a
plain recursive evaluator over a store snapshot.

Types are enforced at runtime: arithmetic on integers, connectives on
booleans, comparisons between integers.  ``/`` truncates toward zero
(the common 1970s convention) and division by zero is a runtime fault.
"""

from __future__ import annotations

from typing import Mapping, Union

from repro.errors import RuntimeFault, UndefinedVariableError
from repro.lang.ast import BinOp, BoolLit, Expr, IntLit, UnOp, Var

Value = Union[int, bool]


def _as_int(value: Value, context: str) -> int:
    if isinstance(value, bool) or not isinstance(value, int):
        raise RuntimeFault(f"{context}: expected an integer, got {value!r}")
    return value


def _as_bool(value: Value, context: str) -> bool:
    if not isinstance(value, bool):
        raise RuntimeFault(f"{context}: expected a boolean, got {value!r}")
    return value


def evaluate(expr: Expr, store: Mapping[str, Value]) -> Value:
    """Evaluate ``expr`` against ``store``."""
    if isinstance(expr, IntLit):
        return expr.value
    if isinstance(expr, BoolLit):
        return expr.value
    if isinstance(expr, Var):
        try:
            return store[expr.name]
        except KeyError:
            raise UndefinedVariableError(f"variable {expr.name!r} is not in the store") from None
    if isinstance(expr, UnOp):
        if expr.op == "-":
            return -_as_int(evaluate(expr.operand, store), "unary minus")
        return not _as_bool(evaluate(expr.operand, store), "not")
    if isinstance(expr, BinOp):
        op = expr.op
        if op == "and":
            # Both operands are part of one indivisible evaluation; we
            # still short-circuit, which is unobservable atomically.
            return _as_bool(evaluate(expr.left, store), "and") and _as_bool(
                evaluate(expr.right, store), "and"
            )
        if op == "or":
            return _as_bool(evaluate(expr.left, store), "or") or _as_bool(
                evaluate(expr.right, store), "or"
            )
        left = evaluate(expr.left, store)
        right = evaluate(expr.right, store)
        if op in ("+", "-", "*", "/", "mod"):
            a = _as_int(left, op)
            b = _as_int(right, op)
            if op == "+":
                return a + b
            if op == "-":
                return a - b
            if op == "*":
                return a * b
            if b == 0:
                raise RuntimeFault(f"division by zero in {op!r}")
            # Truncating division (toward zero) and the matching remainder.
            q = abs(a) // abs(b)
            if (a >= 0) != (b >= 0):
                q = -q
            if op == "/":
                return q
            return a - b * q
        a = _as_int(left, op)
        b = _as_int(right, op)
        if op == "=":
            return a == b
        if op == "#":
            return a != b
        if op == "<":
            return a < b
        if op == "<=":
            return a <= b
        if op == ">":
            return a > b
        if op == ">=":
            return a >= b
    raise RuntimeFault(f"cannot evaluate {expr!r}")
