"""Concurrent runtime for the paper's language.

The paper assumes (section 2.0) that every assignment, expression
evaluation, ``wait`` and ``signal`` is an *indivisible* action.  The
runtime honours that exactly: a program is executed as a set of
processes, each a small-step machine whose every scheduler-visible step
is one such atomic action.  On top of the machine sit:

* schedulers (round-robin, seeded random, fixed scripts);
* an executor with deadlock detection and step budgets;
* a dynamic label monitor mirroring the flow logic (for empirically
  validating static certification);
* an exhaustive interleaving explorer (a small model checker);
* a possibilistic noninterference tester.
"""

from repro.runtime.eval import evaluate
from repro.runtime.machine import Event, Machine, Process
from repro.runtime.scheduler import (
    FixedScheduler,
    RandomScheduler,
    RoundRobinScheduler,
)
from repro.runtime.executor import ExecutionResult, run
from repro.runtime.taint import TaintMonitor
from repro.runtime.enforce import BlockedAction, EnforcingMonitor, SecurityViolation
from repro.runtime.explorer import ExplorationResult, Outcome, explore
from repro.runtime.noninterference import NIResult, check_noninterference

__all__ = [
    "evaluate",
    "Machine",
    "Process",
    "Event",
    "RoundRobinScheduler",
    "RandomScheduler",
    "FixedScheduler",
    "run",
    "ExecutionResult",
    "TaintMonitor",
    "EnforcingMonitor",
    "SecurityViolation",
    "BlockedAction",
    "explore",
    "ExplorationResult",
    "Outcome",
    "check_noninterference",
    "NIResult",
]
