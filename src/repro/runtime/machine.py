"""The small-step concurrent machine.

A :class:`Machine` executes a program as a tree of processes.  Each
scheduler-visible step of a process performs exactly one of the paper's
indivisible actions:

* an assignment (expression evaluation + store, atomically);
* a condition evaluation (of an ``if`` or ``while``);
* a ``wait`` (only enabled while the semaphore is positive);
* a ``signal``;
* a ``skip``.

Everything else is *structural* and costs no step: ``begin`` blocks
unfold into their children, ``cobegin`` spawns child processes (the
parent blocks until all children finish), and branch-exit markers
maintain the dynamic label monitor's context stack.

Process identifiers are hierarchical tuples — the root is ``()``, the
``i``-th branch of a ``cobegin`` spawned by process ``p`` is
``p + (i,)`` — so identifiers are deterministic regardless of the
interleaving, which keeps state snapshots canonical for the explorer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple, Union

from repro.errors import RuntimeFault, SemaphoreError
from repro.lang.ast import (
    Assign,
    Begin,
    Cobegin,
    If,
    Node,
    Program,
    Signal,
    Skip,
    Stmt,
    Wait,
    While,
    used_variables,
    iter_nodes,
)
from repro.runtime.eval import Value, evaluate

Pid = Tuple[int, ...]

#: Integers wider than this render as a magnitude sketch instead of
#: full digits.  CPython refuses int->str conversions past
#: ``sys.get_int_max_str_digits()`` (default 4300 digits, ~14k bits),
#: and a bounded loop can square a value past that in ~14 iterations —
#: so eager ``repr`` in event details would crash a legal program.
VALUE_SKETCH_BITS = 4096


def format_value(value: object) -> str:
    """Render a store value for traces/serialization in bounded work."""
    if isinstance(value, int) and not isinstance(value, bool):
        bits = value.bit_length()
        if bits > VALUE_SKETCH_BITS:
            sign = "-" if value < 0 else ""
            return f"{sign}<int:{bits} bits>"
    return repr(value)


class _PopLocal:
    """Structural marker: leave the innermost branch context."""

    _instance = None

    def __new__(cls):
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "<pop-local>"


POP_LOCAL = _PopLocal()

ContItem = Union[Stmt, _PopLocal]


@dataclass
class Process:
    """One process: a continuation plus join bookkeeping."""

    pid: Pid
    continuation: Tuple[ContItem, ...]
    status: str = "ready"  # ready | joining | done
    pending_children: int = 0
    spawner: Optional[Stmt] = None  # the cobegin that created it, if any

    def head(self) -> Optional[ContItem]:
        return self.continuation[0] if self.continuation else None

    def key(self) -> Tuple:
        """Hashable identity for state snapshots."""
        return (self.pid, self.status, self.pending_children, self.continuation)

    def clone(self) -> "Process":
        return Process(
            self.pid, self.continuation, self.status, self.pending_children, self.spawner
        )


@dataclass(frozen=True)
class Event:
    """One executed atomic action, for traces."""

    pid: Pid
    kind: str  # assign | skip | branch | loop | wait | signal
    stmt: Stmt
    detail: str

    def __str__(self) -> str:
        name = "/".join(map(str, self.pid)) or "root"
        return f"[{name}] {self.kind}: {self.detail}"


class Machine:
    """Executable state of one program run.

    ``subject`` may be a :class:`Program` (its declarations provide the
    initial store) or a bare statement (every used variable defaults to
    0 unless ``store`` overrides it).  ``monitor`` is an optional
    dynamic label monitor (see :mod:`repro.runtime.taint`) notified of
    every action.
    """

    def __init__(
        self,
        subject: Union[Program, Stmt],
        store: Optional[Dict[str, Value]] = None,
        monitor=None,
    ):
        if isinstance(subject, Program):
            from repro.lang.procs import resolve_subject

            subject, _ = resolve_subject(subject)
            body = subject.body
            initial: Dict[str, Value] = subject.initial_values()
        else:
            body = subject
            initial = {name: 0 for name in used_variables(subject)}
        if store:
            initial.update(store)
        self.subject = subject
        self.store: Dict[str, Value] = initial
        self.monitor = monitor
        self.processes: Dict[Pid, Process] = {}
        self.steps_taken = 0
        #: Largest live process count this run (or lineage) has seen —
        #: the machine-level half of the observability layer's
        #: concurrency metrics (see :mod:`repro.observe`).
        self.peak_processes = 1
        root = Process((), (body,))
        self.processes[root.pid] = root
        self._normalize(root)

    # -- queries -----------------------------------------------------------

    def enabled(self) -> List[Pid]:
        """Processes that can take a step right now (sorted for determinism)."""
        out = []
        for pid in sorted(self.processes):
            proc = self.processes[pid]
            if proc.status != "ready":
                continue
            head = proc.head()
            if isinstance(head, Wait) and self._sem_value(head.sem) <= 0:
                continue
            out.append(pid)
        return out

    @property
    def done(self) -> bool:
        """True when the root process has finished."""
        return self.processes[()].status == "done"

    @property
    def deadlocked(self) -> bool:
        """True when unfinished but no process can step.

        With the language's only blocking construct being ``wait``,
        this means every live process sits on a zero semaphore (or
        joins children that do).
        """
        return not self.done and not self.enabled()

    def blocked_pids(self) -> List[Pid]:
        """Live, unfinished processes that cannot currently step."""
        enabled = set(self.enabled())
        return [
            pid
            for pid, proc in sorted(self.processes.items())
            if proc.status == "ready" and pid not in enabled
        ]

    def _sem_value(self, name: str) -> int:
        value = self.store.get(name, 0)
        if isinstance(value, bool) or not isinstance(value, int):
            raise SemaphoreError(f"semaphore {name!r} holds non-integer {value!r}")
        return value

    # -- stepping ------------------------------------------------------------

    def step(self, pid: Pid) -> Event:
        """Execute one atomic action of process ``pid``."""
        proc = self.processes.get(pid)
        if proc is None or proc.status != "ready":
            raise RuntimeFault(f"process {pid!r} cannot step (not ready)")
        head = proc.head()
        if head is None:  # normalization keeps this impossible
            raise RuntimeFault(f"process {pid!r} has an empty continuation")

        if isinstance(head, Assign):
            if self.monitor is not None:
                self.monitor.on_assign(pid, head.target, head.expr)
            value = evaluate(head.expr, self.store)
            self.store[head.target] = value
            event = Event(pid, "assign", head, f"{head.target} := {format_value(value)}")
            self._advance(proc, ())
        elif isinstance(head, Skip):
            event = Event(pid, "skip", head, "skip")
            self._advance(proc, ())
        elif isinstance(head, If):
            taken = bool(evaluate(head.cond, self.store))
            if self.monitor is not None:
                self.monitor.on_branch(pid, head.cond)
            branch = head.then_branch if taken else head.else_branch
            push: Tuple[ContItem, ...] = (POP_LOCAL,)
            if branch is not None:
                push = (branch, POP_LOCAL)
            event = Event(pid, "branch", head, f"if -> {taken}")
            self._advance(proc, push)
        elif isinstance(head, While):
            taken = bool(evaluate(head.cond, self.store))
            if self.monitor is not None:
                self.monitor.on_loop_eval(pid, head.cond, taken)
            if taken:
                # Keep the while node on the continuation after the body.
                event = Event(pid, "loop", head, "while -> enter body")
                proc.continuation = (head.body, POP_LOCAL) + proc.continuation
                self._normalize(proc)
            else:
                event = Event(pid, "loop", head, "while -> exit")
                self._advance(proc, ())
        elif isinstance(head, Wait):
            if self._sem_value(head.sem) <= 0:
                raise RuntimeFault(f"process {pid!r} is blocked on wait({head.sem})")
            if self.monitor is not None:
                self.monitor.on_wait(pid, head.sem)
            self.store[head.sem] = self._sem_value(head.sem) - 1
            event = Event(pid, "wait", head, f"wait({head.sem})")
            self._advance(proc, ())
        elif isinstance(head, Signal):
            if self.monitor is not None:
                self.monitor.on_signal(pid, head.sem)
            self.store[head.sem] = self._sem_value(head.sem) + 1
            event = Event(pid, "signal", head, f"signal({head.sem})")
            self._advance(proc, ())
        else:
            raise RuntimeFault(f"unexpected continuation head {head!r}")
        self.steps_taken += 1
        return event

    def _advance(self, proc: Process, push: Tuple[ContItem, ...]) -> None:
        """Drop the current head, push ``push``, renormalize."""
        proc.continuation = push + proc.continuation[1:]
        self._normalize(proc)

    def _normalize(self, proc: Process) -> None:
        """Unfold structural items until an atomic action heads the
        continuation (or the process finishes / starts joining)."""
        while True:
            if not proc.continuation:
                proc.status = "done"
                self._notify_parent(proc)
                return
            head = proc.continuation[0]
            if isinstance(head, _PopLocal):
                if self.monitor is not None:
                    self.monitor.on_pop_local(proc.pid)
                proc.continuation = proc.continuation[1:]
                continue
            if isinstance(head, Begin):
                proc.continuation = tuple(head.body) + proc.continuation[1:]
                continue
            if isinstance(head, Cobegin):
                self._spawn(proc, head)
                return
            proc.status = "ready"
            return

    def _spawn(self, proc: Process, cobegin: Cobegin) -> None:
        proc.continuation = proc.continuation[1:]
        proc.status = "joining"
        proc.pending_children = len(cobegin.branches)
        children: List[Pid] = []
        for i, branch in enumerate(cobegin.branches):
            child = Process(proc.pid + (i,), (branch,), spawner=cobegin)
            self.processes[child.pid] = child
            children.append(child.pid)
        if self.monitor is not None:
            self.monitor.on_spawn(proc.pid, children)
        if len(self.processes) > self.peak_processes:
            self.peak_processes = len(self.processes)
        for pid in children:
            self._normalize(self.processes[pid])

    def _notify_parent(self, child: Process) -> None:
        if not child.pid:
            return  # the root has no parent
        parent = self.processes[child.pid[:-1]]
        if parent.status != "joining":  # pragma: no cover - invariant
            raise RuntimeFault(f"child {child.pid!r} finished but parent is not joining")
        parent.pending_children -= 1
        if self.monitor is not None:
            self.monitor.on_child_done(parent.pid, child.pid)
        if parent.pending_children == 0:
            if self.monitor is not None:
                self.monitor.on_join(parent.pid)
            # Children have terminated; drop their table entries so the
            # snapshot space stays small and pids can be reused by a
            # later cobegin in the same parent.
            for pid in list(self.processes):
                if pid != parent.pid and pid[: len(parent.pid)] == parent.pid:
                    del self.processes[pid]
            parent.status = "ready"
            self._normalize(parent)

    def stats(self) -> Dict[str, int]:
        """Volatile run counters (steps, live and peak process counts).

        The shape feeds the observability layer's trace records; it is
        never part of a deterministic result document.
        """
        return {
            "steps_taken": self.steps_taken,
            "live_processes": len(self.processes),
            "peak_processes": self.peak_processes,
        }

    # -- snapshots and copies ---------------------------------------------------

    def snapshot(self) -> Tuple:
        """A hashable canonical state (store + live process table + monitor)."""
        store_part = tuple(sorted(self.store.items()))
        proc_part = tuple(
            self.processes[pid].key() for pid in sorted(self.processes)
        )
        monitor_part = self.monitor.snapshot() if self.monitor is not None else None
        return (store_part, proc_part, monitor_part)

    def copy(self) -> "Machine":
        """An independent copy (shared AST, copied store/processes/monitor)."""
        clone = object.__new__(Machine)
        clone.subject = self.subject
        clone.store = dict(self.store)
        clone.monitor = self.monitor.copy() if self.monitor is not None else None
        clone.processes = {pid: proc.clone() for pid, proc in self.processes.items()}
        clone.steps_taken = self.steps_taken
        clone.peak_processes = self.peak_processes
        return clone
