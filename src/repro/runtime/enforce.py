"""Runtime enforcement of information policies.

The paper's conclusion calls for mechanisms "to ensure information
security when object classifications can change dynamically".  This
module provides the execution-time counterpart of certification: an
:class:`EnforcingMonitor` that tracks dynamic classes exactly like
:class:`~repro.runtime.taint.TaintMonitor` but *refuses* — by raising
:class:`SecurityViolation` — any action that would drive a variable's
current class above its policy bound, in the style of Fenton's
memoryless subsystems [4] and Denning's run-time class-binding
discussion.

Two modes:

* ``mode="block"`` — raise on the offending action, leaving the store
  untouched for that action (the run is abandoned mid-way; the store
  reflects everything before the violation);
* ``mode="log"`` — permit the action but record the event, useful for
  auditing how a rejected program actually misbehaves.

The classic limitation of purely dynamic enforcement is also honest
here and pinned by tests: an implicit flow through an *untaken* branch
(``if h = 0 then y := 1`` with ``h != 0``) never executes an action and
thus is never blocked, while CFM rejects the program statically — the
reason the paper pursues compile-time certification in the first
place.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.core.binding import StaticBinding
from repro.core.policy import PolicySpec
from repro.errors import ReproError
from repro.lang.ast import Expr
from repro.lattice.base import Element
from repro.runtime.machine import Pid
from repro.runtime.taint import TaintMonitor


class SecurityViolation(ReproError):
    """An action would have moved information above its policy bound."""

    def __init__(self, message: str, variable: str, cls: Element, bound: Element):
        super().__init__(message)
        self.variable = variable
        self.cls = cls
        self.bound = bound


@dataclass(frozen=True)
class BlockedAction:
    """Audit record of one (attempted) violating action."""

    pid: Pid
    kind: str  # assign | wait | signal
    variable: str
    cls: Element
    bound: Element

    def __str__(self) -> str:
        name = "/".join(map(str, self.pid)) or "root"
        return (
            f"[{name}] {self.kind} would set class({self.variable}) = "
            f"{self.cls!r} above {self.bound!r}"
        )


class EnforcingMonitor(TaintMonitor):
    """A taint monitor that enforces per-variable upper bounds.

    ``policy`` bounds each variable's dynamic class; actions that would
    exceed a bound raise :class:`SecurityViolation` (``mode="block"``)
    or are recorded (``mode="log"``).
    """

    def __init__(self, policy: PolicySpec, initial, mode: str = "block"):
        super().__init__(policy.scheme, initial)
        if mode not in ("block", "log"):
            raise ReproError(f"mode must be 'block' or 'log', got {mode!r}")
        self.policy = policy
        self.mode = mode
        self.blocked: List[BlockedAction] = []

    @staticmethod
    def from_binding(
        binding: StaticBinding, variables, mode: str = "block"
    ) -> "EnforcingMonitor":
        """Enforce the policy assertion of a static binding (Definition 6).

        Variables start at their bindings, like the plain monitor.
        """
        initial = {name: binding.of_var(name) for name in variables}
        return EnforcingMonitor(PolicySpec.from_binding(binding), initial, mode)

    # ------------------------------------------------------------------

    def _guard(self, pid: Pid, kind: str, variable: str, cls: Element) -> None:
        bound = self.policy.bounds.get(variable)
        if bound is None or self.scheme.leq(cls, bound):
            return
        record = BlockedAction(pid, kind, variable, cls, bound)
        self.blocked.append(record)
        if self.mode == "block":
            raise SecurityViolation(str(record), variable, cls, bound)

    def on_assign(self, pid: Pid, target: str, expr: Expr) -> None:
        cls = self.scheme.join(self.expr_label(expr), self._context(pid))
        self._guard(pid, "assign", target, cls)
        super().on_assign(pid, target, expr)

    def on_signal(self, pid: Pid, sem: str) -> None:
        cls = self.scheme.join(self.state.cls(sem), self._context(pid))
        self._guard(pid, "signal", sem, cls)
        super().on_signal(pid, sem)

    def on_wait(self, pid: Pid, sem: str) -> None:
        cls = self.scheme.join(self.state.cls(sem), self._context(pid))
        self._guard(pid, "wait", sem, cls)
        super().on_wait(pid, sem)

    # ------------------------------------------------------------------

    def copy(self) -> "EnforcingMonitor":
        clone = super().copy()
        clone.policy = self.policy
        clone.mode = self.mode
        clone.blocked = list(self.blocked)
        return clone

    def snapshot(self):
        return super().snapshot() + (len(self.blocked),)
