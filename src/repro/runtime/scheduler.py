"""Schedulers: policies for picking the next process to step.

A scheduler is anything with ``pick(machine) -> Pid`` choosing among
``machine.enabled()``.  Three standard policies are provided:

* :class:`RoundRobinScheduler` — fair rotation (deterministic);
* :class:`RandomScheduler` — uniform choice from a seeded PRNG, for
  sampling the interleaving space reproducibly;
* :class:`FixedScheduler` — replay an explicit pid script (used to
  reproduce a specific interleaving found by the explorer).
"""

from __future__ import annotations

import random
from typing import Iterable, List, Optional, Sequence

from repro.errors import RuntimeFault
from repro.runtime.machine import Machine, Pid


class RoundRobinScheduler:
    """Rotate through processes fairly.

    Remembers the last-stepped pid and picks the next enabled pid in
    sorted order after it, wrapping around.
    """

    def __init__(self) -> None:
        self._last: Optional[Pid] = None

    def pick(self, machine: Machine) -> Pid:
        enabled = machine.enabled()
        if not enabled:
            raise RuntimeFault("no enabled process to schedule")
        if self._last is not None:
            for pid in enabled:
                if pid > self._last:
                    self._last = pid
                    return pid
        self._last = enabled[0]
        return enabled[0]


class RandomScheduler:
    """Uniformly random choice among enabled processes, seeded."""

    def __init__(self, seed: int = 0):
        self._rng = random.Random(seed)

    def pick(self, machine: Machine) -> Pid:
        enabled = machine.enabled()
        if not enabled:
            raise RuntimeFault("no enabled process to schedule")
        return self._rng.choice(enabled)


class FixedScheduler:
    """Replay an explicit schedule.

    ``script`` is a sequence of pids; each ``pick`` consumes the next
    entry (which must be enabled).  When the script runs out,
    ``fallback`` (default: first enabled) takes over — convenient for
    driving a program into a state of interest and then finishing it
    deterministically.
    """

    def __init__(self, script: Iterable[Pid], fallback: str = "first"):
        self._script: List[Pid] = list(script)
        self._pos = 0
        if fallback not in ("first", "error"):
            raise RuntimeFault("fallback must be 'first' or 'error'")
        self._fallback = fallback

    def pick(self, machine: Machine) -> Pid:
        enabled = machine.enabled()
        if not enabled:
            raise RuntimeFault("no enabled process to schedule")
        if self._pos < len(self._script):
            pid = self._script[self._pos]
            self._pos += 1
            if pid not in enabled:
                raise RuntimeFault(
                    f"scripted pid {pid!r} is not enabled (enabled: {enabled!r})"
                )
            return pid
        if self._fallback == "error":
            raise RuntimeFault("schedule script exhausted")
        return enabled[0]
