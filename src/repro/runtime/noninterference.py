"""Empirical noninterference testing.

The semantic property that certification is meant to enforce: an
observer cleared to class ``observer`` must learn nothing about
variables bound above ``observer``.  For nondeterministic (parallel)
programs we use the *possibilistic, termination-sensitive* form:

    For any two initial stores that agree on all variables with
    ``sbind(v) <= observer``, the sets of observable outcomes —
    (status, final values of observer-visible variables) over all
    schedules — are equal.

``check_noninterference`` explores the program exhaustively from each
of a family of initial stores that vary only high variables, projects
the outcomes to the observer's view, and compares the sets.  A
difference is a concrete leak witness, including replayable schedules.

This is the executable counterpart of the paper's security argument:
CFM-certified programs pass; the Figure 3 channel (with ``x`` high and
``y`` low) fails with ``x``'s value visible in ``y``.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple, Union

from repro.core.binding import StaticBinding
from repro.errors import CertificationError
from repro.lang.ast import Program, Stmt, used_variables
from repro.lattice.base import Element
from repro.runtime.eval import Value
from repro.runtime.explorer import ExplorationResult, Outcome, explore


class NIResult:
    """Outcome of a noninterference check."""

    def __init__(
        self,
        holds: bool,
        observer: Element,
        low_variables: FrozenSet[str],
        projected: List[FrozenSet[Outcome]],
        explorations: List[ExplorationResult],
        complete: bool,
    ):
        self.holds = holds
        self.observer = observer
        self.low_variables = low_variables
        #: Observable outcome set per initial-store variation.
        self.projected = list(projected)
        self.explorations = list(explorations)
        #: False if any exploration hit a budget (result then best-effort).
        self.complete = complete

    def witness(self) -> Optional[Tuple[int, int, Outcome]]:
        """A leak witness ``(i, j, outcome)``: an observable outcome
        possible from variation ``i`` but not from variation ``j``."""
        for i, a in enumerate(self.projected):
            for j, b in enumerate(self.projected):
                diff = a - b
                if diff:
                    return (i, j, min(diff, key=Outcome.sort_key))
        return None

    def __repr__(self) -> str:
        return f"<NIResult holds={self.holds} observer={self.observer!r}>"


def observable_variables(
    subject: Union[Program, Stmt], binding: StaticBinding, observer: Element
) -> FrozenSet[str]:
    """Variables the observer may see: ``sbind(v) <= observer``."""
    stmt = subject.body if isinstance(subject, Program) else subject
    return frozenset(
        name
        for name in used_variables(stmt)
        if binding.scheme.leq(binding.of_var(name), observer)
    )


def check_noninterference(
    subject: Union[Program, Stmt],
    binding: StaticBinding,
    observer: Element,
    variations: Sequence[Dict[str, Value]],
    base_store: Optional[Dict[str, Value]] = None,
    max_states: int = 200_000,
    max_depth: int = 2_000,
) -> NIResult:
    """Possibilistic termination-sensitive noninterference, exhaustively.

    ``variations`` lists assignments to *high* variables (each is
    applied over ``base_store``); varying an observer-visible variable
    is an error, since the property quantifies over low-equal starts.
    At least two variations are required — with fewer there is nothing
    to compare and any verdict would be vacuous.
    """
    if len(variations) < 2:
        # ``all(...)`` over zero or one projected outcome sets is
        # vacuously true — a caller passing no variations would get a
        # meaningless ``holds=True`` without comparing anything.
        raise CertificationError(
            "check_noninterference needs at least two low-equal initial "
            f"stores to compare; got {len(variations)} variation(s)"
        )
    low_vars = observable_variables(subject, binding, observer)
    for variation in variations:
        touched_low = set(variation) & low_vars
        if touched_low:
            raise CertificationError(
                f"variations may only change high variables; "
                f"{sorted(touched_low)} are visible to the observer"
            )
    projected: List[FrozenSet[Outcome]] = []
    explorations: List[ExplorationResult] = []
    complete = True
    for variation in variations:
        store = dict(base_store or {})
        store.update(variation)
        result = explore(subject, store=store, max_states=max_states, max_depth=max_depth)
        explorations.append(result)
        complete = complete and result.complete
        projected.append(frozenset(o.project(low_vars) for o in result.outcomes))
    holds = all(p == projected[0] for p in projected)
    return NIResult(holds, observer, low_vars, projected, explorations, complete)
