"""Top-level execution: run a program under a scheduler to completion.

:func:`run` drives a :class:`~repro.runtime.machine.Machine` until the
program finishes, deadlocks, or exhausts its step budget, and returns
an :class:`ExecutionResult` with the final store, the status, and
(optionally) the full event trace.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Union

from repro.errors import DeadlockError, StepLimitExceeded
from repro.lang.ast import Program, Stmt
from repro.runtime.eval import Value
from repro.runtime.machine import Event, Machine
from repro.runtime.scheduler import RoundRobinScheduler

#: Result statuses.
COMPLETED = "completed"
DEADLOCK = "deadlock"
STEP_LIMIT = "step-limit"


class ExecutionResult:
    """Outcome of one run."""

    def __init__(
        self,
        status: str,
        store: Dict[str, Value],
        steps: int,
        trace: Optional[List[Event]],
        machine: Machine,
    ):
        self.status = status
        self.store = store
        self.steps = steps
        self.trace = trace
        self.machine = machine

    @property
    def completed(self) -> bool:
        return self.status == COMPLETED

    @property
    def deadlocked(self) -> bool:
        return self.status == DEADLOCK

    def __repr__(self) -> str:
        return f"<ExecutionResult {self.status} after {self.steps} steps>"


def run(
    subject: Union[Program, Stmt],
    scheduler=None,
    store: Optional[Dict[str, Value]] = None,
    monitor=None,
    max_steps: int = 100_000,
    collect_trace: bool = False,
    on_deadlock: str = "return",
) -> ExecutionResult:
    """Execute ``subject`` and return the result.

    ``scheduler`` defaults to round-robin.  ``on_deadlock`` is
    ``"return"`` (report status ``"deadlock"``) or ``"raise"``
    (raise :class:`~repro.errors.DeadlockError`); step-limit exhaustion
    likewise reports status ``"step-limit"`` rather than raising, so
    callers can treat possible divergence as an observable outcome.
    """
    scheduler = scheduler or RoundRobinScheduler()
    machine = Machine(subject, store=store, monitor=monitor)
    trace: Optional[List[Event]] = [] if collect_trace else None
    steps = 0
    while not machine.done:
        if machine.deadlocked:
            if on_deadlock == "raise":
                raise DeadlockError(
                    "all live processes are blocked", machine.blocked_pids()
                )
            return ExecutionResult(DEADLOCK, dict(machine.store), steps, trace, machine)
        if steps >= max_steps:
            return ExecutionResult(STEP_LIMIT, dict(machine.store), steps, trace, machine)
        pid = scheduler.pick(machine)
        event = machine.step(pid)
        if trace is not None:
            trace.append(event)
        steps += 1
    return ExecutionResult(COMPLETED, dict(machine.store), steps, trace, machine)
