"""Named corpora for benchmarks and tests.

A corpus is a list of ``(name, program-or-statement)`` pairs.  The
paper corpus collects every fragment from the paper; the synthetic
corpora are seeded generator outputs with controlled characteristics so
benchmark numbers are reproducible run to run.
"""

from __future__ import annotations

from typing import Dict, List, Tuple, Union

from repro.lang.ast import Program, Stmt
from repro.workloads.generators import random_program
from repro.workloads.paper import paper_programs

Subject = Union[Program, Stmt]


def _paper_corpus() -> List[Tuple[str, Subject]]:
    return sorted(paper_programs().items())


def _sequential_corpus() -> List[Tuple[str, Subject]]:
    """Thirty purely sequential programs (no cobegin, no semaphores)."""
    out = []
    for i in range(30):
        prog = random_program(
            seed=1000 + i, size=40, p_cobegin=0.0, p_sem_op=0.0
        )
        out.append((f"seq-{i:02d}", prog))
    return out


def _concurrent_corpus() -> List[Tuple[str, Subject]]:
    """Thirty concurrent programs with semaphore traffic."""
    out = []
    for i in range(30):
        prog = random_program(
            seed=2000 + i, size=50, p_cobegin=0.25, p_sem_op=0.2, n_sems=3
        )
        out.append((f"con-{i:02d}", prog))
    return out


def _runtime_corpus() -> List[Tuple[str, Subject]]:
    """Twenty runtime-safe programs (terminating, explorable)."""
    out = []
    for i in range(20):
        prog = random_program(
            seed=3000 + i, size=25, runtime_safe=True, p_cobegin=0.2, n_sems=2
        )
        out.append((f"run-{i:02d}", prog))
    return out


def _litmus_corpus() -> List[Tuple[str, Subject]]:
    """The labelled micro-suite (see :mod:`repro.workloads.litmus`)."""
    from repro.workloads.litmus import CASES

    return [(case.name, case.statement()) for case in CASES]


_CORPORA = {
    "paper": _paper_corpus,
    "sequential": _sequential_corpus,
    "concurrent": _concurrent_corpus,
    "runtime": _runtime_corpus,
    "litmus": _litmus_corpus,
}


def corpus_names() -> List[str]:
    """Available corpus names."""
    return sorted(_CORPORA)


def corpus(name: str) -> List[Tuple[str, Subject]]:
    """Materialize the corpus called ``name`` (fresh ASTs each call)."""
    try:
        factory = _CORPORA[name]
    except KeyError:
        raise KeyError(f"unknown corpus {name!r}; available: {corpus_names()}") from None
    return factory()
