"""Workloads: the paper's programs, random generators, and named corpora."""

from repro.workloads.paper import (
    FIGURE3_SOURCE,
    figure3_program,
    figure3_sequential_equivalent,
    figure3_looped,
    section22_if_fragment,
    section22_while_fragment,
    section22_cobegin_fragment,
    section42_loop,
    section42_composition,
    section52_program,
    paper_programs,
)
from repro.workloads.generators import (
    GeneratorConfig,
    ProgramGenerator,
    random_program,
    random_certified_case,
    sized_program,
)
from repro.workloads.suites import corpus, corpus_names

__all__ = [
    "FIGURE3_SOURCE",
    "figure3_program",
    "figure3_sequential_equivalent",
    "figure3_looped",
    "section22_if_fragment",
    "section22_while_fragment",
    "section22_cobegin_fragment",
    "section42_loop",
    "section42_composition",
    "section52_program",
    "paper_programs",
    "GeneratorConfig",
    "ProgramGenerator",
    "random_program",
    "random_certified_case",
    "sized_program",
    "corpus",
    "corpus_names",
]
