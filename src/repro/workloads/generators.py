"""Seeded random program generation.

Used by the benchmarks (the section 6 linearity claim needs programs of
controlled size) and by the property-based tests (Theorems 1 and 2 are
tested as executable biconditionals over random corpora).

Two generation profiles:

* **static** (default) — anything the grammar allows, including
  unbounded loops and unmatched semaphore operations; meant only for
  static analysis.
* **runtime-safe** (``runtime_safe=True``) — every loop is bounded by a
  dedicated counter, semaphore pairs are placed so a signal always
  precedes or runs concurrently with its wait, and division is
  avoided; programs are guaranteed to terminate under every schedule
  (deadlock remains possible only when a signal sits under a
  conditional, which the profile also avoids), so they can be run,
  explored exhaustively, and checked for noninterference.

The termination guarantee bounds *step counts*, not *value
magnitudes*: a bounded loop over ``v := v * v`` doubles ``v``'s bit
width per iteration, so a run can terminate in a few dozen steps yet
compute integers far beyond what any consumer can print or serialize
in reasonable time.  Consumers must treat values as unbounded — the
machine sketches huge integers when formatting events (see
:func:`repro.runtime.machine.format_value`), and the fuzzer's
exploration oracles skip iterated-multiplication subjects outright.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

from repro.core.binding import StaticBinding
from repro.core.inference import InferenceResult, infer_binding
from repro.lang import builder as b
from repro.lang.ast import Program, Stmt
from repro.lattice.base import Element, Lattice


@dataclass
class GeneratorConfig:
    """Knobs for the random program generator.

    ``size`` is the approximate number of statement nodes.  The ``p_*``
    weights steer the statement mix; they need not sum to one (they are
    normalized against the remaining budget).
    """

    size: int = 30
    max_depth: int = 5
    n_int_vars: int = 4
    n_sems: int = 2
    p_if: float = 0.2
    p_while: float = 0.15
    p_cobegin: float = 0.1
    p_sem_op: float = 0.1
    max_branches: int = 3
    max_loop_iters: int = 3
    runtime_safe: bool = False
    expr_depth: int = 2


class ProgramGenerator:
    """A deterministic (seeded) generator of well-formed programs."""

    def __init__(self, config: Optional[GeneratorConfig] = None, seed: int = 0):
        self.config = config or GeneratorConfig()
        self.rng = random.Random(seed)
        self._counter_count = 0
        self._sem_count = 0
        self._int_vars = [f"v{i}" for i in range(self.config.n_int_vars)]
        self._free_sems = [f"s{i}" for i in range(self.config.n_sems)]
        self._counters: List[str] = []
        self._used_sems: List[str] = []

    # -- expressions -----------------------------------------------------------

    def _expr(self, depth: Optional[int] = None):
        depth = self.config.expr_depth if depth is None else depth
        if depth <= 0 or self.rng.random() < 0.4:
            if self.rng.random() < 0.5:
                return b.var(self.rng.choice(self._int_vars))
            return b.lit(self.rng.randint(0, 9))
        op = self.rng.choice(["+", "-", "*"])
        left = self._expr(depth - 1)
        right = self._expr(depth - 1)
        return {"+": b.add, "-": b.sub, "*": b.mul}[op](left, right)

    def _cond(self):
        op = self.rng.choice([b.eq, b.ne, b.lt, b.le, b.gt, b.ge])
        return op(self._expr(1), self._expr(1))

    # -- statements ------------------------------------------------------------

    def _assign(self) -> Stmt:
        return b.assign(self.rng.choice(self._int_vars), self._expr())

    def _statement(self, budget: int, depth: int) -> Tuple[Stmt, int]:
        """Generate one statement consuming at most ``budget`` nodes.

        Returns the statement and the number of nodes actually used.
        """
        cfg = self.config
        if budget <= 1 or depth >= cfg.max_depth:
            return self._leaf()
        # Pick the form first (disjoint probability ranges), then apply
        # budget fallbacks; subtracting from the roll after a failed
        # budget check would leak probability into later branches.
        roll = self.rng.random()
        form = "seq"
        for candidate, weight in (
            ("if", cfg.p_if),
            ("while", cfg.p_while),
            ("cobegin", cfg.p_cobegin),
            ("sem", cfg.p_sem_op),
        ):
            if roll < weight:
                form = candidate
                break
            roll -= weight
        if form == "if" and budget >= 3:
            return self._if(budget, depth)
        if form == "while" and budget >= 3:
            return self._while(budget, depth)
        if form == "cobegin" and budget >= 4:
            return self._cobegin(budget, depth)
        if form == "sem" and not cfg.runtime_safe and self._free_sems:
            sem = self.rng.choice(self._free_sems)
            self._note_sem(sem)
            stmt = b.wait(sem) if self.rng.random() < 0.5 else b.signal(sem)
            return stmt, 1
        return self._sequence(budget, depth)

    def _leaf(self) -> Tuple[Stmt, int]:
        return self._assign(), 1

    def _sequence(self, budget: int, depth: int) -> Tuple[Stmt, int]:
        parts: List[Stmt] = []
        used = 1  # the begin node itself
        n = self.rng.randint(2, max(2, min(4, budget - 1)))
        for _ in range(n):
            if used >= budget:
                break
            stmt, cost = self._statement(budget - used, depth + 1)
            parts.append(stmt)
            used += cost
        if not parts:
            return self._leaf()
        if len(parts) == 1:
            return parts[0], used - 1
        return b.begin(*parts), used

    def _if(self, budget: int, depth: int) -> Tuple[Stmt, int]:
        then_branch, used1 = self._statement((budget - 2) // 2 + 1, depth + 1)
        if self.rng.random() < 0.6:
            else_branch, used2 = self._statement(budget - 2 - used1, depth + 1)
        else:
            else_branch, used2 = None, 0
        return b.if_(self._cond(), then_branch, else_branch), used1 + used2 + 1

    def _while(self, budget: int, depth: int) -> Tuple[Stmt, int]:
        if self.config.runtime_safe:
            counter = f"c{self._counter_count}"
            self._counter_count += 1
            self._counters.append(counter)
            iters = self.rng.randint(1, self.config.max_loop_iters)
            body, used = self._statement(budget - 4, depth + 1)
            loop = b.begin(
                b.assign(counter, 0),
                b.while_(
                    b.lt(b.var(counter), b.lit(iters)),
                    b.begin(body, b.assign(counter, b.add(b.var(counter), 1))),
                ),
            )
            return loop, used + 5
        body, used = self._statement(budget - 2, depth + 1)
        return b.while_(self._cond(), body), used + 1

    def _cobegin(self, budget: int, depth: int) -> Tuple[Stmt, int]:
        n = self.rng.randint(2, self.config.max_branches)
        branches: List[Stmt] = []
        used = 1
        for _ in range(n):
            stmt, cost = self._statement(max(1, (budget - used) // n), depth + 1)
            branches.append(stmt)
            used += cost
        if self.config.runtime_safe and self._free_sems and len(branches) >= 2:
            # One deadlock-free semaphore pair: an unconditional signal
            # at the top of one branch, the wait in another.
            sem = self._free_sems.pop()
            self._note_sem(sem)
            i, j = self.rng.sample(range(len(branches)), 2)
            branches[i] = b.begin(b.signal(sem), branches[i])
            branches[j] = b.begin(b.wait(sem), branches[j])
            used += 2
        return b.cobegin(*branches), used

    def _note_sem(self, sem: str) -> None:
        if sem not in self._used_sems:
            self._used_sems.append(sem)

    # -- entry points ----------------------------------------------------------

    def statement(self) -> Stmt:
        """Generate one statement of roughly ``config.size`` nodes."""
        stmt, _ = self._statement(self.config.size, 0)
        return stmt

    def program(self) -> Program:
        """Generate a full program with matching declarations."""
        body = self.statement()
        decls = [b.int_decl(*self._int_vars)]
        if self._counters:
            decls.append(b.int_decl(*self._counters))
        if self._used_sems:
            decls.append(b.sem_decl(*self._used_sems))
        return b.program(decls, body)


def random_program(
    seed: int, size: int = 30, runtime_safe: bool = False, **overrides
) -> Program:
    """One random program (see :class:`GeneratorConfig` for overrides)."""
    config = replace(
        GeneratorConfig(size=size, runtime_safe=runtime_safe), **overrides
    )
    return ProgramGenerator(config, seed=seed).program()


def sized_program(seed: int, n_statements: int, **overrides) -> Program:
    """A program with (close to) exactly ``n_statements`` statement nodes.

    The section 6 complexity claim is about time *per statement*, so
    the linearity benchmark needs precisely controlled sizes; this
    composes generator chunks into one top-level ``begin`` until the
    count is reached, then pads with assignments.
    """
    from repro.lang.ast import program_size

    config = replace(GeneratorConfig(size=25), **overrides)
    gen = ProgramGenerator(config, seed=seed)
    chunks: List[Stmt] = []
    count = 1  # the enclosing begin
    while count < n_statements - config.size:
        chunk = gen.statement()
        chunks.append(chunk)
        count += program_size(chunk)
    while count < n_statements:
        chunks.append(gen._assign())
        count += 1
    body = b.begin(*chunks) if len(chunks) != 1 else chunks[0]
    decls = [b.int_decl(*gen._int_vars)]
    if gen._counters:
        decls.append(b.int_decl(*gen._counters))
    if gen._used_sems:
        decls.append(b.sem_decl(*gen._used_sems))
    return b.program(decls, body)


def random_certified_case(
    seed: int,
    scheme: Lattice,
    size: int = 30,
    runtime_safe: bool = False,
    n_pins: int = 2,
    **overrides,
) -> Tuple[Program, StaticBinding]:
    """A random program together with a binding that certifies it.

    Pins a few randomly chosen variables to random classes and infers
    the least completion; pins that make certification impossible are
    dropped one by one (the empty pin set always succeeds: the all-low
    binding certifies nothing-flows-up trivially only when the program
    has no high sources, and with no pins the least solution is exactly
    the all-bottom binding, which always certifies).
    """
    program = random_program(seed, size=size, runtime_safe=runtime_safe, **overrides)
    rng = random.Random(seed ^ 0x5EED)
    from repro.lang.ast import used_variables

    names = sorted(used_variables(program.body))
    classes = sorted(scheme.elements, key=repr)
    pins: Dict[str, Element] = {}
    for name in rng.sample(names, min(n_pins, len(names))):
        pins[name] = rng.choice(classes)
    while True:
        result: InferenceResult = infer_binding(program, scheme, pins)
        if result.satisfiable:
            return program, result.binding
        # Drop the pin named in the first violation (or any pin).
        dropped = None
        for edge in result.violations:
            target = getattr(edge.dst, "name", None)
            if target in pins:
                dropped = target
                break
        if dropped is None:
            dropped = next(iter(pins))
        del pins[dropped]
