"""Litmus programs: a labelled micro-suite for information-flow tools.

Each case is a tiny program with one secret ``h`` and one public sink
``l`` (plus whatever plumbing it needs), labelled with:

* ``secure`` — whether any execution can actually move information
  about ``h`` into the observer's view (ground truth, checkable by the
  explorer);
* the expected verdict of each mechanism (``denning``, ``cfm``,
  ``flow_sensitive``) under the binding ``h=high``, everything else
  ``low``.

The suite doubles as a compatibility matrix (run by
``tests/workloads/test_litmus.py`` and summarized by
``benchmarks/bench_litmus.py``) and as a starting corpus for anyone
extending the analyses.  The expected verdicts encode the paper's
story: the 1977 baseline misses global flows, CFM catches them but
rejects some safe programs, the flow-sensitive extension narrows that
gap without admitting any insecure case.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.lang.ast import Stmt
from repro.lang.parser import parse_statement


@dataclass(frozen=True)
class LitmusCase:
    """One labelled micro-program."""

    name: str
    source: str
    #: Ground truth: can an observer of the low variables learn about h?
    secure: bool
    #: Expected verdicts (True = certifies) with h=high, rest low.
    denning: bool
    cfm: bool
    flow_sensitive: bool
    #: Values of h worth distinguishing dynamically.
    probe_values: Tuple[int, int] = (0, 1)
    #: Fixed low-variable start making the distinction observable
    #: (security quantifies over all low-equal starts; one bad start
    #: suffices to label a case insecure).
    base_store: Optional[Dict[str, int]] = None
    notes: str = ""

    def statement(self) -> Stmt:
        return parse_statement(self.source)


CASES: List[LitmusCase] = [
    LitmusCase(
        name="explicit",
        source="l := h",
        secure=False,
        denning=False, cfm=False, flow_sensitive=False,
        notes="the direct flow every mechanism must reject",
    ),
    LitmusCase(
        name="explicit-arithmetic",
        source="l := h * 0 + h - h",
        secure=True,  # the value is always 0, but no mechanism models values
        denning=False, cfm=False, flow_sensitive=False,
        notes="value-insensitivity: h*0+h-h is 0 but classes still flow",
    ),
    LitmusCase(
        name="implicit-both-branches",
        source="if h = 0 then l := 1 else l := 2",
        secure=False,
        denning=False, cfm=False, flow_sensitive=False,
    ),
    LitmusCase(
        name="implicit-one-branch",
        source="if h = 0 then l := 1",
        secure=False,
        denning=False, cfm=False, flow_sensitive=False,
        notes="the dynamic-monitor blind spot; statics all catch it",
    ),
    LitmusCase(
        name="dead-branch",
        source="if 1 = 2 then l := h",
        secure=True,  # the branch can never run
        denning=False, cfm=False, flow_sensitive=False,
        notes="all three are path-insensitive: the dead assignment still counts",
    ),
    LitmusCase(
        name="guard-only-reads-low",
        source="if l2 = 0 then l := 1 else l := h - h + 2",
        secure=True,
        denning=False, cfm=False, flow_sensitive=False,
        notes="h-h is 0 but carries class high under every mechanism",
    ),
    LitmusCase(
        name="sanitize-then-copy",
        source="begin h := 0; l := h end",
        secure=True,
        denning=False, cfm=False, flow_sensitive=True,
        notes="the paper's section 5.2 example: only flow-sensitivity accepts",
    ),
    LitmusCase(
        name="sanitize-under-low-guard",
        source="begin if l2 = 0 then h := 0 else h := 1; l := h end",
        secure=True,
        denning=False, cfm=False, flow_sensitive=True,
        notes="both branches scrub h, so the join is still low",
    ),
    LitmusCase(
        name="sanitize-one-branch-only",
        source="begin if l2 = 0 then h := 0; l := h end",
        secure=False,  # l2 != 0 leaves the secret in h
        denning=False, cfm=False, flow_sensitive=False,
        base_store={"l2": 1},
    ),
    LitmusCase(
        name="sanitize-private",
        source=(
            "cobegin begin h2 := 0; l := h2 end || l2 := 1 coend"
        ),
        secure=True,
        denning=False, cfm=False, flow_sensitive=True,
        notes="no sibling touches h2: flow-sensitivity keeps its precision",
    ),
    LitmusCase(
        name="sanitize-raced",
        source=(
            "cobegin begin h2 := 0; l := h2 end || h2 := h coend"
        ),
        secure=False,  # the sibling can re-taint h2 between the two actions
        denning=False, cfm=False, flow_sensitive=False,
        notes="per-read interference: entry-only widening would wrongly accept",
    ),
    LitmusCase(
        name="loop-termination",
        source="begin l := 7; while h # 0 do skip; l := 1 end",
        secure=False,  # divergence freezes l at 7
        denning=True, cfm=False, flow_sensitive=False,
        probe_values=(0, 1),
        notes="the 1977 mechanism disregards global flows",
    ),
    LitmusCase(
        name="loop-counting",
        source="begin l := 0; while h > 0 do begin h := h - 1; l := l + 1 end end",
        secure=False,
        denning=False, cfm=False, flow_sensitive=False,
        probe_values=(1, 2),
        notes="the guard is checked locally by every mechanism",
    ),
    LitmusCase(
        name="semaphore-order",
        source=(
            "cobegin if h = 0 then signal(s) || begin wait(s); l := 1 end coend"
        ),
        secure=False,
        denning=True, cfm=False, flow_sensitive=False,
        notes="the paper's synchronization channel in miniature",
    ),
    LitmusCase(
        name="semaphore-protocol-only",
        source=(
            "cobegin begin l := 1; signal(s) end"
            " || begin wait(s); l2 := l end coend"
        ),
        secure=True,
        denning=True, cfm=True, flow_sensitive=True,
        notes="unconditional signalling carries nothing",
    ),
    LitmusCase(
        name="wait-then-write",
        source="begin wait(s); l := 1 end",
        secure=True,  # s is low here; nothing high is involved
        denning=True, cfm=True, flow_sensitive=True,
        notes="sequencing after a LOW wait is fine",
    ),
    LitmusCase(
        name="high-branch-high-sink",
        source="if h = 0 then h2 := 1 else h2 := 2",
        secure=True,
        denning=True, cfm=True, flow_sensitive=True,
        notes="flows within the high world are always acceptable",
    ),
    LitmusCase(
        name="race-on-low",
        source="cobegin l := 1 || l := 2 coend",
        secure=True,
        denning=True, cfm=True, flow_sensitive=True,
        notes="scheduler nondeterminism is not an information flow from h",
    ),
    LitmusCase(
        name="cross-process-relay",
        source="cobegin l2 := h || l := l2 coend",
        secure=False,  # one interleaving relays h into l via l2
        denning=False, cfm=False, flow_sensitive=False,
        notes="interference: l2 := h can run before l := l2",
    ),
]

#: Binding classes per variable name used by the cases.
HIGH_NAMES = frozenset({"h", "h2"})


def binding_for(case: LitmusCase, scheme):
    """``h``-ish names high, everything else low."""
    from repro.core.binding import StaticBinding
    from repro.lang.ast import used_variables

    stmt = case.statement()
    classes = {
        name: (scheme.top if name in HIGH_NAMES else scheme.bottom)
        for name in used_variables(stmt)
    }
    return stmt, StaticBinding(scheme, classes)


def by_name(name: str) -> LitmusCase:
    for case in CASES:
        if case.name == name:
            return case
    raise KeyError(name)
