"""Every example program that appears in the paper.

Each function returns a freshly parsed AST (ASTs carry identity, so
shared instances across tests would confuse per-node tables).

A note on Figure 3.  The scanned figure reads::

    begin
      m := 0;
      if x # 0 then begin signal(modify); wait(modified) end;
      signal(read);
      wait(done);
      if x = 0 then begin signal(modify); wait(modified) end;
      wait(done)            -- (!)
    end
    || begin wait(modify); m := 1; signal(modified) end
    || begin wait(read); y := m; signal(done) end

As printed, ``done`` is signalled once but waited twice, so the program
*always* deadlocks — contradicting the paper's own claims that "the
program of Figure 3 cannot deadlock" and that "the final values of the
semaphores are the same as their initial values", and its stated
sequential equivalent ``if x = 0 then begin m := 1; y := m end else
begin y := m; m := 1 end`` (i.e. ``y`` ends up 1 exactly when ``x`` is
0).  We therefore reconstruct the figure consistently with the prose:
the trailing ``wait(done)`` is dropped (it is almost certainly a scan
artifact) and the first guard tests ``x = 0`` so that ``m := 1``
precedes ``y := m`` exactly when ``x`` is zero.  All of the paper's
claims — deadlock freedom under every schedule, semaphores restored,
``y = (1 if x = 0 else 0)``, and the CFM certification chain
``sbind(x) <= sbind(modify) <= sbind(m) <= sbind(y)`` — hold of the
reconstruction and are verified in the test suite and benchmarks.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.lang.ast import Program, Stmt
from repro.lang.parser import parse_program, parse_statement

#: The reconstructed Figure 3 (see module docstring).
FIGURE3_SOURCE = """\
var x, y, m : integer;
    modify, modified, read, done : semaphore initially(0);
cobegin
  begin
    m := 0;
    if x = 0
    then begin signal(modify); wait(modified) end;
    signal(read);
    wait(done);
    if x # 0
    then begin signal(modify); wait(modified) end
  end
||
  begin wait(modify); m := 1; signal(modified) end
||
  begin wait(read); y := m; signal(done) end
coend
"""

#: Variable names of Figure 3 (integers first, then semaphores).
FIGURE3_VARIABLES = ("x", "y", "m", "modify", "modified", "read", "done")


def figure3_program() -> Program:
    """The paper's Figure 3: information flow using synchronization."""
    return parse_program(FIGURE3_SOURCE)


def figure3_sequential_equivalent() -> Program:
    """The sequential program the paper states Figure 3 is equivalent to
    (section 4.3), for x and y."""
    return parse_program(
        """
        var x, y, m : integer;
        begin
          m := 0;
          if x = 0
          then begin m := 1; y := m end
          else begin y := m; m := 1 end
        end
        """
    )


def figure3_looped(bits: int = 8) -> Program:
    """The paper's closing remark on Figure 3, made concrete.

    "By placing each process in a loop and testing a different bit of x
    on each iteration an arbitrary amount of information could be
    transmitted."  This wraps each Figure 3 process in a loop over
    ``bits`` iterations; process one tests bit ``i`` of ``x`` (via
    division and mod, the language having no bit operators) and the
    third process accumulates the received bits into ``y``.  After a
    run, ``y`` equals ``x mod 2**bits``: a complete covert byte pipe
    built from semaphores.
    """
    if bits < 1:
        raise ValueError("need at least one bit")
    return parse_program(
        f"""
        var x, y, m, i, j, k, pow : integer;
            modify, modified, read, done : semaphore initially(0);
        begin
          y := 0;
          i := 0;
          pow := {2 ** (bits - 1)};
          cobegin
            begin
              -- sender: walks the bits of x, most significant first
              while i < {bits} do
              begin
                m := 0;
                if (x / pow) mod 2 = 1
                then begin signal(modify); wait(modified) end;
                signal(read);
                wait(done);
                if (x / pow) mod 2 = 0
                then begin signal(modify); wait(modified) end;
                pow := pow / 2;
                i := i + 1
              end
            end
          ||
            begin
              -- helper: sets m on demand, once per transmitted bit
              j := 0;
              while j < {bits} do
              begin
                wait(modify);
                m := 1;
                signal(modified);
                j := j + 1
              end
            end
          ||
            begin
              -- receiver: shifts each observed bit into y
              k := 0;
              while k < {bits} do
              begin
                wait(read);
                y := y * 2 + m;
                signal(done);
                k := k + 1
              end
            end
          coend
        end
        """
    )


def section22_if_fragment() -> Stmt:
    """Section 2.2's local indirect flow: ``if x = 0 then y := 1 else y := 0``."""
    return parse_statement("if x = 0 then y := 1 else y := 0")


def section22_while_fragment() -> Stmt:
    """Section 2.2's global flow from conditional termination::

        begin z := 0; while x # 0 do y := ...; z := 1 end

    ``z`` is set to 1 iff the loop terminates, i.e. iff ``x`` is zero.
    (The paper elides the loop body; any assignment to ``y`` serves.)
    """
    return parse_statement(
        "begin z := 0; while x # 0 do y := y + 1; z := 1 end"
    )


def section22_cobegin_fragment() -> Stmt:
    """Section 2.2's synchronization flow::

        cobegin if x = 0 then signal(sem)
        || begin wait(sem); y := 0 end coend

    Transmits x to y; deadlocks exactly when x is non-zero — the paper
    uses it to note that global flows come from synchronization, not
    from the possibility of deadlock.
    """
    return parse_statement(
        """
        cobegin
          if x = 0 then signal(sem)
        ||
          begin wait(sem); y := 0 end
        coend
        """
    )


def section42_loop() -> Stmt:
    """Section 4.2's iteration example::

        while true do begin y := y + 1; wait(sem) end

    ``y`` is incremented more than once only if the wait completes, so
    CFM requires ``sbind(sem) <= sbind(y)``.
    """
    return parse_statement("while true do begin y := y + 1; wait(sem) end")


def section42_composition() -> Stmt:
    """Section 4.2's composition example: ``begin wait(sem); y := 1 end``,
    certifiable only if ``sbind(sem) <= sbind(y)``."""
    return parse_statement("begin wait(sem); y := 1 end")


def section52_program() -> Stmt:
    """Section 5.2's relative-strength example: ``begin x := 0; y := x end``.

    Safe for ``x = high, y = low`` (the value assigned to ``y`` is the
    constant 0) and provably so in the flow logic, yet rejected by CFM.
    """
    return parse_statement("begin x := 0; y := x end")


def paper_programs() -> Dict[str, Stmt]:
    """All paper fragments by name (statements; Figure 3 as its body)."""
    return {
        "figure3": figure3_program().body,
        "figure3-sequential": figure3_sequential_equivalent().body,
        "s22-if": section22_if_fragment(),
        "s22-while": section22_while_fragment(),
        "s22-cobegin": section22_cobegin_fragment(),
        "s42-loop": section42_loop(),
        "s42-composition": section42_composition(),
        "s52-begin": section52_program(),
    }
