"""The on-disk finding corpus: persist, load, and replay regressions.

Every minimized finding is one JSON document tagged
:data:`FINDING_SCHEMA`, named ``<oracle>--<digest12>.json`` (the
digest is over the canonical serialization, so re-saving the same
finding is idempotent and distinct findings never collide silently).

A finding record carries everything needed to replay it from nothing:

``oracle`` / ``seed`` / ``profile``
    which relation failed and which generated subject exposed it;
``kind`` / ``source``
    the **minimized** subject as canonical source text;
``original_source``
    the unshrunk generated subject, for triage;
``details``
    the oracle's violation evidence at minimization time;
``shrink_iterations`` / ``shrink_checks``
    the shrinker's effort counters;
``config``
    the analysis configuration the violation was observed under;
``expect``
    ``"violates"`` for an open finding, ``"fixed"`` for a regression
    that a later patch resolved — the checked-in ``tests/fuzz/corpus``
    files are replayed in tier-1 with exactly this expectation.

:func:`replay_finding` re-runs the oracle on the stored source and
reports whether the violation reproduces; the fuzz CLI's ``--replay``
and the tier-1 regression test are both thin wrappers over it.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.fuzz.oracles import ORACLES, OracleSkip

#: Version tag carried by every persisted finding.
FINDING_SCHEMA = "repro-fuzz-finding/1"


def _canonical(record: dict) -> str:
    return json.dumps(record, sort_keys=True, indent=2) + "\n"


def save_finding(directory: Union[str, Path], finding: dict) -> Path:
    """Write one finding record; returns the file path.

    The record is completed with the schema tag and a default
    ``expect`` of ``"violates"``; the filename digest covers the
    completed canonical bytes, so identical findings dedupe on disk.
    """
    record = dict(finding)
    record.setdefault("schema", FINDING_SCHEMA)
    record.setdefault("expect", "violates")
    text = _canonical(record)
    digest = hashlib.sha256(text.encode("utf-8")).hexdigest()[:12]
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"{record['oracle']}--{digest}.json"
    tmp = path.parent / (path.name + ".tmp")
    try:
        tmp.write_text(text, encoding="utf-8")
        os.replace(tmp, path)
    finally:
        if tmp.exists():  # a failed write must not litter the corpus
            tmp.unlink()
    return path


def load_findings(directory: Union[str, Path]) -> List[dict]:
    """Every finding record in ``directory``, sorted by filename.

    Files that are not valid finding documents raise — a corrupt
    corpus should fail loudly, not silently drop regressions.
    """
    directory = Path(directory)
    records = []
    for path in sorted(directory.glob("*.json")):
        record = json.loads(path.read_text(encoding="utf-8"))
        if record.get("schema") != FINDING_SCHEMA:
            raise ValueError(
                f"{path} has schema {record.get('schema')!r}, "
                f"expected {FINDING_SCHEMA!r}"
            )
        for key in ("oracle", "kind", "source"):
            if not isinstance(record.get(key), str):
                raise ValueError(f"{path} is missing field {key!r}")
        record["path"] = str(path)
        records.append(record)
    return records


def replay_finding(
    record: dict, config: Optional[Dict[str, object]] = None
) -> dict:
    """Re-run the finding's oracle on its stored minimized source.

    Returns ``{"oracle", "outcome", "reproduced", "expect",
    "as_expected", ...}`` where ``outcome`` is ``"violation"`` /
    ``"pass"`` / ``"skip"`` / ``"error"`` and ``as_expected`` compares
    the outcome against the record's ``expect`` field (an open finding
    should reproduce; a fixed regression should not).
    """
    from repro.lang.parser import parse_program, parse_statement
    from repro.pipeline.analyses import DEFAULT_CONFIG

    oracle = record["oracle"]
    if oracle not in ORACLES:
        raise ValueError(f"unknown oracle {oracle!r} in finding record")
    spec = ORACLES[oracle]
    if record["kind"] == "program":
        subject = parse_program(record["source"])
    else:
        subject = parse_statement(record["source"])
    merged = dict(DEFAULT_CONFIG)
    merged.update(record.get("config") or {})
    merged.update(config or {})
    try:
        outcome = spec.check(subject, merged)
    except Exception as exc:  # noqa: BLE001 - a crash is itself an outcome
        result = {"outcome": "error", "error": f"{type(exc).__name__}: {exc}"}
    else:
        if outcome is None:
            result = {"outcome": "pass"}
        elif isinstance(outcome, OracleSkip):
            result = {"outcome": "skip", "reason": outcome.reason}
        else:
            result = {"outcome": "violation", "details": outcome}
    reproduced = result["outcome"] in ("violation", "error")
    expect = record.get("expect", "violates")
    result.update(
        oracle=oracle,
        reproduced=reproduced,
        expect=expect,
        as_expected=(reproduced == (expect == "violates")),
    )
    return result


def replay_corpus(
    directory: Union[str, Path],
    config: Optional[Dict[str, object]] = None,
) -> List[dict]:
    """Replay every finding in ``directory``; one result per record."""
    results = []
    for record in load_findings(directory):
        result = replay_finding(record, config=config)
        result["path"] = record["path"]
        results.append(result)
    return results
