"""The fuzz campaign driver: fan seeds out, check oracles, shrink.

One *seed* produces two generated subjects — a ``static`` profile
program (anything the grammar allows) and a ``runtime_safe`` profile
program (bounded loops, deadlock-free semaphore pairing) — and every
registered oracle whose profile matches is checked against each.  A
violation is immediately minimized in-worker with the delta-debugging
shrinker (the predicate: the *same oracle* still reports a violation
or crashes), so the driver only ever surfaces 1-minimal findings.

Scale-out reuses the batch pipeline's :class:`~repro.pipeline.runner.
WorkerPool` — the same crash isolation (a seed that kills its worker
is retried, then abandoned as an error record, never lost silently)
and the same deadline repricing (the payload convention puts the
config dict last).  ``deadline`` rides in the analysis config, so a
runaway exploration degrades to an inconclusive *skip* instead of
hanging the campaign.

The campaign result aggregates per-oracle counters into the ``fuzz``
section of the ``repro-metrics/1`` document (see
:func:`repro.observe.metrics.validate_metrics`).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.fuzz.oracles import ORACLES, OracleSkip, PROFILES
from repro.fuzz.shrinker import shrink
from repro.lang.ast import Program
from repro.lang.pretty import pretty
from repro.observe.metrics import MetricsAggregator
from repro.pipeline.analyses import DEFAULT_CONFIG
from repro.pipeline.runner import WorkerPool, _Task

#: The campaign's analysis-config defaults.  Budgets sit well below
#: the pipeline's: a fuzz campaign runs hundreds of explorations and
#: wants breadth, and an inconclusive check is a counted *skip*, not
#: a lost verdict.  ``high`` names a variable the generator actually
#: emits (the pipeline default ``("h", "h2")`` never occurs in
#: generated programs, which would make every policy oracle vacuous):
#: with ``v0`` bound top, campaigns sweep a genuine mix of certified
#: and rejected programs.
FUZZ_CONFIG: Dict[str, object] = dict(
    DEFAULT_CONFIG, max_states=8_000, max_depth=600, high=("v0",)
)


def generate_subject(seed: int, profile: str) -> Program:
    """The generated subject for ``(seed, profile)`` — the single
    source of truth shared by the driver, its workers, and replays.

    A few generator knobs are derived from the seed so one campaign
    sweeps different program shapes (size, semaphore count, cobegin
    density) instead of three hundred near-identical programs.
    """
    from repro.workloads.generators import random_program

    if profile not in PROFILES:
        raise ValueError(f"unknown profile {profile!r}")
    return random_program(
        seed,
        size=18 + (seed % 4) * 8,
        runtime_safe=(profile == "runtime_safe"),
        n_sems=1 + seed % 3,
        p_cobegin=0.15 + 0.05 * (seed % 3),
    )


def _checked(spec, subject, config):
    """Run one check; a crash *is* a violation (analyzers must not
    die on generator-valid programs)."""
    try:
        return spec.check(subject, config)
    except Exception as exc:  # noqa: BLE001 - converted to evidence
        return {
            "relation": "oracle must not crash",
            "error": f"{type(exc).__name__}: {exc}",
            "error_type": type(exc).__name__,
        }


def _violation(spec, subject, config) -> Optional[dict]:
    """The check's violation evidence, or ``None`` on pass/skip."""
    outcome = _checked(spec, subject, config)
    if outcome is None or isinstance(outcome, OracleSkip):
        return None
    return outcome


def _fuzz_worker(payload: Tuple[int, Tuple[str, ...], bool, dict]) -> dict:
    """Worker entry point: one seed, both profiles, all oracles.

    Top-level and picklable (the :class:`WorkerPool` contract), config
    dict last (the deadline-repricing contract).  Returns the usual
    ``{"result": ..., "seconds": ...}`` envelope.
    """
    seed, oracle_names, do_shrink, config = payload
    started = time.perf_counter()
    checks: List[dict] = []
    programs = 0
    for profile in PROFILES:
        subject = generate_subject(seed, profile)
        applicable = [
            name for name in oracle_names
            if profile in ORACLES[name].profiles
        ]
        if not applicable:
            continue
        programs += 1
        source = pretty(subject)
        for name in applicable:
            spec = ORACLES[name]
            outcome = _checked(spec, subject, config)
            if outcome is None:
                checks.append(
                    {"oracle": name, "profile": profile, "status": "pass"}
                )
                continue
            if isinstance(outcome, OracleSkip):
                checks.append(
                    {
                        "oracle": name,
                        "profile": profile,
                        "status": "skip",
                        "reason": outcome.reason,
                    }
                )
                continue
            finding = {
                "oracle": name,
                "seed": seed,
                "profile": profile,
                "kind": "program",
                "source": source,
                "original_source": source,
                "details": outcome,
                "shrink_iterations": 0,
                "shrink_checks": 0,
                "config": {
                    key: (list(value) if isinstance(value, tuple) else value)
                    for key, value in config.items()
                },
            }
            if do_shrink:
                result = shrink(
                    subject,
                    lambda s: _violation(spec, s, config) is not None,
                )
                minimized = _violation(spec, result.subject, config)
                finding.update(
                    source=pretty(result.subject),
                    details=minimized if minimized is not None else outcome,
                    shrink_iterations=result.iterations,
                    shrink_checks=result.checks,
                )
            checks.append(
                {
                    "oracle": name,
                    "profile": profile,
                    "status": "violation",
                    "finding": finding,
                }
            )
    return {
        "result": {"seed": seed, "programs": programs, "checks": checks},
        "seconds": time.perf_counter() - started,
    }


@dataclass
class FuzzResult:
    """Everything one :func:`run_fuzz` campaign produced."""

    seeds: int
    findings: List[dict] = field(default_factory=list)
    errors: List[dict] = field(default_factory=list)
    programs: int = 0
    checks: int = 0
    skips: int = 0
    violations: int = 0
    shrink_iterations: int = 0
    oracles: Dict[str, Dict[str, int]] = field(default_factory=dict)
    elapsed_seconds: float = 0.0
    metrics: Dict[str, object] = field(default_factory=dict)

    def fuzz_section(self) -> Dict[str, object]:
        """The ``fuzz`` section of the metrics document."""
        return {
            "seeds": self.seeds,
            "programs": self.programs,
            "checks": self.checks,
            "skips": self.skips,
            "violations": self.violations,
            "findings": len(self.findings),
            "errors": len(self.errors),
            "shrink_iterations": self.shrink_iterations,
            "oracles": {
                name: dict(counters)
                for name, counters in sorted(self.oracles.items())
            },
        }

    def to_dict(self) -> dict:
        """The JSON campaign report (``repro fuzz --json``)."""
        return {
            "fuzz": self.fuzz_section(),
            "findings": self.findings,
            "errors": self.errors,
        }

    def __repr__(self) -> str:
        return (
            f"<FuzzResult seeds={self.seeds} checks={self.checks} "
            f"findings={len(self.findings)}>"
        )


def run_fuzz(
    seeds: int = 100,
    seed_start: int = 0,
    oracles: Optional[Sequence[str]] = None,
    jobs: int = 1,
    config: Optional[Dict[str, object]] = None,
    deadline: Optional[float] = None,
    do_shrink: bool = True,
    corpus_dir: Optional[str] = None,
    observer: Optional[MetricsAggregator] = None,
    pool: Optional[WorkerPool] = None,
    chunk_size: Optional[int] = None,
) -> FuzzResult:
    """Run a differential fuzzing campaign.

    ``seeds`` consecutive seeds starting at ``seed_start`` each
    produce one subject per generation profile; ``oracles`` restricts
    the registry (default: all).  ``config`` overlays
    :data:`FUZZ_CONFIG`; ``deadline`` (seconds) bounds each oracle's
    exploration wall-clock.  With ``corpus_dir`` every minimized
    finding is persisted for replay.  ``jobs > 1`` fans seeds over a
    :class:`WorkerPool` (or a caller-owned ``pool``);
    ``chunk_size`` overrides how many seeds ride in one submitted
    worker task (default: auto-sized, see ``docs/pipeline.md``).
    """
    started = time.perf_counter()
    names = tuple(oracles) if oracles is not None else tuple(sorted(ORACLES))
    for name in names:
        if name not in ORACLES:
            raise ValueError(
                f"unknown oracle {name!r}; available: {sorted(ORACLES)}"
            )
    if seeds < 1:
        raise ValueError(f"seeds must be >= 1, got {seeds}")
    merged = dict(FUZZ_CONFIG)
    for key, value in (config or {}).items():
        if key not in FUZZ_CONFIG:
            raise ValueError(
                f"unknown config key {key!r}; "
                f"available: {sorted(FUZZ_CONFIG)}"
            )
        merged[key] = value
    if deadline is not None:
        merged["deadline"] = float(deadline)
    merged["high"] = tuple(sorted(merged["high"]))
    if observer is None:
        observer = MetricsAggregator()

    seed_list = list(range(seed_start, seed_start + seeds))
    payloads = [(seed, names, do_shrink, dict(merged)) for seed in seed_list]
    if jobs > 1 or pool is not None:
        pending = [
            _Task(i, f"seed-{seed}", "", "fuzz", "fuzz")
            for i, seed in enumerate(seed_list)
        ]
        own = None
        if pool is None:
            own = pool = WorkerPool(jobs)
        try:
            envelopes = pool.run(
                pending, payloads, observer, fn=_fuzz_worker,
                chunk_size=chunk_size,
            )
        finally:
            if own is not None:
                own.close()
    else:
        envelopes = [_fuzz_worker(payload) for payload in payloads]

    result = FuzzResult(seeds=seeds)
    for seed, envelope in zip(seed_list, envelopes):
        data = envelope["result"]
        if "error" in data:  # a WorkerCrash record from the pool
            result.errors.append({"seed": seed, **data})
            observer.item(f"seed-{seed}", "fuzz", "error",
                          error_type=data.get("error_type"))
            continue
        result.programs += data["programs"]
        for check in data["checks"]:
            result.checks += 1
            counters = result.oracles.setdefault(
                check["oracle"], {"checks": 0, "skips": 0, "violations": 0}
            )
            counters["checks"] += 1
            if check["status"] == "skip":
                result.skips += 1
                counters["skips"] += 1
            elif check["status"] == "violation":
                result.violations += 1
                counters["violations"] += 1
                finding = check["finding"]
                result.shrink_iterations += finding["shrink_iterations"]
                result.findings.append(finding)
        observer.item(
            f"seed-{seed}",
            "fuzz",
            "ok",
            seconds=envelope.get("seconds"),
        )

    if corpus_dir:
        from repro.fuzz.corpus import save_finding

        for finding in result.findings:
            save_finding(corpus_dir, finding)

    result.elapsed_seconds = time.perf_counter() - started
    result.metrics = observer.to_dict(
        elapsed_seconds=result.elapsed_seconds,
        jobs=jobs,
        deadline=merged.get("deadline"),
        fuzz=result.fuzz_section(),
    )
    return result
