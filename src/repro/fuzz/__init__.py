"""Differential fuzzing of the repo's analyzers against each other.

The paper's results are biconditionals and containments, so the
analyzers form a web of mutual oracles: certification must agree with
proof generation (Theorems 1–2), the CFM must contain the Denning
baseline (§4.3), certified runtime-safe programs must be empirically
noninterfering, the static deadlock pass must stay sound against the
explorer, and the tooling layers (parser/pretty-printer, batch
pipeline) must be fixpoints of their own round-trips.  This package
turns that web into a seeded fuzzing campaign:

* :mod:`repro.fuzz.oracles` — the registry of executable relations;
* :mod:`repro.fuzz.shrinker` — delta-debugging minimization of any
  violating program to a 1-minimal counterexample;
* :mod:`repro.fuzz.driver` — the campaign runner (seed fan-out over
  the pipeline's :class:`~repro.pipeline.runner.WorkerPool`, deadline
  degradation, metrics);
* :mod:`repro.fuzz.corpus` — the replayable on-disk finding corpus
  (``tests/fuzz/corpus`` holds the checked-in regressions).

Entry points: ``repro fuzz`` on the command line, :func:`run_fuzz`
from code.  See ``docs/fuzzing.md`` for the oracle catalog, corpus
layout, and triage workflow.
"""

from repro.fuzz.corpus import (
    FINDING_SCHEMA,
    load_findings,
    replay_corpus,
    replay_finding,
    save_finding,
)
from repro.fuzz.driver import (
    FUZZ_CONFIG,
    FuzzResult,
    generate_subject,
    run_fuzz,
)
from repro.fuzz.oracles import ORACLES, OracleSkip, OracleSpec, oracle_names
from repro.fuzz.shrinker import ShrinkResult, shrink, weight

__all__ = [
    "ORACLES",
    "OracleSkip",
    "OracleSpec",
    "oracle_names",
    "FUZZ_CONFIG",
    "FuzzResult",
    "run_fuzz",
    "generate_subject",
    "shrink",
    "ShrinkResult",
    "weight",
    "FINDING_SCHEMA",
    "save_finding",
    "load_findings",
    "replay_finding",
    "replay_corpus",
]
