"""The oracle registry: the paper's claims as executable cross-checks.

Every analyzer in this repo doubles as an oracle for every other one,
because the paper's core results are biconditionals and containments.
Each :class:`OracleSpec` encodes one such metamorphic relation as a
``check(subject, config) -> None | OracleSkip | dict`` function:

* ``None`` — the relation holds on this subject;
* :class:`OracleSkip` — the check is inconclusive here (an exploration
  hit its budget, the subject has no high variable to vary, ...);
* a ``dict`` — a **violation**: JSON-serializable evidence that the
  relation fails, which the driver hands to the shrinker.

The catalog (paper sections in :attr:`OracleSpec.paper`):

``cert-equiv``
    §6's linear-pass claim, made safe: the fused single-sweep
    certifier (:mod:`repro.fastpath`) must produce *dict-identical*
    cert, denning (both concurrency modes), and memoized lint results
    to the reference analyzers on every generated program.
``cert-proof``
    Theorems 1–2: ``certify(S).certified`` iff a flow proof can be
    generated, checks out, is completely invariant, and re-certifies
    via :func:`repro.logic.extract.certification_from_proof`.
``denning-contain``
    §4.3: the CFM checks strictly *more* than the Dennings' sequential
    mechanism, so every CFM-certified program must also pass the
    Denning baseline (``on_concurrency="ignore"``).  The converse is
    deliberately not asserted — the Dennings miss termination and
    synchronization channels, which is the paper's point.
``cert-ni``
    §5 / the security argument: a certified, runtime-safe program must
    satisfy possibilistic termination-sensitive noninterference for an
    observer at the scheme's bottom.
``deadlock-lint``
    soundness of ``repro lint``'s RPL1xx pass against the explorer: a
    reachable deadlock witness implies the static pass may not claim
    deadlock-freedom.
``parse-pretty``
    the concrete syntax round-trip: ``parse(pretty(S))`` pretty-prints
    back to the same text, and programs stay valid.
``pipeline-idem``
    the batch pipeline's determinism contract: cold, warm, and
    cache-free runs of the deterministic analyses yield byte-identical
    documents.
``runtime-safe``
    the generator's own docstring: ``runtime_safe=True`` programs can
    be run and explored exhaustively, never deadlock, and terminate
    under every schedule.

Any *exception* escaping an analyzer during a check is itself a
finding — the driver converts it to a violation record — so every
oracle is implicitly also a crash oracle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple, Union

from repro.lang.ast import (
    Assign,
    BinOp,
    IntLit,
    Program,
    Stmt,
    While,
    used_variables,
)
from repro.pipeline.analyses import _binding

Subject = Union[Program, Stmt]

#: Profile tags a subject can carry (see the workload generator).
PROFILES = ("static", "runtime_safe")


class OracleSkip:
    """An inconclusive check: neither a pass nor a violation."""

    def __init__(self, reason: str):
        self.reason = reason

    def __repr__(self) -> str:
        return f"<OracleSkip {self.reason!r}>"


@dataclass(frozen=True)
class OracleSpec:
    """One registered differential oracle.

    ``profiles`` names the generation profiles the relation is meant
    for — ``cert-ni`` and ``runtime-safe`` only make sense on programs
    the generator guarantees explorable.
    """

    name: str
    description: str
    paper: str
    profiles: Tuple[str, ...]
    check: Callable[[Subject, dict], Optional[object]]


def _budget(config: dict):
    from repro.observe.budget import Budget

    deadline = config.get("deadline")
    return Budget(
        max_states=int(config["max_states"]),
        max_depth=int(config["max_depth"]),
        deadline=float(deadline) if deadline is not None else None,
    )


def _value_blowup_risk(subject: Subject) -> bool:
    """Whether iterated multiplication can explode value magnitudes.

    ``v := v * v`` under a loop doubles ``v``'s bit width every
    iteration; a few dozen iterations make a *single* machine step (one
    bignum multiply) arbitrarily expensive, which no state budget or
    deadline poll can interrupt.  Exploration-based oracles skip such
    subjects: the blow-up is a capability limit of any finite machine,
    not a property the oracles are checking.
    """
    from repro.lang.ast import iter_nodes

    stmt = subject.body if isinstance(subject, Program) else subject

    def _has_var_product(expr) -> bool:
        for node in iter_nodes(expr):
            if (
                isinstance(node, BinOp)
                and node.op == "*"
                and not isinstance(node.left, IntLit)
                and not isinstance(node.right, IntLit)
            ):
                return True
        return False

    def _risky(node) -> bool:
        for inner in iter_nodes(node):
            if isinstance(inner, Assign) and _has_var_product(inner.expr):
                return True
        return False

    return any(
        _risky(node.body)
        for node in iter_nodes(stmt)
        if isinstance(node, While)
    )


def _check_cert_equiv(subject: Subject, config: dict):
    from repro.fastpath import (
        fused_cert,
        fused_denning,
        lint_memo_get,
        lint_memo_put,
    )
    from repro.pipeline.analyses import (
        _reference_cert,
        _reference_denning,
        _reference_lint,
    )

    if not config.get("fastpath", True):
        return OracleSkip("fast path disabled by config")

    fast = fused_cert(subject, config)
    if fast is None:
        # Generated programs are core-language; a decline here would
        # itself be surprising, but it is a coverage gap, not a lie.
        return OracleSkip("fast path declined the subject")
    ref = _reference_cert(subject, config)
    if fast != ref:
        return {
            "relation": "fused cert == reference cert",
            "fused": fast,
            "reference": ref,
        }

    for mode in ("ignore", "reject"):
        mode_config = dict(config, on_concurrency=mode)
        fast_d = fused_denning(subject, mode_config)
        if fast_d is None:
            return OracleSkip("fast path declined the subject")
        ref_d = _reference_denning(subject, mode_config)
        if fast_d != ref_d:
            return {
                "relation": "fused denning == reference denning",
                "on_concurrency": mode,
                "fused": fast_d,
                "reference": ref_d,
            }

    # The lint memo: a pre-existing entry must already agree with the
    # reference, and a fresh put must replay dict-identically (this is
    # the memo-hit path ``repro batch`` takes on repeated subjects).
    ref_lint = _reference_lint(subject, config)
    cached = lint_memo_get(subject, config)
    if cached is not None and cached != ref_lint:
        return {
            "relation": "memoized lint == reference lint",
            "fused": cached,
            "reference": ref_lint,
        }
    lint_memo_put(subject, config, ref_lint)
    replayed = lint_memo_get(subject, config)
    if replayed != ref_lint:
        return {
            "relation": "lint memo round-trips dict-identically",
            "fused": replayed,
            "reference": ref_lint,
        }
    return None


def _check_cert_proof(subject: Subject, config: dict):
    from repro.core.cfm import certify
    from repro.errors import GenerationError
    from repro.lang.procs import resolve_subject
    from repro.logic.checker import check_proof
    from repro.logic.extract import (
        certification_from_proof,
        is_completely_invariant,
    )
    from repro.logic.generator import generate_proof

    binding = _binding(subject, config)
    report = certify(subject, binding)
    resolved, _ = resolve_subject(subject)
    try:
        proof = generate_proof(resolved, binding)
    except GenerationError as exc:
        if report.certified:
            return {
                "relation": "certified => proof generable",
                "detail": f"generate_proof refused a certified program: {exc}",
            }
        return None
    if not report.certified:
        return {
            "relation": "proof generable => certified",
            "detail": "generate_proof produced a proof for an "
            "uncertified program",
        }
    checked = check_proof(proof, binding.scheme)
    if not checked.ok:
        return {
            "relation": "certified => proof checks",
            "detail": f"{len(checked.problems)} proof problem(s)",
        }
    if not is_completely_invariant(proof, binding):
        return {
            "relation": "certified => completely invariant proof",
            "detail": "generated proof is not completely invariant",
        }
    if not certification_from_proof(proof, binding).certified:
        return {
            "relation": "proof => certification (Theorem 2)",
            "detail": "certification extracted from the proof disagrees",
        }
    return None


def _check_denning_contain(subject: Subject, config: dict):
    from repro.core.cfm import certify
    from repro.core.denning import certify_denning

    binding = _binding(subject, config)
    if not certify(subject, binding).certified:
        return None
    denning = certify_denning(subject, binding, on_concurrency="ignore")
    if denning.certified:
        return None
    return {
        "relation": "CFM-certified => Denning-certified (ignore)",
        "detail": "the CFM accepts a program the strictly weaker "
        "sequential baseline rejects",
        "denning_violations": sorted({c.rule for c in denning.violations}),
    }


def _check_cert_ni(subject: Subject, config: dict):
    from repro.core.cfm import certify
    from repro.runtime.noninterference import check_noninterference

    if _value_blowup_risk(subject):
        return OracleSkip("iterated multiplication can explode values")
    binding = _binding(subject, config)
    if not certify(subject, binding).certified:
        return None
    stmt = subject.body if isinstance(subject, Program) else subject
    high = sorted(frozenset(config["high"]) & used_variables(stmt))
    if not high:
        return OracleSkip("no high variable to vary")
    observer = binding.scheme.bottom
    variations = [
        {name: 0 for name in high},
        {name: 1 for name in high},
    ]
    result = check_noninterference(
        subject,
        binding,
        observer,
        variations,
        max_states=int(config["max_states"]),
        max_depth=int(config["max_depth"]),
    )
    if not result.complete:
        return OracleSkip("exploration budget hit; verdict inconclusive")
    if result.holds:
        return None
    i, j, outcome = result.witness()
    return {
        "relation": "certified + runtime-safe => noninterference",
        "detail": f"variation {i} can reach {outcome} but "
        f"variation {j} cannot",
        "high": high,
    }


def _check_deadlock_lint(subject: Subject, config: dict):
    from repro.analysis.deadlock import find_deadlock
    from repro.staticlint.deadlock import static_deadlock

    if _value_blowup_risk(subject):
        return OracleSkip("iterated multiplication can explode values")
    dynamic = find_deadlock(
        subject,
        max_states=int(config["max_states"]),
        max_depth=int(config["max_depth"]),
    )
    if dynamic.deadlock_free:
        if not dynamic.complete:
            return OracleSkip("exploration budget hit; no witness found")
        return None
    static = static_deadlock(subject)
    if static.may_deadlock:
        return None
    return {
        "relation": "dynamic deadlock witness => static may_deadlock",
        "detail": "the explorer found a reachable deadlock but the "
        "RPL1xx pass claims deadlock-freedom",
        "blocked": [list(pid) for pid in dynamic.witness.blocked],
    }


def _check_parse_pretty(subject: Subject, config: dict):
    from repro.lang.parser import parse_program, parse_statement
    from repro.lang.pretty import pretty
    from repro.lang.validate import validate_program

    first = pretty(subject)
    if isinstance(subject, Program):
        reparsed = parse_program(first)
        problems = validate_program(reparsed)
        if problems:
            return {
                "relation": "pretty(S) reparses to a valid program",
                "detail": "; ".join(str(p) for p in problems[:3]),
            }
    else:
        reparsed = parse_statement(first)
    second = pretty(reparsed)
    if first != second:
        return {
            "relation": "parse o pretty is a fixpoint",
            "detail": "pretty(parse(pretty(S))) != pretty(S)",
            "first": first,
            "second": second,
        }
    return None


#: The deterministic analyses the pipeline oracle runs.  ``explore``
#: is deliberately excluded: with a deadline it may produce degraded
#: cells, which are timing-dependent by design and uncached.
_PIPELINE_ANALYSES = ("cert", "lint", "metrics")


def _check_pipeline_idem(subject: Subject, config: dict):
    import tempfile

    from repro.pipeline.runner import run_pipeline

    corpus = [("fuzz-subject", subject)]
    slice_config = {
        key: config[key] for key in ("scheme", "high", "on_concurrency")
    }
    with tempfile.TemporaryDirectory(prefix="repro-fuzz-") as cache_dir:
        cold = run_pipeline(
            corpus,
            analyses=_PIPELINE_ANALYSES,
            jobs=1,
            cache_dir=cache_dir,
            config=slice_config,
        ).to_json()
        warm = run_pipeline(
            corpus,
            analyses=_PIPELINE_ANALYSES,
            jobs=1,
            cache_dir=cache_dir,
            config=slice_config,
        ).to_json()
    bare = run_pipeline(
        corpus,
        analyses=_PIPELINE_ANALYSES,
        jobs=1,
        use_cache=False,
        config=slice_config,
    ).to_json()
    if cold != warm:
        return {
            "relation": "cold == warm pipeline document",
            "detail": "a cache round-trip changed the document bytes",
        }
    if cold != bare:
        return {
            "relation": "cached == cache-free pipeline document",
            "detail": "enabling the cache changed the document bytes",
        }
    return None


def _check_runtime_safe(subject: Subject, config: dict):
    from repro.runtime.explorer import explore

    if _value_blowup_risk(subject):
        return OracleSkip("iterated multiplication can explode values")
    result = explore(subject, budget=_budget(config))
    deadlocks = [
        outcome
        for outcome in result.sorted_outcomes()
        if outcome.status == "deadlock"
    ]
    if deadlocks:
        return {
            "relation": "runtime-safe programs never deadlock",
            "detail": f"{len(deadlocks)} deadlock outcome(s); first: "
            f"{deadlocks[0]}",
        }
    if not result.complete:
        return OracleSkip(
            f"exploration stopped on {result.limit}; termination "
            "verdict inconclusive"
        )
    # Completing the exhaustive exploration *is* the termination-
    # under-every-schedule proof; serialization must survive whatever
    # values the program computed (the seed-249 regression).
    import json

    json.dumps([outcome.to_dict() for outcome in result.sorted_outcomes()])
    return None


#: Registry of every differential oracle ``repro fuzz`` can run.
ORACLES: Dict[str, OracleSpec] = {
    spec.name: spec
    for spec in (
        OracleSpec(
            "cert-equiv",
            "fused fast-path certifier agrees with the reference analyzers",
            "section 6",
            PROFILES,
            _check_cert_equiv,
        ),
        OracleSpec(
            "cert-proof",
            "certification iff a valid, completely invariant flow proof",
            "Theorems 1-2",
            PROFILES,
            _check_cert_proof,
        ),
        OracleSpec(
            "denning-contain",
            "CFM-certified implies Denning-certified (ignore mode)",
            "section 4.3",
            PROFILES,
            _check_denning_contain,
        ),
        OracleSpec(
            "cert-ni",
            "certified runtime-safe programs are noninterfering",
            "section 5",
            ("runtime_safe",),
            _check_cert_ni,
        ),
        OracleSpec(
            "deadlock-lint",
            "static deadlock pass is sound against the explorer",
            "section 2.0 semantics",
            PROFILES,
            _check_deadlock_lint,
        ),
        OracleSpec(
            "parse-pretty",
            "parse/pretty round-trip is a fixpoint",
            "section 2.0 syntax",
            PROFILES,
            _check_parse_pretty,
        ),
        OracleSpec(
            "pipeline-idem",
            "pipeline documents are byte-identical cold/warm/cache-free",
            "tooling determinism contract",
            PROFILES,
            _check_pipeline_idem,
        ),
        OracleSpec(
            "runtime-safe",
            "runtime-safe programs run, terminate, and never deadlock",
            "generator contract",
            ("runtime_safe",),
            _check_runtime_safe,
        ),
    )
}


def oracle_names() -> Tuple[str, ...]:
    """Registered oracle names, sorted."""
    return tuple(sorted(ORACLES))
