"""Delta-debugging minimization of oracle-violating programs.

Given a subject and a predicate ("this oracle still reports a
violation"), :func:`shrink` greedily applies syntactic reductions —
drop a statement from a ``begin``, drop a ``cobegin`` branch, unwrap a
compound statement to one of its children, replace a statement with
``skip``, literal-ize an expression — keeping a candidate only when it
still satisfies the predicate.  The result is *1-minimal* with respect
to the reduction set: no single remaining reduction preserves the
violation.

Termination is by a strict weight measure (:func:`weight`): every
reduction the shrinker can propose strictly decreases it, the measure
is a positive integer, and a candidate is only accepted when the
predicate holds — so the accepted-step count is bounded by the initial
weight regardless of what the predicate does.

Candidates for :class:`~repro.lang.ast.Program` subjects must also
survive :func:`repro.lang.validate.validate_program`; after the body
is minimal, declarations whose names the body no longer uses are
pruned (subject to the same predicate re-check).  A predicate that
*raises* on a candidate rejects that candidate — crashes during
shrinking must never accept a program the oracle cannot even process.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator, List, Optional, Union

from repro.lang.ast import (
    Assign,
    Begin,
    BinOp,
    BoolLit,
    Cobegin,
    Expr,
    If,
    IntLit,
    Program,
    Signal,
    Skip,
    Stmt,
    UnOp,
    Var,
    VarDecl,
    Wait,
    While,
    used_variables,
)
from repro.lang.clone import clone_expr, clone_stmt
from repro.lang.validate import validate_program

Subject = Union[Program, Stmt]

#: Safety valve on predicate evaluations; the weight measure bounds
#: accepted steps, this bounds *attempted* ones on adversarial inputs.
DEFAULT_MAX_CHECKS = 10_000


def weight(node: Union[Expr, Stmt]) -> int:
    """The strictly-decreasing termination measure.

    ``skip``, ``0``, ``false`` and ``true`` weigh 1; every other leaf
    weighs 2 (so literal-izing a variable or zeroing a constant makes
    progress); interior nodes weigh 2 plus their children.
    """
    if isinstance(node, Skip):
        return 1
    if isinstance(node, IntLit):
        return 1 if node.value == 0 else 2
    if isinstance(node, BoolLit):
        return 1
    if isinstance(node, (Var, Wait, Signal)):
        return 2
    if isinstance(node, Assign):
        return 2 + weight(node.expr)
    if isinstance(node, UnOp):
        return 2 + weight(node.operand)
    if isinstance(node, BinOp):
        return 2 + weight(node.left) + weight(node.right)
    if isinstance(node, If):
        total = 2 + weight(node.cond) + weight(node.then_branch)
        if node.else_branch is not None:
            total += weight(node.else_branch)
        return total
    if isinstance(node, While):
        return 2 + weight(node.cond) + weight(node.body)
    if isinstance(node, Begin):
        return 2 + sum(weight(s) for s in node.body)
    if isinstance(node, Cobegin):
        return 2 + sum(weight(s) for s in node.branches)
    raise TypeError(f"no weight for {type(node).__name__}")


def _expr_reductions(expr: Expr) -> Iterator[Expr]:
    """Strictly smaller replacements for one expression subtree."""
    if isinstance(expr, BinOp):
        yield clone_expr(expr.left)
        yield clone_expr(expr.right)
        yield IntLit(0)
    elif isinstance(expr, UnOp):
        yield clone_expr(expr.operand)
        yield IntLit(0)
    elif isinstance(expr, Var):
        yield IntLit(0)
    elif isinstance(expr, IntLit):
        if expr.value != 0:
            yield IntLit(0)
    # BoolLit: already minimal for its kind.


def _with_expr_reductions(
    expr: Expr, rebuild: Callable[[Expr], Stmt]
) -> Iterator[Stmt]:
    """Every statement obtained by reducing ``expr`` anywhere inside."""
    for reduced in _expr_candidates(expr):
        yield rebuild(reduced)


def _expr_candidates(expr: Expr) -> Iterator[Expr]:
    """Reductions of ``expr`` at any depth (whole subtree first)."""
    yield from _expr_reductions(expr)
    if isinstance(expr, BinOp):
        for cand in _expr_candidates(expr.left):
            yield BinOp(expr.op, cand, clone_expr(expr.right))
        for cand in _expr_candidates(expr.right):
            yield BinOp(expr.op, clone_expr(expr.left), cand)
    elif isinstance(expr, UnOp):
        for cand in _expr_candidates(expr.operand):
            yield UnOp(expr.op, cand)


def _reductions(stmt: Stmt) -> Iterator[Stmt]:
    """Whole-subtree replacements for ``stmt``, all strictly lighter."""
    if isinstance(stmt, Begin):
        for i in range(len(stmt.body)):
            rest = stmt.body[:i] + stmt.body[i + 1 :]
            if not rest:
                yield Skip()
            elif len(rest) == 1:
                yield clone_stmt(rest[0])
            else:
                yield Begin([clone_stmt(s) for s in rest])
        for child in stmt.body:
            yield clone_stmt(child)
    elif isinstance(stmt, Cobegin):
        for i in range(len(stmt.branches)):
            rest = stmt.branches[:i] + stmt.branches[i + 1 :]
            if len(rest) == 1:
                yield clone_stmt(rest[0])
            elif rest:
                yield Cobegin([clone_stmt(s) for s in rest])
        for branch in stmt.branches:
            yield clone_stmt(branch)
        yield Skip()
    elif isinstance(stmt, If):
        yield clone_stmt(stmt.then_branch)
        if stmt.else_branch is not None:
            yield clone_stmt(stmt.else_branch)
            yield If(
                clone_expr(stmt.cond), clone_stmt(stmt.then_branch), None
            )
        yield Skip()
    elif isinstance(stmt, While):
        yield clone_stmt(stmt.body)
        yield Skip()
    elif isinstance(stmt, (Assign, Wait, Signal)):
        yield Skip()


def _stmt_candidates(stmt: Stmt) -> Iterator[Stmt]:
    """All one-reduction rewrites of ``stmt`` (any depth)."""
    yield from _reductions(stmt)
    if isinstance(stmt, Assign):
        yield from _with_expr_reductions(
            stmt.expr, lambda e: Assign(stmt.target, e)
        )
    elif isinstance(stmt, If):
        yield from _with_expr_reductions(
            stmt.cond,
            lambda e: If(
                e,
                clone_stmt(stmt.then_branch),
                clone_stmt(stmt.else_branch) if stmt.else_branch else None,
            ),
        )
        for cand in _stmt_candidates(stmt.then_branch):
            yield If(
                clone_expr(stmt.cond),
                cand,
                clone_stmt(stmt.else_branch) if stmt.else_branch else None,
            )
        if stmt.else_branch is not None:
            for cand in _stmt_candidates(stmt.else_branch):
                yield If(
                    clone_expr(stmt.cond), clone_stmt(stmt.then_branch), cand
                )
    elif isinstance(stmt, While):
        yield from _with_expr_reductions(
            stmt.cond, lambda e: While(e, clone_stmt(stmt.body))
        )
        for cand in _stmt_candidates(stmt.body):
            yield While(clone_expr(stmt.cond), cand)
    elif isinstance(stmt, Begin):
        for i, child in enumerate(stmt.body):
            for cand in _stmt_candidates(child):
                parts = [clone_stmt(s) for s in stmt.body]
                parts[i] = cand
                yield Begin(parts)
    elif isinstance(stmt, Cobegin):
        for i, branch in enumerate(stmt.branches):
            for cand in _stmt_candidates(branch):
                parts = [clone_stmt(s) for s in stmt.branches]
                parts[i] = cand
                yield Cobegin(parts)


def _prune_decls(program: Program) -> Optional[Program]:
    """The program without declarations its body no longer uses."""
    keep = used_variables(program.body)
    decls: List[VarDecl] = []
    changed = False
    for decl in program.decls:
        names = [name for name in decl.names if name in keep]
        if names == decl.names:
            decls.append(decl)
            continue
        changed = True
        if names:
            decls.append(VarDecl(names, decl.kind, decl.initial))
    if not changed:
        return None
    return Program(decls, clone_stmt(program.body), procs=program.procs)


@dataclass
class ShrinkResult:
    """What :func:`shrink` produced.

    ``iterations`` counts accepted reductions, ``checks`` counts
    predicate evaluations; ``weight_before``/``weight_after`` show the
    termination measure's progress.
    """

    subject: Subject
    iterations: int
    checks: int
    weight_before: int
    weight_after: int


def _body(subject: Subject) -> Stmt:
    return subject.body if isinstance(subject, Program) else subject


def _rebuild(subject: Subject, body: Stmt) -> Subject:
    if isinstance(subject, Program):
        return Program(
            list(subject.decls), body, procs=subject.procs
        )
    return body


def shrink(
    subject: Subject,
    predicate: Callable[[Subject], bool],
    max_checks: int = DEFAULT_MAX_CHECKS,
) -> ShrinkResult:
    """Minimize ``subject`` while ``predicate`` keeps holding.

    ``predicate(subject)`` must be true on entry (the caller found a
    violation); if it is not, the subject is returned unshrunk.  Every
    accepted step strictly decreases :func:`weight`, and candidates
    that fail validation, fail the predicate, or make the predicate
    raise are rejected.
    """
    checks = 0
    iterations = 0
    before = weight(_body(subject))

    def holds(candidate: Subject) -> bool:
        nonlocal checks
        checks += 1
        try:
            return bool(predicate(candidate))
        except Exception:  # noqa: BLE001 - a crashing candidate is rejected
            return False

    if not holds(subject):
        return ShrinkResult(subject, 0, checks, before, before)

    current = subject
    progress = True
    while progress and checks < max_checks:
        progress = False
        current_weight = weight(_body(current))
        for candidate_body in _stmt_candidates(_body(current)):
            if checks >= max_checks:
                break
            if weight(candidate_body) >= current_weight:
                continue
            candidate = _rebuild(current, candidate_body)
            if isinstance(candidate, Program) and validate_program(candidate):
                continue
            if holds(candidate):
                current = candidate
                iterations += 1
                progress = True
                break
    if isinstance(current, Program):
        pruned = _prune_decls(current)
        if (
            pruned is not None
            and not validate_program(pruned)
            and holds(pruned)
        ):
            current = pruned
            iterations += 1
    return ShrinkResult(
        current, iterations, checks, before, weight(_body(current))
    )
