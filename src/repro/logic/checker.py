"""Independent verification of flow-logic proof trees (Figure 1).

``check_proof`` validates every rule application in a proof tree
against the paper's Figure 1: structural fit (the right statement
forms, the right premise counts), assertion plumbing (premise pre/post
agreement), side conditions (via the entailment engine), and — for
``cobegin`` — Owicki–Gries-style *interference freedom*, adapted as
the paper specifies: "indirect flows in one process do not affect
indirect flows in another process", so only the V-parts of a sibling's
assertions are exposed to interference, while the acting statement's
``local``/``global`` are bounded by its own precondition.

The checker shares no code with the Theorem 1 generator beyond the
assertion data structures, so generated proofs are genuinely verified
rather than trusted.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Tuple

from repro.errors import AssertionFormError, ProofError
from repro.lang.ast import (
    Assign,
    Begin,
    Cobegin,
    If,
    Signal,
    Skip,
    Stmt,
    Wait,
    While,
)
from repro.lattice.base import Lattice
from repro.lattice.extended import ExtendedLattice
from repro.logic.assertions import Bound, FlowAssertion
from repro.logic.classexpr import (
    GLOBAL,
    LOCAL,
    ClassExpr,
    Symbol,
    VarClass,
    cert_expr,
    class_of_expr,
)
from repro.logic.entailment import Entailment
from repro.logic.proof import ProofNode


class CheckedProof:
    """Result of checking one proof tree."""

    def __init__(self, proof: ProofNode, problems: List[str]):
        self.proof = proof
        self.problems = list(problems)

    @property
    def ok(self) -> bool:
        return not self.problems

    def raise_if_invalid(self) -> "CheckedProof":
        if self.problems:
            raise ProofError(
                f"invalid proof ({len(self.problems)} problems): "
                + "; ".join(self.problems[:5])
            )
        return self

    def __repr__(self) -> str:
        state = "valid" if self.ok else f"{len(self.problems)} problems"
        return f"<CheckedProof {state}>"


def action_substitution(stmt: Stmt, scheme: Lattice) -> Mapping[Symbol, ClassExpr]:
    """The axiom substitution of an atomic statement (Figure 1).

    * ``x := e``     : ``x <- e (+) local (+) global``
    * ``signal(sem)``: ``sem <- sem (+) local (+) global``
    * ``wait(sem)``  : ``sem <- sem (+) local (+) global`` and
      ``global <- sem (+) local (+) global`` simultaneously.
    """
    ext = ExtendedLattice(scheme)
    if isinstance(stmt, Assign):
        rhs = (
            class_of_expr(stmt.expr, scheme)
            .join(cert_expr(LOCAL), ext)
            .join(cert_expr(GLOBAL), ext)
        )
        return {VarClass(stmt.target): rhs}
    if isinstance(stmt, (Wait, Signal)):
        rhs = (
            ClassExpr([VarClass(stmt.sem)])
            .join(cert_expr(LOCAL), ext)
            .join(cert_expr(GLOBAL), ext)
        )
        mapping: Dict[Symbol, ClassExpr] = {VarClass(stmt.sem): rhs}
        if isinstance(stmt, Wait):
            mapping[GLOBAL] = rhs
        return mapping
    raise ProofError(f"{stmt!r} is not an atomic action")


class _Checker:
    def __init__(self, scheme: Lattice):
        self.scheme = scheme
        self.ext = ExtendedLattice(scheme)
        self.engine = Entailment(self.ext)
        self.problems: List[str] = []

    # -- reporting ---------------------------------------------------------

    def _fail(self, node: ProofNode, message: str) -> None:
        loc = f" at {node.stmt.loc}" if node.stmt.loc else ""
        self.problems.append(f"{node.rule}{loc}: {message}")

    def _equiv(self, node: ProofNode, a: FlowAssertion, b: FlowAssertion, what: str) -> bool:
        if self.engine.equivalent(a, b):
            return True
        self._fail(node, f"{what}: {a!r} is not equivalent to {b!r}")
        return False

    def _entails(self, node: ProofNode, hyp: FlowAssertion, goal, what: str) -> bool:
        if self.engine.entails(hyp, goal):
            return True
        self._fail(node, f"{what}: cannot derive {goal!r} from {hyp!r}")
        return False

    def _vlg(self, node: ProofNode, assertion: FlowAssertion, which: str):
        try:
            return assertion.vlg()
        except AssertionFormError as exc:
            self._fail(node, f"{which} is not {{V, L, G}} shaped: {exc}")
            return None

    # -- dispatch ------------------------------------------------------------

    def check(self, node: ProofNode) -> None:
        handler = getattr(self, f"_check_{node.rule}", None)
        if handler is None:
            self._fail(node, "unknown rule")
            return
        handler(node)

    def _expect_premises(self, node: ProofNode, count: int) -> bool:
        if len(node.premises) != count:
            self._fail(node, f"expected {count} premises, found {len(node.premises)}")
            return False
        return True

    # -- axioms ---------------------------------------------------------------

    def _check_assignment(self, node: ProofNode) -> None:
        if not isinstance(node.stmt, Assign):
            self._fail(node, "assignment axiom applied to a non-assignment")
            return
        self._expect_premises(node, 0)
        expected_pre = node.post.substitute(action_substitution(node.stmt, self.scheme), self.ext)
        self._equiv(node, node.pre, expected_pre, "axiom precondition")

    def _check_signal(self, node: ProofNode) -> None:
        if not isinstance(node.stmt, Signal):
            self._fail(node, "signal axiom applied to a non-signal")
            return
        self._expect_premises(node, 0)
        expected_pre = node.post.substitute(action_substitution(node.stmt, self.scheme), self.ext)
        self._equiv(node, node.pre, expected_pre, "axiom precondition")

    def _check_wait(self, node: ProofNode) -> None:
        if not isinstance(node.stmt, Wait):
            self._fail(node, "wait axiom applied to a non-wait")
            return
        self._expect_premises(node, 0)
        expected_pre = node.post.substitute(action_substitution(node.stmt, self.scheme), self.ext)
        self._equiv(node, node.pre, expected_pre, "axiom precondition")

    def _check_skip(self, node: ProofNode) -> None:
        if not isinstance(node.stmt, Skip):
            self._fail(node, "skip axiom applied to a non-skip")
            return
        self._expect_premises(node, 0)
        self._equiv(node, node.pre, node.post, "skip preserves the assertion")

    # -- structural rules --------------------------------------------------------

    def _check_consequence(self, node: ProofNode) -> None:
        if not self._expect_premises(node, 1):
            return
        premise = node.premises[0]
        if premise.stmt is not node.stmt:
            self._fail(node, "consequence premise concerns a different statement")
        self._entails(node, node.pre, premise.pre, "pre-strengthening P |- P'")
        self._entails(node, premise.post, node.post, "post-weakening Q' |- Q")
        self.check(premise)

    def _check_composition(self, node: ProofNode) -> None:
        if not isinstance(node.stmt, Begin):
            self._fail(node, "composition rule applied to a non-begin")
            return
        if not self._expect_premises(node, len(node.stmt.body)):
            return
        for premise, child in zip(node.premises, node.stmt.body):
            if premise.stmt is not child:
                self._fail(node, "composition premises out of order with the body")
        self._equiv(node, node.pre, node.premises[0].pre, "P0 matches the first premise")
        for i in range(len(node.premises) - 1):
            self._equiv(
                node,
                node.premises[i].post,
                node.premises[i + 1].pre,
                f"P{i + 1} agrees between premises {i} and {i + 1}",
            )
        self._equiv(node, node.post, node.premises[-1].post, "Pn matches the last premise")
        for premise in node.premises:
            self.check(premise)

    def _check_alternation(self, node: ProofNode) -> None:
        if not isinstance(node.stmt, If):
            self._fail(node, "alternation rule applied to a non-if")
            return
        if not self._expect_premises(node, 2):
            return
        p1, p2 = node.premises
        if p1.stmt is not node.stmt.then_branch:
            self._fail(node, "first premise is not the then-branch")
        if node.stmt.else_branch is not None:
            if p2.stmt is not node.stmt.else_branch:
                self._fail(node, "second premise is not the else-branch")
        elif not isinstance(p2.stmt, Skip):
            self._fail(node, "missing else branch requires a skip premise")

        pre = self._vlg(node, node.pre, "conclusion pre")
        post = self._vlg(node, node.post, "conclusion post")
        pre1 = self._vlg(node, p1.pre, "premise pre")
        post1 = self._vlg(node, p1.post, "premise post")
        if None in (pre, post, pre1, post1):
            return
        if pre1.local is None:
            self._fail(node, "premise pre lacks a local bound L'")
            return
        # Premises share pre and post ({V, L', G} Si {V', L', G'}).
        self._equiv(node, p1.pre, p2.pre, "both premises share the precondition")
        self._equiv(node, p1.post, p2.post, "both premises share the postcondition")
        self._equiv(node, pre.v, pre1.v, "V agrees between conclusion and premises")
        if pre.global_ != pre1.global_:
            self._fail(node, f"G differs: {pre.global_!r} vs {pre1.global_!r}")
        if post1.local != pre1.local:
            self._fail(node, "premises must preserve local (L' in pre and post)")
        if post.local != pre.local:
            self._fail(node, "conclusion must preserve local (L in pre and post)")
        self._equiv(node, post.v, post1.v, "V' agrees between conclusion and premises")
        if post.global_ != post1.global_:
            self._fail(node, f"G' differs: {post.global_!r} vs {post1.global_!r}")
        # Side condition: V,L,G |- L'[local <- local (+) e].
        cond_cls = class_of_expr(node.stmt.cond, self.scheme)
        lhs = cert_expr(LOCAL).join(cond_cls, self.ext)
        self._entails(
            node,
            node.pre,
            Bound(lhs, pre1.local),
            "side condition V,L,G |- L'[local <- local (+) e]",
        )
        self.check(p1)
        self.check(p2)

    def _check_iteration(self, node: ProofNode) -> None:
        if not isinstance(node.stmt, While):
            self._fail(node, "iteration rule applied to a non-while")
            return
        if not self._expect_premises(node, 1):
            return
        premise = node.premises[0]
        if premise.stmt is not node.stmt.body:
            self._fail(node, "premise is not the loop body")
        self._equiv(node, premise.pre, premise.post, "{V, L', G} is invariant over S")
        pre = self._vlg(node, node.pre, "conclusion pre")
        post = self._vlg(node, node.post, "conclusion post")
        prem = self._vlg(node, premise.pre, "premise assertion")
        if None in (pre, post, prem):
            return
        if prem.local is None:
            self._fail(node, "premise lacks a local bound L'")
            return
        self._equiv(node, pre.v, prem.v, "V agrees between conclusion and premise")
        if pre.global_ != prem.global_:
            self._fail(node, f"G differs: {pre.global_!r} vs {prem.global_!r}")
        self._equiv(node, post.v, pre.v, "V preserved by the conclusion")
        if post.local != pre.local:
            self._fail(node, "conclusion must preserve local (L in pre and post)")
        if post.global_ is None:
            self._fail(node, "conclusion post lacks a global bound G'")
            return
        cond_cls = class_of_expr(node.stmt.cond, self.scheme)
        lhs_local = cert_expr(LOCAL).join(cond_cls, self.ext)
        self._entails(
            node,
            node.pre,
            Bound(lhs_local, prem.local),
            "side condition V,L,G |- L'[local <- local (+) e]",
        )
        lhs_global = cert_expr(GLOBAL).join(lhs_local, self.ext)
        self._entails(
            node,
            node.pre,
            Bound(lhs_global, post.global_),
            "side condition V,L,G |- G'[global <- global (+) local (+) e]",
        )
        self.check(premise)

    def _check_concurrency(self, node: ProofNode) -> None:
        if not isinstance(node.stmt, Cobegin):
            self._fail(node, "concurrency rule applied to a non-cobegin")
            return
        if not self._expect_premises(node, len(node.stmt.branches)):
            return
        for premise, branch in zip(node.premises, node.stmt.branches):
            if premise.stmt is not branch:
                self._fail(node, "concurrency premises out of order with the branches")

        pres = [self._vlg(node, p.pre, f"premise {i} pre") for i, p in enumerate(node.premises)]
        posts = [self._vlg(node, p.post, f"premise {i} post") for i, p in enumerate(node.premises)]
        pre = self._vlg(node, node.pre, "conclusion pre")
        post = self._vlg(node, node.post, "conclusion post")
        if None in pres or None in posts or pre is None or post is None:
            return
        locals_ = {v.local for v in pres} | {v.local for v in posts}
        if len(locals_) != 1:
            self._fail(node, f"premises do not share one local bound: {locals_!r}")
        globals_pre = {v.global_ for v in pres}
        globals_post = {v.global_ for v in posts}
        if len(globals_pre) != 1:
            self._fail(node, f"premise pres do not share one global bound: {globals_pre!r}")
        if len(globals_post) != 1:
            self._fail(node, f"premise posts do not share one global bound: {globals_post!r}")
        if pre.local != next(iter(locals_)) or pre.global_ != next(iter(globals_pre)):
            self._fail(node, "conclusion pre L,G must match the premises")
        if post.local != pre.local or post.global_ != next(iter(globals_post)):
            self._fail(node, "conclusion post L,G must match the premises")
        conj_v_pre = FlowAssertion(frozenset().union(*(v.v.bounds for v in pres)))
        conj_v_post = FlowAssertion(frozenset().union(*(v.v.bounds for v in posts)))
        self._equiv(node, pre.v, conj_v_pre, "conclusion V is the premises' conjunction")
        self._equiv(node, post.v, conj_v_post, "conclusion V' is the premises' conjunction")

        self._check_interference_freedom(node)
        for premise in node.premises:
            self.check(premise)

    # -- interference freedom ----------------------------------------------------

    def _atomic_actions(self, proof: ProofNode) -> List[Tuple[Stmt, FlowAssertion]]:
        """Outermost (statement, precondition) pairs for each atomic action."""
        seen: Dict[int, Tuple[Stmt, FlowAssertion]] = {}
        for n in proof.walk():
            if isinstance(n.stmt, (Assign, Wait, Signal)) and n.stmt.uid not in seen:
                seen[n.stmt.uid] = (n.stmt, n.pre)
        return list(seen.values())

    def _check_interference_freedom(self, node: ProofNode) -> None:
        """Every assertion of each premise survives each sibling's actions.

        For assertion ``A`` of process i and action ``T`` (with proof
        precondition ``pre(T)``) of process j, we require

            ``A.V and pre(T)  |-  A.V[subst(T)]``

        following Owicki & Gries, except that only ``A``'s V-part is
        exposed: the paper notes that "indirect flows in one process do
        not affect indirect flows in another process", i.e. process
        i's local/global are distinct certification variables from the
        ones mentioned by ``T``'s substitution and precondition.
        """
        for i, proof_i in enumerate(node.premises):
            assertions = []
            for n in proof_i.walk():
                assertions.append(n.pre)
                assertions.append(n.post)
            for j, proof_j in enumerate(node.premises):
                if i == j:
                    continue
                for action, action_pre in self._atomic_actions(proof_j):
                    mapping = action_substitution(action, self.scheme)
                    for assertion in assertions:
                        a_v = assertion.v_part()
                        goal = a_v.substitute(mapping, self.ext)
                        hyp = a_v.conjoin(action_pre)
                        if not self.engine.entails(hyp, goal):
                            self._fail(
                                node,
                                f"interference: process {j}'s action "
                                f"{type(action).__name__} at {action.loc} breaks "
                                f"process {i}'s assertion {assertion!r}",
                            )


def check_proof(proof: ProofNode, scheme: Lattice) -> CheckedProof:
    """Verify ``proof`` against Figure 1 over the base ``scheme``.

    Returns a :class:`CheckedProof`; use ``.ok`` or
    ``.raise_if_invalid()``.  The checker records *all* problems it
    finds, not just the first.
    """
    checker = _Checker(scheme)
    checker.check(proof)
    return CheckedProof(proof, checker.problems)
