"""The information flow logic (paper section 3, Figure 1).

A deductive logic for reasoning about information flow, after Andrews &
Reitman [1]: assertions denote restrictions on the *information state*
(classifications, not values), and proof rules mirror Hoare logic with
two certification variables — ``local`` for indirect flows confined to
a statement and ``global`` for flows that arise from sequencing
(conditional termination and synchronization).

Modules:

* :mod:`repro.logic.classexpr` — class expressions: variable classes
  (the paper's underlined ``v``), ``local``, ``global``, lattice
  constants, and their joins, in a normal form.
* :mod:`repro.logic.assertions` — flow assertions (conjunctions of
  upper bounds) with syntactic substitution and the {V, L, G} shape.
* :mod:`repro.logic.entailment` — the derivability relation ``P |- Q``
  (lattice theory + propositional logic).
* :mod:`repro.logic.proof` — proof trees for the Figure 1 rules.
* :mod:`repro.logic.checker` — an independent whole-proof verifier,
  including interference-freedom for ``cobegin``.
* :mod:`repro.logic.generator` — Theorem 1's constructive recipe:
  CFM-certified program -> completely invariant flow proof.
* :mod:`repro.logic.extract` — Theorem 2's direction: completely
  invariant proof -> CFM certification.
* :mod:`repro.logic.render` — proof pretty-printing.
"""

from repro.logic.assertions import Bound, FlowAssertion, policy_assertion
from repro.logic.classexpr import (
    GLOBAL,
    LOCAL,
    CertVar,
    ClassExpr,
    VarClass,
    class_of_expr,
    const_expr,
    var_class,
)
from repro.logic.checker import CheckedProof, check_proof
from repro.logic.entailment import Entailment
from repro.logic.extract import certification_from_proof, is_completely_invariant
from repro.logic.generator import generate_proof
from repro.logic.proof import ProofNode
from repro.logic.render import render_proof
from repro.logic.search import proof_from_analysis, state_assertion
from repro.logic.serialize import dump_proof, load_proof

__all__ = [
    "ClassExpr",
    "VarClass",
    "CertVar",
    "LOCAL",
    "GLOBAL",
    "var_class",
    "const_expr",
    "class_of_expr",
    "Bound",
    "FlowAssertion",
    "policy_assertion",
    "Entailment",
    "ProofNode",
    "check_proof",
    "CheckedProof",
    "generate_proof",
    "is_completely_invariant",
    "certification_from_proof",
    "render_proof",
    "proof_from_analysis",
    "state_assertion",
    "dump_proof",
    "load_proof",
]
