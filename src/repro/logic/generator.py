"""Theorem 1, constructively: certified program -> completely invariant proof.

The paper's appendix proves that whenever ``cert(S)`` holds for a
static binding ``sbind``, and ``l (+) g <= mod(S)``, a *completely
invariant* flow proof of

    {I, local <= l, global <= g}
        S
    {I, local <= l, global <= g (+) l (+) flow(S)}

exists, where ``I`` is the policy assertion corresponding to ``sbind``
(Definition 6).  This module turns that induction into an algorithm: it
recurses over the statement exactly as the appendix does, inserting
consequence steps where the hand proof appeals to weakening.  Two
refinements from the appendix are honoured:

* when ``flow(S) = nil`` the produced postcondition keeps the tighter
  bound ``global <= g`` (the appendix's "left to the reader" case: a
  statement without global flows never touches ``global``);
* the iteration case first weakens the precondition to the loop
  invariant's global bound ``g (+) local' (+) flow(body)``, since the
  Figure 1 while rule requires premise and conclusion-pre to share G.

Every generated proof is meant to be (and in the test-suite, is)
verified by the independent checker in :mod:`repro.logic.checker`.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.core.binding import StaticBinding
from repro.core.cfm import CertificationReport, certify
from repro.errors import GenerationError
from repro.lang.ast import (
    Assign,
    Begin,
    Cobegin,
    If,
    Program,
    Signal,
    Skip,
    Stmt,
    Wait,
    While,
)
from repro.lattice.base import Element
from repro.lattice.extended import NIL
from repro.logic.assertions import FlowAssertion, policy_assertion, vlg_assertion
from repro.logic.checker import action_substitution
from repro.logic.classexpr import const_expr
from repro.logic.proof import ProofNode


class _Generator:
    def __init__(self, binding: StaticBinding, report: CertificationReport, variables):
        self.binding = binding
        self.base = binding.scheme
        self.ext = binding.extended
        self.analysis = report.analysis
        self.invariant = policy_assertion(binding, variables)

    # -- assertion helpers ----------------------------------------------------

    def state(self, l: Element, g: Element) -> FlowAssertion:
        """``{I, local <= l, global <= g}``."""
        return vlg_assertion(self.invariant, const_expr(l), const_expr(g))

    def post_global(self, l: Element, g: Element, flow: Element) -> Element:
        """The bound after ``S``: ``g`` if ``flow = nil``, else ``g+l+flow``."""
        if flow is NIL:
            return g
        return self.ext.join(self.ext.join(g, l), flow)

    def weaken(self, node: ProofNode, pre: FlowAssertion, post: FlowAssertion) -> ProofNode:
        """Wrap in a consequence step unless it would be the identity."""
        if node.pre == pre and node.post == post:
            return node
        return ProofNode("consequence", node.stmt, pre, post, [node])

    # -- the induction ---------------------------------------------------------

    def generate(self, stmt: Stmt, l: Element, g: Element) -> ProofNode:
        """A proof of ``{I, local<=l, global<=g} stmt {I, local<=l, global<=g'}``.

        Maintains the appendix's induction hypothesis
        ``l (+) g <= mod(stmt)``; ``g'`` is :meth:`post_global`.
        """
        pre = self.state(l, g)

        if isinstance(stmt, (Assign, Signal)):
            # Axiom with P := the (unchanged) invariant state, then
            # strengthen the substituted precondition from {I, L, G}.
            post = pre
            axiom_pre = post.substitute(action_substitution(stmt, self.base), self.ext)
            rule = "assignment" if isinstance(stmt, Assign) else "signal"
            axiom = ProofNode(rule, stmt, axiom_pre, post)
            return self.weaken(axiom, pre, post)

        if isinstance(stmt, Wait):
            flow = self.analysis.flow(stmt)  # = sbind(sem)
            post = self.state(l, self.post_global(l, g, flow))
            axiom_pre = post.substitute(action_substitution(stmt, self.base), self.ext)
            axiom = ProofNode("wait", stmt, axiom_pre, post)
            return self.weaken(axiom, pre, post)

        if isinstance(stmt, Skip):
            return ProofNode("skip", stmt, pre, pre)

        if isinstance(stmt, If):
            return self._generate_if(stmt, l, g)

        if isinstance(stmt, While):
            return self._generate_while(stmt, l, g)

        if isinstance(stmt, Begin):
            return self._generate_begin(stmt, l, g)

        if isinstance(stmt, Cobegin):
            return self._generate_cobegin(stmt, l, g)

        raise GenerationError(f"cannot generate a proof for {stmt!r}")

    def _generate_if(self, stmt: If, l: Element, g: Element) -> ProofNode:
        cond_cls = self.binding.of_expr(stmt.cond)
        l_inner = self.base.join(l, cond_cls)
        p1 = self.generate(stmt.then_branch, l_inner, g)
        if stmt.else_branch is not None:
            p2 = self.generate(stmt.else_branch, l_inner, g)
        else:
            skip = Skip()  # synthesized: a missing else executes nothing
            p2 = ProofNode("skip", skip, self.state(l_inner, g), self.state(l_inner, g))
        # Weaken both premises to the joined postcondition.
        flow = self.analysis.flow(stmt)
        g_out = self.post_global(l, g, flow)
        # flow(S) already includes sbind(e) when non-nil, so g_out bounds
        # both branches' posts; l_inner >= l makes the premise posts weaken.
        common_post = self.state(l_inner, g_out)
        common_pre = self.state(l_inner, g)
        p1 = self.weaken(p1, common_pre, common_post)
        p2 = self.weaken(p2, common_pre, common_post)
        return ProofNode(
            "alternation",
            stmt,
            self.state(l, g),
            self.state(l, g_out),
            [p1, p2],
            note=f"local raised to {l_inner!r} inside the branches",
        )

    def _generate_while(self, stmt: While, l: Element, g: Element) -> ProofNode:
        cond_cls = self.binding.of_expr(stmt.cond)
        l_inner = self.base.join(l, cond_cls)
        flow = self.analysis.flow(stmt)  # = flow(body) (+) sbind(e), never nil
        g_inv = self.ext.join(g, self.ext.join(l_inner, flow))
        body = self.generate(stmt.body, l_inner, g_inv)
        # The body proof already returns global <= g_inv (+) ... = g_inv
        # because g_inv absorbs l_inner and flow(body); normalize anyway.
        body = self.weaken(body, self.state(l_inner, g_inv), self.state(l_inner, g_inv))
        while_node = ProofNode(
            "iteration",
            stmt,
            self.state(l, g_inv),
            self.state(l, g_inv),
            [body],
            note=f"loop invariant global bound {g_inv!r}",
        )
        return self.weaken(while_node, self.state(l, g), self.state(l, g_inv))

    def _generate_begin(self, stmt: Begin, l: Element, g: Element) -> ProofNode:
        premises = []
        g_cur = g
        for child in stmt.body:
            premise = self.generate(child, l, g_cur)
            premises.append(premise)
            g_cur = self.post_global(l, g_cur, self.analysis.flow(child))
        return ProofNode(
            "composition",
            stmt,
            self.state(l, g),
            self.state(l, g_cur),
            premises,
        )

    def _generate_cobegin(self, stmt: Cobegin, l: Element, g: Element) -> ProofNode:
        flow = self.analysis.flow(stmt)
        g_out = self.post_global(l, g, flow)
        premises = []
        for branch in stmt.branches:
            premise = self.generate(branch, l, g)
            premise = self.weaken(premise, self.state(l, g), self.state(l, g_out))
            premises.append(premise)
        return ProofNode(
            "concurrency",
            stmt,
            self.state(l, g),
            self.state(l, g_out),
            premises,
        )


def generate_proof(
    subject,
    binding: StaticBinding,
    l: Optional[Element] = None,
    g: Optional[Element] = None,
    report: Optional[CertificationReport] = None,
) -> ProofNode:
    """Build the Theorem 1 completely invariant proof for ``subject``.

    ``l`` and ``g`` default to the scheme bottom (``low``); Theorem 1
    requires ``l (+) g <= mod(S)``, which is checked here.  ``report``
    may pass in an existing CFM run to avoid recomputing it.

    Raises :class:`~repro.errors.GenerationError` when the program is
    not CFM-certified (Theorem 1 guarantees nothing then) or when
    ``l (+) g`` exceeds ``mod(S)``.
    """
    from repro.core.constraints import complete_synthetic_binding
    from repro.lang.procs import resolve_subject

    subject, stmt = resolve_subject(subject)
    binding = complete_synthetic_binding(subject, binding)
    if report is None:
        report = certify(stmt, binding)
    if not report.certified:
        raise GenerationError(
            "Theorem 1 requires cert(S); CFM rejected the program: "
            + "; ".join(str(v) for v in report.violations[:3])
        )
    base = binding.scheme
    l = base.bottom if l is None else base.check(l)
    g = base.bottom if g is None else base.check(g)
    mod = report.analysis.mod(stmt)
    if not base.leq(base.join(l, g), mod):
        raise GenerationError(
            f"Theorem 1 requires l (+) g <= mod(S): {base.join(l, g)!r} "
            f"is not below {mod!r}"
        )
    from repro.lang.ast import used_variables

    return _Generator(binding, report, used_variables(stmt)).generate(stmt, l, g)
