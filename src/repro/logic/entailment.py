"""The derivability relation ``P |- Q`` of the flow logic.

The paper: "P |- Q indicates that using lattice theory and
propositional logic Q can be derived from P."  Assertions here are
conjunctions of bounds ``join(symbols, const) <= join(symbols, const)``
over an arbitrary complete lattice, so a complete decision procedure
for the general fragment is subtle; this engine implements a *sound*
procedure that is complete for the restricted assertion forms appearing
in completely invariant proofs (right-hand sides that are constants or
single symbols, hypotheses that bound individual symbols) — which is
everything Theorems 1 and 2 require.

Reasoning principles used:

* ``join(A) <= R``  iff  every component of ``A`` is ``<= R`` (join is
  the least upper bound);
* a symbol ``s <= R`` if ``s`` occurs in ``R``, or some hypothesis
  bounds ``s`` above by ``U`` with ``U <= R`` (transitivity, with a
  cycle guard);
* a constant ``c <= R`` if ``c`` is below ``R``'s constant part joined
  with known constant *lower* bounds of ``R``'s symbols (from
  hypotheses of the form ``c' <= s``).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Set, Union

from repro.lattice.base import Element
from repro.lattice.extended import NIL, ExtendedLattice
from repro.logic.assertions import Bound, FlowAssertion
from repro.logic.classexpr import ClassExpr, Symbol


class Entailment:
    """Decides ``P |- Q`` over one extended classification scheme."""

    def __init__(self, ext: ExtendedLattice):
        self.ext = ext

    # ------------------------------------------------------------------

    def entails(
        self,
        hypothesis: FlowAssertion,
        goal: Union[FlowAssertion, Bound],
    ) -> bool:
        """True if every conjunct of ``goal`` is derivable from ``hypothesis``."""
        upper, lower = self._index(hypothesis)
        goals = goal.bounds if isinstance(goal, FlowAssertion) else (goal,)
        return all(self._bound_holds(b, upper, lower) for b in goals)

    def equivalent(self, a: FlowAssertion, b: FlowAssertion) -> bool:
        """Mutual derivability (the assertions restrict states identically)."""
        if a == b:
            return True
        return self.entails(a, b) and self.entails(b, a)

    # ------------------------------------------------------------------

    def _index(self, hypothesis: FlowAssertion):
        """Decompose hypothesis bounds into per-symbol upper bounds and
        constant lower bounds.

        ``join(S, c) <= R`` yields ``s <= R`` for each ``s`` in ``S``
        (components of a join are below any bound of the join).  When
        ``R`` is a single bare symbol ``t``, the constant part ``c``
        is a lower bound of ``t``.
        """
        upper: Dict[Symbol, List[ClassExpr]] = {}
        lower: Dict[Symbol, Element] = {}
        for b in hypothesis.bounds:
            for s in b.lhs.symbols:
                upper.setdefault(s, []).append(b.rhs)
            if b.lhs.const is not NIL and len(b.rhs.symbols) == 1 and b.rhs.const is NIL:
                (t,) = b.rhs.symbols
                lower[t] = self.ext.join(lower.get(t, NIL), b.lhs.const)
        return upper, lower

    def _bound_holds(
        self,
        bound: Bound,
        upper: Dict[Symbol, List[ClassExpr]],
        lower: Dict[Symbol, Element],
    ) -> bool:
        rhs = bound.rhs
        for s in bound.lhs.symbols:
            if not self._symbol_below(s, rhs, upper, frozenset()):
                return False
        return self._const_below(bound.lhs.const, rhs, lower)

    def _symbol_below(
        self,
        s: Symbol,
        rhs: ClassExpr,
        upper: Dict[Symbol, List[ClassExpr]],
        visiting: FrozenSet[Symbol],
    ) -> bool:
        if s in rhs.symbols:
            return True
        if s in visiting:
            return False  # cyclic chain of hypotheses: no new information
        for ub in upper.get(s, ()):
            if self._expr_below(ub, rhs, upper, visiting | {s}):
                return True
        return False

    def _expr_below(
        self,
        lhs: ClassExpr,
        rhs: ClassExpr,
        upper: Dict[Symbol, List[ClassExpr]],
        visiting: FrozenSet[Symbol],
    ) -> bool:
        for s in lhs.symbols:
            if not self._symbol_below(s, rhs, upper, visiting):
                return False
        # Constant part: compare against the rhs constant only (lower
        # bounds of rhs symbols are folded in by _const_below at top
        # level; here a conservative check keeps the recursion sound).
        if lhs.const is NIL:
            return True
        if rhs.const is NIL:
            return False
        return self.ext.leq(lhs.const, rhs.const)

    def _const_below(
        self,
        const: Element,
        rhs: ClassExpr,
        lower: Dict[Symbol, Element],
    ) -> bool:
        if const is NIL:
            return True
        effective = rhs.const
        for s in rhs.symbols:
            effective = self.ext.join(effective, lower.get(s, NIL))
        if effective is NIL:
            return False
        return self.ext.leq(const, effective)
