"""Flow assertions — conjunctions of upper bounds on class expressions.

An assertion is a finite conjunction of *bounds* ``lhs <= rhs`` where
both sides are class expressions.  The paper's {V, L, G} notation
partitions a flow assertion into three parts:

* **V** — bounds mentioning neither ``local`` nor ``global``;
* **L** — the single bound ``local <= l`` (``l`` free of cert vars);
* **G** — the single bound ``global <= g`` (``g`` free of cert vars).

Intermediate assertions produced by axiom substitution need not have
the {V, L, G} shape (e.g. the wait axiom's precondition bounds
``sem (+) local (+) global``), so shape is checked only on demand via
:meth:`FlowAssertion.vlg`.

The *policy assertion corresponding to a static binding* (Definition 6)
is the conjunction of ``class(v) <= sbind(v)`` over all bound
variables; see :func:`policy_assertion`.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, Mapping, NamedTuple, Optional, Tuple

from repro.core.binding import StaticBinding
from repro.errors import AssertionFormError
from repro.lattice.extended import ExtendedLattice
from repro.logic.classexpr import (
    GLOBAL,
    LOCAL,
    CertVar,
    ClassExpr,
    Symbol,
    cert_expr,
    const_expr,
)


class Bound:
    """One conjunct: ``lhs <= rhs``."""

    __slots__ = ("lhs", "rhs")

    def __init__(self, lhs: ClassExpr, rhs: ClassExpr):
        object.__setattr__(self, "lhs", lhs)
        object.__setattr__(self, "rhs", rhs)

    def __setattr__(self, name, value):
        raise AttributeError("Bound is immutable")

    def substitute(self, mapping: Mapping[Symbol, ClassExpr], ext: ExtendedLattice) -> "Bound":
        """Apply a simultaneous substitution to both sides."""
        return Bound(self.lhs.substitute(mapping, ext), self.rhs.substitute(mapping, ext))

    def mentions_cert_vars(self) -> bool:
        return self.lhs.mentions_cert_vars() or self.rhs.mentions_cert_vars()

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Bound) and other.lhs == self.lhs and other.rhs == self.rhs

    def __hash__(self) -> int:
        return hash((self.lhs, self.rhs))

    def __repr__(self) -> str:
        return f"{self.lhs} <= {self.rhs}"


class VLG(NamedTuple):
    """The {V, L, G} decomposition of a well-shaped assertion."""

    v: "FlowAssertion"
    local: Optional[ClassExpr]  # the bound l in "local <= l", or None
    global_: Optional[ClassExpr]  # the bound g in "global <= g", or None


class FlowAssertion:
    """An immutable conjunction of :class:`Bound` terms."""

    __slots__ = ("bounds",)

    def __init__(self, bounds: Iterable[Bound] = ()):
        object.__setattr__(self, "bounds", frozenset(bounds))
        for b in self.bounds:
            if not isinstance(b, Bound):
                raise AssertionFormError(f"not a bound: {b!r}")

    def __setattr__(self, name, value):
        raise AttributeError("FlowAssertion is immutable")

    # -- construction ------------------------------------------------------

    @staticmethod
    def true() -> "FlowAssertion":
        """The empty conjunction (no restriction)."""
        return FlowAssertion()

    def conjoin(self, other: "FlowAssertion") -> "FlowAssertion":
        """``self and other``."""
        return FlowAssertion(self.bounds | other.bounds)

    def with_bound(self, lhs: ClassExpr, rhs: ClassExpr) -> "FlowAssertion":
        return FlowAssertion(self.bounds | {Bound(lhs, rhs)})

    def substitute(
        self, mapping: Mapping[Symbol, ClassExpr], ext: ExtendedLattice
    ) -> "FlowAssertion":
        """Simultaneous syntactic substitution ``P[x <- e, ...]``."""
        return FlowAssertion(b.substitute(mapping, ext) for b in self.bounds)

    # -- {V, L, G} shape -----------------------------------------------------

    def vlg(self) -> VLG:
        """Decompose into {V, L, G}, or raise :class:`AssertionFormError`.

        Requires every bound to be a pure V term, the L term
        ``local <= l``, or the G term ``global <= g`` (at most one of
        each; ``l``/``g`` must not mention cert variables).
        """
        v_terms = []
        local_bound: Optional[ClassExpr] = None
        global_bound: Optional[ClassExpr] = None
        for b in self.bounds:
            if not b.mentions_cert_vars():
                v_terms.append(b)
                continue
            if b.lhs == cert_expr(LOCAL) and not b.rhs.mentions_cert_vars():
                if local_bound is not None and local_bound != b.rhs:
                    raise AssertionFormError(f"two distinct local bounds in {self!r}")
                local_bound = b.rhs
                continue
            if b.lhs == cert_expr(GLOBAL) and not b.rhs.mentions_cert_vars():
                if global_bound is not None and global_bound != b.rhs:
                    raise AssertionFormError(f"two distinct global bounds in {self!r}")
                global_bound = b.rhs
                continue
            raise AssertionFormError(f"bound {b!r} is neither V, L, nor G shaped")
        return VLG(FlowAssertion(v_terms), local_bound, global_bound)

    def v_part(self) -> "FlowAssertion":
        """The bounds free of certification variables."""
        return FlowAssertion(b for b in self.bounds if not b.mentions_cert_vars())

    def is_vlg(self) -> bool:
        """True if :meth:`vlg` would succeed."""
        try:
            self.vlg()
            return True
        except AssertionFormError:
            return False

    # -- dunders ----------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        return isinstance(other, FlowAssertion) and other.bounds == self.bounds

    def __hash__(self) -> int:
        return hash(self.bounds)

    def __iter__(self):
        return iter(self.bounds)

    def __len__(self) -> int:
        return len(self.bounds)

    def __repr__(self) -> str:
        if not self.bounds:
            return "{true}"
        return "{" + ", ".join(sorted(repr(b) for b in self.bounds)) + "}"


def policy_assertion(binding: StaticBinding, variables=None) -> FlowAssertion:
    """Definition 6: the conjunction of ``class(v) <= sbind(v)``.

    ``variables`` defaults to the binding's explicitly bound names;
    pass the program's variable set when the binding uses a default
    class, so defaulted variables get policy terms too.
    """
    from repro.logic.classexpr import var_class

    names = binding.variables if variables is None else frozenset(variables)
    bounds = [
        Bound(var_class(name), const_expr(binding.of_var(name)))
        for name in sorted(names)
    ]
    return FlowAssertion(bounds)


def vlg_assertion(
    v: FlowAssertion,
    local_bound: Optional[ClassExpr],
    global_bound: Optional[ClassExpr],
) -> FlowAssertion:
    """Assemble ``{V, local <= l, global <= g}`` (either bound optional)."""
    out = v
    if local_bound is not None:
        out = out.with_bound(cert_expr(LOCAL), local_bound)
    if global_bound is not None:
        out = out.with_bound(cert_expr(GLOBAL), global_bound)
    return out
