"""Proof trees for the flow logic.

A :class:`ProofNode` records one application of a Figure 1 rule: the
statement it concerns, the pre- and post-assertions, the rule name, and
the premise sub-proofs.  Trees are built either by hand, or by the
Theorem 1 generator, and are verified by the independent checker in
:mod:`repro.logic.checker` — the generator never marks its own homework.

Rule names:

======================  ====================================================
``assignment``          the assignment axiom
``skip``                ``{P} skip {P}`` (for the optional else branch)
``alternation``         the if rule
``iteration``           the while rule
``composition``         the begin rule
``consequence``         pre-strengthening / post-weakening
``concurrency``         the cobegin rule (with interference freedom)
``wait`` / ``signal``   the semaphore axioms
======================  ====================================================
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence, Tuple

from repro.errors import ProofError
from repro.lang.ast import Stmt
from repro.logic.assertions import FlowAssertion

RULES = (
    "assignment",
    "skip",
    "alternation",
    "iteration",
    "composition",
    "consequence",
    "concurrency",
    "wait",
    "signal",
)


class ProofNode:
    """One rule application: ``{pre} stmt {post}`` from ``premises``."""

    __slots__ = ("rule", "stmt", "pre", "post", "premises", "note")

    def __init__(
        self,
        rule: str,
        stmt: Stmt,
        pre: FlowAssertion,
        post: FlowAssertion,
        premises: Sequence["ProofNode"] = (),
        note: str = "",
    ):
        if rule not in RULES:
            raise ProofError(f"unknown rule {rule!r}")
        self.rule = rule
        self.stmt = stmt
        self.pre = pre
        self.post = post
        self.premises: List[ProofNode] = list(premises)
        #: Free-form annotation (the generator records its reasoning here).
        self.note = note

    # ------------------------------------------------------------------

    def walk(self) -> Iterator["ProofNode"]:
        """All nodes in the tree, preorder (self first)."""
        yield self
        for premise in self.premises:
            yield from premise.walk()

    def conclusion(self) -> Tuple[FlowAssertion, Stmt, FlowAssertion]:
        """The logical statement this node proves."""
        return (self.pre, self.stmt, self.post)

    def size(self) -> int:
        """Number of rule applications in the tree."""
        return sum(1 for _ in self.walk())

    def outermost_for(self, stmt: Stmt) -> Optional["ProofNode"]:
        """The first (outermost) node concerning ``stmt``, if any.

        "The pre-condition of S' in the proof" (Definition 7) means the
        outermost node's pre: consequence wrappers around an axiom
        carry the context assertion.
        """
        for node in self.walk():
            if node.stmt is stmt:
                return node
        return None

    def __repr__(self) -> str:
        return (
            f"<ProofNode {self.rule} {type(self.stmt).__name__} "
            f"({self.size()} rule applications)>"
        )
