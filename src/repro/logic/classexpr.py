"""Class expressions — the terms of the flow logic.

A class expression denotes a security class built from:

* ``VarClass(v)`` — the *current* class of program variable ``v`` (the
  paper's underlined ``v``);
* the certification variables ``local`` and ``global``;
* lattice constants;
* joins (the paper's ``(+)``) of the above.

Join is associative, commutative, and idempotent, so every expression
has a normal form: a set of symbols plus a single constant (the join of
all constant parts).  :class:`ClassExpr` *is* that normal form, which
makes substitution and syntactic comparison straightforward.

The constant part lives in the *extended* lattice: ``NIL`` is the join
identity, used for "no constant contribution".
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Mapping, Tuple, Union

from repro.errors import LogicError
from repro.lang.ast import BoolLit, Expr, IntLit, expr_variables, iter_nodes
from repro.lattice.base import Element, Lattice
from repro.lattice.extended import NIL, ExtendedLattice


class VarClass:
    """The current classification of program variable ``name``."""

    __slots__ = ("name",)

    def __init__(self, name: str):
        self.name = name

    def __eq__(self, other: object) -> bool:
        return isinstance(other, VarClass) and other.name == self.name

    def __hash__(self) -> int:
        return hash(("VarClass", self.name))

    def __repr__(self) -> str:
        return f"_{self.name}_"  # underlined v, rendered with underscores


class CertVar:
    """A certification variable: ``local`` or ``global``."""

    __slots__ = ("kind",)

    def __init__(self, kind: str):
        if kind not in ("local", "global"):
            raise LogicError(f"unknown certification variable {kind!r}")
        self.kind = kind

    def __eq__(self, other: object) -> bool:
        return isinstance(other, CertVar) and other.kind == self.kind

    def __hash__(self) -> int:
        return hash(("CertVar", self.kind))

    def __repr__(self) -> str:
        return self.kind


#: The two certification variables (shared instances for convenience).
LOCAL = CertVar("local")
GLOBAL = CertVar("global")

Symbol = Union[VarClass, CertVar]


class ClassExpr:
    """A join of symbols and one constant, in normal form.

    Immutable.  ``symbols`` is a frozenset of :class:`VarClass` /
    :class:`CertVar`; ``const`` is an element of the extended lattice
    (``NIL`` meaning "no constant part").
    """

    __slots__ = ("symbols", "const")

    def __init__(self, symbols: Iterable[Symbol] = (), const: Element = NIL):
        object.__setattr__(self, "symbols", frozenset(symbols))
        object.__setattr__(self, "const", const)
        for s in self.symbols:
            if not isinstance(s, (VarClass, CertVar)):
                raise LogicError(f"not a class symbol: {s!r}")

    def __setattr__(self, name, value):  # immutability
        raise AttributeError("ClassExpr is immutable")

    # -- algebra -----------------------------------------------------------

    def join(self, other: "ClassExpr", ext: ExtendedLattice) -> "ClassExpr":
        """``self (+) other`` in normal form."""
        return ClassExpr(self.symbols | other.symbols, ext.join(self.const, other.const))

    def substitute(self, mapping: Mapping[Symbol, "ClassExpr"], ext: ExtendedLattice) -> "ClassExpr":
        """Simultaneous substitution of symbols by class expressions."""
        symbols = set()
        const = self.const
        for s in self.symbols:
            if s in mapping:
                repl = mapping[s]
                symbols |= repl.symbols
                const = ext.join(const, repl.const)
            else:
                symbols.add(s)
        return ClassExpr(symbols, const)

    def mentions(self, symbol: Symbol) -> bool:
        """True if ``symbol`` occurs in this expression."""
        return symbol in self.symbols

    def mentions_cert_vars(self) -> bool:
        """True if ``local`` or ``global`` occurs."""
        return any(isinstance(s, CertVar) for s in self.symbols)

    @property
    def is_constant(self) -> bool:
        return not self.symbols

    def variables(self) -> FrozenSet[str]:
        """Program-variable names whose classes occur in the expression."""
        return frozenset(s.name for s in self.symbols if isinstance(s, VarClass))

    # -- value --------------------------------------------------------------

    def evaluate(self, ext: ExtendedLattice, valuation: Mapping[Symbol, Element]) -> Element:
        """The concrete class under a symbol valuation."""
        result = self.const
        for s in self.symbols:
            if s not in valuation:
                raise LogicError(f"no valuation for symbol {s!r}")
            result = ext.join(result, valuation[s])
        return result

    # -- dunders --------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, ClassExpr)
            and other.symbols == self.symbols
            and other.const == self.const
        )

    def __hash__(self) -> int:
        return hash((self.symbols, self.const))

    def __repr__(self) -> str:
        parts = sorted((repr(s) for s in self.symbols))
        if self.const is not NIL or not parts:
            parts.append(repr(self.const))
        return " (+) ".join(parts)


# -- constructors ------------------------------------------------------------


def var_class(name: str) -> ClassExpr:
    """The expression consisting of one variable class."""
    return ClassExpr([VarClass(name)])


def cert_expr(which: CertVar) -> ClassExpr:
    """The expression consisting of ``local`` or ``global`` alone."""
    return ClassExpr([which])


def const_expr(value: Element) -> ClassExpr:
    """A constant class expression."""
    return ClassExpr((), value)


def join_all(exprs: Iterable[ClassExpr], ext: ExtendedLattice) -> ClassExpr:
    """Join of several class expressions (``NIL`` for the empty join)."""
    result = ClassExpr()
    for e in exprs:
        result = result.join(e, ext)
    return result


def class_of_expr(expr: Expr, scheme: Lattice) -> ClassExpr:
    """The symbolic class of a program expression (Definition 2).

    Variables contribute their current class; constants contribute
    ``low`` (the base-scheme bottom); operators join their operands.
    """
    symbols = [VarClass(v) for v in expr_variables(expr)]
    has_literal = any(isinstance(n, (IntLit, BoolLit)) for n in iter_nodes(expr))
    const = scheme.bottom if (has_literal or not symbols) else NIL
    return ClassExpr(symbols, const)
