"""Theorem 2: a completely invariant proof implies CFM certification.

Definition 7 calls a policy assertion ``I`` *completely invariant* over
``S`` when a flow proof of ``{I, local<=l, global<=g} S {I, local<=l,
global<=g''}`` exists in which the precondition of *every* statement of
``S`` has the shape ``{I, local<=l', global<=g'}`` with ``l'``, ``g'``
lattice constants.  Theorem 2 says that the existence of such a proof
forces ``cert(S)`` to hold.

This module provides the executable counterpart:

* :func:`is_completely_invariant` — decide whether a (valid) proof tree
  is completely invariant with respect to a binding's policy assertion;
* :func:`certification_from_proof` — the Theorem 2 direction: given a
  completely invariant proof, return the CFM report, raising if the
  theorem were violated (i.e. CFM rejects despite the proof — which the
  test suite demonstrates never happens).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.core.binding import StaticBinding
from repro.core.cfm import CertificationReport, certify
from repro.errors import LogicError
from repro.lang.ast import Skip, Stmt, iter_statements
from repro.logic.assertions import FlowAssertion, policy_assertion
from repro.logic.classexpr import ClassExpr
from repro.logic.entailment import Entailment
from repro.logic.proof import ProofNode


def _constant_bound(expr: Optional[ClassExpr]) -> bool:
    """Definition 7 requires l' and g' to be lattice *constants*."""
    return expr is not None and expr.is_constant


def completely_invariant_problems(
    proof: ProofNode, binding: StaticBinding
) -> List[str]:
    """Why ``proof`` fails Definition 7 for ``binding`` (empty = it holds).

    Checks, for every statement of the proved program, that the
    outermost proof node for that statement has a precondition
    equivalent to ``{I, local <= l', global <= g'}`` with constant
    bounds, where ``I`` is the policy assertion of ``binding``.  The
    root's postcondition must restore ``{I, local <= l, global <= g''}``.
    """
    from repro.lang.ast import used_variables

    engine = Entailment(binding.extended)
    invariant = policy_assertion(binding, used_variables(proof.stmt))
    problems: List[str] = []

    def examine(assertion: FlowAssertion, where: str) -> None:
        try:
            v, local_bound, global_bound = assertion.vlg()
        except LogicError as exc:
            problems.append(f"{where}: not {{V, L, G}} shaped ({exc})")
            return
        if not engine.equivalent(v, invariant):
            problems.append(
                f"{where}: V-part {v!r} is not the policy assertion {invariant!r}"
            )
        if not _constant_bound(local_bound):
            problems.append(f"{where}: local bound {local_bound!r} is not a constant")
        if not _constant_bound(global_bound):
            problems.append(f"{where}: global bound {global_bound!r} is not a constant")

    for stmt in iter_statements(proof.stmt):
        node = proof.outermost_for(stmt)
        if node is None:
            if isinstance(stmt, Skip):
                continue  # synthesized skips need no program-point node
            problems.append(f"no proof node covers statement at {stmt.loc}")
            continue
        examine(node.pre, f"pre of {type(stmt).__name__} at {stmt.loc}")
    examine(proof.pre, "root precondition")
    examine(proof.post, "root postcondition")
    return problems


def is_completely_invariant(proof: ProofNode, binding: StaticBinding) -> bool:
    """True iff ``proof`` is a completely invariant proof for ``binding``."""
    return not completely_invariant_problems(proof, binding)


def certification_from_proof(
    proof: ProofNode, binding: StaticBinding
) -> CertificationReport:
    """Theorem 2, executably.

    Requires ``proof`` to be completely invariant for ``binding``
    (raises :class:`LogicError` otherwise, listing the reasons), then
    runs CFM and raises if certification fails — which Theorem 2
    guarantees cannot happen for a valid completely invariant proof.
    """
    problems = completely_invariant_problems(proof, binding)
    if problems:
        raise LogicError(
            "proof is not completely invariant: " + "; ".join(problems[:5])
        )
    report = certify(proof.stmt, binding)
    if not report.certified:
        raise LogicError(
            "Theorem 2 violated: completely invariant proof exists but CFM "
            "rejected the program: "
            + "; ".join(str(v) for v in report.violations[:5])
        )
    return report
