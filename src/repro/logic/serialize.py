"""Proof certificates: serialize flow proofs to JSON and back.

A generated proof is only useful beyond its process if it can be
stored, shipped, and *re-checked* elsewhere — a verification
certificate.  This module turns :class:`~repro.logic.proof.ProofNode`
trees into plain JSON and reconstructs them against a program.

Statements are addressed by **preorder index** over the program's
statement nodes (stable across parses of the same source, unlike
session-local uids); the synthesized ``skip`` premises that stand in
for missing ``else`` branches are marked explicitly.  Lattice elements
are encoded with structural tags so product/powerset classes survive
the trip.

The certificate proves nothing by itself: after :func:`load_proof` the
consumer runs the independent checker, exactly as for a freshly
generated proof.  A tampered certificate therefore fails in one of two
ways — it does not decode against the program, or the checker rejects
it (both exercised in the tests).
"""

from __future__ import annotations

from typing import Any, Dict, List, Union

from repro.errors import LogicError
from repro.lang.ast import Program, Skip, Stmt, iter_statements
from repro.lattice.base import Element, Lattice
from repro.lattice.extended import NIL
from repro.logic.assertions import Bound, FlowAssertion
from repro.logic.classexpr import (
    GLOBAL,
    LOCAL,
    CertVar,
    ClassExpr,
    VarClass,
)
from repro.logic.proof import ProofNode

FORMAT = "repro-flow-proof"
VERSION = 1


# -- lattice elements -----------------------------------------------------


def encode_element(value: Element) -> Any:
    if value is NIL:
        return {"t": "nil"}
    if isinstance(value, frozenset):
        return {"t": "set", "v": sorted((encode_element(x) for x in value), key=repr)}
    if isinstance(value, tuple):
        return {"t": "tup", "v": [encode_element(x) for x in value]}
    return {"t": "atom", "v": value}


def decode_element(data: Any, scheme: Lattice) -> Element:
    value = _decode_raw(data)
    if value is NIL:
        return NIL
    return scheme.check(value)


def _decode_raw(data: Any) -> Any:
    if not isinstance(data, dict) or "t" not in data:
        raise LogicError(f"malformed element encoding: {data!r}")
    tag = data["t"]
    if tag == "nil":
        return NIL
    if tag == "atom":
        return data["v"]
    if tag == "set":
        return frozenset(_decode_raw(x) for x in data["v"])
    if tag == "tup":
        return tuple(_decode_raw(x) for x in data["v"])
    raise LogicError(f"unknown element tag {tag!r}")


# -- class expressions and assertions ----------------------------------------


def encode_expr(expr: ClassExpr) -> Dict[str, Any]:
    symbols = []
    for s in sorted(expr.symbols, key=repr):
        if isinstance(s, VarClass):
            symbols.append(["var", s.name])
        else:
            symbols.append(["cert", s.kind])
    return {"symbols": symbols, "const": encode_element(expr.const)}


def decode_expr(data: Dict[str, Any], scheme: Lattice) -> ClassExpr:
    symbols = []
    for kind, name in data.get("symbols", ()):
        if kind == "var":
            symbols.append(VarClass(name))
        elif kind == "cert":
            symbols.append(LOCAL if name == "local" else GLOBAL)
        else:
            raise LogicError(f"unknown symbol kind {kind!r}")
    const = data.get("const", {"t": "nil"})
    raw = _decode_raw(const)
    if raw is not NIL:
        scheme.check(raw)
    return ClassExpr(symbols, raw if raw is not NIL else NIL)


def encode_assertion(assertion: FlowAssertion) -> List[Dict[str, Any]]:
    return [
        {"lhs": encode_expr(b.lhs), "rhs": encode_expr(b.rhs)}
        for b in sorted(assertion.bounds, key=repr)
    ]


def decode_assertion(data: List[Dict[str, Any]], scheme: Lattice) -> FlowAssertion:
    return FlowAssertion(
        Bound(decode_expr(b["lhs"], scheme), decode_expr(b["rhs"], scheme))
        for b in data
    )


# -- statements by preorder index ------------------------------------------------


def _statement_table(subject: Union[Program, Stmt]) -> Dict[int, Stmt]:
    stmt = subject.body if isinstance(subject, Program) else subject
    return dict(enumerate(iter_statements(stmt)))


def _statement_index(subject: Union[Program, Stmt]) -> Dict[int, int]:
    return {node.uid: i for i, node in _statement_table(subject).items()}


# -- proofs --------------------------------------------------------------------


def dump_proof(proof: ProofNode, subject: Union[Program, Stmt]) -> Dict[str, Any]:
    """Encode ``proof`` (about ``subject``) as a JSON-ready dict."""
    index = _statement_index(subject)
    synthetic: Dict[int, int] = {}  # Skip uid -> certificate-local id

    def encode_node(node: ProofNode) -> Dict[str, Any]:
        if node.stmt.uid in index:
            stmt_ref: Any = index[node.stmt.uid]
        elif isinstance(node.stmt, Skip):
            # Keep identity: a consequence and its skip axiom must refer
            # to the *same* synthesized statement after reloading.
            key = synthetic.setdefault(node.stmt.uid, len(synthetic))
            stmt_ref = f"synthetic-skip:{key}"
        else:
            raise LogicError(
                f"proof mentions a statement outside the subject: {node.stmt!r}"
            )
        return {
            "rule": node.rule,
            "stmt": stmt_ref,
            "pre": encode_assertion(node.pre),
            "post": encode_assertion(node.post),
            "premises": [encode_node(p) for p in node.premises],
            "note": node.note,
        }

    return {
        "format": FORMAT,
        "version": VERSION,
        "statements": sum(1 for _ in _statement_table(subject)),
        "proof": encode_node(proof),
    }


def load_proof(
    data: Dict[str, Any], subject: Union[Program, Stmt], scheme: Lattice
) -> ProofNode:
    """Reconstruct a proof against ``subject``.

    Raises :class:`LogicError` when the certificate does not fit the
    program (wrong format, out-of-range statement references).  The
    result still needs :func:`repro.logic.checker.check_proof` — a
    certificate is a claim, not a verdict.
    """
    if data.get("format") != FORMAT:
        raise LogicError("not a flow-proof certificate")
    if data.get("version") != VERSION:
        raise LogicError(f"unsupported certificate version {data.get('version')!r}")
    table = _statement_table(subject)
    if data.get("statements") != len(table):
        raise LogicError(
            f"certificate is for a program with {data.get('statements')} "
            f"statements; this one has {len(table)}"
        )

    synthetic: Dict[str, Skip] = {}

    def decode_node(node: Dict[str, Any]) -> ProofNode:
        ref = node.get("stmt")
        if isinstance(ref, str) and ref.startswith("synthetic-skip"):
            stmt: Stmt = synthetic.setdefault(ref, Skip())
        else:
            if not isinstance(ref, int) or ref not in table:
                raise LogicError(f"bad statement reference {ref!r}")
            stmt = table[ref]
        return ProofNode(
            node["rule"],
            stmt,
            decode_assertion(node.get("pre", []), scheme),
            decode_assertion(node.get("post", []), scheme),
            [decode_node(p) for p in node.get("premises", [])],
            node.get("note", ""),
        )

    return decode_node(data["proof"])
