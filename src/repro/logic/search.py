"""Proof search: from a flow-sensitive analysis to an explicit flow proof.

The paper laments that "no practical mechanism based on this
theoretical method has been developed to date" (section 1).  The
flow-sensitive certifier (:mod:`repro.core.flowsensitive`) is such a
mechanism; this module closes the loop by converting a successful
analysis of a *sequential* program into an explicit Figure 1 proof
tree, which the independent checker then verifies.  The proofs it finds
are exactly the kind the paper exhibits in section 5.2: intermediate
assertions may be *stronger* than the policy (e.g. ``x <= low`` right
after ``x := 0`` although ``sbind(x) = high``), which is what CFM — and
completely invariant proofs — cannot express.

Concurrent programs are analyzed soundly by the certifier but are not
given proof trees here: their Figure 1 proofs require
interference-free annotations, which flow-sensitive state assertions
generally are not (a sibling may raise a shared variable's class).
"""

from __future__ import annotations

from typing import Dict, Union

from repro.core.binding import StaticBinding
from repro.core.flowsensitive import FSReport, FSState, analyze
from repro.errors import LogicError
from repro.lang.ast import (
    Assign,
    Begin,
    Cobegin,
    If,
    Program,
    Signal,
    Skip,
    Stmt,
    Wait,
    While,
)
from repro.lattice.extended import ExtendedLattice
from repro.logic.assertions import Bound, FlowAssertion, vlg_assertion
from repro.logic.checker import action_substitution
from repro.logic.classexpr import const_expr, var_class
from repro.logic.proof import ProofNode


def state_assertion(state: FSState) -> FlowAssertion:
    """``{v <= class(v) for all v, local <= l, global <= g}``."""
    v = FlowAssertion(
        Bound(var_class(name), const_expr(cls))
        for name, cls in state.classes.items()
    )
    return vlg_assertion(v, const_expr(state.local), const_expr(state.global_))


class _ProofBuilder:
    def __init__(self, binding: StaticBinding, report: FSReport):
        self.binding = binding
        self.scheme = binding.scheme
        self.ext = ExtendedLattice(binding.scheme)
        self.pre = report.pre_states
        self.post = report.post_states

    def _axiom(self, rule: str, stmt: Stmt) -> ProofNode:
        """Axiom + consequence for an atomic statement, from the states."""
        pre = state_assertion(self.pre[stmt.uid])
        post = state_assertion(self.post[stmt.uid])
        axiom_pre = post.substitute(
            action_substitution(stmt, self.scheme), self.ext
        )
        axiom = ProofNode(rule, stmt, axiom_pre, post)
        if pre == axiom_pre:
            return axiom
        return ProofNode("consequence", stmt, pre, post, [axiom])

    def _weaken(self, node: ProofNode, pre: FlowAssertion, post: FlowAssertion) -> ProofNode:
        if node.pre == pre and node.post == post:
            return node
        return ProofNode("consequence", node.stmt, pre, post, [node])

    def build(self, stmt: Stmt) -> ProofNode:
        if isinstance(stmt, Assign):
            return self._axiom("assignment", stmt)
        if isinstance(stmt, Signal):
            return self._axiom("signal", stmt)
        if isinstance(stmt, Wait):
            return self._axiom("wait", stmt)
        if isinstance(stmt, Skip):
            a = state_assertion(self.pre[stmt.uid])
            return ProofNode("skip", stmt, a, a)
        if isinstance(stmt, Begin):
            premises = [self.build(child) for child in stmt.body]
            return ProofNode(
                "composition",
                stmt,
                state_assertion(self.pre[stmt.uid]),
                state_assertion(self.post[stmt.uid]),
                premises,
            )
        if isinstance(stmt, If):
            return self._build_if(stmt)
        if isinstance(stmt, While):
            return self._build_while(stmt)
        if isinstance(stmt, Cobegin):
            raise LogicError(
                "proof search covers sequential programs; flow-sensitive "
                "state assertions are not interference-free in general"
            )
        raise LogicError(f"not a statement: {stmt!r}")

    def _build_if(self, stmt: If) -> ProofNode:
        pre_state = self.pre[stmt.uid]
        post_state = self.post[stmt.uid]
        guard = pre_state.expr_cls(stmt.cond)
        l_inner = self.scheme.join(pre_state.local, guard)
        inner_state = pre_state.with_local(l_inner)
        inner = state_assertion(inner_state)
        # Premise posts must agree: the joined classes/global, local l'.
        common_post = state_assertion(post_state.with_local(l_inner))
        p1 = self._weaken(self.build(stmt.then_branch), inner, common_post)
        if stmt.else_branch is not None:
            p2 = self._weaken(self.build(stmt.else_branch), inner, common_post)
        else:
            skip = Skip()
            p2 = self._weaken(
                ProofNode("skip", skip, inner, inner), inner, common_post
            )
        return ProofNode(
            "alternation",
            stmt,
            state_assertion(pre_state),
            state_assertion(post_state),
            [p1, p2],
            note=f"guard class {guard!r} raises local to {l_inner!r}",
        )

    def _build_while(self, stmt: While) -> ProofNode:
        pre_state = self.pre[stmt.uid]
        fix_state = self.post[stmt.uid]  # the least fixpoint, local restored
        guard = fix_state.expr_cls(stmt.cond)
        l_inner = self.scheme.join(fix_state.local, guard)
        invariant_inner = state_assertion(
            fix_state.with_local(l_inner)
        )
        body = self.build(stmt.body)
        body = self._weaken(body, invariant_inner, invariant_inner)
        invariant = state_assertion(fix_state)
        while_node = ProofNode(
            "iteration",
            stmt,
            invariant,
            invariant,
            [body],
            note=f"least-fixpoint invariant, global {fix_state.global_!r}",
        )
        return self._weaken(while_node, state_assertion(pre_state), invariant)


def proof_from_analysis(
    subject: Union[Program, Stmt],
    binding: StaticBinding,
    report: FSReport = None,
) -> ProofNode:
    """Build a Figure 1 proof from the flow-sensitive analysis.

    The program must be sequential (no ``cobegin``) and the analysis
    must certify it; the resulting proof shows exactly the analysis
    states as assertions and is designed to pass the independent
    checker (which the test suite asserts for random corpora).
    """
    from repro.core.constraints import complete_synthetic_binding
    from repro.lang.procs import resolve_subject

    subject, stmt = resolve_subject(subject)
    binding = complete_synthetic_binding(subject, binding)
    if report is None:
        report = analyze(stmt, binding)
    if not report.certified:
        raise LogicError(
            "the analysis rejected the program; no policy proof exists "
            "along the analysis states: "
            + "; ".join(str(v) for v in report.violations[:3])
        )
    return _ProofBuilder(binding, report).build(stmt)
