"""Pretty-printing of flow-logic proof trees.

Produces an indented, human-readable account of a proof in the style of
the paper's section 5.2 example: each rule application shows its
pre-assertion, the statement, and its post-assertion.
"""

from __future__ import annotations

from typing import List

from repro.lang.ast import Stmt
from repro.lang.pretty import pretty
from repro.logic.proof import ProofNode


def _one_line(stmt: Stmt, limit: int = 48) -> str:
    text = " ".join(pretty(stmt).split())
    if len(text) > limit:
        text = text[: limit - 3] + "..."
    return text


def render_proof(proof: ProofNode, indent: int = 0) -> str:
    """Render ``proof`` as indented text, premises nested under rules."""
    pad = "  " * indent
    lines: List[str] = [
        f"{pad}[{proof.rule}] {_one_line(proof.stmt)}",
        f"{pad}  pre:  {proof.pre!r}",
        f"{pad}  post: {proof.post!r}",
    ]
    if proof.note:
        lines.append(f"{pad}  note: {proof.note}")
    for premise in proof.premises:
        lines.append(render_proof(premise, indent + 1))
    return "\n".join(lines)


def proof_outline(proof: ProofNode) -> str:
    """A compact one-line-per-rule outline (rule names and statements only)."""
    lines = []

    def walk(node: ProofNode, depth: int) -> None:
        lines.append("  " * depth + f"{node.rule}: {_one_line(node.stmt, 60)}")
        for premise in node.premises:
            walk(premise, depth + 1)

    walk(proof, 0)
    return "\n".join(lines)
