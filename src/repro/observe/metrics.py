"""In-process aggregation of pipeline trace events into one document.

The batch pipeline narrates its run through a :class:`MetricsAggregator`
(which also forwards every record to an optional trace sink, so one
wiring gives both the JSON-lines trace and the aggregate).  At the end
of the run the aggregator renders the **metrics document** — the shape
behind ``repro batch --metrics out.json``:

``schema``
    the literal :data:`METRICS_SCHEMA` tag, so consumers can reject
    documents from a different layout generation;
``run``
    wall time, worker count, the per-analysis deadline, and the task
    ledger (computed / cached / ok / errors / degraded);
``workers``
    pool lifecycle counts: pools started, crashes observed, tasks
    retried after a crash, tasks abandoned after bounded retry;
``cache``
    the content-addressed cache counters (hits / misses / writes /
    corrupt) plus ``skipped_degraded`` — degraded partial results are
    deliberately never cached;
``analyses``
    per-analysis totals: tasks, wall seconds (total and max), and for
    the explorer the summed states / transitions / POR-reduced states;
``items``
    one record per (program, analysis) cell: status (``ok`` /
    ``cached`` / ``degraded`` / ``error``), seconds (``None`` for
    cache hits), and the limit or error type where applicable.

:func:`validate_metrics` is the schema check the test suite and the CI
degraded-mode smoke job run against emitted documents.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.observe.trace import NULL_EMITTER, TraceEmitter

#: Version tag carried by every metrics document.
METRICS_SCHEMA = "repro-metrics/1"

#: Statuses an item record may carry.
ITEM_STATUSES = ("ok", "cached", "degraded", "error")

#: Worker lifecycle event names the aggregator tallies.
_WORKER_EVENTS = {
    "pool_start": "pools",
    "pool_broken": "crashes",
    "task_retry": "retries",
    "task_abandoned": "abandoned",
}


class MetricsAggregator(TraceEmitter):
    """Aggregates pipeline trace records; forwards them to ``sink``.

    The aggregator is itself a :class:`TraceEmitter`, so producers emit
    once and both the trace file and the metrics document see the run.
    """

    def __init__(self, sink: TraceEmitter = NULL_EMITTER):
        self.sink = sink
        self.items: List[Dict[str, object]] = []
        self.workers: Dict[str, int] = {
            name: 0 for name in _WORKER_EVENTS.values()
        }
        self.skipped_degraded = 0

    def emit(self, record: Dict[str, object]) -> None:
        """Tally worker lifecycle events; forward everything to the sink."""
        if record.get("type") == "event":
            bucket = _WORKER_EVENTS.get(str(record.get("name")))
            if bucket is not None:
                self.workers[bucket] += 1
        self.sink.emit(record)

    def item(
        self,
        program: str,
        analysis: str,
        status: str,
        seconds: Optional[float] = None,
        error_type: Optional[str] = None,
        limit: Optional[str] = None,
        explore: Optional[Dict[str, int]] = None,
    ) -> None:
        """Record one finished (program, analysis) cell.

        ``explore`` carries the explorer's counters (states,
        transitions, reduced_states) when the cell ran that analysis.
        Also emits a ``task`` span to the trace sink.
        """
        if status not in ITEM_STATUSES:
            raise ValueError(f"unknown item status {status!r}")
        entry: Dict[str, object] = {
            "program": program,
            "analysis": analysis,
            "status": status,
            "seconds": seconds,
        }
        if error_type is not None:
            entry["error_type"] = error_type
        if limit is not None:
            entry["limit"] = limit
        if explore is not None:
            entry["explore"] = dict(explore)
        self.items.append(entry)
        self.sink.span(
            "task",
            seconds if seconds is not None else 0.0,
            program=program,
            analysis=analysis,
            status=status,
        )

    def cache_skip_degraded(self) -> None:
        """Note one degraded result deliberately kept out of the cache."""
        self.skipped_degraded += 1
        self.sink.event("cache_skip_degraded")

    def to_dict(
        self,
        elapsed_seconds: float,
        jobs: int,
        deadline: Optional[float],
        cache: Optional[Dict[str, int]] = None,
    ) -> Dict[str, object]:
        """Render the metrics document (see the module docstring)."""
        items = sorted(
            self.items, key=lambda e: (e["program"], e["analysis"])
        )
        by_status = {status: 0 for status in ITEM_STATUSES}
        analyses: Dict[str, Dict[str, object]] = {}
        for entry in items:
            by_status[str(entry["status"])] += 1
            agg = analyses.setdefault(
                str(entry["analysis"]),
                {
                    "tasks": 0,
                    "cached": 0,
                    "ok": 0,
                    "degraded": 0,
                    "errors": 0,
                    "seconds_total": 0.0,
                    "seconds_max": 0.0,
                },
            )
            agg["tasks"] += 1
            key = {"error": "errors"}.get(
                str(entry["status"]), str(entry["status"])
            )
            agg[key] += 1
            seconds = entry.get("seconds")
            if isinstance(seconds, (int, float)):
                agg["seconds_total"] += seconds
                agg["seconds_max"] = max(agg["seconds_max"], seconds)
            explore = entry.get("explore")
            if isinstance(explore, dict):
                for counter, value in explore.items():
                    agg[counter] = agg.get(counter, 0) + int(value)
        cache_section = dict(cache or {})
        cache_section["skipped_degraded"] = self.skipped_degraded
        return {
            "schema": METRICS_SCHEMA,
            "run": {
                "elapsed_seconds": elapsed_seconds,
                "jobs": jobs,
                "deadline": deadline,
                "tasks": len(items),
                "computed": sum(
                    1 for e in items if e["status"] != "cached"
                ),
                "cached": by_status["cached"],
                "ok": by_status["ok"],
                "degraded": by_status["degraded"],
                "errors": by_status["error"],
            },
            "workers": dict(self.workers),
            "cache": cache_section,
            "analyses": analyses,
            "items": items,
        }


def validate_metrics(doc: object) -> List[str]:
    """Structural check of a metrics document; returns problems found.

    An empty list means the document conforms to
    :data:`METRICS_SCHEMA`.  The check is deliberately strict about
    presence and types but silent about extra keys, so the schema can
    grow without breaking older validators.
    """
    problems: List[str] = []
    if not isinstance(doc, dict):
        return [f"document is {type(doc).__name__}, not an object"]
    if doc.get("schema") != METRICS_SCHEMA:
        problems.append(
            f"schema is {doc.get('schema')!r}, expected {METRICS_SCHEMA!r}"
        )
    for section in ("run", "workers", "cache", "analyses"):
        if not isinstance(doc.get(section), dict):
            problems.append(f"missing or non-object section {section!r}")
    if not isinstance(doc.get("items"), list):
        problems.append("missing or non-list section 'items'")
    if problems:
        return problems

    run = doc["run"]
    for key in ("elapsed_seconds", "jobs", "tasks", "computed",
                "cached", "ok", "degraded", "errors"):
        if not isinstance(run.get(key), (int, float)):
            problems.append(f"run.{key} missing or non-numeric")
    if "deadline" not in run:
        problems.append("run.deadline missing")
    for key in ("pools", "crashes", "retries", "abandoned"):
        if not isinstance(doc["workers"].get(key), int):
            problems.append(f"workers.{key} missing or non-integer")
    for name, agg in doc["analyses"].items():
        if not isinstance(agg, dict):
            problems.append(f"analyses.{name} is not an object")
            continue
        for key in ("tasks", "cached", "ok", "degraded", "errors",
                    "seconds_total", "seconds_max"):
            if not isinstance(agg.get(key), (int, float)):
                problems.append(f"analyses.{name}.{key} missing or non-numeric")
    for i, entry in enumerate(doc["items"]):
        if not isinstance(entry, dict):
            problems.append(f"items[{i}] is not an object")
            continue
        if entry.get("status") not in ITEM_STATUSES:
            problems.append(f"items[{i}].status {entry.get('status')!r} invalid")
        for key in ("program", "analysis"):
            if not isinstance(entry.get(key), str):
                problems.append(f"items[{i}].{key} missing or non-string")
        if "seconds" not in entry:
            problems.append(f"items[{i}].seconds missing")
    return problems
