"""In-process aggregation of pipeline trace events into one document.

The batch pipeline narrates its run through a :class:`MetricsAggregator`
(which also forwards every record to an optional trace sink, so one
wiring gives both the JSON-lines trace and the aggregate).  At the end
of the run the aggregator renders the **metrics document** — the shape
behind ``repro batch --metrics out.json``:

``schema``
    the literal :data:`METRICS_SCHEMA` tag, so consumers can reject
    documents from a different layout generation;
``run``
    wall time, worker count, the per-analysis deadline, and the task
    ledger (computed / cached / ok / errors / degraded);
``workers``
    pool lifecycle counts: pools started, crashes observed, tasks
    retried after a crash, tasks abandoned after bounded retry;
``chunks``
    chunked-dispatch counters: worker tasks (chunks) submitted, cells
    carried by those chunks, and payload bytes pickled across the
    process boundary — the overhead the chunking granularity exists
    to amortize (see ``docs/pipeline.md``);
``spans``
    the retained top-level span records (most importantly the ``run``
    span emitted at the end of every pipeline run); per-cell ``task``
    spans are not duplicated here — they live in ``items``;
``cache``
    the content-addressed cache counters (hits / misses / writes /
    corrupt) plus ``skipped_degraded`` — degraded partial results are
    deliberately never cached;
``analyses``
    per-analysis totals: tasks, wall seconds (total and max), and for
    the explorer the summed states / transitions / POR-reduced states;
``items``
    one record per (program, analysis) cell: status (``ok`` /
    ``cached`` / ``degraded`` / ``error``), seconds (``None`` for
    cache hits), and the limit or error type where applicable;
``service`` (optional)
    present in documents served by a resident ``repro serve`` process:
    request totals, the in-flight and waiting gauges, the
    coalesced-request count, the in-memory LRU tier's counters, the
    shard count, client-disconnect and body-bytes-read counters, the
    ``admission`` sub-section (admitted / rejected_busy / rate_limited
    / aborted, plus the configured ``max_queue``), and per-tenant
    request/rate-limit counters under ``tenants`` (see
    ``docs/service.md``);
``fuzz`` (optional)
    present in documents emitted by ``repro fuzz --metrics``: programs
    generated, oracle checks run / skipped / violated, findings after
    minimization, and total shrink iterations (see ``docs/fuzzing.md``).

:func:`validate_metrics` is the schema check the test suite and the CI
degraded-mode smoke job run against emitted documents.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional

from repro.observe.trace import NULL_EMITTER, TraceEmitter

#: Version tag carried by every metrics document.
METRICS_SCHEMA = "repro-metrics/1"

#: Statuses an item record may carry.
ITEM_STATUSES = ("ok", "cached", "degraded", "error")

#: Worker lifecycle event names the aggregator tallies.
_WORKER_EVENTS = {
    "pool_start": "pools",
    "pool_broken": "crashes",
    "task_retry": "retries",
    "task_abandoned": "abandoned",
}


class MetricsAggregator(TraceEmitter):
    """Aggregates pipeline trace records; forwards them to ``sink``.

    The aggregator is itself a :class:`TraceEmitter`, so producers emit
    once and both the trace file and the metrics document see the run.
    """

    def __init__(
        self,
        sink: TraceEmitter = NULL_EMITTER,
        max_items: Optional[int] = None,
    ):
        self.sink = sink
        #: The retained per-cell records.  When ``max_items`` bounds the
        #: list (a long-running service must not grow without bound),
        #: only the newest records are kept — the ``run`` and
        #: ``analyses`` aggregates stay exact and cumulative because
        #: they are maintained incrementally, never recomputed from
        #: ``items``.
        self.items: List[Dict[str, object]] = []
        self.max_items = max_items
        self.workers: Dict[str, int] = {
            name: 0 for name in _WORKER_EVENTS.values()
        }
        self.chunks: Dict[str, int] = {
            "submitted": 0,
            "cells": 0,
            "bytes_pickled": 0,
        }
        #: Retained span records (bounded by ``max_items`` like
        #: :attr:`items`); per-cell ``task`` spans go straight to the
        #: sink from :meth:`item` and are deliberately not kept here.
        self.spans: List[Dict[str, object]] = []
        self.skipped_degraded = 0
        self._by_status: Dict[str, int] = {s: 0 for s in ITEM_STATUSES}
        self._analyses: Dict[str, Dict[str, object]] = {}
        #: One aggregator may be shared by every thread of a resident
        #: service; counter read-modify-writes need the lock.
        self._lock = threading.Lock()

    def emit(self, record: Dict[str, object]) -> None:
        """Tally worker events, retain spans; forward all to the sink."""
        if record.get("type") == "event":
            bucket = _WORKER_EVENTS.get(str(record.get("name")))
            if bucket is not None:
                with self._lock:
                    self.workers[bucket] += 1
        elif record.get("type") == "span":
            with self._lock:
                self.spans.append(dict(record))
                if self.max_items is not None and len(self.spans) > self.max_items:
                    del self.spans[: len(self.spans) - self.max_items]
        self.sink.emit(record)

    def chunk(self, cells: int, bytes_pickled: int) -> None:
        """Record one submitted chunk of ``cells`` worker payloads."""
        with self._lock:
            self.chunks["submitted"] += 1
            self.chunks["cells"] += int(cells)
            self.chunks["bytes_pickled"] += int(bytes_pickled)
        self.sink.event(
            "chunk_submitted", cells=cells, bytes_pickled=bytes_pickled
        )

    def item(
        self,
        program: str,
        analysis: str,
        status: str,
        seconds: Optional[float] = None,
        error_type: Optional[str] = None,
        limit: Optional[str] = None,
        explore: Optional[Dict[str, int]] = None,
    ) -> None:
        """Record one finished (program, analysis) cell.

        ``explore`` carries the explorer's counters (states,
        transitions, reduced_states) when the cell ran that analysis.
        Also emits a ``task`` span to the trace sink.
        """
        if status not in ITEM_STATUSES:
            raise ValueError(f"unknown item status {status!r}")
        entry: Dict[str, object] = {
            "program": program,
            "analysis": analysis,
            "status": status,
            "seconds": seconds,
        }
        if error_type is not None:
            entry["error_type"] = error_type
        if limit is not None:
            entry["limit"] = limit
        if explore is not None:
            entry["explore"] = dict(explore)
        with self._lock:
            self.items.append(entry)
            if self.max_items is not None and len(self.items) > self.max_items:
                del self.items[: len(self.items) - self.max_items]
            self._by_status[status] += 1
            agg = self._analyses.setdefault(
                analysis,
                {
                    "tasks": 0,
                    "cached": 0,
                    "ok": 0,
                    "degraded": 0,
                    "errors": 0,
                    "seconds_total": 0.0,
                    "seconds_max": 0.0,
                },
            )
            agg["tasks"] += 1
            agg[{"error": "errors"}.get(status, status)] += 1
            if isinstance(seconds, (int, float)):
                agg["seconds_total"] += seconds
                agg["seconds_max"] = max(agg["seconds_max"], seconds)
            if explore is not None:
                for counter, value in explore.items():
                    agg[counter] = agg.get(counter, 0) + int(value)
        self.sink.span(
            "task",
            seconds if seconds is not None else 0.0,
            program=program,
            analysis=analysis,
            status=status,
        )

    def cache_skip_degraded(self) -> None:
        """Note one degraded result deliberately kept out of the cache."""
        with self._lock:
            self.skipped_degraded += 1
        self.sink.event("cache_skip_degraded")

    def to_dict(
        self,
        elapsed_seconds: float,
        jobs: int,
        deadline: Optional[float],
        cache: Optional[Dict[str, int]] = None,
        service: Optional[Dict[str, object]] = None,
        fuzz: Optional[Dict[str, object]] = None,
    ) -> Dict[str, object]:
        """Render the metrics document (see the module docstring).

        The ``run`` and ``analyses`` aggregates are cumulative over the
        aggregator's whole lifetime even when ``max_items`` has trimmed
        older per-cell records out of ``items``.  ``service`` (counters
        from a resident ``repro serve`` process — requests, in-flight,
        LRU hits/misses, coalesced) is included verbatim when given, as
        is ``fuzz`` (the differential-fuzzing campaign counters).
        """
        with self._lock:
            items = sorted(
                self.items, key=lambda e: (e["program"], e["analysis"])
            )
            by_status = dict(self._by_status)
            analyses = {
                name: dict(agg) for name, agg in self._analyses.items()
            }
            workers = dict(self.workers)
            chunks = dict(self.chunks)
            spans = [dict(span) for span in self.spans]
            skipped_degraded = self.skipped_degraded
        tasks = sum(by_status.values())
        cache_section = dict(cache or {})
        cache_section["skipped_degraded"] = skipped_degraded
        document: Dict[str, object] = {
            "schema": METRICS_SCHEMA,
            "run": {
                "elapsed_seconds": elapsed_seconds,
                "jobs": jobs,
                "deadline": deadline,
                "tasks": tasks,
                "computed": tasks - by_status["cached"],
                "cached": by_status["cached"],
                "ok": by_status["ok"],
                "degraded": by_status["degraded"],
                "errors": by_status["error"],
            },
            "workers": workers,
            "chunks": chunks,
            "spans": spans,
            "cache": cache_section,
            "analyses": analyses,
            "items": items,
        }
        if service is not None:
            document["service"] = dict(service)
        if fuzz is not None:
            document["fuzz"] = dict(fuzz)
        return document


def validate_metrics(doc: object) -> List[str]:
    """Structural check of a metrics document; returns problems found.

    An empty list means the document conforms to
    :data:`METRICS_SCHEMA`.  The check is deliberately strict about
    presence and types but silent about extra keys, so the schema can
    grow without breaking older validators.
    """
    problems: List[str] = []
    if not isinstance(doc, dict):
        return [f"document is {type(doc).__name__}, not an object"]
    if doc.get("schema") != METRICS_SCHEMA:
        problems.append(
            f"schema is {doc.get('schema')!r}, expected {METRICS_SCHEMA!r}"
        )
    for section in ("run", "workers", "chunks", "cache", "analyses"):
        if not isinstance(doc.get(section), dict):
            problems.append(f"missing or non-object section {section!r}")
    for section in ("items", "spans"):
        if not isinstance(doc.get(section), list):
            problems.append(f"missing or non-list section {section!r}")
    if problems:
        return problems

    run = doc["run"]
    for key in ("elapsed_seconds", "jobs", "tasks", "computed",
                "cached", "ok", "degraded", "errors"):
        if not isinstance(run.get(key), (int, float)):
            problems.append(f"run.{key} missing or non-numeric")
    if "deadline" not in run:
        problems.append("run.deadline missing")
    for key in ("pools", "crashes", "retries", "abandoned"):
        if not isinstance(doc["workers"].get(key), int):
            problems.append(f"workers.{key} missing or non-integer")
    for key in ("submitted", "cells", "bytes_pickled"):
        if not isinstance(doc["chunks"].get(key), int):
            problems.append(f"chunks.{key} missing or non-integer")
    for i, span in enumerate(doc["spans"]):
        if not isinstance(span, dict):
            problems.append(f"spans[{i}] is not an object")
            continue
        if not isinstance(span.get("name"), str):
            problems.append(f"spans[{i}].name missing or non-string")
        if not isinstance(span.get("seconds"), (int, float)):
            problems.append(f"spans[{i}].seconds missing or non-numeric")
    for name, agg in doc["analyses"].items():
        if not isinstance(agg, dict):
            problems.append(f"analyses.{name} is not an object")
            continue
        for key in ("tasks", "cached", "ok", "degraded", "errors",
                    "seconds_total", "seconds_max"):
            if not isinstance(agg.get(key), (int, float)):
                problems.append(f"analyses.{name}.{key} missing or non-numeric")
    if "service" in doc:
        service = doc["service"]
        if not isinstance(service, dict):
            problems.append("section 'service' is not an object")
        else:
            for key in ("requests", "in_flight", "waiting", "coalesced",
                        "lru_hits", "lru_misses", "client_disconnects",
                        "bytes_read", "shards"):
                if not isinstance(service.get(key), int):
                    problems.append(f"service.{key} missing or non-integer")
            admission = service.get("admission")
            if not isinstance(admission, dict):
                problems.append("service.admission missing or not an object")
            else:
                for key in ("admitted", "rejected_busy", "rate_limited",
                            "aborted", "max_queue"):
                    if not isinstance(admission.get(key), int):
                        problems.append(
                            f"service.admission.{key} missing or non-integer"
                        )
            tenants = service.get("tenants")
            if not isinstance(tenants, dict):
                problems.append("service.tenants missing or not an object")
            else:
                for name, record in tenants.items():
                    if not isinstance(record, dict):
                        problems.append(
                            f"service.tenants.{name} is not an object"
                        )
                        continue
                    for key in ("requests", "rate_limited"):
                        if not isinstance(record.get(key), int):
                            problems.append(
                                f"service.tenants.{name}.{key} "
                                "missing or non-integer"
                            )
    if "fuzz" in doc:
        fuzz = doc["fuzz"]
        if not isinstance(fuzz, dict):
            problems.append("section 'fuzz' is not an object")
        else:
            for key in ("programs", "checks", "skips", "violations",
                        "findings", "shrink_iterations"):
                if not isinstance(fuzz.get(key), int):
                    problems.append(f"fuzz.{key} missing or non-integer")
            if not isinstance(fuzz.get("oracles"), dict):
                problems.append("fuzz.oracles missing or non-object")
    for i, entry in enumerate(doc["items"]):
        if not isinstance(entry, dict):
            problems.append(f"items[{i}] is not an object")
            continue
        if entry.get("status") not in ITEM_STATUSES:
            problems.append(f"items[{i}].status {entry.get('status')!r} invalid")
        for key in ("program", "analysis"):
            if not isinstance(entry.get(key), str):
                problems.append(f"items[{i}].{key} missing or non-string")
        if "seconds" not in entry:
            problems.append(f"items[{i}].seconds missing")
    return problems
