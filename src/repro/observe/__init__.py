"""Observability and resource governance for the analysis pipeline.

Three small layers, used together by the explorer, the batch pipeline,
and the CLI:

* :mod:`repro.observe.budget` — :class:`Budget`, one value unifying
  every resource limit an analysis honours (distinct states, schedule
  depth, wall-clock deadline), and :class:`BudgetClock`, its started
  form.  Analyses that exhaust a budget return *partial results flagged
  degraded* instead of raising — the degradation contract that keeps a
  single runaway program from stalling a corpus run.
  :class:`TokenBucket` extends the same machinery to *rates*: the
  resident service keys one bucket per tenant and turns an empty
  bucket into an immediate 429 instead of unbounded queueing.

* :mod:`repro.observe.trace` — span/counter/event emitters.  The
  default :data:`NULL_EMITTER` costs one ``is not None``-style check
  per call site; :class:`JsonlEmitter` streams events to a JSON-lines
  sink; :class:`RecordingEmitter` keeps them in memory for tests.

* :mod:`repro.observe.metrics` — in-process aggregation of the events
  the pipeline emits into one metrics document
  (``repro batch --metrics out.json``), plus the schema validator the
  test suite and CI run against that document.

See ``docs/observability.md`` for the trace schema, the budget
semantics, and the degradation contract.
"""

from repro.observe.budget import Budget, BudgetClock, TokenBucket
from repro.observe.metrics import (
    METRICS_SCHEMA,
    MetricsAggregator,
    validate_metrics,
)
from repro.observe.trace import (
    NULL_EMITTER,
    JsonlEmitter,
    NullEmitter,
    RecordingEmitter,
    TraceEmitter,
)

__all__ = [
    "Budget",
    "BudgetClock",
    "JsonlEmitter",
    "METRICS_SCHEMA",
    "MetricsAggregator",
    "NULL_EMITTER",
    "NullEmitter",
    "RecordingEmitter",
    "TokenBucket",
    "TraceEmitter",
    "validate_metrics",
]
