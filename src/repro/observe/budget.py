"""Unified resource budgets for explorations and pipeline analyses.

A :class:`Budget` names every limit an analysis is willing to honour:

* ``max_states`` — distinct machine states an exploration may visit;
* ``max_depth`` — schedule length before a branch is cut off;
* ``deadline`` — wall-clock seconds for the whole analysis.

``None`` means *no limit of that kind* (the call site's default
applies).  A budget is inert data until :meth:`Budget.start` stamps a
monotonic clock and returns a :class:`BudgetClock`, whose
:meth:`~BudgetClock.expired` check is what long-running loops poll.

The degradation contract (see ``docs/observability.md``): an analysis
given a budget never raises when it runs out — it returns whatever it
computed so far, flagged ``degraded`` with the limit that fired, so a
batch over an arbitrary corpus always produces a full document and the
caller can audit exactly what was truncated.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, Optional

#: How many loop iterations may pass between deadline polls.  Checking
#: the clock every iteration would cost a syscall per state; every
#: ``DEADLINE_CHECK_EVERY`` keeps the overhead unmeasurable while
#: bounding the overshoot to a few microseconds of extra work.
DEADLINE_CHECK_EVERY = 64


@dataclass(frozen=True)
class Budget:
    """Resource limits for one analysis run (``None`` = unlimited)."""

    max_states: Optional[int] = None
    max_depth: Optional[int] = None
    deadline: Optional[float] = None

    def start(self) -> "BudgetClock":
        """Stamp the wall clock and return the running form."""
        return BudgetClock(self)

    def to_dict(self) -> Dict[str, object]:
        """JSON shape (stable key order comes from ``sort_keys``)."""
        return {
            "max_states": self.max_states,
            "max_depth": self.max_depth,
            "deadline": self.deadline,
        }

    def __str__(self) -> str:
        parts = []
        if self.max_states is not None:
            parts.append(f"states<={self.max_states}")
        if self.max_depth is not None:
            parts.append(f"depth<={self.max_depth}")
        if self.deadline is not None:
            parts.append(f"deadline={self.deadline}s")
        return "Budget(" + ", ".join(parts or ["unlimited"]) + ")"


class BudgetClock:
    """A started :class:`Budget`: the limits plus a monotonic origin."""

    def __init__(self, budget: Budget):
        self.budget = budget
        self._started = time.monotonic()
        self._deadline_at = (
            self._started + budget.deadline
            if budget.deadline is not None
            else None
        )

    def elapsed(self) -> float:
        """Seconds since :meth:`Budget.start`."""
        return time.monotonic() - self._started

    def remaining(self) -> Optional[float]:
        """Seconds until the deadline (``None`` when there is none)."""
        if self._deadline_at is None:
            return None
        return self._deadline_at - time.monotonic()

    def expired(self) -> bool:
        """True once the wall-clock deadline has passed."""
        return (
            self._deadline_at is not None
            and time.monotonic() >= self._deadline_at
        )

    def __repr__(self) -> str:
        return f"<BudgetClock {self.budget} elapsed={self.elapsed():.3f}s>"
