"""Unified resource budgets for explorations, analyses, and admission.

A :class:`Budget` names every limit an analysis is willing to honour:

* ``max_states`` — distinct machine states an exploration may visit;
* ``max_depth`` — schedule length before a branch is cut off;
* ``deadline`` — wall-clock seconds for the whole analysis.

``None`` means *no limit of that kind* (the call site's default
applies).  A budget is inert data until :meth:`Budget.start` stamps a
monotonic clock and returns a :class:`BudgetClock`, whose
:meth:`~BudgetClock.expired` check is what long-running loops poll.

The degradation contract (see ``docs/observability.md``): an analysis
given a budget never raises when it runs out — it returns whatever it
computed so far, flagged ``degraded`` with the limit that fired, so a
batch over an arbitrary corpus always produces a full document and the
caller can audit exactly what was truncated.

:class:`TokenBucket` is the *rate* sibling of the same machinery: where
a :class:`BudgetClock` bounds how much one analysis may spend, a token
bucket bounds how often a caller may start one.  The resident service
keys one bucket per tenant (``repro serve --tenant-rps``) and turns an
empty bucket into a 429 with a ``Retry-After`` hint instead of queueing
unbounded work — the service-level analogue of the degradation
contract: overload produces a cheap, explicit refusal, never a stall.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Dict, Optional

#: How many loop iterations may pass between deadline polls.  Checking
#: the clock every iteration would cost a syscall per state; every
#: ``DEADLINE_CHECK_EVERY`` keeps the overhead unmeasurable while
#: bounding the overshoot to a few microseconds of extra work.
DEADLINE_CHECK_EVERY = 64


@dataclass(frozen=True)
class Budget:
    """Resource limits for one analysis run (``None`` = unlimited)."""

    max_states: Optional[int] = None
    max_depth: Optional[int] = None
    deadline: Optional[float] = None

    def start(self) -> "BudgetClock":
        """Stamp the wall clock and return the running form."""
        return BudgetClock(self)

    def to_dict(self) -> Dict[str, object]:
        """JSON shape (stable key order comes from ``sort_keys``)."""
        return {
            "max_states": self.max_states,
            "max_depth": self.max_depth,
            "deadline": self.deadline,
        }

    def __str__(self) -> str:
        parts = []
        if self.max_states is not None:
            parts.append(f"states<={self.max_states}")
        if self.max_depth is not None:
            parts.append(f"depth<={self.max_depth}")
        if self.deadline is not None:
            parts.append(f"deadline={self.deadline}s")
        return "Budget(" + ", ".join(parts or ["unlimited"]) + ")"


class BudgetClock:
    """A started :class:`Budget`: the limits plus a monotonic origin."""

    def __init__(self, budget: Budget):
        self.budget = budget
        self._started = time.monotonic()
        self._deadline_at = (
            self._started + budget.deadline
            if budget.deadline is not None
            else None
        )

    def elapsed(self) -> float:
        """Seconds since :meth:`Budget.start`."""
        return time.monotonic() - self._started

    def remaining(self) -> Optional[float]:
        """Seconds until the deadline (``None`` when there is none)."""
        if self._deadline_at is None:
            return None
        return self._deadline_at - time.monotonic()

    def expired(self) -> bool:
        """True once the wall-clock deadline has passed."""
        return (
            self._deadline_at is not None
            and time.monotonic() >= self._deadline_at
        )

    def __repr__(self) -> str:
        return f"<BudgetClock {self.budget} elapsed={self.elapsed():.3f}s>"


class TokenBucket:
    """A thread-safe token bucket on the same monotonic clock as
    :class:`BudgetClock`.

    ``rate`` tokens accrue per second up to ``burst``; the bucket
    starts full, so a quiet caller can always spend a burst before the
    steady rate applies.  :meth:`try_acquire` never blocks — an empty
    bucket is an immediate ``False`` plus a :meth:`retry_after` hint,
    which is what lets an admission layer refuse cheaply instead of
    queueing.  ``now`` is injectable everywhere for deterministic
    tests; production callers omit it.
    """

    def __init__(self, rate: float, burst: Optional[float] = None):
        if rate <= 0:
            raise ValueError(f"rate must be > 0 tokens/second, got {rate}")
        self.rate = float(rate)
        self.burst = float(burst) if burst is not None else max(1.0, self.rate)
        if self.burst < 1:
            raise ValueError(f"burst must be >= 1 token, got {burst}")
        self._tokens = self.burst
        # The stamp adopts the caller's clock on first use, so an
        # injected ``now`` timeline works the same as the real
        # monotonic clock (the bucket starts full either way).
        self._stamp: Optional[float] = None
        self._lock = threading.Lock()

    def _refill(self, now: float) -> None:
        if self._stamp is None:
            self._stamp = now
            return
        # Never move the stamp backwards: a skewed ``now`` earlier than
        # the last refill would otherwise re-credit that interval on
        # the next call, minting tokens for time already spent.
        if now > self._stamp:
            self._tokens = min(
                self.burst, self._tokens + (now - self._stamp) * self.rate
            )
            self._stamp = now

    def try_acquire(self, tokens: float = 1.0, now: Optional[float] = None) -> bool:
        """Spend ``tokens`` if available; never blocks."""
        with self._lock:
            self._refill(time.monotonic() if now is None else now)
            if self._tokens >= tokens:
                self._tokens -= tokens
                return True
            return False

    def retry_after(self, tokens: float = 1.0, now: Optional[float] = None) -> float:
        """Seconds until ``tokens`` will be available (0.0 = already are)."""
        with self._lock:
            self._refill(time.monotonic() if now is None else now)
            missing = tokens - self._tokens
            return max(0.0, missing / self.rate)

    def __repr__(self) -> str:
        return (
            f"<TokenBucket rate={self.rate}/s burst={self.burst} "
            f"tokens={self._tokens:.2f}>"
        )
