"""Span/counter/event trace emitters.

Every trace record is one flat JSON-able dict with a ``type`` field:

* ``{"type": "span", "name": ..., "seconds": ..., **attrs}`` — one
  completed timed operation (an analysis, a pool round, a whole run);
* ``{"type": "counter", "name": ..., "value": ..., **attrs}`` — one
  monotonic count (states visited, cache hits, retries);
* ``{"type": "event", "name": ..., **attrs}`` — one lifecycle moment
  (a pool starting, a worker crashing, a task being retried).

Emitters are deliberately dumb sinks: :class:`NullEmitter` drops
everything (the default — tracing disabled costs one no-op call),
:class:`JsonlEmitter` appends each record as a JSON line, and
:class:`RecordingEmitter` keeps records in memory for tests and for
the in-process aggregation in :mod:`repro.observe.metrics`.  Producers
never format or buffer; whatever policy a deployment wants lives in
the sink.

Records written by :class:`JsonlEmitter` carry a ``ts`` wall-clock
field; in-process records do not (timestamps would make unit tests and
aggregated metrics nondeterministic for no benefit).
"""

from __future__ import annotations

import json
import time
from typing import Dict, IO, List, Optional


class TraceEmitter:
    """Base sink: subclasses override :meth:`emit`."""

    def emit(self, record: Dict[str, object]) -> None:
        """Consume one trace record (a flat JSON-able dict)."""
        raise NotImplementedError

    # -- convenience producers (shared by all sinks) --------------------

    def span(self, name: str, seconds: float, **attrs: object) -> None:
        """Emit a completed timed operation."""
        self.emit({"type": "span", "name": name, "seconds": seconds, **attrs})

    def counter(self, name: str, value: int, **attrs: object) -> None:
        """Emit a monotonic count."""
        self.emit({"type": "counter", "name": name, "value": value, **attrs})

    def event(self, name: str, **attrs: object) -> None:
        """Emit a lifecycle moment."""
        self.emit({"type": "event", "name": name, **attrs})

    def close(self) -> None:
        """Release any underlying resource (default: nothing to do)."""


class NullEmitter(TraceEmitter):
    """Drops every record; the zero-overhead default."""

    def emit(self, record: Dict[str, object]) -> None:
        """Discard ``record``."""


#: The shared do-nothing sink (emitters are stateless when null).
NULL_EMITTER = NullEmitter()


class RecordingEmitter(TraceEmitter):
    """Keeps every record in :attr:`records` (tests, aggregation)."""

    def __init__(self) -> None:
        self.records: List[Dict[str, object]] = []

    def emit(self, record: Dict[str, object]) -> None:
        """Append ``record`` to :attr:`records`."""
        self.records.append(record)

    def named(self, name: str) -> List[Dict[str, object]]:
        """Every recorded entry with the given ``name``."""
        return [r for r in self.records if r.get("name") == name]


class JsonlEmitter(TraceEmitter):
    """Appends each record as one JSON line to ``path`` (or a handle).

    Lines are written with ``sort_keys=True`` so the sink is diffable;
    a wall-clock ``ts`` field is added to each record.  Writing is
    best-effort after the file is open: the pipeline must never fail
    because its trace sink did, so ``emit`` swallows ``OSError``.
    """

    def __init__(self, path: Optional[str] = None, handle: Optional[IO[str]] = None):
        if (path is None) == (handle is None):
            raise ValueError("JsonlEmitter needs exactly one of path or handle")
        self._owns = handle is None
        self._handle: Optional[IO[str]] = (
            open(path, "w", encoding="utf-8") if handle is None else handle
        )

    def emit(self, record: Dict[str, object]) -> None:
        """Write ``record`` (plus a ``ts`` field) as one JSON line."""
        if self._handle is None:
            return
        stamped = {"ts": round(time.time(), 6), **record}
        try:
            self._handle.write(json.dumps(stamped, sort_keys=True) + "\n")
        except OSError:
            pass

    def close(self) -> None:
        """Flush and close the sink (only if this emitter opened it)."""
        if self._handle is None:
            return
        try:
            self._handle.flush()
            if self._owns:
                self._handle.close()
        except OSError:
            pass
        if self._owns:
            self._handle = None
