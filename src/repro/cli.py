"""Command-line interface: ``repro-ifc`` (or ``python -m repro``).

Subcommands::

    certify  PROGRAM --bind x=high --bind y=low [--scheme two-level]
    denning  PROGRAM --bind ...  [--on-concurrency reject|ignore]
    infer    PROGRAM --bind x=high            # pin some, infer the rest
    prove    PROGRAM --bind ...               # Theorem 1 proof + check
    run      PROGRAM [--set x=3] [--seed 7] [--trace]
    explore  PROGRAM [--set x=3] [--por]
    report   PROGRAM --bind ...
    lint     PROGRAM... [--json] [--select RPL1] [--ignore RPL402]
    batch    [PROGRAM...] [--corpus litmus] --analyses cert,lint
             [--jobs 4] [--chunk-size N] [--cache-dir DIR]
             [--no-cache] [--json]
    serve    [--host 127.0.0.1] [--port 8765] [--jobs 2] [--shards N]
             [--max-queue N] [--tenant-rps RATE] [--chunk-size N]
             [--lru-size N] [--deadline SECONDS]
    loadtest [--duration 10] [--clients 8] [--overload-clients 32]
             [--smoke] [--out FILE]

``PROGRAM`` is a source file (``-`` for stdin).  Bindings use the
scheme's class names (``low``/``high`` for the default two-level
scheme; ``unclassified``..``topsecret`` for ``four-level``).
"""

from __future__ import annotations

import argparse
import sys
from typing import Dict, List, Optional

from repro.analysis.report import full_report
from repro.core.binding import StaticBinding
from repro.core.cfm import certify
from repro.core.denning import certify_denning
from repro.core.inference import infer_binding
from repro.errors import ReproError
from repro.lang.ast import Program, used_variables
from repro.lang.parser import parse_program
from repro.lang.validate import validate_program
from repro.lattice.chain import four_level, two_level
from repro.lattice.finite import diamond
from repro.logic.checker import check_proof
from repro.logic.extract import is_completely_invariant
from repro.logic.generator import generate_proof
from repro.logic.render import render_proof
from repro.runtime.executor import run as run_program
from repro.runtime.explorer import explore
from repro.runtime.scheduler import RandomScheduler, RoundRobinScheduler

_SCHEMES = {
    "two-level": two_level,
    "four-level": four_level,
    "diamond": diamond,
}


def _load_program(path: str) -> Program:
    if path == "-":
        source = sys.stdin.read()
    else:
        with open(path, "r", encoding="utf-8") as handle:
            source = handle.read()
    program = parse_program(source)
    problems = validate_program(program)
    if problems:
        for problem in problems:
            print(f"error: {problem}", file=sys.stderr)
        raise SystemExit(2)
    return program


def _parse_pairs(pairs: List[str], what: str) -> Dict[str, str]:
    out: Dict[str, str] = {}
    for pair in pairs or ():
        if "=" not in pair:
            raise SystemExit(f"error: {what} {pair!r} is not of the form name=value")
        name, _, value = pair.partition("=")
        out[name.strip()] = value.strip()
    return out


def _scheme(args):
    """Resolve the classification scheme from --scheme / --scheme-file."""
    if getattr(args, "scheme_file", None):
        from repro.lattice.parse import load_scheme

        return load_scheme(args.scheme_file)
    return _SCHEMES[args.scheme]()


def _parse_class(text: str, scheme) -> object:
    """Resolve a class name for the chosen scheme (names are the labels)."""
    for element in scheme.elements:
        if str(element) == text:
            return element
    raise SystemExit(
        f"error: {text!r} is not a class of {scheme.name}; "
        f"choices: {sorted(map(str, scheme.elements))}"
    )


def _binding(args, program: Program) -> StaticBinding:
    scheme = _scheme(args)
    classes: Dict[str, str] = {}
    if getattr(args, "bindings", None):
        import json

        with open(args.bindings, "r", encoding="utf-8") as handle:
            data = json.load(handle)
        if not isinstance(data, dict):
            raise SystemExit("error: the bindings file must hold a JSON object")
        classes.update({str(k): str(v) for k, v in data.items()})
    classes.update(_parse_pairs(args.bind, "--bind"))
    default = getattr(args, "default", None)
    binding = StaticBinding(scheme, classes, default=default)
    missing = sorted(used_variables(program.body) - set(classes))
    if missing and default is None:
        raise SystemExit(
            "error: no binding for: " + ", ".join(missing) + " (use --bind or --default)"
        )
    return binding


def _add_scheme_flags(
    sub: argparse.ArgumentParser,
    include_file: bool = True,
    help_text: str = "classification scheme (default: two-level)",
) -> None:
    """The ``--scheme``/``--scheme-file`` pair, defined once.

    Every subcommand that resolves a policy shares these; the help
    text is the only thing allowed to vary (the flags themselves had
    already drifted apart once when they were copy-pasted).
    """
    sub.add_argument(
        "--scheme",
        choices=sorted(_SCHEMES),
        default="two-level",
        help=help_text,
    )
    if include_file:
        sub.add_argument(
            "--scheme-file",
            metavar="FILE",
            help="custom scheme spec (chain: a < b < c, or elements:/order:); "
            "overrides --scheme",
        )


def _add_budget_flags(
    sub: argparse.ArgumentParser,
    max_states_default: int = 200_000,
    max_depth_default: int = 2_000,
) -> None:
    """The exploration budget trio (``--max-states``/``--max-depth``/
    ``--deadline``), shared by ``explore``, ``report`` and ``batch``.

    Only the ``--max-states`` default varies (the batch pipeline uses
    a deliberately lower per-program budget); the flags themselves are
    defined exactly once so they can never drift again.
    """
    sub.add_argument(
        "--max-states",
        type=int,
        default=max_states_default,
        metavar="N",
        help=f"distinct-state budget (default: {max_states_default})",
    )
    sub.add_argument(
        "--max-depth",
        type=int,
        default=max_depth_default,
        metavar="N",
        help=f"schedule-length budget (default: {max_depth_default})",
    )
    sub.add_argument(
        "--deadline",
        type=float,
        default=None,
        metavar="SECONDS",
        help="wall-clock budget; exhausting it yields a partial result "
        "flagged degraded instead of an error",
    )


def _add_common(sub: argparse.ArgumentParser, bind: bool = True) -> None:
    sub.add_argument("program", help="program source file, or - for stdin")
    _add_scheme_flags(sub)
    if bind:
        sub.add_argument(
            "--bind",
            action="append",
            metavar="VAR=CLASS",
            help="static binding entry (repeatable)",
        )
        sub.add_argument(
            "--bindings",
            metavar="FILE",
            help="JSON file of {variable: class}; --bind entries override it",
        )
        sub.add_argument(
            "--default",
            metavar="CLASS",
            help="class for variables without an explicit --bind",
        )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-ifc",
        description="Information-flow certification for parallel programs "
        "(Reitman, SOSP 1979).",
    )
    from repro import __version__

    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {__version__}"
    )
    subs = parser.add_subparsers(dest="command", required=True)

    sub = subs.add_parser("certify", help="run the Concurrent Flow Mechanism")
    _add_common(sub)
    sub.add_argument("--quiet", action="store_true", help="status line only")
    sub.add_argument(
        "--table",
        action="store_true",
        help="print the per-statement mod/flow/conditions table (Figure 2 style)",
    )
    sub.add_argument("--json", action="store_true", help="machine-readable output")

    sub = subs.add_parser("denning", help="run the sequential Denning-Denning baseline")
    _add_common(sub)
    sub.add_argument(
        "--on-concurrency",
        choices=("reject", "ignore"),
        default="reject",
        help="how to treat cobegin/wait/signal (default: reject)",
    )

    sub = subs.add_parser(
        "fs-certify",
        help="run the flow-sensitive certifier (strictly stronger than CFM)",
    )
    _add_common(sub)

    sub = subs.add_parser("infer", help="infer the least binding completion")
    _add_common(sub)

    sub = subs.add_parser("flow", help="print the variable flow relation")
    _add_common(sub, bind=False)

    sub = subs.add_parser(
        "ni", help="exhaustive possibilistic noninterference check"
    )
    _add_common(sub)
    sub.add_argument("--observer", required=True, help="observer class")
    sub.add_argument(
        "--vary",
        action="append",
        required=True,
        metavar="VAR=V1,V2,...",
        help="high variable and the values to vary it over",
    )

    sub = subs.add_parser("leak", help="search for a concrete leak witness")
    _add_common(sub)
    sub.add_argument("--observer", required=True, help="observer class")
    sub.add_argument("--values", default="0,1,2", help="candidate values (csv)")

    sub = subs.add_parser("prove", help="generate and check a Theorem 1 flow proof")
    _add_common(sub)
    sub.add_argument("--render", action="store_true", help="print the full proof tree")
    sub.add_argument(
        "--save-cert",
        metavar="FILE",
        help="write the proof as a JSON certificate (re-check with check-cert)",
    )

    sub = subs.add_parser(
        "check-cert",
        help="re-check a proof certificate against a program",
    )
    _add_common(sub, bind=False)
    sub.add_argument("certificate", help="JSON certificate from prove --save-cert")

    sub = subs.add_parser("run", help="execute the program")
    _add_common(sub, bind=False)
    sub.add_argument("--set", action="append", metavar="VAR=INT", help="initial value")
    sub.add_argument("--seed", type=int, help="random scheduler seed (default: round-robin)")
    sub.add_argument("--max-steps", type=int, default=100_000)
    sub.add_argument("--trace", action="store_true", help="print every atomic action")
    sub.add_argument(
        "--timeline",
        action="store_true",
        help="render the trace as per-process lanes",
    )

    sub = subs.add_parser("explore", help="exhaustively explore all interleavings")
    _add_common(sub, bind=False)
    sub.add_argument("--set", action="append", metavar="VAR=INT")
    _add_budget_flags(sub)
    sub.add_argument(
        "--por",
        action="store_true",
        help="partial-order reduction: same outcomes, fewer states",
    )

    sub = subs.add_parser("report", help="full report: CFM, baseline, flow relation")
    _add_common(sub)
    sub.add_argument("--source", action="store_true", help="include the pretty-printed source")
    sub.add_argument(
        "--explore",
        action="store_true",
        help="append an exploration-metrics section (honours the budget flags)",
    )
    _add_budget_flags(sub)

    sub = subs.add_parser(
        "lint",
        help="static analysis: deadlock, races, dataflow hygiene, label lint",
    )
    sub.add_argument(
        "programs",
        nargs="*",
        metavar="PROGRAM",
        help="source files (- for stdin) or Python modules with embedded "
        "programs (the examples/ convention)",
    )
    _add_scheme_flags(
        sub,
        help_text="classification scheme for the label passes "
        "(default: two-level)",
    )
    sub.add_argument(
        "--bind",
        action="append",
        metavar="VAR=CLASS",
        help="policy binding entry; enables the RPL501/RPL503 label passes",
    )
    sub.add_argument(
        "--bindings",
        metavar="FILE",
        help="JSON file of {variable: class}; --bind entries override it",
    )
    sub.add_argument(
        "--default",
        metavar="CLASS",
        help="class for variables without an explicit --bind",
    )
    sub.add_argument("--json", action="store_true", help="machine-readable output")
    sub.add_argument(
        "--select",
        action="append",
        metavar="CODES",
        help="only report these code prefixes (comma-separated, repeatable; "
        "RPL1 selects all RPL1xx)",
    )
    sub.add_argument(
        "--ignore",
        action="append",
        metavar="CODES",
        help="suppress these code prefixes (comma-separated, repeatable)",
    )
    sub.add_argument(
        "--strict",
        action="store_true",
        help="exit 1 on any finding, not just errors",
    )
    sub.add_argument(
        "--exit-zero", action="store_true", help="always exit 0 on a completed run"
    )
    sub.add_argument(
        "--list-codes",
        action="store_true",
        help="print the diagnostic code table and exit",
    )

    sub = subs.add_parser(
        "batch",
        help="run analyses over a corpus in parallel, with result caching",
    )
    sub.add_argument(
        "programs",
        nargs="*",
        metavar="PROGRAM",
        help="program source files to add to the corpus",
    )
    sub.add_argument(
        "--corpus",
        action="append",
        metavar="NAME",
        help="add a named workload corpus (repeatable; see --list-corpora)",
    )
    sub.add_argument(
        "--list-corpora",
        action="store_true",
        help="print the available corpus names and exit",
    )
    sub.add_argument(
        "--analyses",
        default="cert,lint",
        metavar="NAMES",
        help="comma-separated analyses to run (default: cert,lint; "
        "see --list-analyses)",
    )
    sub.add_argument(
        "--list-analyses",
        action="store_true",
        help="print the available analyses and exit",
    )
    sub.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes (default: 1 = serial)",
    )
    sub.add_argument(
        "--chunk-size",
        type=int,
        default=None,
        metavar="N",
        help="(program, analysis) cells dispatched per worker task "
        "(default: auto-sized from the corpus and --jobs)",
    )
    sub.add_argument(
        "--cache-dir",
        default=".repro-cache",
        metavar="DIR",
        help="content-addressed result cache root (default: .repro-cache)",
    )
    sub.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the on-disk cache (recompute everything)",
    )
    sub.add_argument(
        "--json",
        action="store_true",
        help="print the deterministic result document as JSON",
    )
    sub.add_argument(
        "--stats",
        action="store_true",
        help="print run statistics (timing, cache hits) to stderr",
    )
    _add_scheme_flags(
        sub,
        include_file=False,
        help_text="classification scheme for policy-based analyses "
        "(default: two-level)",
    )
    sub.add_argument(
        "--high",
        default="h,h2",
        metavar="NAMES",
        help="comma-separated variables bound to the scheme top "
        "(default: h,h2); everything else binds to bottom",
    )
    _add_budget_flags(sub, max_states_default=20_000)
    sub.add_argument(
        "--no-por",
        action="store_true",
        help="disable partial-order reduction in the explore analysis",
    )
    sub.add_argument(
        "--no-fastpath",
        action="store_true",
        help="disable the fused certifier fast path (run the reference "
        "cert/denning/lint analyzers directly)",
    )
    sub.add_argument(
        "--metrics",
        metavar="FILE",
        help="write the run's metrics document (schema repro-metrics/1) "
        "as JSON",
    )
    sub.add_argument(
        "--trace",
        metavar="FILE",
        help="stream span/counter/event trace records as JSON lines",
    )

    sub = subs.add_parser(
        "fuzz",
        help="differential fuzzing: cross-check the analyzers on seeded "
        "random programs, minimizing any violation",
    )
    sub.add_argument(
        "--seeds",
        type=int,
        default=100,
        metavar="N",
        help="number of consecutive generator seeds (default: 100)",
    )
    sub.add_argument(
        "--seed-start",
        type=int,
        default=0,
        metavar="N",
        help="first seed (default: 0)",
    )
    sub.add_argument(
        "--oracles",
        default=None,
        metavar="NAMES",
        help="comma-separated oracles to run (default: all; "
        "see --list-oracles)",
    )
    sub.add_argument(
        "--list-oracles",
        action="store_true",
        help="print the oracle catalog and exit",
    )
    sub.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes (default: 1 = serial)",
    )
    sub.add_argument(
        "--chunk-size",
        type=int,
        default=None,
        metavar="N",
        help="seeds dispatched per worker task "
        "(default: auto-sized from --seeds and --jobs)",
    )
    sub.add_argument(
        "--corpus-dir",
        default=None,
        metavar="DIR",
        help="persist minimized findings to this directory for replay",
    )
    sub.add_argument(
        "--replay",
        default=None,
        metavar="DIR",
        help="replay a finding corpus instead of fuzzing; exits 1 if "
        "any finding deviates from its recorded expectation",
    )
    sub.add_argument(
        "--no-shrink",
        action="store_true",
        help="report violations unminimized (skip delta debugging)",
    )
    sub.add_argument(
        "--json",
        action="store_true",
        help="print the campaign report as JSON",
    )
    sub.add_argument(
        "--metrics",
        metavar="FILE",
        help="write the campaign metrics document "
        "(schema repro-metrics/1, with the fuzz section) as JSON",
    )
    _add_scheme_flags(
        sub,
        include_file=False,
        help_text="classification scheme for policy oracles "
        "(default: two-level)",
    )
    sub.add_argument(
        "--high",
        default="v0",
        metavar="NAMES",
        help="comma-separated variables bound to the scheme top "
        "(default: v0, a variable the generator emits)",
    )
    _add_budget_flags(sub, max_states_default=8_000, max_depth_default=600)
    sub.add_argument(
        "--no-fastpath",
        action="store_true",
        help="disable the fused certifier fast path in policy oracles",
    )

    sub = subs.add_parser(
        "serve",
        help="long-running JSON-over-HTTP analysis service "
        "(POST /analyze, GET /healthz, GET /metrics)",
    )
    sub.add_argument(
        "--host",
        default="127.0.0.1",
        help="interface to bind (default: 127.0.0.1)",
    )
    sub.add_argument(
        "--port",
        type=int,
        default=8765,
        help="port to bind; 0 picks a free port, announced on stdout "
        "(default: 8765)",
    )
    sub.add_argument(
        "--jobs",
        type=int,
        default=2,
        metavar="N",
        help="persistent worker processes, pre-forked at startup "
        "(default: 2; 1 = analyse in-process)",
    )
    sub.add_argument(
        "--chunk-size",
        type=int,
        default=None,
        metavar="N",
        help="(program, analysis) cells dispatched per worker task "
        "(default: auto-sized per request)",
    )
    sub.add_argument(
        "--cache-dir",
        default=".repro-cache",
        metavar="DIR",
        help="on-disk result cache root (default: .repro-cache)",
    )
    sub.add_argument(
        "--no-cache",
        action="store_true",
        help="disable both cache tiers (recompute every request)",
    )
    sub.add_argument(
        "--lru-size",
        type=int,
        default=4096,
        metavar="N",
        help="in-memory LRU tier capacity in entries "
        "(default: 4096; 0 disables the memory tier)",
    )
    sub.add_argument(
        "--deadline",
        type=float,
        default=None,
        metavar="SECONDS",
        help="default per-request wall-clock budget for requests that "
        "set none; exhausting it degrades the result, never errors",
    )
    sub.add_argument(
        "--no-fastpath",
        action="store_true",
        help="disable the fused certifier fast path for every request",
    )
    sub.add_argument(
        "--shards",
        type=int,
        default=1,
        metavar="N",
        help="independent worker pools, requests routed by "
        "coalescing-key hash (default: 1; ignored when --jobs 1)",
    )
    sub.add_argument(
        "--max-queue",
        type=int,
        default=64,
        metavar="N",
        help="admission bound on in-flight plus waiting requests; "
        "beyond it requests are refused with 429 (default: 64)",
    )
    sub.add_argument(
        "--tenant-rps",
        type=float,
        default=None,
        metavar="RATE",
        help="per-tenant token-bucket rate limit in requests/second, "
        "keyed by the X-Repro-Tenant header (default: unlimited)",
    )
    sub.add_argument(
        "--tenant-burst",
        type=float,
        default=None,
        metavar="N",
        help="per-tenant burst size in tokens "
        "(default: max(1, --tenant-rps))",
    )
    sub.add_argument(
        "--quiet", action="store_true", help="suppress per-request logging"
    )

    sub = subs.add_parser(
        "loadtest",
        help="closed-loop load driver: spawn a repro serve subprocess, "
        "drive it with a mixed corpus, report RPS/latency/admission",
    )
    sub.add_argument(
        "--duration",
        type=float,
        default=10.0,
        metavar="SECONDS",
        help="steady-phase wall-clock length (default: 10)",
    )
    sub.add_argument(
        "--clients",
        type=int,
        default=8,
        metavar="N",
        help="concurrent closed-loop clients in the steady phase "
        "(default: 8)",
    )
    sub.add_argument(
        "--jobs",
        type=int,
        default=2,
        metavar="N",
        help="worker processes for the spawned server (default: 2)",
    )
    sub.add_argument(
        "--shards",
        type=int,
        default=2,
        metavar="N",
        help="worker-pool shards for the spawned server (default: 2)",
    )
    sub.add_argument(
        "--max-queue",
        type=int,
        default=16,
        metavar="N",
        help="admission bound for the spawned server (default: 16)",
    )
    sub.add_argument(
        "--tenant-rps",
        type=float,
        default=None,
        metavar="RATE",
        help="per-tenant rate limit for the spawned server "
        "(default: unlimited)",
    )
    sub.add_argument(
        "--overload-clients",
        type=int,
        default=32,
        metavar="N",
        help="burst clients in the overload phase; more than "
        "--max-queue forces 429s (default: 32)",
    )
    sub.add_argument(
        "--overload-seconds",
        type=float,
        default=4.0,
        metavar="SECONDS",
        help="overload-phase wall-clock length (default: 4)",
    )
    sub.add_argument(
        "--smoke",
        action="store_true",
        help="short CI shape: 2s steady phase, fewer clients",
    )
    sub.add_argument(
        "--out",
        default=None,
        metavar="FILE",
        help="write the full JSON report here (default: stdout only)",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return _dispatch(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except BrokenPipeError:  # output piped into e.g. head; not an error
        try:
            sys.stdout.close()
        except Exception:
            pass
        return 0


def _split_codes(values: Optional[List[str]]) -> tuple:
    """Flatten repeatable comma-separated ``--select``/``--ignore`` args."""
    return tuple(
        code.strip()
        for value in values or ()
        for code in value.split(",")
        if code.strip()
    )


def _cmd_lint(args) -> int:
    """The ``lint`` subcommand (its own loader, so dispatched early)."""
    import json as json_mod

    from repro.staticlint import (
        LintResult,
        LoadError,
        Severity,
        codes_table,
        filter_diagnostics,
        load_units,
        run_lint,
    )

    if args.list_codes:
        for code, name, severity, description in codes_table():
            print(f"{code}  {severity:<7}  {name}: {description}")
        return 0
    if not args.programs:
        raise SystemExit("error: lint needs at least one PROGRAM (or --list-codes)")

    binding = None
    scheme = None
    if args.bind or args.bindings or args.default:
        scheme = _scheme(args)
        classes: Dict[str, str] = {}
        if args.bindings:
            with open(args.bindings, "r", encoding="utf-8") as handle:
                data = json_mod.load(handle)
            if not isinstance(data, dict):
                raise SystemExit("error: the bindings file must hold a JSON object")
            classes.update({str(k): str(v) for k, v in data.items()})
        classes.update(_parse_pairs(args.bind, "--bind"))
        binding = StaticBinding(scheme, classes, default=args.default)
    elif args.scheme_file or args.scheme != "two-level":
        scheme = _scheme(args)

    select = _split_codes(args.select)
    ignore = _split_codes(args.ignore)
    results: List[LintResult] = []
    load_failed = False
    for path in args.programs:
        try:
            units = load_units(path)
        except LoadError as exc:
            print(f"error: {exc}", file=sys.stderr)
            load_failed = True
            continue
        for unit in units:
            if unit.problems:
                results.append(LintResult(
                    diagnostics=filter_diagnostics(unit.problems, select, ignore),
                    passes_run=("loader",),
                    subject_name=unit.label,
                ))
            elif unit.subject is not None:
                results.append(run_lint(
                    unit.subject,
                    binding=binding,
                    scheme=scheme,
                    select=select,
                    ignore=ignore,
                    subject_name=unit.label,
                ))

    if args.json:
        print(json_mod.dumps([r.to_dict() for r in results], indent=2))
    else:
        for result in results:
            for d in result.diagnostics:
                print(
                    f"{result.subject_name}:{d.span.line}:{d.span.column}: "
                    f"{d.code} {d.message}"
                )
                if d.hint:
                    print(f"    hint: {d.hint}")
        findings = sum(len(r.diagnostics) for r in results)
        errors = sum(len(r.errors) for r in results)
        warnings = sum(r.count(Severity.WARNING) for r in results)
        print(
            f"{findings} finding{'s' if findings != 1 else ''} "
            f"({errors} error{'s' if errors != 1 else ''}, "
            f"{warnings} warning{'s' if warnings != 1 else ''}) "
            f"in {len(results)} program{'s' if len(results) != 1 else ''}"
        )

    if load_failed:
        return 2
    if args.exit_zero:
        return 0
    if args.strict and any(r.diagnostics for r in results):
        return 1
    if any(r.errors for r in results):
        return 1
    return 0


def _cmd_batch(args) -> int:
    """The ``batch`` subcommand: the parallel certification pipeline."""
    import os

    from repro.pipeline import analysis_names, run_pipeline, scheme_names
    from repro.workloads.suites import corpus as load_corpus
    from repro.workloads.suites import corpus_names

    if args.list_corpora:
        for name in corpus_names():
            print(name)
        return 0
    if args.list_analyses:
        from repro.pipeline import ANALYSES

        for name in analysis_names():
            print(f"{name}: {ANALYSES[name].description}")
        return 0

    analyses = _split_codes([args.analyses])
    if not analyses:
        raise SystemExit("error: --analyses needs at least one analysis name")
    assert args.scheme in scheme_names()  # argparse choices enforce this

    corpus = []
    for path in args.programs:
        corpus.append((os.path.basename(path), _load_program(path)))
    for name in args.corpus or ():
        try:
            corpus.extend(load_corpus(name))
        except KeyError as exc:
            raise SystemExit(f"error: {exc.args[0]}")
    if not corpus:
        raise SystemExit(
            "error: batch needs PROGRAM files and/or --corpus NAME "
            "(try --list-corpora)"
        )

    config = {
        "scheme": args.scheme,
        "high": _split_codes([args.high]),
        "max_states": args.max_states,
        "max_depth": args.max_depth,
        "por": not args.no_por,
        "deadline": args.deadline,
        "fastpath": not args.no_fastpath,
    }
    trace = None
    if args.trace:
        from repro.observe import JsonlEmitter

        trace = JsonlEmitter(path=args.trace)
    try:
        result = run_pipeline(
            corpus,
            analyses=analyses,
            jobs=args.jobs,
            cache_dir=None if args.no_cache else args.cache_dir,
            use_cache=not args.no_cache,
            config=config,
            trace=trace,
            chunk_size=args.chunk_size,
        )
    except ValueError as exc:
        raise SystemExit(f"error: {exc}")
    finally:
        if trace is not None:
            trace.close()
    if args.metrics:
        import json as json_mod

        with open(args.metrics, "w", encoding="utf-8") as handle:
            json_mod.dump(result.metrics, handle, indent=2, sort_keys=True)

    if args.json:
        print(result.to_json())
    else:
        for entry in result.programs:
            cells = []
            for analysis in result.analyses:
                data = entry["analyses"][analysis]
                if "error" in data:
                    cells.append(f"{analysis}=ERROR")
                elif "certified" in data:
                    cells.append(
                        f"{analysis}={'ok' if data['certified'] else 'REJECT'}"
                    )
                elif analysis == "lint":
                    cells.append(f"lint={data['findings']}")
                elif analysis == "explore":
                    tag = (
                        f" DEGRADED({data.get('limit')})"
                        if data.get("degraded")
                        else ""
                    )
                    cells.append(
                        f"explore={len(data['outcomes'])} outcomes/"
                        f"{data['states']} states{tag}"
                    )
                elif analysis == "prove":
                    cells.append(
                        f"prove={'VALID' if data['valid'] else 'INVALID'}"
                    )
                else:
                    cells.append(f"{analysis}=done")
            print(f"{entry['name']}: {'  '.join(cells)}")
        stats = result.stats
        print(
            f"{len(result.programs)} programs x {len(result.analyses)} "
            f"analyses; {stats['computed']} computed, "
            f"{stats['cache']['hits']} cached, "
            f"{stats['elapsed_seconds']:.2f}s with {stats['jobs']} job(s)"
        )
        degraded = result.degraded()
        if degraded:
            print(f"{len(degraded)} degraded (partial) result(s):")
            for name, analysis, limit in degraded:
                print(f"  {name}/{analysis}: {limit} budget hit")
    if args.stats:
        import json as json_mod

        print(json_mod.dumps(result.stats, sort_keys=True), file=sys.stderr)
    errors = result.errors()
    for name, analysis, message in errors:
        print(f"error: {name}/{analysis}: {message}", file=sys.stderr)
    return 1 if errors else 0


def _cmd_serve(args) -> int:
    """The ``serve`` subcommand: the resident analysis service."""
    from repro.service import AnalysisService, serve

    service = AnalysisService(
        jobs=args.jobs,
        cache_dir=None if args.no_cache else args.cache_dir,
        lru_capacity=0 if args.no_cache else args.lru_size,
        default_deadline=args.deadline,
        default_config={"fastpath": False} if args.no_fastpath else None,
        chunk_size=args.chunk_size,
        shards=args.shards,
        max_queue=args.max_queue,
        tenant_rps=args.tenant_rps,
        tenant_burst=args.tenant_burst,
    )
    return serve(
        service, host=args.host, port=args.port, quiet=args.quiet
    )


def _cmd_loadtest(args) -> int:
    """The ``loadtest`` subcommand: drive a spawned server, report, gate."""
    import json as json_mod

    from repro.service.loadtest import LoadtestOptions, run_loadtest

    options = LoadtestOptions(
        duration=2.0 if args.smoke else args.duration,
        clients=4 if args.smoke else args.clients,
        jobs=args.jobs,
        shards=args.shards,
        max_queue=args.max_queue,
        tenant_rps=args.tenant_rps,
        overload_clients=(
            max(8, args.max_queue + 4) if args.smoke else args.overload_clients
        ),
        overload_seconds=2.0 if args.smoke else args.overload_seconds,
        smoke=args.smoke,
    )
    payload = run_loadtest(options)
    rendered = json_mod.dumps(payload, indent=2, sort_keys=True)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(rendered + "\n")
    print(rendered)
    failures = []
    if payload["identity"]["invalid_documents"]:
        failures.append(
            f"{payload['identity']['invalid_documents']} documents "
            "diverged from repro batch --json"
        )
    if payload["loadtest"]["network_errors"]:
        failures.append(
            f"{payload['loadtest']['network_errors']} network errors"
        )
    if not payload["metrics_valid"]:
        failures.append("/metrics failed schema validation")
    if not payload["clean_exit"]:
        failures.append("server did not drain and exit cleanly on SIGTERM")
    for failure in failures:
        print(f"loadtest: FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


def _cmd_fuzz(args) -> int:
    """The ``fuzz`` subcommand: the differential fuzzing campaign."""
    import json as json_mod

    from repro.fuzz import ORACLES, oracle_names, replay_corpus, run_fuzz

    if args.list_oracles:
        for name in oracle_names():
            spec = ORACLES[name]
            profiles = ",".join(spec.profiles)
            print(f"{name} [{spec.paper}; {profiles}]: {spec.description}")
        return 0

    if args.replay:
        results = replay_corpus(args.replay)
        unexpected = [r for r in results if not r["as_expected"]]
        if args.json:
            print(json_mod.dumps(results, indent=2, sort_keys=True))
        else:
            for r in results:
                tag = "ok" if r["as_expected"] else "UNEXPECTED"
                print(
                    f"{r['path']}: {r['outcome']} "
                    f"(expected {r['expect']}) {tag}"
                )
            print(
                f"{len(results)} finding(s) replayed, "
                f"{len(unexpected)} unexpected"
            )
        return 1 if unexpected else 0

    oracles = _split_codes([args.oracles]) if args.oracles else None
    config = {
        "scheme": args.scheme,
        "high": _split_codes([args.high]),
        "max_states": args.max_states,
        "max_depth": args.max_depth,
        "fastpath": not args.no_fastpath,
    }
    try:
        result = run_fuzz(
            seeds=args.seeds,
            seed_start=args.seed_start,
            oracles=oracles,
            jobs=args.jobs,
            config=config,
            deadline=args.deadline,
            do_shrink=not args.no_shrink,
            corpus_dir=args.corpus_dir,
            chunk_size=args.chunk_size,
        )
    except ValueError as exc:
        raise SystemExit(f"error: {exc}")

    if args.metrics:
        with open(args.metrics, "w", encoding="utf-8") as handle:
            json_mod.dump(result.metrics, handle, indent=2, sort_keys=True)
    if args.json:
        print(json_mod.dumps(result.to_dict(), indent=2, sort_keys=True))
    else:
        section = result.fuzz_section()
        print(
            f"{section['seeds']} seeds -> {section['programs']} programs, "
            f"{section['checks']} oracle checks "
            f"({section['skips']} inconclusive) in "
            f"{result.elapsed_seconds:.2f}s with {args.jobs} job(s)"
        )
        for name, counters in sorted(result.oracles.items()):
            print(
                f"  {name}: {counters['checks']} checks, "
                f"{counters['skips']} skips, "
                f"{counters['violations']} violations"
            )
        for finding in result.findings:
            print(
                f"FINDING {finding['oracle']} (seed {finding['seed']}, "
                f"{finding['profile']}, {finding['shrink_iterations']} "
                f"shrink steps): {finding['details'].get('relation')}"
            )
            print("  " + finding["source"].replace("\n", "\n  "))
        for error in result.errors:
            print(f"error: seed {error['seed']}: {error.get('error')}",
                  file=sys.stderr)
        if not result.findings and not result.errors:
            print("no violations found")
    if args.corpus_dir and result.findings:
        print(f"{len(result.findings)} finding(s) persisted to "
              f"{args.corpus_dir}", file=sys.stderr)
    return 1 if (result.findings or result.errors) else 0


def _dispatch(args) -> int:
    if args.command == "lint":
        return _cmd_lint(args)
    if args.command == "batch":
        return _cmd_batch(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "loadtest":
        return _cmd_loadtest(args)
    if args.command == "fuzz":
        return _cmd_fuzz(args)

    program = _load_program(args.program)

    if args.command == "certify":
        report = certify(program, _binding(args, program))
        if args.json:
            import json

            from repro.analysis.tables import report_to_dict

            print(json.dumps(report_to_dict(report), indent=2))
        elif args.table:
            from repro.analysis.tables import certification_table

            print(certification_table(report))
            print()
            print("CERTIFIED" if report.certified else "REJECTED")
        elif args.quiet:
            print("CERTIFIED" if report.certified else "REJECTED")
        else:
            print(report.summary())
        return 0 if report.certified else 1

    if args.command == "denning":
        report = certify_denning(
            program, _binding(args, program), on_concurrency=args.on_concurrency
        )
        print(report.summary())
        return 0 if report.certified else 1

    if args.command == "fs-certify":
        from repro.core.flowsensitive import certify_flow_sensitive

        report = certify_flow_sensitive(program, _binding(args, program))
        print(report.summary())
        return 0 if report.certified else 1

    if args.command == "flow":
        from repro.analysis.flowgraph import flow_graph

        scheme = _scheme(args)
        graph = flow_graph(program, scheme)
        print(f"{len(graph.edges)} direct flow edges:")
        for a, bvar in graph.direct_edges():
            rules = ",".join(sorted(graph.why(a, bvar)))
            print(f"  {a} -> {bvar}   [{rules}]")
        return 0

    if args.command == "ni":
        from repro.runtime.noninterference import check_noninterference

        binding = _binding(args, program)
        scheme = binding.scheme
        observer = _parse_class(args.observer, scheme)
        variations = []
        for spec in args.vary:
            name, _, values = spec.partition("=")
            for value in values.split(","):
                variations.append({name.strip(): int(value)})
        result = check_noninterference(program, binding, observer, variations)
        print(f"noninterference holds: {result.holds} (complete={result.complete})")
        if not result.holds:
            i, j, outcome = result.witness()
            print(f"  witness: variation {i} can reach {outcome}, variation {j} cannot")
        return 0 if result.holds else 1

    if args.command == "leak":
        from repro.analysis.leaks import find_leak

        binding = _binding(args, program)
        observer = _parse_class(args.observer, binding.scheme)
        values = tuple(int(v) for v in args.values.split(","))
        witness = find_leak(program, binding, observer, values=values)
        if witness is None:
            print("no leak witness found")
            return 0
        print(str(witness))
        return 1

    if args.command == "infer":
        scheme = _scheme(args)
        fixed = {}
        if getattr(args, "bindings", None):
            import json

            with open(args.bindings, "r", encoding="utf-8") as handle:
                fixed.update(json.load(handle))
        fixed.update(_parse_pairs(args.bind, "--bind"))
        result = infer_binding(program, scheme, fixed)
        print(result.explain())
        return 0 if result.satisfiable else 1

    if args.command == "prove":
        from repro.lang.procs import resolve_subject

        binding = _binding(args, program)
        program, _ = resolve_subject(program)  # certificates index the expansion
        proof = generate_proof(program, binding)
        checked = check_proof(proof, binding.scheme)
        print(f"generated proof with {proof.size()} rule applications")
        print(f"independent check: {'VALID' if checked.ok else 'INVALID'}")
        for problem in checked.problems:
            print(f"  {problem}")
        print(f"completely invariant: {is_completely_invariant(proof, binding)}")
        if args.save_cert:
            import json

            from repro.logic.serialize import dump_proof

            with open(args.save_cert, "w", encoding="utf-8") as handle:
                json.dump(dump_proof(proof, program), handle, indent=2)
            print(f"certificate written to {args.save_cert}")
        if args.render:
            print(render_proof(proof))
        return 0 if checked.ok else 1

    if args.command == "check-cert":
        import json

        from repro.lang.procs import resolve_subject
        from repro.logic.serialize import load_proof

        program, _ = resolve_subject(program)
        scheme = _scheme(args)
        with open(args.certificate, "r", encoding="utf-8") as handle:
            data = json.load(handle)
        proof = load_proof(data, program, scheme)
        checked = check_proof(proof, scheme)
        print(
            f"certificate: {proof.size()} rule applications; "
            f"{'VALID' if checked.ok else 'INVALID'}"
        )
        for problem in checked.problems[:10]:
            print(f"  {problem}")
        return 0 if checked.ok else 1

    if args.command == "run":
        store = {k: int(v) for k, v in _parse_pairs(args.set, "--set").items()}
        scheduler = RandomScheduler(args.seed) if args.seed is not None else RoundRobinScheduler()
        result = run_program(
            program,
            scheduler=scheduler,
            store=store,
            max_steps=args.max_steps,
            collect_trace=args.trace or args.timeline,
        )
        if args.timeline and result.trace:
            from repro.analysis.timeline import render_timeline

            print(render_timeline(result.trace))
        elif args.trace and result.trace:
            for event in result.trace:
                print(event)
        print(f"status: {result.status} after {result.steps} steps")
        for name in sorted(result.store):
            print(f"  {name} = {result.store[name]}")
        return 0 if result.completed else 1

    if args.command == "explore":
        from repro.observe import Budget

        store = {k: int(v) for k, v in _parse_pairs(args.set, "--set").items()}
        budget = Budget(
            max_states=args.max_states,
            max_depth=args.max_depth,
            deadline=args.deadline,
        )
        result = explore(program, store=store, budget=budget, por=args.por)
        print(
            f"{result.states_visited} states, {result.transitions} transitions, "
            f"complete={result.complete}"
        )
        if result.degraded:
            print(
                f"  degraded: hit the {result.limit} budget with "
                f"{result.abandoned} frontier state(s) abandoned"
            )
        for outcome in result.sorted_outcomes():
            print(f"  {outcome}")
        return 0 if result.deadlock_free else 1

    if args.command == "report":
        explore_budget = None
        if args.explore:
            from repro.observe import Budget

            explore_budget = Budget(
                max_states=args.max_states,
                max_depth=args.max_depth,
                deadline=args.deadline,
            )
        print(
            full_report(
                program,
                _binding(args, program),
                include_source=args.source,
                explore_budget=explore_budget,
            )
        )
        return 0

    raise SystemExit(f"unknown command {args.command!r}")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
