"""The HTTP transport for ``repro serve`` (stdlib ``http.server`` only).

Three endpoints, all JSON:

``POST /analyze``
    body: an analysis request (see
    :meth:`repro.service.app.AnalysisService._parse_request`); response:
    the deterministic pipeline document, byte-identical to
    ``repro batch --json`` for the same inputs.  The optional
    ``X-Repro-Tenant`` header names the tenant for rate-limit
    accounting; admission refusals are 429s carrying ``Retry-After``.
``GET /healthz``
    liveness/readiness: 200 ``{"status": "ok", ...}`` while serving,
    503 ``{"status": "draining", ...}`` once shutdown has begun.
``GET /metrics``
    the cumulative ``repro-metrics/1`` document with the ``service``
    section (requests, in-flight, coalesced, LRU counters).

Shutdown contract: SIGTERM (or SIGINT) starts a **drain** — the
listening socket stops accepting, new requests are refused with 503,
and every in-flight request runs to completion before the process
exits.  The mechanics: request threads are non-daemon
(``daemon_threads = False``) and every response carries ``Connection:
close`` so no idle keep-alive connection can hold a request thread
open forever — ``server_close`` therefore joins exactly the requests
that were genuinely in flight.  The signal handler itself only flips
the draining flag and kicks ``shutdown()`` on a helper thread
(``shutdown`` blocks until the serve loop exits, and must never run on
the serving thread).
"""

from __future__ import annotations

import json
import signal
import sys
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional

from repro.service.app import MAX_REQUEST_BYTES, AnalysisService, _error_body


class _Handler(BaseHTTPRequestHandler):
    """One request; all analysis logic is delegated to the service."""

    server_version = "repro-serve/1"
    protocol_version = "HTTP/1.1"

    def _respond(
        self,
        status: int,
        body: bytes,
        headers: Optional[dict] = None,
    ) -> None:
        try:
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            for name, value in (headers or {}).items():
                self.send_header(name, value)
            # One request per connection: an idle keep-alive connection
            # would pin a non-daemon thread and stall the drain forever.
            self.send_header("Connection", "close")
            self.end_headers()
            self.wfile.write(body)
        except (BrokenPipeError, ConnectionResetError):
            # The client gave up mid-response.  Its analysis already
            # ran (and is cached/coalescable) — that is a disconnect
            # counter, not a failed request, and certainly not a
            # traceback per impatient client under overload.
            self.server.service.note_client_disconnect()
        self.close_connection = True

    def _respond_json(self, status: int, document: dict) -> None:
        body = (json.dumps(document, sort_keys=True) + "\n").encode("utf-8")
        self._respond(status, body)

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        service = self.server.service
        if self.path == "/healthz":
            status, document = service.health_document()
            self._respond_json(status, document)
        elif self.path == "/metrics":
            self._respond_json(200, service.metrics_document())
        else:
            self._respond(404, _error_body(f"no such path {self.path}", 404))

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        service = self.server.service
        if self.path != "/analyze":
            self._respond(404, _error_body(f"no such path {self.path}", 404))
            return
        if service.draining:
            self._respond(503, _error_body("service is draining", 503))
            return
        try:
            length = int(self.headers.get("Content-Length") or 0)
        except ValueError:
            self._respond(400, _error_body("bad Content-Length", 400))
            return
        if length < 0:
            self._respond(400, _error_body("bad Content-Length", 400))
            return
        if length > MAX_REQUEST_BYTES:
            # Refuse *before* reading: trusting the declared length
            # here used to block this thread on an arbitrarily large
            # body a client never even needs to send.
            self._respond(
                413,
                _error_body(
                    f"request body exceeds {MAX_REQUEST_BYTES} bytes", 413
                ),
            )
            return
        raw = self.rfile.read(length) if length > 0 else b""
        service.note_bytes_read(len(raw))
        tenant = self.headers.get("X-Repro-Tenant")
        status, body, headers = service.analyze_request(raw, tenant=tenant)
        self._respond(status, body, headers)

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        if not getattr(self.server, "quiet", False):
            sys.stderr.write(
                f"repro-serve {self.address_string()} {format % args}\n"
            )


class AnalysisServer(ThreadingHTTPServer):
    """A threading HTTP server bound to one :class:`AnalysisService`.

    ``daemon_threads`` is deliberately ``False``: together with
    ``block_on_close`` (the default) it makes ``server_close`` join
    every in-flight request thread — that *is* the drain.

    ``request_queue_size`` raises the TCP accept backlog from the
    ``socketserver`` default of 5: refusing load is the admission
    gauge's job (an explicit 429), not the kernel's (a connection
    reset a client can only see as a network error).  A connection
    waiting in the backlog costs nothing until it is accepted.
    """

    daemon_threads = False
    allow_reuse_address = True
    request_queue_size = 128

    def __init__(self, address, service: AnalysisService, quiet: bool = False):
        self.service = service
        self.quiet = quiet
        super().__init__(address, _Handler)

    @property
    def port(self) -> int:
        """The actually-bound port (useful with ``--port 0``)."""
        return self.server_address[1]


def serve(
    service: AnalysisService,
    host: str = "127.0.0.1",
    port: int = 8765,
    quiet: bool = False,
    install_signal_handlers: bool = True,
    ready: Optional["threading.Event"] = None,
) -> int:
    """Run the service until SIGTERM/SIGINT, then drain and exit 0.

    Binds first (``--port 0`` picks a free port, announced on stdout),
    pre-forks the worker pool *before* any request thread exists, then
    serves.  ``ready`` (an optional event) is set once the socket is
    bound and the pool is warm — the test suite and the CI smoke job
    use it instead of polling.
    """
    server = AnalysisServer((host, port), service, quiet=quiet)

    def _drain(signum: int, frame) -> None:
        if not quiet:
            # locked snapshot: the handler races every request thread
            in_flight, waiting = service.drain_snapshot()
            sys.stderr.write(
                f"repro-serve: signal {signum}; draining "
                f"({in_flight} in flight, {waiting} waiting)\n"
            )
            sys.stderr.flush()
        service.begin_drain()
        # shutdown() blocks until serve_forever returns; never call it
        # on the thread that is running serve_forever.
        threading.Thread(
            target=server.shutdown, name="repro-serve-drain", daemon=True
        ).start()

    if install_signal_handlers:
        signal.signal(signal.SIGTERM, _drain)
        signal.signal(signal.SIGINT, _drain)

    service.warm()  # fork workers before the first request thread exists
    print(
        f"repro-serve: listening on http://{host}:{server.port} "
        f"(jobs={service.jobs}, shards={service.shards}, "
        f"max_queue={service.max_queue}, cache="
        f"{'off' if service.cache is None else 'on'})",
        flush=True,
    )
    if ready is not None:
        ready.set()
    try:
        server.serve_forever(poll_interval=0.1)
    finally:
        server.server_close()  # joins in-flight request threads (drain)
        service.close()
    if not quiet:
        sys.stderr.write("repro-serve: drained, exiting\n")
    return 0
