"""The resident analysis service behind ``repro serve``.

:class:`AnalysisService` wraps the batch pipeline
(:func:`repro.pipeline.run_pipeline`) into a long-lived, thread-safe
request handler.  Three things make it a service rather than a loop
around the CLI:

* **a persistent worker pool** — one :class:`repro.pipeline.WorkerPool`
  survives across requests, so a request pays for analysis, never for
  process startup (the pool is pre-forked before the first request);
* **a two-tier cache** — a bounded in-memory LRU
  (:class:`repro.pipeline.MemoryLRU`) in front of the on-disk
  content-addressed store, keyed by the same ``cache_key``; a warm hit
  is served without touching the pool at all;
* **request coalescing** — concurrent identical submissions (same
  canonical programs, analyses, and config) share one computation and
  all receive its result.

The response contract is strict: for any (program, analyses, config)
the ``POST /analyze`` body is byte-identical to the ``repro batch
--json`` document for the same inputs — the service is a cache+pool in
front of the pipeline, never a different pipeline.  Deadlines degrade
(partial results flagged ``degraded``), they do not 500; see
``docs/service.md`` for the endpoint schema and the shutdown/drain
behaviour.
"""

from __future__ import annotations

import hashlib
import json
import threading
import time
from concurrent.futures import Future
from typing import Dict, Optional, Tuple

import repro
from repro.lang.parser import parse_program, parse_statement
from repro.lang.pretty import pretty
from repro.lang.validate import validate_program
from repro.observe import MetricsAggregator
from repro.pipeline import (
    MemoryLRU,
    ResultCache,
    TieredCache,
    WorkerPool,
    run_pipeline,
)

#: Default analyses when a request names none — the same default as
#: ``repro batch``.
DEFAULT_ANALYSES: Tuple[str, ...] = ("cert", "lint")

#: Cap on request body size (bytes); a guard, not a tuning knob.
MAX_REQUEST_BYTES = 4 * 1024 * 1024

#: Per-cell item records the resident metrics aggregator retains (the
#: cumulative ``run``/``analyses`` aggregates are exact regardless).
SERVICE_ITEM_RECORDS = 2048


class ServiceError(Exception):
    """A request the service rejects (HTTP 4xx), with a clean message."""

    def __init__(self, message: str, status: int = 400):
        super().__init__(message)
        self.status = status


def _error_body(message: str, status: int) -> bytes:
    document = {"error": message, "status": status}
    return (json.dumps(document, sort_keys=True) + "\n").encode("utf-8")


class AnalysisService:
    """The request-level core of ``repro serve`` (transport-agnostic).

    The HTTP layer (:mod:`repro.service.httpd`) owns sockets and
    signals; everything about *analysis* — parsing requests, the cache
    tiers, the pool, coalescing, metrics — lives here, which is what
    the test suite drives directly.

    ``jobs=1`` runs analyses in-process (no pool); ``jobs > 1`` keeps a
    persistent pre-forked pool.  ``cache_dir=None`` disables the disk
    tier, ``lru_capacity=0`` the memory tier; with both disabled every
    request recomputes.  ``default_deadline`` applies to requests that
    do not set ``config.deadline`` themselves (``None`` = unlimited).
    ``default_config`` entries back-fill request configs the same way
    (per-request values always win) — ``repro serve --no-fastpath``
    passes ``{"fastpath": False}`` through it.
    """

    def __init__(
        self,
        jobs: int = 2,
        cache_dir: Optional[str] = None,
        lru_capacity: int = 4096,
        default_deadline: Optional[float] = None,
        default_config: Optional[dict] = None,
        chunk_size: Optional[int] = None,
    ):
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.jobs = jobs
        self.chunk_size = chunk_size
        self.default_deadline = default_deadline
        self.default_config = dict(default_config or {})
        self.pool: Optional[WorkerPool] = WorkerPool(jobs) if jobs > 1 else None
        disk = ResultCache(cache_dir) if cache_dir else None
        if disk is None and lru_capacity == 0:
            self.cache: Optional[TieredCache] = None
        else:
            self.cache = TieredCache(disk, MemoryLRU(lru_capacity))
        self.observer = MetricsAggregator(max_items=SERVICE_ITEM_RECORDS)
        self.draining = False
        self.started_at = time.monotonic()
        self.requests = 0
        self.coalesced = 0
        self.rejected = 0
        self.in_flight = 0
        self._lock = threading.Lock()
        self._inflight: Dict[str, Future] = {}

    # -- lifecycle -----------------------------------------------------

    def warm(self) -> None:
        """Pre-fork the worker pool (call before serving threads exist)."""
        if self.pool is not None:
            self.pool.warm(self.observer)

    def begin_drain(self) -> None:
        """Refuse new work; in-flight requests run to completion."""
        self.draining = True

    def close(self) -> None:
        """Tear down the worker pool."""
        if self.pool is not None:
            self.pool.close()

    # -- request handling ---------------------------------------------

    def analyze_json(self, raw: bytes) -> Tuple[int, bytes]:
        """Handle one ``POST /analyze`` body; returns (status, body).

        Malformed requests are 400s with a JSON error document; valid
        requests always produce the deterministic pipeline document —
        a per-request deadline yields ``degraded``-flagged partial
        results inside a 200, never a 500.
        """
        with self._lock:
            self.requests += 1
        if len(raw) > MAX_REQUEST_BYTES:
            return self._reject(
                f"request body exceeds {MAX_REQUEST_BYTES} bytes", 413
            )
        try:
            request = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, ValueError):
            return self._reject("request body is not valid JSON", 400)
        try:
            corpus, analyses, config = self._parse_request(request)
        except ServiceError as exc:
            return self._reject(str(exc), exc.status)

        key = self._coalescing_key(corpus, analyses, config)
        with self._lock:
            future = self._inflight.get(key)
            leader = future is None
            if leader:
                future = Future()
                self._inflight[key] = future
            else:
                self.coalesced += 1
        if leader:
            try:
                outcome = self._run(corpus, analyses, config)
            except BaseException:
                # never leave followers hanging on a dead future
                outcome = (500, _error_body("internal service error", 500))
                future.set_result(outcome)
                with self._lock:
                    self._inflight.pop(key, None)
                raise
            future.set_result(outcome)
            with self._lock:
                self._inflight.pop(key, None)
        return future.result()

    def _reject(self, message: str, status: int) -> Tuple[int, bytes]:
        with self._lock:
            self.rejected += 1
        return status, _error_body(message, status)

    def _run(self, corpus, analyses, config) -> Tuple[int, bytes]:
        with self._lock:
            self.in_flight += 1
        try:
            result = run_pipeline(
                corpus,
                analyses=analyses,
                jobs=self.jobs,
                config=config,
                cache=self.cache,
                use_cache=self.cache is not None,
                pool=self.pool,
                observer=self.observer,
                chunk_size=self.chunk_size,
            )
        except ValueError as exc:  # unknown analysis / config key
            return self._reject(str(exc), 400)
        finally:
            with self._lock:
                self.in_flight -= 1
        body = (result.to_json() + "\n").encode("utf-8")
        return 200, body

    def _parse_request(self, request: object):
        """Validate and resolve one request document.

        Shape (see ``docs/service.md``)::

            {"program": "...", "name": "p.rl", "kind": "program",
             "analyses": ["cert", "explore"], "config": {...}}

        or ``"programs": [{"name", "program", "kind"}, ...]`` for a
        whole corpus.  Raises :class:`ServiceError` on anything that
        ``repro batch`` would have refused at the command line.
        """
        if not isinstance(request, dict):
            raise ServiceError("request must be a JSON object")
        unknown = set(request) - {
            "program", "programs", "name", "kind", "analyses", "config",
            "deadline",
        }
        if unknown:
            raise ServiceError(
                f"unknown request field(s): {sorted(unknown)}"
            )

        # request-shape checks first: they are cheap and their error
        # messages should win over a parse error in the program text
        analyses = request.get("analyses", list(DEFAULT_ANALYSES))
        if not isinstance(analyses, list) or not all(
            isinstance(a, str) for a in analyses
        ):
            raise ServiceError("'analyses' must be an array of analysis names")

        config = request.get("config", {})
        if not isinstance(config, dict):
            raise ServiceError("'config' must be an object")
        config = dict(config)
        if "deadline" in request:
            if "deadline" in config:
                raise ServiceError(
                    "give the deadline once: top-level or config.deadline"
                )
            config["deadline"] = request["deadline"]
        if "deadline" not in config and self.default_deadline is not None:
            config["deadline"] = self.default_deadline
        for key, value in self.default_config.items():
            config.setdefault(key, value)

        if "programs" in request:
            if "program" in request:
                raise ServiceError("give either 'program' or 'programs', not both")
            entries = request["programs"]
            if not isinstance(entries, list) or not entries:
                raise ServiceError("'programs' must be a non-empty array")
        else:
            if "program" not in request:
                raise ServiceError("request needs a 'program' (source text)")
            entries = [
                {
                    "program": request["program"],
                    "name": request.get("name", "program"),
                    "kind": request.get("kind", "program"),
                }
            ]

        corpus = []
        for i, entry in enumerate(entries):
            if not isinstance(entry, dict):
                raise ServiceError(f"programs[{i}] must be an object")
            source = entry.get("program")
            if not isinstance(source, str) or not source.strip():
                raise ServiceError(
                    f"programs[{i}].program must be non-empty source text"
                )
            name = entry.get("name", f"program-{i}")
            if not isinstance(name, str) or not name:
                raise ServiceError(f"programs[{i}].name must be a string")
            kind = entry.get("kind", "program")
            if kind not in ("program", "statement"):
                raise ServiceError(
                    f"programs[{i}].kind must be 'program' or 'statement', "
                    f"got {kind!r}"
                )
            try:
                subject = (
                    parse_program(source)
                    if kind == "program"
                    else parse_statement(source)
                )
            except Exception as exc:
                raise ServiceError(f"{name}: parse error: {exc}")
            if kind == "program":
                problems = validate_program(subject)
                if problems:
                    raise ServiceError(f"{name}: {problems[0]}")
            corpus.append((name, subject))

        return corpus, tuple(analyses), config

    def _coalescing_key(self, corpus, analyses, config) -> str:
        """One hash for "the same work": canonical programs (so
        formatting-only differences coalesce, exactly like the cache),
        the analysis set, the config overlay, and the code version."""
        document = json.dumps(
            {
                "programs": sorted(
                    (name, pretty(subject)) for name, subject in corpus
                ),
                "analyses": sorted(analyses),
                "config": config,
                "version": repro.__version__,
            },
            sort_keys=True,
            separators=(",", ":"),
            default=str,
        )
        return hashlib.sha256(document.encode("utf-8")).hexdigest()

    # -- introspection -------------------------------------------------

    def uptime_seconds(self) -> float:
        return time.monotonic() - self.started_at

    def service_counters(self) -> Dict[str, object]:
        """The ``service`` section of the metrics document."""
        lru = self.cache.lru_stats() if self.cache is not None else None
        with self._lock:
            counters: Dict[str, object] = {
                "requests": self.requests,
                "in_flight": self.in_flight,
                "coalesced": self.coalesced,
                "rejected": self.rejected,
                "draining": self.draining,
                "uptime_seconds": self.uptime_seconds(),
                "lru_hits": lru["hits"] if lru else 0,
                "lru_misses": lru["misses"] if lru else 0,
            }
        if lru is not None:
            counters["lru"] = lru
        if self.pool is not None:
            counters["pool"] = {
                "jobs": self.pool.jobs,
                "submitted": self.pool.submitted,
                "pools_started": self.pool.pools_started,
            }
        return counters

    def metrics_document(self) -> Dict[str, object]:
        """The cumulative ``repro-metrics/1`` document for ``/metrics``."""
        cache = (
            self.cache.stats.to_dict()
            if self.cache is not None
            else {"hits": 0, "misses": 0, "writes": 0, "corrupt": 0}
        )
        return self.observer.to_dict(
            elapsed_seconds=self.uptime_seconds(),
            jobs=self.jobs,
            deadline=self.default_deadline,
            cache=cache,
            service=self.service_counters(),
        )

    def health_document(self) -> Tuple[int, Dict[str, object]]:
        """The ``/healthz`` payload: 200 while serving, 503 draining."""
        status = 503 if self.draining else 200
        return status, {
            "status": "draining" if self.draining else "ok",
            "version": repro.__version__,
            "uptime_seconds": round(self.uptime_seconds(), 3),
            "requests": self.requests,
            "in_flight": self.in_flight,
        }
